"""Module system: parameter registration, state dicts, modes."""

import numpy as np
import pytest

from repro.autograd.module import Linear, Module, Parameter, Sequential
from repro.autograd.tensor import Tensor


class TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=np.random.default_rng(0))
        self.fc2 = Linear(8, 2, rng=np.random.default_rng(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu())


class TestParameterRegistration:
    def test_named_parameters_nested(self):
        net = TwoLayer()
        names = [n for n, _ in net.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_num_parameters(self):
        net = TwoLayer()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_zero_grad_clears_all(self):
        net = TwoLayer()
        out = net(Tensor(np.ones((3, 4)))).sum()
        out.backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_parameter_always_requires_grad(self):
        from repro.autograd.tensor import no_grad

        with no_grad():
            p = Parameter(np.ones(3))
        assert p.requires_grad


class TestLinear:
    def test_forward_shape(self):
        lin = Linear(4, 6, rng=np.random.default_rng(0))
        out = lin(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 6)

    def test_no_bias(self):
        lin = Linear(4, 6, bias=False, rng=np.random.default_rng(0))
        assert lin.bias is None
        names = [n for n, _ in lin.named_parameters()]
        assert names == ["weight"]

    def test_affine_math(self):
        lin = Linear(2, 2, rng=np.random.default_rng(0))
        lin.weight.data = np.array([[1.0, 0.0], [0.0, 1.0]], dtype=np.float32)
        lin.bias.data = np.array([1.0, -1.0], dtype=np.float32)
        out = lin(Tensor(np.array([[2.0, 3.0]])))
        np.testing.assert_allclose(out.data, [[3.0, 2.0]])

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 5)


class TestStateDict:
    def test_roundtrip(self):
        a, b = TwoLayer(), TwoLayer()
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_is_a_copy(self):
        net = TwoLayer()
        sd = net.state_dict()
        sd["fc1.weight"][:] = 0.0
        assert not np.all(net.fc1.weight.data == 0.0)

    def test_missing_key_rejected(self):
        net = TwoLayer()
        sd = net.state_dict()
        del sd["fc1.bias"]
        with pytest.raises(KeyError):
            net.load_state_dict(sd)

    def test_unexpected_key_rejected(self):
        net = TwoLayer()
        sd = net.state_dict()
        sd["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            net.load_state_dict(sd)

    def test_shape_mismatch_rejected(self):
        net = TwoLayer()
        sd = net.state_dict()
        sd["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.load_state_dict(sd)


class TestModes:
    def test_train_eval_propagates(self):
        net = TwoLayer()
        net.eval()
        assert not net.training
        assert not net.fc1.training
        net.train()
        assert net.fc2.training


class TestSequential:
    def test_chains(self):
        seq = Sequential(
            Linear(4, 8, rng=np.random.default_rng(0)),
            Linear(8, 2, rng=np.random.default_rng(1)),
        )
        out = seq(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)
        assert len(seq.parameters()) == 4


class TestExtraState:
    """Non-parameter state that must cross execution-backend boundaries."""

    def test_default_is_empty(self):
        from repro.autograd.module import Linear

        assert Linear(2, 2).extra_state_dict() == {}

    def test_declared_attrs_roundtrip(self):
        from repro.autograd.module import Module

        class Stateful(Module):
            EXTRA_STATE_ATTRS = ("_counter",)

            def __init__(self):
                super().__init__()
                object.__setattr__(self, "_counter", 0)

        a, b = Stateful(), Stateful()
        object.__setattr__(a, "_counter", 7)
        b.load_extra_state_dict(a.extra_state_dict())
        assert b._counter == 7

    def test_submodule_state_collected_with_dotted_names(self):
        from repro.autograd.module import Module

        class Leaf(Module):
            EXTRA_STATE_ATTRS = ("_n",)

            def __init__(self):
                super().__init__()
                object.__setattr__(self, "_n", 1)

        class Host(Module):
            def __init__(self):
                super().__init__()
                self.leaf = Leaf()

        host = Host()
        object.__setattr__(host.leaf, "_n", 5)
        state = host.extra_state_dict()
        assert state == {"leaf._n": 5}
        fresh = Host()
        fresh.load_extra_state_dict(state)
        assert fresh.leaf._n == 5

    def test_unknown_attr_rejected(self):
        from repro.autograd.module import Linear

        with pytest.raises(KeyError):
            Linear(2, 2).load_extra_state_dict({"_bogus": 1})

    def test_gnn_models_declare_dropout_counter(self, ):
        from repro.gnn.models import build_model

        for name in ("gcn", "sage", "gat"):
            m = build_model(name, [4, 4, 2], seed=0)
            assert m.extra_state_dict() == {"_dropout_calls": 0}
