"""Model checkpointing."""

import numpy as np
import pytest

from repro.autograd.module import Linear, Module
from repro.autograd.serialize import load_module, save_module


class Net(Module):
    def __init__(self, seed=0):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=np.random.default_rng(seed))
        self.fc2 = Linear(8, 2, rng=np.random.default_rng(seed + 1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu())


class TestSerialize:
    def test_roundtrip(self, tmp_path):
        a, b = Net(seed=0), Net(seed=99)
        path = save_module(a, tmp_path / "model")
        load_module(b, path)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_npz_suffix_added(self, tmp_path):
        path = save_module(Net(), tmp_path / "ckpt")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_load_into_mismatched_model_fails(self, tmp_path):
        path = save_module(Net(), tmp_path / "m")
        other = Linear(3, 3)
        with pytest.raises(KeyError):
            load_module(other, path)

    def test_empty_module_rejected(self, tmp_path):
        class Empty(Module):
            pass

        with pytest.raises(ValueError):
            save_module(Empty(), tmp_path / "e")

    def test_gnn_model_roundtrip(self, tmp_path, tiny_dataset):
        from repro.gnn.models import build_model

        m1 = build_model("sage", tiny_dataset.layer_dims(2), seed=0)
        m2 = build_model("sage", tiny_dataset.layer_dims(2), seed=5)
        path = save_module(m1, tmp_path / "sage")
        load_module(m2, path)
        assert all(
            np.array_equal(v, m2.state_dict()[k]) for k, v in m1.state_dict().items()
        )
