"""Finite-difference verification of every op's backward pass.

Each differentiable primitive is checked against central differences in
float64.  This is the ground truth making the rest of the training stack
trustworthy: if these pass, DDP gradient averaging and the convergence
experiments rest on correct calculus.
"""

import numpy as np
import pytest

from repro.autograd import functional as F
from repro.autograd import ops
from repro.autograd.tensor import Tensor


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` at ``x``."""
    g = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = g.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return g


def check_op(build, x0: np.ndarray, rtol=1e-4, atol=1e-5):
    """Compare autograd gradient of ``sum(build(Tensor(x)))`` vs numeric."""
    x0 = x0.astype(np.float64)

    def scalar(x):
        t = Tensor(x.copy(), requires_grad=True)
        return float(build(t).sum().data)

    t = Tensor(x0.copy(), requires_grad=True)
    out = build(t).sum()
    out.backward()
    assert t.grad is not None, "no gradient propagated"
    num = numeric_grad(scalar, x0.copy())
    np.testing.assert_allclose(t.grad, num, rtol=rtol, atol=atol)


RNG = np.random.default_rng(0)


class TestElementwiseGrads:
    def test_add(self):
        check_op(lambda t: t + 2.0, RNG.standard_normal((3, 4)))

    def test_add_broadcast(self):
        b = RNG.standard_normal(4)
        check_op(lambda t: t + Tensor(b), RNG.standard_normal((3, 4)))

    def test_sub(self):
        check_op(lambda t: 1.0 - t, RNG.standard_normal((2, 3)))

    def test_mul(self):
        c = RNG.standard_normal((2, 3))
        check_op(lambda t: t * Tensor(c), RNG.standard_normal((2, 3)))

    def test_div(self):
        c = RNG.standard_normal((2, 3)) + 3.0
        check_op(lambda t: t / Tensor(c), RNG.standard_normal((2, 3)))

    def test_div_wrt_denominator(self):
        num = Tensor(RNG.standard_normal((2, 3)))
        check_op(lambda t: ops.div(num, t), RNG.standard_normal((2, 3)) + 3.0)

    def test_pow(self):
        check_op(lambda t: t**3.0, RNG.standard_normal((2, 3)) + 2.5)

    def test_exp(self):
        check_op(ops.exp, RNG.standard_normal((2, 3)))

    def test_log(self):
        check_op(ops.log, RNG.random((2, 3)) + 0.5)

    def test_relu(self):
        # keep values away from the kink
        x = RNG.standard_normal((3, 4))
        x[np.abs(x) < 0.1] = 0.5
        check_op(ops.relu, x)

    def test_neg(self):
        check_op(lambda t: -t, RNG.standard_normal((2, 2)))


class TestLinalgGrads:
    def test_matmul_left(self):
        w = RNG.standard_normal((4, 5))
        check_op(lambda t: t @ Tensor(w), RNG.standard_normal((3, 4)))

    def test_matmul_right(self):
        x = Tensor(RNG.standard_normal((3, 4)))
        check_op(lambda t: ops.matmul(x, t), RNG.standard_normal((4, 5)))

    def test_transpose(self):
        check_op(lambda t: t.T, RNG.standard_normal((3, 4)))

    def test_reshape(self):
        check_op(lambda t: t.reshape(6), RNG.standard_normal((2, 3)))


class TestShapeGrads:
    def test_concat(self):
        other = Tensor(RNG.standard_normal((3, 2)))
        check_op(lambda t: ops.concat([t, other], axis=-1), RNG.standard_normal((3, 4)))

    def test_concat_wrt_second(self):
        first = Tensor(RNG.standard_normal((3, 4)))
        check_op(lambda t: ops.concat([first, t], axis=-1), RNG.standard_normal((3, 2)))

    def test_gather_rows(self):
        idx = np.array([0, 2, 2, 1])
        check_op(lambda t: ops.gather_rows(t, idx), RNG.standard_normal((3, 4)))

    def test_scatter_add_rows(self):
        idx = np.array([0, 2, 2])
        check_op(lambda t: ops.scatter_add_rows(t, idx, 4), RNG.standard_normal((3, 2)))


class TestReductionGrads:
    def test_sum_all(self):
        check_op(lambda t: t.sum(), RNG.standard_normal((3, 4)))

    def test_sum_axis(self):
        check_op(lambda t: t.sum(axis=0), RNG.standard_normal((3, 4)))

    def test_sum_keepdims(self):
        check_op(lambda t: t.sum(axis=1, keepdims=True), RNG.standard_normal((3, 4)))

    def test_mean_all(self):
        check_op(lambda t: t.mean(), RNG.standard_normal((3, 4)))

    def test_mean_axis(self):
        check_op(lambda t: t.mean(axis=1), RNG.standard_normal((3, 4)))


class TestLossGrads:
    def test_log_softmax(self):
        check_op(lambda t: F.log_softmax(t), RNG.standard_normal((4, 5)))

    def test_nll_loss_mean(self):
        targets = np.array([0, 2, 1, 4])
        check_op(lambda t: F.nll_loss(F.log_softmax(t), targets), RNG.standard_normal((4, 5)))

    def test_nll_loss_sum(self):
        targets = np.array([0, 2])
        check_op(
            lambda t: F.nll_loss(F.log_softmax(t), targets, reduction="sum"),
            RNG.standard_normal((2, 5)),
        )

    def test_cross_entropy(self):
        targets = np.array([1, 3, 0])
        check_op(lambda t: F.cross_entropy(t, targets), RNG.standard_normal((3, 5)))


class TestCompositeGrads:
    def test_two_layer_mlp(self):
        w1 = Tensor(RNG.standard_normal((4, 8)))
        w2 = Tensor(RNG.standard_normal((8, 3)))
        targets = np.array([0, 1, 2])

        def net(t):
            h = ops.relu(t @ w1)
            return F.cross_entropy(h @ w2, targets)

        x = RNG.standard_normal((3, 4))
        check_op(net, x, rtol=1e-3, atol=1e-4)

    def test_diamond_dependency(self):
        """One tensor feeding two branches accumulates both gradients."""

        def net(t):
            return (t * t + t).sum()

        check_op(lambda t: t * t + t, RNG.standard_normal((3, 3)))
