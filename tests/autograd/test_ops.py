"""Forward-value checks and validation for primitive ops."""

import numpy as np
import pytest

from repro.autograd import ops
from repro.autograd.functional import accuracy, log_softmax, nll_loss
from repro.autograd.tensor import Tensor


class TestForwardValues:
    def test_add_broadcast(self):
        out = ops.add(Tensor(np.ones((2, 3))), Tensor(np.arange(3)))
        np.testing.assert_allclose(out.data, [[1, 2, 3], [1, 2, 3]])

    def test_matmul(self):
        a = Tensor(np.array([[1.0, 2.0]]))
        b = Tensor(np.array([[3.0], [4.0]]))
        assert ops.matmul(a, b).data.item() == 11.0

    def test_matmul_requires_2d(self):
        with pytest.raises(ValueError):
            ops.matmul(Tensor(np.ones(3)), Tensor(np.ones((3, 2))))

    def test_relu_clamps(self):
        out = ops.relu(Tensor(np.array([-1.0, 0.0, 2.0])))
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_concat_axis(self):
        a, b = Tensor(np.ones((2, 2))), Tensor(np.zeros((2, 3)))
        assert ops.concat([a, b], axis=-1).shape == (2, 5)

    def test_concat_empty_list_rejected(self):
        with pytest.raises(ValueError):
            ops.concat([])

    def test_gather_rows_selects(self):
        t = Tensor(np.arange(6).reshape(3, 2))
        out = ops.gather_rows(t, np.array([2, 0]))
        np.testing.assert_allclose(out.data, [[4, 5], [0, 1]])

    def test_scatter_add_rows_accumulates(self):
        t = Tensor(np.ones((3, 2)))
        out = ops.scatter_add_rows(t, np.array([1, 1, 0]), 3)
        np.testing.assert_allclose(out.data, [[1, 1], [2, 2], [0, 0]])

    def test_operator_sugar(self):
        t = Tensor(np.array([2.0]))
        assert (t + 1).data.item() == 3.0
        assert (1 + t).data.item() == 3.0
        assert (t - 1).data.item() == 1.0
        assert (1 - t).data.item() == -1.0
        assert (t * 3).data.item() == 6.0
        assert (t / 2).data.item() == 1.0
        assert (-t).data.item() == -2.0
        assert (t**2).data.item() == 4.0


class TestDropout:
    def test_eval_mode_identity(self):
        t = Tensor(np.ones((4, 4)))
        out = ops.dropout(t, 0.5, training=False)
        assert out is t

    def test_p_zero_identity(self):
        t = Tensor(np.ones((4, 4)))
        assert ops.dropout(t, 0.0) is t

    def test_scaling_preserves_expectation(self):
        t = Tensor(np.ones((200, 200)))
        out = ops.dropout(t, 0.5, rng=np.random.default_rng(0))
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_deterministic_given_rng(self):
        t = Tensor(np.ones((10, 10)))
        a = ops.dropout(t, 0.3, rng=np.random.default_rng(1)).data
        b = ops.dropout(t, 0.3, rng=np.random.default_rng(1)).data
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            ops.dropout(Tensor(np.ones(3)), 1.0)


class TestLossForward:
    def test_log_softmax_normalised(self):
        out = log_softmax(Tensor(np.random.default_rng(0).standard_normal((4, 6))))
        np.testing.assert_allclose(np.exp(out.data).sum(axis=1), 1.0, rtol=1e-5)

    def test_log_softmax_stable_for_large_logits(self):
        out = log_softmax(Tensor(np.array([[1000.0, 1000.0]])))
        assert np.all(np.isfinite(out.data))

    def test_nll_known_value(self):
        lp = Tensor(np.log(np.array([[0.25, 0.75], [0.5, 0.5]], dtype=np.float64)))
        loss = nll_loss(lp, np.array([1, 0]))
        assert loss.item() == pytest.approx(-(np.log(0.75) + np.log(0.5)) / 2)

    def test_nll_rejects_bad_targets(self):
        lp = Tensor(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            nll_loss(lp, np.array([0, 5]))

    def test_nll_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            nll_loss(Tensor(np.zeros((2, 3))), np.array([0]))

    def test_nll_rejects_unknown_reduction(self):
        with pytest.raises(ValueError):
            nll_loss(Tensor(np.zeros((2, 3))), np.array([0, 1]), reduction="max")

    def test_accuracy(self):
        logits = Tensor(np.array([[2.0, 1.0], [0.0, 3.0], [5.0, 0.0]]))
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_empty(self):
        assert accuracy(Tensor(np.zeros((0, 3))), np.array([], dtype=np.int64)) == 0.0
