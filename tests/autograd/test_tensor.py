"""Tensor mechanics: tape construction, backward, no_grad."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor, is_grad_enabled, no_grad, unbroadcast


class TestConstruction:
    def test_int_data_becomes_float32(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype == np.float32

    def test_float64_preserved(self):
        t = Tensor(np.array([1.0, 2.0], dtype=np.float64))
        assert t.dtype == np.float64

    def test_zeros_ones(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert float(Tensor.ones(2).sum().data) == 2.0

    def test_shape_properties(self):
        t = Tensor(np.zeros((2, 5)))
        assert t.shape == (2, 5)
        assert t.ndim == 2
        assert t.size == 10
        assert len(t) == 2

    def test_item_scalar_only(self):
        assert Tensor(np.array(3.0)).item() == 3.0

    def test_detach_drops_grad_tracking(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad


class TestBackward:
    def test_leaf_gets_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 2.0).sum().backward()
        np.testing.assert_allclose(t.grad, [2, 2, 2])

    def test_grad_accumulates_across_backwards(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 2.0).sum().backward()
        (t * 2.0).sum().backward()
        np.testing.assert_allclose(t.grad, [4, 4, 4])

    def test_zero_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 2.0).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_nonscalar_backward_requires_grad_arg(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2.0).backward()

    def test_explicit_upstream_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 2.0).backward(np.array([1.0, 0.0, 2.0]))
        np.testing.assert_allclose(t.grad, [2, 0, 4])

    def test_no_grad_without_requires(self):
        t = Tensor(np.ones(3))
        out = (t * 2.0).sum()
        out.backward()
        assert t.grad is None

    def test_shared_subexpression_counted_once_per_path(self):
        t = Tensor(np.array([3.0]), requires_grad=True)
        y = t * t  # dy/dt = 2t = 6
        (y + y).sum().backward()  # d(2y)/dt = 4t = 12
        np.testing.assert_allclose(t.grad, [12.0])

    def test_deep_chain(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        x = t
        for _ in range(50):
            x = x + 1.0
        x.sum().backward()
        np.testing.assert_allclose(t.grad, [1.0])


class TestNoGrad:
    def test_context_disables_tape(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = (t * 2.0).sum()
        out.backward()  # no tape: nothing happens
        assert t.grad is None

    def test_flag_restored(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_flag_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_sums_leading_dims(self):
        g = np.ones((4, 2, 3))
        out = unbroadcast(g, (2, 3))
        np.testing.assert_allclose(out, np.full((2, 3), 4.0))

    def test_sums_size1_dims(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, (2, 1))
        np.testing.assert_allclose(out, np.full((2, 1), 3.0))

    def test_scalar_target(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, ())
        assert out == pytest.approx(6.0)


class TestInferenceMode:
    def test_skips_tape_and_restores_flags(self):
        from repro.autograd.tensor import inference_mode, is_inference_mode

        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with inference_mode():
            assert is_inference_mode() and not is_grad_enabled()
            out = (a @ a).relu().sum()
            assert out._parents == [] and not out.requires_grad
        assert not is_inference_mode() and is_grad_enabled()

    def test_flags_restored_on_exception(self):
        from repro.autograd.tensor import inference_mode, is_inference_mode

        with pytest.raises(RuntimeError):
            with inference_mode():
                raise RuntimeError("boom")
        assert is_grad_enabled() and not is_inference_mode()

    def test_values_bit_identical_to_grad_forward(self):
        from repro.autograd.tensor import inference_mode

        rng = np.random.default_rng(0)
        x = rng.standard_normal((5, 3)).astype(np.float32)
        w = rng.standard_normal((3, 4)).astype(np.float32)

        def forward():
            t = Tensor(x, requires_grad=True) @ Tensor(w, requires_grad=True)
            return (t.relu().sum(axis=0) * 2.0).data

        with_tape = forward()
        with inference_mode():
            without_tape = forward()
        np.testing.assert_array_equal(with_tape, without_tape)

    def test_nests_inside_no_grad(self):
        from repro.autograd.tensor import inference_mode, is_inference_mode

        with no_grad():
            with inference_mode():
                assert is_inference_mode()
            assert not is_grad_enabled() and not is_inference_mode()
