"""Optimizer semantics."""

import numpy as np
import pytest

from repro.autograd.module import Parameter
from repro.autograd.optim import SGD, Adam
from repro.autograd.tensor import Tensor


def quadratic_params():
    """One parameter minimising f(w) = ||w - 3||^2."""
    return Parameter(np.zeros(4, dtype=np.float32))


def grad_of(p):
    return 2.0 * (p.data - 3.0)


class TestSGD:
    def test_plain_step(self):
        p = Parameter(np.array([1.0, 2.0], dtype=np.float32))
        p.grad = np.array([0.5, -0.5], dtype=np.float32)
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 2.05])

    def test_skips_none_grads(self):
        p = Parameter(np.ones(2))
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0, 1.0])

    def test_momentum_accelerates(self):
        p1, p2 = quadratic_params(), quadratic_params()
        plain, mom = SGD([p1], lr=0.01), SGD([p2], lr=0.01, momentum=0.9)
        for _ in range(20):
            p1.grad, p2.grad = grad_of(p1), grad_of(p2)
            plain.step()
            mom.step()
        assert np.abs(p2.data - 3.0).sum() < np.abs(p1.data - 3.0).sum()

    def test_weight_decay_shrinks(self):
        p = Parameter(np.ones(3))
        p.grad = np.zeros(3, dtype=np.float32)
        SGD([p], lr=0.1, weight_decay=1.0).step()
        assert np.all(p.data < 1.0)

    def test_converges_on_quadratic(self):
        p = quadratic_params()
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            p.grad = grad_of(p)
            opt.step()
        np.testing.assert_allclose(p.data, 3.0, atol=1e-3)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.0)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.1, momentum=1.0)

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_params()
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            p.grad = grad_of(p)
            opt.step()
        np.testing.assert_allclose(p.data, 3.0, atol=1e-2)

    def test_first_step_magnitude_is_lr(self):
        """With bias correction the first Adam step is ~lr in each coord."""
        p = Parameter(np.zeros(3))
        p.grad = np.array([1.0, -2.0, 0.5], dtype=np.float32)
        Adam([p], lr=0.01).step()
        np.testing.assert_allclose(np.abs(p.data), 0.01, rtol=1e-3)

    def test_zero_grad_helper(self):
        p = Parameter(np.zeros(3))
        p.grad = np.ones(3, dtype=np.float32)
        opt = Adam([p], lr=0.01)
        opt.zero_grad()
        assert p.grad is None

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], betas=(1.0, 0.9))

    def test_deterministic_given_grads(self):
        def run():
            p = Parameter(np.zeros(3))
            opt = Adam([p], lr=0.05)
            for i in range(10):
                p.grad = np.full(3, 0.1 * (i + 1), dtype=np.float32)
                opt.step()
            return p.data.copy()

        np.testing.assert_array_equal(run(), run())


class TestStateRoundTrip:
    """Optimizer state must survive (de)serialisation — the process
    execution backend rebuilds optimizers inside worker processes."""

    def _run_steps(self, opt, p, k):
        for _ in range(k):
            p.grad = grad_of(p)
            opt.step()

    @pytest.mark.parametrize("cls, kwargs", [(SGD, {"momentum": 0.9}), (Adam, {})])
    def test_roundtrip_continues_identically(self, cls, kwargs):
        p1 = quadratic_params()
        opt1 = cls([p1], lr=0.05, **kwargs)
        self._run_steps(opt1, p1, 3)

        # transplant state into a fresh optimizer over a fresh copy
        p2 = Parameter(p1.data.copy())
        opt2 = cls([p2], lr=0.05, **kwargs)
        opt2.load_state_dict(opt1.state_dict())

        self._run_steps(opt1, p1, 3)
        self._run_steps(opt2, p2, 3)
        np.testing.assert_allclose(p2.data, p1.data, rtol=1e-7)

    def test_adam_state_includes_step_count(self):
        p = quadratic_params()
        opt = Adam([p], lr=0.05)
        self._run_steps(opt, p, 2)
        assert opt.state_dict()["t"] == 2

    def test_state_dict_is_a_copy(self):
        p = quadratic_params()
        opt = Adam([p], lr=0.05)
        self._run_steps(opt, p, 1)
        snap = opt.state_dict()
        self._run_steps(opt, p, 1)
        assert not np.array_equal(snap["m"][0], opt.state_dict()["m"][0])

    def test_mismatched_state_rejected(self):
        p = quadratic_params()
        opt = Adam([p], lr=0.05)
        with pytest.raises(ValueError):
            opt.load_state_dict({"m": [], "v": [], "t": 0})

    def test_make_optimizer_factory(self):
        from repro.autograd.optim import make_optimizer

        p = quadratic_params()
        assert isinstance(make_optimizer("adam", [p], 0.01), Adam)
        assert isinstance(make_optimizer("SGD", [p], 0.01), SGD)
        with pytest.raises(ValueError, match="unknown optimizer"):
            make_optimizer("rmsprop", [p], 0.01)
