"""Persistent worker pool: reuse across epochs and engines, launch tax."""

import os

import numpy as np
import pytest

from repro.core.config import RuntimeConfig
from repro.core.engine import MultiProcessEngine
from repro.core.train_loop import make_train_fn
from repro.exec import get_backend
from repro.gnn.models import make_task

has_dev_shm = os.path.isdir("/dev/shm")
needs_dev_shm = pytest.mark.skipif(not has_dev_shm, reason="no /dev/shm to inspect")


def shm_segments() -> frozenset:
    return frozenset(n for n in os.listdir("/dev/shm") if n.startswith("psm_"))


def build_engine(ds, n=2, seed=0, persistent=True, backend="process", **kw):
    sampler, model = make_task("neighbor-sage", ds.layer_dims(2), seed=seed, fanouts=[5, 5])
    return MultiProcessEngine(
        ds,
        sampler,
        model,
        num_processes=n,
        global_batch_size=64,
        backend=backend,
        backend_options={"timeout": 30.0} if backend == "process" else None,
        seed=seed,
        persistent=persistent,
        **kw,
    )


class TestPoolPersistence:
    def test_worker_pids_stable_across_epochs(self, tiny_dataset):
        with build_engine(tiny_dataset) as eng:
            eng.train_epoch()
            pool = eng._backend.pool
            pids = pool.worker_pids()
            assert len(pids) == 2
            eng.train_epoch()
            eng.train_epoch()
            assert pool.worker_pids() == pids
            assert pool.launches == 1

    def test_launch_time_collapses_after_first_epoch(self, tiny_dataset):
        with build_engine(tiny_dataset) as eng:
            eng.train(3)
        launches = [e.launch_time for e in eng.history.epochs]
        assert launches[0] > 0
        # once the pool is warm an epoch's launch cost is one weight
        # memcpy — far below the initial fork
        assert max(launches[1:]) < launches[0]

    def test_respawn_pays_launch_every_epoch(self, tiny_dataset):
        with build_engine(tiny_dataset, persistent=False) as eng:
            eng.train(3)
        assert all(e.launch_time > 0 for e in eng.history.epochs)

    def test_shutdown_stops_pool_and_engine_recovers(self, tiny_dataset):
        eng = build_engine(tiny_dataset)
        eng.train_epoch()
        first_pids = eng._backend.pool.worker_pids()
        eng.shutdown()
        assert eng._backend.pool is None
        eng.train_epoch()  # relaunches lazily
        assert eng._backend.pool.worker_pids() != first_pids
        eng.shutdown()

    @needs_dev_shm
    def test_shutdown_unlinks_pool_segments(self, tiny_dataset):
        before = shm_segments()
        eng = build_engine(tiny_dataset)
        eng.train_epoch()
        assert shm_segments() != before  # store + world + param store live
        eng.shutdown()
        assert shm_segments() == before


class TestPoolAcrossEngines:
    """A shared backend instance keeps its pool across engine rebuilds —
    the tuner's re-launch pattern."""

    def test_same_n_reuses_workers(self, tiny_dataset):
        """The tuner pattern: engines rebuilt around one shared model."""
        backend = get_backend("process", timeout=30.0)
        sampler, model = make_task(
            "neighbor-sage", tiny_dataset.layer_dims(2), seed=0, fanouts=[5, 5]
        )

        def engine():
            return MultiProcessEngine(
                tiny_dataset, sampler, model, num_processes=2,
                global_batch_size=64, backend=backend, seed=0,
            )

        try:
            engine().train_epoch()
            pids = backend.pool.worker_pids()
            engine().train_epoch()
            assert backend.pool.worker_pids() == pids
            assert backend.pool.launches == 1
        finally:
            backend.shutdown()

    def test_different_model_rebinds_pool(self, tiny_dataset):
        """Identical parameter topology but a different model object must
        not reuse the old pool's pickled templates (non-parameter config
        such as dropout rate would silently leak across engines)."""
        backend = get_backend("process", timeout=30.0)
        try:
            e1 = build_engine(tiny_dataset, backend=backend)
            e1.train_epoch()
            pids = backend.pool.worker_pids()
            e2 = build_engine(tiny_dataset, backend=backend)  # fresh model
            e2.train_epoch()
            assert backend.pool.launches == 2
            assert backend.pool.worker_pids() != pids
        finally:
            backend.shutdown()

    def test_n_change_rebinds_pool(self, tiny_dataset):
        backend = get_backend("process", timeout=30.0)
        try:
            e1 = build_engine(tiny_dataset, n=2, backend=backend)
            e1.train_epoch()
            pids2 = backend.pool.worker_pids()
            e2 = build_engine(tiny_dataset, n=3, backend=backend)
            e2.train_epoch()
            pids3 = backend.pool.worker_pids()
            assert len(pids3) == 3
            assert set(pids3).isdisjoint(pids2)
            assert backend.pool.launches == 2
        finally:
            backend.shutdown()

    def test_engine_shutdown_leaves_shared_backend_running(self, tiny_dataset):
        backend = get_backend("process", timeout=30.0)
        try:
            eng = build_engine(tiny_dataset, backend=backend)
            eng.train_epoch()
            eng.shutdown()  # engine does not own the backend
            assert backend.pool is not None and backend.pool.alive
        finally:
            backend.shutdown()

    def test_backend_options_invalid_with_instance(self, tiny_dataset):
        backend = get_backend("process", timeout=30.0)
        try:
            sampler, model = make_task(
                "neighbor-sage", tiny_dataset.layer_dims(2), seed=0, fanouts=[5, 5]
            )
            with pytest.raises(ValueError, match="backend_options"):
                MultiProcessEngine(
                    tiny_dataset, sampler, model, num_processes=2,
                    global_batch_size=64, backend=backend,
                    backend_options={"timeout": 5.0},
                )
        finally:
            backend.shutdown()


class TestPoolResize:
    """Shrinking ``n`` parks surplus workers instead of re-forking."""

    def shared_engines(self, ds, backend):
        sampler, model = make_task(
            "neighbor-sage", ds.layer_dims(2), seed=0, fanouts=[5, 5]
        )

        def engine(n):
            return MultiProcessEngine(
                ds, sampler, model, num_processes=n,
                global_batch_size=64, backend=backend, seed=0,
            )

        return engine

    def test_shrink_parks_instead_of_reforking(self, tiny_dataset):
        backend = get_backend("process", timeout=30.0)
        engine = self.shared_engines(tiny_dataset, backend)
        try:
            engine(3).train_epoch()
            pool = backend.pool
            pids = pool.worker_pids()
            assert (pool.launches, pool.parked) == (1, 0)
            stats = engine(1).train_epoch()
            assert pool.launches == 1  # no second fork
            assert pool.parked == 2
            assert pool.worker_pids() == pids  # everyone still alive
            # the diagnostics surface through the epoch stats
            assert stats.pool_parked == 2 and stats.pool_launches == 1
        finally:
            backend.shutdown()

    def test_grow_back_within_forked_count_unparks(self, tiny_dataset):
        backend = get_backend("process", timeout=30.0)
        engine = self.shared_engines(tiny_dataset, backend)
        try:
            engine(3).train_epoch()
            pids = backend.pool.worker_pids()
            engine(1).train_epoch()
            engine(2).train_epoch()
            pool = backend.pool
            assert pool.launches == 1
            assert pool.parked == 1
            assert pool.worker_pids() == pids
        finally:
            backend.shutdown()

    def test_grow_beyond_forked_count_relaunches(self, tiny_dataset):
        backend = get_backend("process", timeout=30.0)
        engine = self.shared_engines(tiny_dataset, backend)
        try:
            engine(2).train_epoch()
            engine(3).train_epoch()
            pool = backend.pool
            assert pool.launches == 2
            assert len(pool.worker_pids()) == 3
            assert pool.parked == 0
        finally:
            backend.shutdown()

    def test_parked_pool_numerics_match_fresh_pools(self, tiny_dataset):
        """A shrink served by parked workers must be bit-identical to
        tearing down and re-forking at the smaller n."""

        def run(fresh_each: bool):
            backend = get_backend("process", timeout=30.0)
            engine = self.shared_engines(tiny_dataset, backend)
            losses = []
            try:
                for i, n in enumerate([2, 1, 2]):
                    e = engine(n)
                    e._epoch = i  # continue the shuffle sequence
                    losses.append(e.train_epoch().mean_loss)
                    if fresh_each:
                        backend.shutdown()
            finally:
                backend.shutdown()
            return losses

        assert run(fresh_each=False) == run(fresh_each=True)

    def test_single_world_resizes_across_sizes(self, tiny_dataset):
        """One world serves every active size: a shrink re-counts the
        shared resizable barrier in place instead of swapping to a
        pre-created per-size sibling world."""
        backend = get_backend("process", timeout=30.0)
        engine = self.shared_engines(tiny_dataset, backend)
        try:
            engine(3).train_epoch()
            world = backend.pool.world
            assert world.world_size == 3
            assert world.max_world_size == 3
            name = world._shm.name
            engine(1).train_epoch()
            # same world object, same segment — only the size changed
            assert backend.pool.world is world
            assert world._shm.name == name
            assert world.world_size == 1
            assert world._barrier.parties == 1
            engine(2).train_epoch()
            assert backend.pool.world is world
            assert world.world_size == 2
            assert world._barrier.parties == 2
        finally:
            backend.shutdown()

    @needs_dev_shm
    def test_resize_leaks_nothing(self, tiny_dataset):
        before = shm_segments()
        backend = get_backend("process", timeout=30.0)
        engine = self.shared_engines(tiny_dataset, backend)
        try:
            engine(3).train_epoch()
            engine(1).train_epoch()
        finally:
            backend.shutdown()
        assert shm_segments() == before


class TestTrainFnPersistence:
    def test_tuner_relaunches_share_pool(self, tiny_dataset):
        sampler, model = make_task(
            "neighbor-sage", tiny_dataset.layer_dims(2), seed=0, fanouts=[5, 5]
        )
        train = make_train_fn(tiny_dataset, sampler, model, global_batch_size=64, seed=0)
        try:
            cfg = RuntimeConfig(num_processes=2, sampling_cores=1, training_cores=1,
                                backend="process")
            train(config=cfg, epochs=1)
            pool = train.backends["process"].pool
            pids = pool.worker_pids()
            # a tuner re-launch with the same n must reuse the forked
            # workers: no second fork, identical pids
            train(config=cfg, epochs=1)
            assert train.backends["process"].pool is pool
            assert pool.worker_pids() == pids
            assert pool.launches == 1
        finally:
            train.close()

    @needs_dev_shm
    def test_close_releases_everything(self, tiny_dataset):
        before = shm_segments()
        sampler, model = make_task(
            "neighbor-sage", tiny_dataset.layer_dims(2), seed=0, fanouts=[5, 5]
        )
        train = make_train_fn(tiny_dataset, sampler, model, global_batch_size=64, seed=0)
        cfg = RuntimeConfig(num_processes=2, sampling_cores=1, training_cores=1,
                            backend="process")
        train(config=cfg, epochs=2)
        assert shm_segments() != before
        train.close()
        assert shm_segments() == before

    def test_losses_progress_across_relaunches(self, tiny_dataset):
        """The persistent pool must not reset learning between calls."""
        sampler, model = make_task(
            "neighbor-sage", tiny_dataset.layer_dims(2), seed=0, fanouts=[5, 5]
        )
        train = make_train_fn(tiny_dataset, sampler, model, global_batch_size=128, seed=0)
        try:
            cfg = RuntimeConfig(num_processes=2, sampling_cores=1, training_cores=1,
                                backend="process")
            w_before = {k: v.copy() for k, v in model.state_dict().items()}
            train(config=cfg, epochs=2)
            w_mid = {k: v.copy() for k, v in model.state_dict().items()}
            train(config=cfg, epochs=2)
            w_after = model.state_dict()
            assert any(not np.array_equal(w_before[k], w_mid[k]) for k in w_before)
            assert any(not np.array_equal(w_mid[k], w_after[k]) for k in w_mid)
        finally:
            train.close()

    def test_warm_pool_matches_cold_pool_numerics(self, tiny_dataset):
        """Pool reuse across tuner re-launches must not change numerics:
        two calls over one warm pool give bit-identical weights to two
        calls that each fork a cold pool."""

        def run(close_between: bool):
            sampler, model = make_task(
                "neighbor-sage", tiny_dataset.layer_dims(2), seed=0, fanouts=[5, 5]
            )
            train = make_train_fn(
                tiny_dataset, sampler, model, global_batch_size=64, seed=0
            )
            try:
                cfg = RuntimeConfig(num_processes=2, sampling_cores=1,
                                    training_cores=1, backend="process")
                train(config=cfg, epochs=1)
                if close_between:
                    train.close()  # next call forks a fresh pool
                train(config=cfg, epochs=1)
                return {k: v.copy() for k, v in model.state_dict().items()}
            finally:
                train.close()

        warm = run(close_between=False)
        cold = run(close_between=True)
        for k in warm:
            np.testing.assert_array_equal(warm[k], cold[k])
