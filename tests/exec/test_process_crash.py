"""Process backend under worker failure: no leaks, no zombies.

Crash-injection tests for the shutdown contract: when a rank process
raises mid-epoch, the backend must (1) surface the root error, (2) reap
every child, and (3) unlink *all* shared-memory segments — the
cross-epoch graph store included — so no exception path leaks kernel
resources.
"""

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.core.engine import MultiProcessEngine
from repro.gnn.models import make_task
from repro.sampling.neighbor import NeighborSampler

has_dev_shm = os.path.isdir("/dev/shm")
needs_dev_shm = pytest.mark.skipif(not has_dev_shm, reason="no /dev/shm to inspect")


def shm_segments() -> frozenset:
    return frozenset(n for n in os.listdir("/dev/shm") if n.startswith("psm_"))


class ExplodingSampler(NeighborSampler):
    """Picklable sampler that detonates partway through the epoch."""

    def __init__(self, fanouts, *, fail_at: int = 1):
        super().__init__(fanouts)
        self.fail_at = fail_at
        self.calls = 0

    def sample(self, graph, seeds, *, rng=None):
        # each worker process holds its own copy, so `calls` counts that
        # rank's steps — the crash happens mid-epoch, not at step 0
        if self.calls >= self.fail_at:
            raise RuntimeError("injected mid-epoch crash")
        self.calls += 1
        return super().sample(graph, seeds, rng=rng)


def crashing_engine(ds, **kw):
    _, model = make_task("neighbor-sage", ds.layer_dims(2), seed=7, fanouts=[5, 5])
    return MultiProcessEngine(
        ds,
        ExplodingSampler([5, 5], fail_at=kw.pop("fail_at", 1)),
        model,
        num_processes=2,
        # small global batch -> several steps per epoch, so fail_at=1
        # really does detonate mid-epoch, after healthy collectives ran
        global_batch_size=16,
        backend="process",
        backend_options={"timeout": 30.0},
        seed=0,
        **kw,
    )


class TestCrashInjection:
    def test_worker_error_is_surfaced(self, tiny_dataset):
        engine = crashing_engine(tiny_dataset)
        with pytest.raises(RuntimeError, match="injected mid-epoch crash"):
            engine.train_epoch()

    @needs_dev_shm
    def test_no_segment_leak_on_worker_crash(self, tiny_dataset):
        before = shm_segments()
        engine = crashing_engine(tiny_dataset)
        with pytest.raises(RuntimeError):
            engine.train_epoch()
        # the failed epoch must have reaped children and unlinked every
        # segment — graph store *and* collective world — without waiting
        # for engine.shutdown()
        assert shm_segments() == before
        assert engine._backend._store is None

    @needs_dev_shm
    def test_no_segment_leak_with_prefetch(self, tiny_dataset):
        before = shm_segments()
        engine = crashing_engine(
            tiny_dataset, prefetch=True, sampler_workers=2, queue_depth=2
        )
        with pytest.raises(RuntimeError):
            engine.train_epoch()
        assert shm_segments() == before

    def test_children_reaped_after_crash(self, tiny_dataset):
        engine = crashing_engine(tiny_dataset)
        with pytest.raises(RuntimeError):
            engine.train_epoch()
        # join any transient mp helpers, then assert no rank worker lives
        for p in mp.active_children():
            p.join(5.0)
        assert not [p for p in mp.active_children() if p.is_alive()]

    def test_shutdown_idempotent_after_crash(self, tiny_dataset):
        engine = crashing_engine(tiny_dataset)
        with pytest.raises(RuntimeError):
            engine.train_epoch()
        engine.shutdown()
        engine.shutdown()

    def test_engine_recovers_with_fresh_sampler(self, tiny_dataset):
        """After a failed epoch the engine still trains (store re-created)."""
        engine = crashing_engine(tiny_dataset)
        with pytest.raises(RuntimeError):
            engine.train_epoch()
        engine.sampler = NeighborSampler([5, 5])
        stats = engine.train_epoch()
        assert np.isfinite(stats.mean_loss)
        engine.shutdown()
