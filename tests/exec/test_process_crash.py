"""Process backend under worker failure: no leaks, no zombies.

Crash-injection tests for the shutdown contract, in both execution modes
(persistent worker pool and per-epoch respawn): when a rank process
raises — or is killed outright — mid-epoch, the backend must (1) surface
a clear root error, (2) reap every child, pool included, and (3) unlink
*all* shared-memory segments (graph store, collective world, param
store) so no exception path leaks kernel resources.
"""

import multiprocessing as mp
import os
import threading
import time

import numpy as np
import pytest

from repro.core.engine import MultiProcessEngine
from repro.gnn.models import make_task
from repro.sampling.neighbor import NeighborSampler

has_dev_shm = os.path.isdir("/dev/shm")
needs_dev_shm = pytest.mark.skipif(not has_dev_shm, reason="no /dev/shm to inspect")

BOTH_MODES = pytest.mark.parametrize("persistent", [True, False], ids=["pool", "respawn"])


def shm_segments() -> frozenset:
    return frozenset(n for n in os.listdir("/dev/shm") if n.startswith("psm_"))


class ExplodingSampler(NeighborSampler):
    """Picklable sampler that detonates partway through the epoch."""

    def __init__(self, fanouts, *, fail_at: int = 1):
        super().__init__(fanouts)
        self.fail_at = fail_at
        self.calls = 0

    def sample(self, graph, seeds, *, rng=None):
        # each worker process holds its own copy, so `calls` counts that
        # rank's steps — the crash happens mid-epoch, not at step 0
        if self.calls >= self.fail_at:
            raise RuntimeError("injected mid-epoch crash")
        self.calls += 1
        return super().sample(graph, seeds, rng=rng)


class SlowSampler(NeighborSampler):
    """Picklable sampler that naps per call — stretches the epoch so the
    parent can kill a worker mid-flight."""

    def __init__(self, fanouts, *, nap: float = 0.2):
        super().__init__(fanouts)
        self.nap = nap

    def sample(self, graph, seeds, *, rng=None):
        time.sleep(self.nap)
        return super().sample(graph, seeds, rng=rng)


def crashing_engine(ds, *, persistent=True, sampler=None, **kw):
    _, model = make_task("neighbor-sage", ds.layer_dims(2), seed=7, fanouts=[5, 5])
    if sampler is None:
        sampler = ExplodingSampler([5, 5], fail_at=kw.pop("fail_at", 1))
    return MultiProcessEngine(
        ds,
        sampler,
        model,
        num_processes=2,
        # small global batch -> several steps per epoch, so fail_at=1
        # really does detonate mid-epoch, after healthy collectives ran
        global_batch_size=16,
        backend="process",
        backend_options={"timeout": 30.0},
        seed=0,
        persistent=persistent,
        **kw,
    )


class TestCrashInjection:
    @BOTH_MODES
    def test_worker_error_is_surfaced(self, tiny_dataset, persistent):
        engine = crashing_engine(tiny_dataset, persistent=persistent)
        with pytest.raises(RuntimeError, match="injected mid-epoch crash"):
            engine.train_epoch()

    @needs_dev_shm
    @BOTH_MODES
    def test_no_segment_leak_on_worker_crash(self, tiny_dataset, persistent):
        before = shm_segments()
        engine = crashing_engine(tiny_dataset, persistent=persistent)
        with pytest.raises(RuntimeError):
            engine.train_epoch()
        # the failed epoch must have reaped children and unlinked every
        # segment — graph store, collective world *and* the persistent
        # pool's param store — without waiting for engine.shutdown()
        assert shm_segments() == before
        assert engine._backend._store is None
        assert engine._backend.pool is None

    @needs_dev_shm
    @BOTH_MODES
    def test_no_segment_leak_with_prefetch(self, tiny_dataset, persistent):
        before = shm_segments()
        engine = crashing_engine(
            tiny_dataset, persistent=persistent, prefetch=True,
            sampler_workers=2, queue_depth=2,
        )
        with pytest.raises(RuntimeError):
            engine.train_epoch()
        assert shm_segments() == before

    @BOTH_MODES
    def test_children_reaped_after_crash(self, tiny_dataset, persistent):
        engine = crashing_engine(tiny_dataset, persistent=persistent)
        with pytest.raises(RuntimeError):
            engine.train_epoch()
        # join any transient mp helpers, then assert no rank worker lives
        for p in mp.active_children():
            p.join(5.0)
        assert not [p for p in mp.active_children() if p.is_alive()]

    @BOTH_MODES
    def test_shutdown_idempotent_after_crash(self, tiny_dataset, persistent):
        engine = crashing_engine(tiny_dataset, persistent=persistent)
        with pytest.raises(RuntimeError):
            engine.train_epoch()
        engine.shutdown()
        engine.shutdown()

    @BOTH_MODES
    def test_engine_recovers_with_fresh_sampler(self, tiny_dataset, persistent):
        """After a failed epoch the engine still trains (store and pool
        re-created on demand)."""
        engine = crashing_engine(tiny_dataset, persistent=persistent)
        with pytest.raises(RuntimeError):
            engine.train_epoch()
        engine.sampler = NeighborSampler([5, 5])
        stats = engine.train_epoch()
        assert np.isfinite(stats.mean_loss)
        engine.shutdown()


class TestKilledWorker:
    """A rank worker killed outright (SIGKILL) mid-epoch: the pool is
    reaped, all segments unlinked, and the error names the dead child."""

    def _kill_one_mid_epoch(self, engine):
        """Run one epoch in a thread; SIGKILL a pool worker once it's up."""
        errors: list[BaseException] = []

        def run():
            try:
                engine.train_epoch()
            except BaseException as exc:
                errors.append(exc)

        t = threading.Thread(target=run)
        t.start()
        deadline = time.monotonic() + 10.0
        victim = None
        while time.monotonic() < deadline and victim is None:
            pool = engine._backend.pool
            if pool is not None and pool.procs:
                victim = pool.procs[0]
            else:
                time.sleep(0.01)
        assert victim is not None, "pool never launched"
        # wait until the epoch is actually in flight, then kill
        time.sleep(0.3)
        victim.kill()
        t.join(60.0)
        assert not t.is_alive(), "epoch did not fail after worker kill"
        return errors

    def test_killed_worker_raises_clear_error(self, tiny_dataset):
        engine = crashing_engine(
            tiny_dataset, sampler=SlowSampler([5, 5], nap=0.25)
        )
        errors = self._kill_one_mid_epoch(engine)
        assert errors, "killed worker produced no error"
        assert "died" in str(errors[0]) or "collective broken" in str(errors[0])
        engine.shutdown()

    @needs_dev_shm
    def test_killed_worker_leaks_nothing(self, tiny_dataset):
        before = shm_segments()
        engine = crashing_engine(
            tiny_dataset, sampler=SlowSampler([5, 5], nap=0.25)
        )
        errors = self._kill_one_mid_epoch(engine)
        assert errors
        assert shm_segments() == before
        assert engine._backend.pool is None
        # and the engine recovers on the next epoch
        engine.sampler = NeighborSampler([5, 5])
        stats = engine.train_epoch()
        assert np.isfinite(stats.mean_loss)
        engine.shutdown()
        assert shm_segments() == before
