"""ProcessWorld / ProcessCommunicator collectives across real processes."""

import multiprocessing as mp

import numpy as np
import pytest

from repro.distributed.comm import ProcessWorld


def _run_ranks(world, target, world_size, extra=()):
    """Spawn one process per rank running ``target(comm, rank, q, *extra)``."""
    ctx = mp.get_context()
    q = ctx.SimpleQueue()
    procs = [
        ctx.Process(target=target, args=(world, r, q) + tuple(extra))
        for r in range(world_size)
    ]
    for p in procs:
        p.start()
    results = [q.get() for _ in range(world_size)]
    for p in procs:
        p.join()
    assert all(p.exitcode == 0 for p in procs)
    return dict(results)


def _allreduce_worker(world, rank, q):
    comm = world.communicator(rank)
    a = np.full((3,), float(rank + 1), dtype=np.float32)
    b = np.full((2, 2), float(10 * (rank + 1)), dtype=np.float64)
    out = comm.allreduce_mean([a, b])
    # run a second round to prove the accumulator resets cleanly
    out2 = comm.allreduce_mean([np.full((3,), float(rank), dtype=np.float32)])
    q.put((rank, (out[0].tolist(), out[1].tolist(), out2[0].tolist(),
                  str(out[0].dtype), tuple(out[1].shape))))


def _broadcast_worker(world, rank, q):
    comm = world.communicator(rank)
    payload = (
        [np.arange(4, dtype=np.float32), np.eye(2, dtype=np.float64)]
        if rank == 1
        else [np.zeros(4, dtype=np.float32), np.zeros((2, 2), dtype=np.float64)]
    )
    out = comm.broadcast(payload, root=1)
    q.put((rank, (out[0].tolist(), out[1].tolist())))


def _gather_worker(world, rank, q):
    comm = world.communicator(rank)
    out = comm.gather({"rank": rank, "losses": [0.1 * rank]}, root=0)
    comm.barrier()
    q.put((rank, None if out is None else [d["rank"] for d in out]))


class TestAllreduce:
    def test_mean_across_process_ranks(self):
        n = 3
        with ProcessWorld(n, capacity=16) as world:
            res = _run_ranks(world, _allreduce_worker, n)
        for rank in range(n):
            vec, mat, vec2, dtype, shape = res[rank]
            np.testing.assert_allclose(vec, [2.0] * 3)  # mean(1, 2, 3)
            np.testing.assert_allclose(mat, [[20.0, 20.0], [20.0, 20.0]])
            np.testing.assert_allclose(vec2, [1.0] * 3)  # mean(0, 1, 2)
            assert dtype == "float32" and shape == (2, 2)

    def test_capacity_enforced(self):
        with ProcessWorld(1, capacity=4) as world:
            comm = world.communicator(0)
            with pytest.raises(ValueError, match="capacity"):
                comm.allreduce_mean([np.zeros(5)])

    def test_world_size_one_is_identity(self):
        with ProcessWorld(1, capacity=8) as world:
            comm = world.communicator(0)
            out = comm.allreduce_mean([np.array([1.5, -2.0], dtype=np.float32)])
            np.testing.assert_allclose(out[0], [1.5, -2.0])


class TestBroadcast:
    def test_all_ranks_receive_root_payload(self):
        n = 2
        with ProcessWorld(n, capacity=16) as world:
            res = _run_ranks(world, _broadcast_worker, n)
        for rank in range(n):
            vec, mat = res[rank]
            np.testing.assert_allclose(vec, [0.0, 1.0, 2.0, 3.0])
            np.testing.assert_allclose(mat, [[1.0, 0.0], [0.0, 1.0]])


class TestGatherAndBarrier:
    def test_root_collects_in_rank_order(self):
        n = 3
        with ProcessWorld(n, capacity=4) as world:
            res = _run_ranks(world, _gather_worker, n)
        assert res[0] == [0, 1, 2]
        assert res[1] is None and res[2] is None

    def test_gather_payload_size_enforced(self):
        with ProcessWorld(1, capacity=4, slot_bytes=64) as world:
            comm = world.communicator(0)
            with pytest.raises(ValueError, match="slot"):
                comm.gather(b"x" * 1024)


class TestWorldLifecycle:
    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ProcessWorld(0, capacity=4)
        with pytest.raises(ValueError):
            ProcessWorld(1, capacity=0)

    def test_rank_range_checked(self):
        with ProcessWorld(2, capacity=4) as world:
            with pytest.raises(ValueError, match="rank"):
                world.communicator(2)

    def test_unlink_frees_segment(self):
        import os

        world = ProcessWorld(1, capacity=4)
        name = world._shm.name
        world.unlink()
        if os.path.isdir("/dev/shm"):
            assert not os.path.exists(f"/dev/shm/{name}")

    def test_broken_barrier_raises_runtime_error(self):
        world = ProcessWorld(2, capacity=4, timeout=0.2)
        try:
            comm = world.communicator(0)
            # no peer ever arrives: the wait must time out, not hang
            with pytest.raises(RuntimeError, match="collective broken"):
                comm.barrier()
        finally:
            world.unlink()
