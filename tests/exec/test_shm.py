"""Shared-memory graph store: lifecycle, zero-copy semantics, no leaks."""

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.shm import SharedArraySpec, SharedGraphStore


def _segment_names(store):
    return [spec.shm_name for spec in store.spec.values()]


def _segment_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


has_dev_shm = os.path.isdir("/dev/shm")
needs_dev_shm = pytest.mark.skipif(not has_dev_shm, reason="no /dev/shm to inspect")


class TestLifecycle:
    def test_create_and_unlink(self, tiny_dataset):
        store = SharedGraphStore.from_dataset(tiny_dataset)
        names = _segment_names(store)
        assert set(store.spec) == set(SharedGraphStore.KEYS)
        store.unlink()
        assert store.closed
        if has_dev_shm:
            assert not any(_segment_exists(n) for n in names)

    @needs_dev_shm
    def test_segments_exist_while_open(self, tiny_dataset):
        with SharedGraphStore.from_dataset(tiny_dataset) as store:
            assert all(_segment_exists(n) for n in _segment_names(store))
        assert store.closed

    def test_context_manager_unlinks(self, tiny_dataset):
        with SharedGraphStore.from_dataset(tiny_dataset) as store:
            names = _segment_names(store)
        if has_dev_shm:
            assert not any(_segment_exists(n) for n in names)

    def test_attach_cannot_unlink(self, tiny_dataset):
        store = SharedGraphStore.from_dataset(tiny_dataset)
        try:
            attached = SharedGraphStore.attach(store.spec)
            with pytest.raises(RuntimeError, match="creating store"):
                attached.unlink()
            attached.close()
        finally:
            store.unlink()

    def test_close_is_idempotent(self, tiny_dataset):
        store = SharedGraphStore.from_dataset(tiny_dataset)
        store.unlink()
        store.close()
        store.close()

    def test_access_after_close_raises(self, tiny_dataset):
        store = SharedGraphStore.from_dataset(tiny_dataset)
        store.unlink()
        with pytest.raises(ValueError, match="closed"):
            store.features

    def test_unlink_is_idempotent(self, tiny_dataset):
        store = SharedGraphStore.from_dataset(tiny_dataset)
        names = _segment_names(store)
        store.unlink()
        store.unlink()  # double-call is a no-op, not an error
        if has_dev_shm:
            assert not any(_segment_exists(n) for n in names)

    def test_unlink_after_close_still_frees(self, tiny_dataset):
        store = SharedGraphStore.from_dataset(tiny_dataset)
        names = _segment_names(store)
        store.close()
        store.unlink()
        if has_dev_shm:
            assert not any(_segment_exists(n) for n in names)

    def test_gc_after_unlink_is_safe(self, tiny_dataset):
        store = SharedGraphStore.from_dataset(tiny_dataset)
        store.unlink()
        store.__del__()  # GC safety net must tolerate a dead store
        del store


@needs_dev_shm
class TestNoLeakAfterEngineShutdown:
    """No /dev/shm segment may survive engine shutdown, in any mode."""

    @pytest.mark.parametrize("persistent", [True, False], ids=["pool", "respawn"])
    @pytest.mark.parametrize("prefetch", [False, True], ids=["sync", "prefetch"])
    def test_engine_shutdown_leaves_no_segments(self, tiny_dataset, persistent, prefetch):
        from repro.core.engine import MultiProcessEngine
        from repro.gnn.models import make_task

        before = frozenset(os.listdir("/dev/shm"))
        sampler, model = make_task(
            "neighbor-sage", tiny_dataset.layer_dims(2), seed=0, fanouts=[5, 5]
        )
        with MultiProcessEngine(
            tiny_dataset, sampler, model, num_processes=2, global_batch_size=64,
            backend="process", seed=0, persistent=persistent,
            prefetch=prefetch, sampler_workers=2,
        ) as eng:
            eng.train(2)
        assert frozenset(os.listdir("/dev/shm")) == before


class TestContent:
    def test_roundtrip_equality(self, tiny_dataset):
        with SharedGraphStore.from_dataset(tiny_dataset) as store:
            assert store.graph == tiny_dataset.graph
            np.testing.assert_array_equal(store.features, tiny_dataset.features)
            np.testing.assert_array_equal(store.labels, tiny_dataset.labels)

    def test_views_are_read_only(self, tiny_dataset):
        with SharedGraphStore.from_dataset(tiny_dataset) as store:
            for key in SharedGraphStore.KEYS:
                assert not store.array(key).flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                store.features[0, 0] = 1.0

    def test_attached_store_sees_same_data(self, tiny_dataset):
        with SharedGraphStore.from_dataset(tiny_dataset) as store:
            attached = SharedGraphStore.attach(store.spec)
            try:
                assert attached.graph == tiny_dataset.graph
                np.testing.assert_array_equal(attached.features, tiny_dataset.features)
            finally:
                attached.close()

    def test_spec_is_picklable_descriptor(self, tiny_dataset):
        import pickle

        with SharedGraphStore.from_dataset(tiny_dataset) as store:
            spec = pickle.loads(pickle.dumps(store.spec))
            assert spec == store.spec
            assert all(isinstance(v, SharedArraySpec) for v in spec.values())

    def test_total_bytes_accounts_all_arrays(self, tiny_dataset):
        with SharedGraphStore.from_dataset(tiny_dataset) as store:
            expected = (
                tiny_dataset.graph.indptr.nbytes
                + tiny_dataset.graph.indices.nbytes
                + tiny_dataset.features.nbytes
                + tiny_dataset.labels.nbytes
            )
            assert store.total_bytes == expected


def _child_reads(spec, expected_sum, q):
    store = SharedGraphStore.attach(spec)
    try:
        q.put(float(store.features.sum()) == expected_sum and store.graph.num_edges >= 0)
    finally:
        store.close()


class TestCrossProcess:
    def test_worker_process_attaches_zero_copy(self, tiny_dataset):
        ctx = mp.get_context()
        with SharedGraphStore.from_dataset(tiny_dataset) as store:
            q = ctx.SimpleQueue()
            p = ctx.Process(
                target=_child_reads,
                args=(store.spec, float(tiny_dataset.features.sum()), q),
            )
            p.start()
            ok = q.get()
            p.join()
            assert ok and p.exitcode == 0

    @needs_dev_shm
    def test_worker_exit_does_not_reap_segments(self, tiny_dataset):
        ctx = mp.get_context()
        store = SharedGraphStore.from_dataset(tiny_dataset)
        try:
            q = ctx.SimpleQueue()
            p = ctx.Process(
                target=_child_reads,
                args=(store.spec, float(tiny_dataset.features.sum()), q),
            )
            p.start()
            q.get()
            p.join()
            # parent's segments must survive the worker's exit
            assert all(_segment_exists(n) for n in _segment_names(store))
            np.testing.assert_array_equal(store.labels, tiny_dataset.labels)
        finally:
            store.unlink()


class TestTrustedCSR:
    def test_from_trusted_parts_is_zero_copy(self, tiny_dataset):
        g = tiny_dataset.graph
        g2 = CSRGraph.from_trusted_parts(g.indptr, g.indices)
        assert g2.indptr is g.indptr
        assert g2.indices is g.indices
        assert g2.num_nodes == g.num_nodes
        assert g2 == g
