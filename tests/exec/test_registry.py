"""Execution-backend registry and engine wiring."""

import numpy as np
import pytest

from repro.core.engine import MultiProcessEngine
from repro.exec import (
    EpochResult,
    ExecutionBackend,
    InlineBackend,
    ProcessBackend,
    ThreadBackend,
    available_backends,
    get_backend,
    rank_chunk,
    register_backend,
)
from repro.exec.base import _REGISTRY
from repro.gnn.models import make_task


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(available_backends()) >= {"inline", "thread", "process"}

    def test_get_backend_instantiates(self):
        assert isinstance(get_backend("inline"), InlineBackend)
        assert isinstance(get_backend("thread"), ThreadBackend)
        assert isinstance(get_backend("process"), ProcessBackend)

    def test_get_backend_case_insensitive(self):
        assert isinstance(get_backend("INLINE"), InlineBackend)

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="backend must be one of"):
            get_backend("mpi")

    def test_options_forwarded(self):
        backend = get_backend("process", timeout=7.5)
        assert backend.timeout == 7.5

    def test_name_attribute_set_by_decorator(self):
        assert InlineBackend.name == "inline"
        assert ThreadBackend.name == "thread"
        assert ProcessBackend.name == "process"

    def test_register_rejects_non_backend(self):
        with pytest.raises(TypeError):
            register_backend("bogus")(object)
        assert "bogus" not in available_backends()

    def test_custom_backend_registration(self):
        @register_backend("test-noop")
        class NoopBackend(ExecutionBackend):
            def run_epoch(self, engine, epoch, plan):
                return EpochResult(losses=[1.0], sampled_edges=0)

        try:
            assert "test-noop" in available_backends()
            assert isinstance(get_backend("test-noop"), NoopBackend)
        finally:
            _REGISTRY.pop("test-noop", None)

    def test_shutdown_default_is_noop(self):
        get_backend("inline").shutdown()  # must not raise


class TestRankChunk:
    def test_chunks_cover_batch_in_order(self):
        batch = np.arange(10)
        parts = [rank_chunk(batch, 3, r) for r in range(3)]
        np.testing.assert_array_equal(np.concatenate(parts), batch)

    def test_matches_array_split(self):
        batch = np.arange(7)
        for r in range(4):
            np.testing.assert_array_equal(
                rank_chunk(batch, 4, r), np.array_split(batch, 4)[r]
            )


class TestEngineWiring:
    def test_engine_resolves_backend_by_name(self, tiny_dataset):
        sampler, model = make_task(
            "neighbor-sage", tiny_dataset.layer_dims(2), seed=0, fanouts=[5, 5]
        )
        eng = MultiProcessEngine(
            tiny_dataset, sampler, model, num_processes=2, global_batch_size=64,
            backend="thread",
        )
        assert eng.backend == "thread"
        assert isinstance(eng._backend, ThreadBackend)

    def test_engine_rejects_short_bindings(self, tiny_dataset):
        sampler, model = make_task(
            "neighbor-sage", tiny_dataset.layer_dims(2), seed=0, fanouts=[5, 5]
        )
        with pytest.raises(ValueError, match="bindings"):
            MultiProcessEngine(
                tiny_dataset, sampler, model, num_processes=2, global_batch_size=64,
                bindings=[None],
            )
