"""Shared-memory arena layer: ParamStore, BatchArena, flatten helpers."""

import os
import pickle

import numpy as np
import pytest

from repro.shm.arena import (
    BatchArena,
    ParamStore,
    ShmArena,
    flatten_arrays,
    unflatten_arrays,
)

has_dev_shm = os.path.isdir("/dev/shm")
needs_dev_shm = pytest.mark.skipif(not has_dev_shm, reason="no /dev/shm to inspect")


def _exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


class TestFlatten:
    def test_roundtrip_nested(self):
        obj = {
            "model": {"w": np.arange(6.0).reshape(2, 3), "b": np.zeros(3)},
            "optimizer": {"m": [np.ones(2), np.full(3, 2.0)], "t": 7},
            "name": "adam",
        }
        skeleton, arrays = flatten_arrays(obj)
        assert len(arrays) == 4
        back = unflatten_arrays(skeleton, arrays)
        assert back["optimizer"]["t"] == 7
        assert back["name"] == "adam"
        np.testing.assert_array_equal(back["model"]["w"], obj["model"]["w"])
        np.testing.assert_array_equal(back["optimizer"]["m"][1], obj["optimizer"]["m"][1])

    def test_skeleton_carries_no_arrays(self):
        skeleton, _ = flatten_arrays({"a": np.zeros(1000)})
        assert len(pickle.dumps(skeleton)) < 200

    def test_preserves_tuple_vs_list(self):
        skeleton, arrays = flatten_arrays((np.zeros(1), [np.ones(1)]))
        back = unflatten_arrays(skeleton, arrays)
        assert isinstance(back, tuple)
        assert isinstance(back[1], list)


def _template():
    return {
        "model": {"w": np.arange(12.0).reshape(3, 4), "b": np.zeros(4, dtype=np.float32)},
        "optimizer": {"m": [np.zeros((3, 4))], "v": [np.zeros((3, 4))], "t": 0},
    }


class TestParamStore:
    def test_publish_load_roundtrip(self):
        with ParamStore.create(_template()) as store:
            state = _template()
            state["model"]["w"] += 5.0
            state["optimizer"]["t"] = 3
            store.publish(state)
            out = store.load()
        np.testing.assert_array_equal(out["model"]["w"], state["model"]["w"])
        assert out["model"]["b"].dtype == np.float32
        assert out["optimizer"]["t"] == 3

    def test_attach_sees_published_state(self):
        with ParamStore.create(_template()) as store:
            state = _template()
            state["optimizer"]["t"] = 11
            store.publish(state)
            attached = ParamStore.attach(store.spec)
            try:
                assert attached.load()["optimizer"]["t"] == 11
                # the worker direction: attached publish, owner load
                state["optimizer"]["t"] = 12
                attached.publish(state)
                assert store.load()["optimizer"]["t"] == 12
            finally:
                attached.close()

    def test_layout_mismatch_rejected(self):
        with ParamStore.create(_template()) as store:
            bad = _template()
            bad["model"]["w"] = np.zeros((4, 4))  # wrong shape
            with pytest.raises(ValueError, match="does not match frozen"):
                store.publish(bad)
            worse = {"model": {"w": np.zeros(1)}}  # wrong arity
            with pytest.raises(ValueError, match="topology changed"):
                store.publish(worse)

    def test_attached_cannot_unlink(self):
        with ParamStore.create(_template()) as store:
            attached = ParamStore.attach(store.spec)
            with pytest.raises(RuntimeError):
                attached.unlink()
            attached.close()

    @needs_dev_shm
    def test_unlink_idempotent_and_frees_segment(self):
        store = ParamStore.create(_template())
        name = store.spec["shm_name"]
        assert _exists(name)
        store.unlink()
        store.unlink()  # double unlink is a no-op
        store.close()  # close after unlink too
        assert not _exists(name)


class TestBatchArena:
    def test_write_read_roundtrip(self):
        with BatchArena.create(num_slots=2, slot_bytes=1 << 12) as arena:
            arrays = [np.arange(10, dtype=np.int64), np.ones((3, 2), dtype=np.float32)]
            layouts = arena.write(1, arrays)
            assert layouts is not None
            out = arena.read(1, layouts)
        np.testing.assert_array_equal(out[0], arrays[0])
        np.testing.assert_array_equal(out[1], arrays[1])
        assert out[1].dtype == np.float32

    def test_oversized_bundle_reports_none(self):
        with BatchArena.create(num_slots=1, slot_bytes=64) as arena:
            assert arena.write(0, [np.zeros(1000)]) is None

    def test_slots_are_independent(self):
        with BatchArena.create(num_slots=2, slot_bytes=256) as arena:
            l0 = arena.write(0, [np.zeros(4)])
            l1 = arena.write(1, [np.ones(4)])
            np.testing.assert_array_equal(arena.read(0, l0)[0], np.zeros(4))
            np.testing.assert_array_equal(arena.read(1, l1)[0], np.ones(4))

    def test_slot_out_of_range(self):
        with BatchArena.create(num_slots=1, slot_bytes=256) as arena:
            with pytest.raises(ValueError, match="out of range"):
                arena.write(3, [np.zeros(1)])

    @needs_dev_shm
    def test_unlink_idempotent(self):
        arena = BatchArena.create(num_slots=1, slot_bytes=256)
        name = arena.spec["shm_name"]
        arena.unlink()
        arena.unlink()
        assert not _exists(name)


class TestShmArenaIdempotency:
    """The lifecycle hardening contract: double-call and GC safety."""

    def test_double_unlink_is_noop(self):
        arena = ShmArena.create({"a": np.arange(4)})
        arena.unlink()
        arena.unlink()

    def test_unlink_after_close_still_frees(self):
        arena = ShmArena.create({"a": np.arange(4)})
        names = [s.shm_name for s in arena.spec.values()]
        arena.close()
        arena.unlink()
        if has_dev_shm:
            assert not any(_exists(n) for n in names)

    def test_gc_after_unlink_is_safe(self):
        arena = ShmArena.create({"a": np.arange(4)})
        arena.unlink()
        arena.__del__()  # the GC safety net must tolerate a dead arena
        del arena
