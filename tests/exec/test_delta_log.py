"""DeltaLog shared-memory transport and the store's live-graph surface.

A ``DeltaLog`` is the wire format of streaming graph updates: each
fragment is one immutable ShmArena published by the parent, attached
lazily (and exactly once) by workers via ``sync``.  The same close/unlink
guarantees as every other arena apply — tests here assert the lifecycle
and that ``SharedGraphStore`` round-trips deltas through its spec.
"""

import os

import numpy as np
import pytest

from repro.graph.delta import DeltaFragment, GraphDelta, LayeredCSR
from repro.graph.shm import SharedGraphStore
from repro.shm.arena import DeltaLog
from repro.utils.rng import derive_rng


def _segment_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


has_dev_shm = os.path.isdir("/dev/shm")


def edge_delta(num_nodes, k=8, seed=0):
    rng = derive_rng(seed, "delta-log-test")
    return GraphDelta(
        src=rng.integers(0, num_nodes, size=k).astype(np.int64),
        dst=rng.integers(0, num_nodes, size=k).astype(np.int64),
    )


def fragment_arrays(num_nodes=32, seed=0):
    frag = DeltaFragment.from_delta(
        edge_delta(num_nodes, seed=seed), num_nodes=num_nodes, feature_dim=3
    )
    return frag.to_arrays()


class TestDeltaLog:
    def test_append_and_read_back(self):
        log = DeltaLog()
        try:
            arrays = fragment_arrays()
            log.append(arrays)
            assert len(log) == 1
            got = log.arrays(0)
            for key, want in arrays.items():
                np.testing.assert_array_equal(got[key], want)
        finally:
            log.unlink()

    def test_sync_attaches_only_new_fragments(self):
        owner = DeltaLog()
        follower = DeltaLog()
        try:
            owner.append(fragment_arrays(seed=0))
            assert follower.sync(owner.specs) == 1
            owner.append(fragment_arrays(seed=1))
            # second sync sees one unseen fragment, not two
            assert follower.sync(owner.specs) == 1
            assert len(follower) == 2
            np.testing.assert_array_equal(
                follower.arrays(1)["indices"], owner.arrays(1)["indices"]
            )
        finally:
            follower.close()
            owner.unlink()

    def test_sync_rejects_shrinking_spec_list(self):
        owner = DeltaLog()
        follower = DeltaLog()
        try:
            owner.append(fragment_arrays(seed=0))
            owner.append(fragment_arrays(seed=1))
            follower.sync(owner.specs)
            with pytest.raises(ValueError, match="shrank"):
                follower.sync(owner.specs[:1])
        finally:
            follower.close()
            owner.unlink()

    @pytest.mark.skipif(not has_dev_shm, reason="no /dev/shm to inspect")
    def test_unlink_frees_every_fragment(self):
        log = DeltaLog()
        log.append(fragment_arrays(seed=0))
        log.append(fragment_arrays(seed=1))
        names = [spec.shm_name for frag in log.specs for spec in frag.values()]
        assert all(_segment_exists(n) for n in names)
        log.unlink()
        assert not any(_segment_exists(n) for n in names)

    def test_attached_close_does_not_free(self):
        owner = DeltaLog()
        follower = DeltaLog()
        try:
            owner.append(fragment_arrays())
            follower.sync(owner.specs)
            follower.unlink()  # attached side: detach only
            if has_dev_shm:
                names = [spec.shm_name for frag in owner.specs for spec in frag.values()]
                assert all(_segment_exists(n) for n in names)
        finally:
            owner.unlink()


class TestStoreDeltas:
    def test_apply_delta_advances_generation(self, tiny_dataset):
        with SharedGraphStore.from_dataset(tiny_dataset) as store:
            assert store.graph_generation == 0
            store.apply_delta(edge_delta(store.graph.num_nodes))
            assert store.graph_generation == 1
            assert isinstance(store.graph, LayeredCSR)
            assert store.graph.generation == 1

    def test_attach_replays_published_deltas(self, tiny_dataset):
        with SharedGraphStore.from_dataset(tiny_dataset) as store:
            store.apply_delta(edge_delta(tiny_dataset.num_nodes, seed=1))
            attached = SharedGraphStore.attach(store.spec)
            try:
                assert attached.graph_generation == 1
                np.testing.assert_array_equal(
                    attached.graph.in_degree(), store.graph.in_degree()
                )
            finally:
                attached.close()

    def test_sync_deltas_catches_up_live_follower(self, tiny_dataset):
        with SharedGraphStore.from_dataset(tiny_dataset) as store:
            attached = SharedGraphStore.attach(store.spec)
            try:
                store.apply_delta(edge_delta(tiny_dataset.num_nodes, seed=2))
                assert attached.graph_generation == 0  # not yet synced
                assert attached.sync_deltas(store.delta_specs) == 1
                assert attached.graph_generation == 1
                np.testing.assert_array_equal(
                    attached.graph.in_degree(), store.graph.in_degree()
                )
            finally:
                attached.close()

    def test_new_nodes_extend_features(self, tiny_dataset):
        with SharedGraphStore.from_dataset(tiny_dataset) as store:
            n = tiny_dataset.num_nodes
            dim = tiny_dataset.features.shape[1]
            rng = derive_rng(7, "delta-log-newnode")
            delta = GraphDelta(
                src=np.array([0, 1], dtype=np.int64),
                dst=np.array([n, n], dtype=np.int64),
                features=rng.standard_normal((1, dim)).astype(
                    tiny_dataset.features.dtype
                ),
                labels=np.zeros(1, dtype=tiny_dataset.labels.dtype),
            )
            store.apply_delta(delta)
            assert store.total_nodes == n + 1
            full = store.full_features()
            assert full.shape == (n + 1, dim)
            np.testing.assert_array_equal(full[:n], store.features)
            assert store.full_labels().shape == (n + 1,)

    @pytest.mark.skipif(not has_dev_shm, reason="no /dev/shm to inspect")
    def test_unlink_frees_delta_segments_too(self, tiny_dataset):
        store = SharedGraphStore.from_dataset(tiny_dataset)
        store.apply_delta(edge_delta(tiny_dataset.num_nodes, seed=3))
        names = [
            spec.shm_name for frag in store.delta_specs for spec in frag.values()
        ]
        assert all(_segment_exists(n) for n in names)
        store.unlink()
        assert not any(_segment_exists(n) for n in names)
