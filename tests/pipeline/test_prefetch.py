"""OrderedPrefetcher: in-order delivery, bounded lookahead, failure paths."""

import threading
import time

import pytest

from repro.pipeline.prefetch import OrderedPrefetcher, rank_step_prefetcher


def jobs_returning(values, delays=None):
    delays = delays or [0.0] * len(values)

    def make(v, d):
        def job():
            if d:
                time.sleep(d)
            return v

        return job

    return [make(v, d) for v, d in zip(values, delays)]


class TestOrdering:
    def test_results_in_submission_order(self):
        with OrderedPrefetcher(jobs_returning(list(range(20))), num_workers=4) as pf:
            assert list(pf) == list(range(20))

    def test_order_survives_adversarial_delays(self):
        # early jobs slow, late jobs instant: out-of-completion-order
        delays = [0.03, 0.02, 0.0, 0.0, 0.01, 0.0]
        with OrderedPrefetcher(
            jobs_returning(list(range(6)), delays), num_workers=4, queue_depth=6
        ) as pf:
            assert list(pf) == list(range(6))

    def test_single_worker(self):
        with OrderedPrefetcher(jobs_returning([3, 1, 2]), num_workers=1) as pf:
            assert list(pf) == [3, 1, 2]

    def test_len(self):
        pf = OrderedPrefetcher(jobs_returning([1, 2]), num_workers=1)
        assert len(pf) == 2
        pf.close()


class TestQueueDepth:
    def test_lookahead_bounded(self):
        """No job may start more than queue_depth ahead of deliveries.

        The consumer-side ``delivered`` counter lags the prefetcher's
        internal take-index by at most the one batch in the consumer's
        hands, so the observable bound is ``delivered + depth`` inclusive.
        """
        depth = 2
        started = []
        delivered = [0]
        lock = threading.Lock()
        violations = []

        def make(i):
            def job():
                with lock:
                    started.append(i)
                    if i > delivered[0] + depth:
                        violations.append(i)
                return i

            return job

        pf = OrderedPrefetcher([make(i) for i in range(12)], num_workers=4, queue_depth=depth)
        out = []
        for v in pf:
            out.append(v)
            with lock:
                delivered[0] += 1
        pf.close()
        assert out == list(range(12))
        assert not violations, violations

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            OrderedPrefetcher([], num_workers=0)
        with pytest.raises(ValueError):
            OrderedPrefetcher([], queue_depth=0)


class TestFailure:
    def test_job_error_raises_at_its_turn(self):
        def boom():
            raise RuntimeError("boom")

        jobs = jobs_returning([0, 1]) + [boom] + jobs_returning([3])
        pf = OrderedPrefetcher(jobs, num_workers=2, queue_depth=4)
        assert next(pf) == 0
        assert next(pf) == 1
        with pytest.raises(RuntimeError, match="boom"):
            next(pf)
        pf.close()

    def test_next_after_close_with_pending_raises(self):
        pf = OrderedPrefetcher(jobs_returning([1], delays=[0.2]), num_workers=1)
        pf.close()
        with pytest.raises((RuntimeError, StopIteration)):
            next(pf)


class TestLifecycle:
    def test_close_idempotent(self):
        pf = OrderedPrefetcher(jobs_returning([1, 2, 3]), num_workers=2)
        pf.close()
        pf.close()

    def test_close_with_unconsumed_jobs(self):
        pf = OrderedPrefetcher(
            jobs_returning(list(range(50)), [0.001] * 50), num_workers=2
        )
        next(pf)
        pf.close()  # must not hang or raise

    def test_worker_init_runs_in_every_worker(self):
        seen = set()
        lock = threading.Lock()

        def init():
            with lock:
                seen.add(threading.current_thread().name)

        barrier = threading.Barrier(2, timeout=5)
        with OrderedPrefetcher(
            [barrier.wait for _ in range(2)],
            num_workers=2,
            queue_depth=2,
            worker_init=init,
        ) as pf:
            list(pf)
        assert len(seen) == 2

    def test_worker_init_failure_is_ignored(self):
        def bad_init():
            raise OSError("no affinity here")

        with OrderedPrefetcher(
            jobs_returning([7]), num_workers=1, worker_init=bad_init
        ) as pf:
            assert list(pf) == [7]

    def test_stats_counted(self):
        with OrderedPrefetcher(
            jobs_returning([1, 2, 3], [0.005] * 3), num_workers=2
        ) as pf:
            list(pf)
            assert pf.stats.batches == 3
            assert pf.stats.busy_time > 0
            assert pf.stats.wait_time >= 0


class TestRankStepPrefetcher:
    def test_matches_synchronous_stream(self, tiny_dataset, neighbor_task):
        import numpy as np

        from repro.exec.base import rank_chunk
        from repro.utils.rng import derive_rng

        sampler, _ = neighbor_task
        rng_plan = np.random.default_rng(0)
        plan = [
            rng_plan.choice(tiny_dataset.train_idx, size=32, replace=False)
            for _ in range(4)
        ]
        for rank in (0, 1):
            sync = []
            for step, gb in enumerate(plan):
                seeds = rank_chunk(gb, 2, rank)
                rng = derive_rng(5, "sample", 0, step, rank)
                sync.append(sampler.sample(tiny_dataset.graph, seeds, rng=rng))
            pf = rank_step_prefetcher(
                sampler,
                tiny_dataset.graph,
                plan,
                world_size=2,
                rank=rank,
                seed=5,
                epoch=0,
                num_workers=2,
                queue_depth=4,
            )
            got = list(pf)
            pf.close()
            assert len(got) == len(sync)
            for a, b in zip(got, sync):
                np.testing.assert_array_equal(a.seeds, b.seeds)
                np.testing.assert_array_equal(a.input_ids, b.input_ids)

    def test_empty_chunk_yields_none(self, tiny_dataset, neighbor_task):
        import numpy as np

        sampler, _ = neighbor_task
        # 1-element global batch over 2 ranks: rank 1's chunk is empty
        plan = [tiny_dataset.train_idx[:1]]
        pf = rank_step_prefetcher(
            sampler,
            tiny_dataset.graph,
            plan,
            world_size=2,
            rank=1,
            seed=0,
            epoch=0,
            num_workers=1,
            queue_depth=1,
        )
        assert list(pf) == [None]
        pf.close()
