"""Pipeline-test fixtures."""

from __future__ import annotations

import os

import pytest


@pytest.fixture
def shm_segments():
    """Callable returning the current set of /dev/shm psm_* segment names."""
    if not os.path.isdir("/dev/shm"):
        pytest.skip("no /dev/shm to inspect")

    def _list() -> frozenset[str]:
        return frozenset(n for n in os.listdir("/dev/shm") if n.startswith("psm_"))

    return _list
