"""PrefetchingLoader: parity with the synchronous loader, both worker modes."""

import numpy as np
import pytest

from repro.pipeline import PrefetchingLoader
from repro.sampling.dataloader import NodeDataLoader
from repro.sampling.neighbor import NeighborSampler


def make_base(tiny_dataset, **kw):
    args = dict(
        graph=tiny_dataset.graph,
        nodes=tiny_dataset.train_idx,
        labels=tiny_dataset.labels,
        sampler=NeighborSampler([5, 5]),
        batch_size=16,
        seed=3,
    )
    args.update(kw)
    return NodeDataLoader(**args)


def snapshot(loader):
    return [
        (b.seeds.copy(), b.input_ids.copy(), b.labels.copy()) for b in loader
    ]


def assert_same_stream(a, b):
    assert len(a) == len(b)
    for (s1, i1, l1), (s2, i2, l2) in zip(a, b):
        np.testing.assert_array_equal(s1, s2)
        np.testing.assert_array_equal(i1, i2)
        np.testing.assert_array_equal(l1, l2)


class TestParity:
    @pytest.mark.parametrize("mode", ["thread", "process"])
    @pytest.mark.parametrize("num_workers,queue_depth", [(1, 1), (2, 4), (4, 2)])
    def test_stream_identical_to_sync(self, tiny_dataset, mode, num_workers, queue_depth):
        base = snapshot(make_base(tiny_dataset))
        with PrefetchingLoader(
            make_base(tiny_dataset),
            num_workers=num_workers,
            queue_depth=queue_depth,
            mode=mode,
        ) as pf:
            assert_same_stream(base, snapshot(pf))

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_epochs_tracked(self, tiny_dataset, mode):
        base = make_base(tiny_dataset)
        base.set_epoch(2)
        expected = snapshot(base)
        with PrefetchingLoader(make_base(tiny_dataset), num_workers=2, mode=mode) as pf:
            pf.set_epoch(2)
            assert pf.epoch == 2
            assert_same_stream(expected, snapshot(pf))
            # pool persists and the next epoch re-derives its own stream
            pf.set_epoch(0)
            base.set_epoch(0)
            assert_same_stream(snapshot(base), snapshot(pf))

    def test_sharded_rank_stream(self, tiny_dataset):
        base = make_base(tiny_dataset, seed=0, rank=1, world_size=2)
        expected = snapshot(base)
        with PrefetchingLoader(
            make_base(tiny_dataset, seed=0, rank=1, world_size=2),
            num_workers=2,
            mode="process",
        ) as pf:
            assert_same_stream(expected, snapshot(pf))


class TestApi:
    def test_len_delegates(self, tiny_dataset):
        base = make_base(tiny_dataset)
        with PrefetchingLoader(base, num_workers=1) as pf:
            assert len(pf) == len(base)

    def test_default_workers_from_loader(self, tiny_dataset):
        with PrefetchingLoader(make_base(tiny_dataset, num_workers=3)) as pf:
            assert pf.num_workers == 3

    def test_rejects_bad_mode(self, tiny_dataset):
        with pytest.raises(ValueError, match="mode"):
            PrefetchingLoader(make_base(tiny_dataset), mode="fiber")

    def test_rejects_bad_workers(self, tiny_dataset):
        with pytest.raises(ValueError):
            PrefetchingLoader(make_base(tiny_dataset), num_workers=0)

    def test_process_mode_requires_seed(self, tiny_dataset):
        with pytest.raises(ValueError, match="seed"):
            PrefetchingLoader(make_base(tiny_dataset, seed=None), mode="process")

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_stats_accumulate(self, tiny_dataset, mode):
        with PrefetchingLoader(make_base(tiny_dataset), num_workers=2, mode=mode) as pf:
            n = len(pf)
            list(pf)
            list(pf)
            assert pf.stats.batches == 2 * n
            assert pf.stats.busy_time > 0  # workers really sampled
            assert pf.stats.wait_time >= 0

    def test_closed_loader_rejects_iteration(self, tiny_dataset):
        pf = PrefetchingLoader(make_base(tiny_dataset))
        pf.close()
        with pytest.raises(ValueError, match="closed"):
            iter(pf)


class _ExplodingSampler(NeighborSampler):
    """Raises on every sample call (picklable for process workers)."""

    def sample(self, graph, seeds, *, rng=None):
        raise RuntimeError("sampler exploded")


class TestFailureAndCleanup:
    def test_process_worker_error_propagates(self, tiny_dataset):
        loader = make_base(tiny_dataset, sampler=_ExplodingSampler([5, 5]))
        with PrefetchingLoader(loader, num_workers=2, mode="process") as pf:
            with pytest.raises(RuntimeError, match="sampler exploded"):
                list(pf)

    def test_thread_worker_error_propagates(self, tiny_dataset):
        loader = make_base(tiny_dataset, sampler=_ExplodingSampler([5, 5]))
        with PrefetchingLoader(loader, num_workers=2, mode="thread") as pf:
            with pytest.raises(RuntimeError, match="sampler exploded"):
                list(pf)

    def test_no_shared_memory_leak(self, tiny_dataset, shm_segments):
        before = shm_segments()
        pf = PrefetchingLoader(make_base(tiny_dataset), num_workers=2, mode="process")
        list(pf)
        assert len(shm_segments()) > len(before)  # pool + graph store live
        pf.close()
        assert shm_segments() == before

    def test_no_leak_after_worker_error(self, tiny_dataset, shm_segments):
        before = shm_segments()
        loader = make_base(tiny_dataset, sampler=_ExplodingSampler([5, 5]))
        pf = PrefetchingLoader(loader, num_workers=1, mode="process")
        with pytest.raises(RuntimeError):
            list(pf)
        pf.close()
        assert shm_segments() == before


class TestSpanFusion:
    """The `span` knob: fused multi-step sampling inside prefetch jobs."""

    @pytest.mark.parametrize("span", [2, 3, 100])
    def test_span_stream_identical_to_sync(self, tiny_dataset, span):
        base = snapshot(make_base(tiny_dataset))
        with PrefetchingLoader(
            make_base(tiny_dataset), num_workers=2, mode="thread", span=span
        ) as pf:
            assert_same_stream(base, snapshot(pf))

    def test_span_with_epoch_and_sharding(self, tiny_dataset):
        base = make_base(tiny_dataset, rank=1, world_size=2)
        base.set_epoch(3)
        expected = snapshot(base)
        with PrefetchingLoader(
            make_base(tiny_dataset, rank=1, world_size=2),
            num_workers=2,
            mode="thread",
            span=4,
        ) as pf:
            pf.set_epoch(3)
            assert_same_stream(expected, snapshot(pf))

    @pytest.mark.parametrize("span", [2, 3, 100])
    def test_process_span_stream_identical_to_sync(self, tiny_dataset, span):
        # process workers ship the span's seed lists in one task message
        # and run the same fused kernel the consumer would
        base = snapshot(make_base(tiny_dataset))
        with PrefetchingLoader(
            make_base(tiny_dataset), num_workers=2, mode="process", span=span
        ) as pf:
            assert_same_stream(base, snapshot(pf))

    @pytest.mark.parametrize("span", [1, 3])
    def test_thread_process_span_parity(self, tiny_dataset, span):
        # the two worker modes must deliver byte-identical streams at
        # every span — same per-step RNG derivation either way
        with PrefetchingLoader(
            make_base(tiny_dataset), num_workers=2, mode="thread", span=span
        ) as pf_thread:
            threaded = snapshot(pf_thread)
        with PrefetchingLoader(
            make_base(tiny_dataset), num_workers=2, mode="process", span=span
        ) as pf_proc:
            assert_same_stream(threaded, snapshot(pf_proc))

    def test_process_span_worker_error_propagates(self, tiny_dataset):
        # a failed span posts a failure for every step it covered; the
        # consumer still fails at the first step's turn
        loader = make_base(tiny_dataset, sampler=_ExplodingSampler([5, 5]))
        with PrefetchingLoader(loader, num_workers=2, mode="process", span=3) as pf:
            with pytest.raises(RuntimeError, match="sampler exploded"):
                list(pf)

    def test_span_validated(self, tiny_dataset):
        with pytest.raises(ValueError):
            PrefetchingLoader(make_base(tiny_dataset), mode="thread", span=0)
