"""Pipeline semantics preservation: prefetch on/off is bit-identical.

The contract the whole subsystem rests on (and the reason the tuner may
freely search the ``s``/``queue_depth`` axes): for every execution
backend, enabling the sampling/compute overlap pipeline changes wall
clock only — the loss trajectory is *exactly* the synchronous one for
all worker counts and queue depths.
"""

import pytest

from repro.core.engine import MultiProcessEngine
from repro.gnn.models import make_task

BACKENDS = ("inline", "thread", "process")


def train_losses(ds, *, backend, prefetch, workers=1, depth=2, epochs=2):
    sampler, model = make_task("neighbor-sage", ds.layer_dims(2), seed=7, fanouts=[5, 5])
    engine = MultiProcessEngine(
        ds,
        sampler,
        model,
        num_processes=2,
        global_batch_size=64,
        backend=backend,
        seed=0,
        prefetch=prefetch,
        queue_depth=depth,
        sampler_workers=workers,
    )
    try:
        return engine.train(epochs).losses
    finally:
        engine.shutdown()


@pytest.fixture(scope="module")
def reference_losses(tiny_dataset):
    """The synchronous inline trajectory every variant must reproduce."""
    return train_losses(tiny_dataset, backend="inline", prefetch=False)


class TestPrefetchDeterminism:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("depth", [1, 4])
    def test_prefetch_trajectory_bit_identical(
        self, tiny_dataset, reference_losses, backend, workers, depth
    ):
        losses = train_losses(
            tiny_dataset, backend=backend, prefetch=True, workers=workers, depth=depth
        )
        assert losses == reference_losses

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_prefetch_off_matches_reference(
        self, tiny_dataset, reference_losses, backend
    ):
        assert train_losses(tiny_dataset, backend=backend, prefetch=False) == (
            reference_losses
        )

    def test_stage_timings_recorded(self, tiny_dataset):
        sampler, model = make_task(
            "neighbor-sage", tiny_dataset.layer_dims(2), seed=7, fanouts=[5, 5]
        )
        engine = MultiProcessEngine(
            tiny_dataset,
            sampler,
            model,
            num_processes=2,
            global_batch_size=64,
            backend="inline",
            seed=0,
            prefetch=True,
            sampler_workers=2,
        )
        stats = engine.train_epoch()
        assert stats.sample_wait >= 0.0
        assert stats.compute_time > 0.0
        assert stats.sample_wait + stats.compute_time <= stats.epoch_time * 1.5
