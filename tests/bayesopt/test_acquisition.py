"""Acquisition functions for minimisation."""

import numpy as np
import pytest

from repro.bayesopt.acquisition import (
    ACQUISITIONS,
    expected_improvement,
    probability_of_improvement,
    upper_confidence_bound,
)


class TestExpectedImprovement:
    def test_prefers_lower_mean_at_equal_std(self):
        mean = np.array([1.0, 2.0])
        std = np.array([0.5, 0.5])
        ei = expected_improvement(mean, std, best=1.5)
        assert ei[0] > ei[1]

    def test_prefers_higher_std_at_equal_mean(self):
        """The exploration half of the explore/exploit balance (Sec. V-C)."""
        mean = np.array([2.0, 2.0])
        std = np.array([0.1, 1.0])
        ei = expected_improvement(mean, std, best=1.5)
        assert ei[1] > ei[0]

    def test_zero_std_no_improvement(self):
        ei = expected_improvement(np.array([2.0]), np.array([0.0]), best=1.0)
        assert ei[0] == 0.0

    def test_zero_std_certain_improvement(self):
        ei = expected_improvement(np.array([0.5]), np.array([0.0]), best=1.0, xi=0.0)
        assert ei[0] == pytest.approx(0.5)

    def test_nonnegative(self):
        rng = np.random.default_rng(0)
        ei = expected_improvement(rng.standard_normal(50), rng.random(50), best=0.0)
        assert np.all(ei >= 0)

    def test_known_closed_form(self):
        """EI at mean==best, xi=0: std * phi(0) = std / sqrt(2 pi)."""
        std = 0.7
        ei = expected_improvement(np.array([1.0]), np.array([std]), best=1.0, xi=0.0)
        assert ei[0] == pytest.approx(std / np.sqrt(2 * np.pi), rel=1e-6)


class TestProbabilityOfImprovement:
    def test_bounded_unit_interval(self):
        rng = np.random.default_rng(0)
        pi = probability_of_improvement(rng.standard_normal(50), rng.random(50), best=0.0)
        assert np.all((pi >= 0) & (pi <= 1))

    def test_half_at_mean_equals_threshold(self):
        pi = probability_of_improvement(np.array([1.0]), np.array([0.5]), best=1.0, xi=0.0)
        assert pi[0] == pytest.approx(0.5)

    def test_zero_std_cases(self):
        pi = probability_of_improvement(
            np.array([0.5, 2.0]), np.array([0.0, 0.0]), best=1.0, xi=0.0
        )
        assert pi[0] == pytest.approx(1.0)
        assert pi[1] == pytest.approx(0.0)


class TestUCB:
    def test_prefers_low_mean_and_high_std(self):
        scores = upper_confidence_bound(np.array([1.0, 1.0, 2.0]), np.array([0.1, 1.0, 1.0]))
        assert scores[1] > scores[0]
        assert scores[1] > scores[2]


class TestRegistry:
    def test_all_registered(self):
        assert set(ACQUISITIONS) == {"ei", "pi", "ucb"}
