"""Gaussian-process regression correctness."""

import numpy as np
import pytest

from repro.bayesopt.gp import GaussianProcessRegressor
from repro.bayesopt.kernels import RBF, Matern52


def toy_data(n=12, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 1))
    y = np.sin(6 * X[:, 0]) + 0.01 * rng.standard_normal(n)
    return X, y


class TestFitPredict:
    def test_interpolates_training_points(self):
        X, y = toy_data()
        gp = GaussianProcessRegressor(noise=1e-6, optimize_hypers=False, kernel=RBF(ell=0.2))
        gp.fit(X, y)
        mean, std = gp.predict(X)
        np.testing.assert_allclose(mean, y, atol=5e-2)

    def test_uncertainty_grows_away_from_data(self):
        X, y = toy_data()
        gp = GaussianProcessRegressor(kernel=Matern52(ell=0.15), optimize_hypers=False)
        gp.fit(X, y)
        _, std_near = gp.predict(X[:1])
        _, std_far = gp.predict(np.array([[5.0]]))
        assert std_far[0] > std_near[0]

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcessRegressor().predict(np.zeros((1, 1)))

    def test_mean_only_mode(self):
        X, y = toy_data()
        gp = GaussianProcessRegressor().fit(X, y)
        mean = gp.predict(X, return_std=False)
        assert mean.shape == (len(X),)

    def test_scale_invariance_through_standardisation(self):
        """Predictions must track targets scaled by 1000x (epoch times
        range from ~1s to ~400s across the paper's tasks)."""
        X, y = toy_data()
        gp1 = GaussianProcessRegressor().fit(X, y)
        gp2 = GaussianProcessRegressor().fit(X, 1000 * y)
        m1, _ = gp1.predict(X)
        m2, _ = gp2.predict(X)
        np.testing.assert_allclose(m2 / 1000, m1, atol=1e-2)

    def test_constant_targets_handled(self):
        X, _ = toy_data()
        gp = GaussianProcessRegressor().fit(X, np.full(len(X), 3.0))
        mean, std = gp.predict(X)
        np.testing.assert_allclose(mean, 3.0, atol=1e-6)

    def test_input_validation(self):
        gp = GaussianProcessRegressor()
        with pytest.raises(ValueError):
            gp.fit(np.zeros((3, 1)), np.zeros(2))
        with pytest.raises(ValueError):
            gp.fit(np.zeros((0, 1)), np.zeros(0))
        with pytest.raises(ValueError):
            GaussianProcessRegressor(noise=0.0)


class TestHyperparameterFitting:
    def test_mle_improves_lml(self):
        X, y = toy_data(n=20)
        gp = GaussianProcessRegressor(kernel=Matern52(ell=2.0), optimize_hypers=True)
        y_std = (y - y.mean()) / y.std()
        before = gp.log_marginal_likelihood(X, y_std, Matern52(ell=2.0))
        gp.fit(X, y)
        after = gp.log_marginal_likelihood(X, y_std, gp.kernel)
        assert after >= before

    def test_lml_finite_for_reasonable_kernels(self):
        X, y = toy_data()
        gp = GaussianProcessRegressor()
        y_std = (y - y.mean()) / y.std()
        assert np.isfinite(gp.log_marginal_likelihood(X, y_std, Matern52(ell=0.3)))

    def test_fit_learns_short_lengthscale_for_wiggly_data(self):
        rng = np.random.default_rng(0)
        X = rng.random((30, 1))
        y = np.sin(40 * X[:, 0])
        gp = GaussianProcessRegressor(optimize_hypers=True)
        gp.fit(X, y)
        assert gp.kernel.ell < 0.5


class TestPosteriorMath:
    def test_matches_direct_formula(self):
        """Cholesky pipeline must equal the textbook closed form."""
        X, y = toy_data(n=8)
        kern = RBF(sigma2=1.0, ell=0.3)
        noise = 1e-3
        gp = GaussianProcessRegressor(kernel=kern, noise=noise, optimize_hypers=False)
        gp.fit(X, y)
        Xq = np.linspace(0, 1, 5)[:, None]
        mean, _ = gp.predict(Xq)

        y_std = (y - y.mean()) / y.std()
        K = kern(X, X) + (noise + 1e-10) * np.eye(len(X))
        direct = kern(Xq, X) @ np.linalg.solve(K, y_std) * y.std() + y.mean()
        np.testing.assert_allclose(mean, direct, rtol=1e-8)
