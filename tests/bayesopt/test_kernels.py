"""Kernel math: PSD-ness, limits, distances."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.bayesopt.kernels import RBF, Matern52, pairwise_sqdist


class TestPairwiseSqdist:
    def test_known_values(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        d = pairwise_sqdist(a, b)
        np.testing.assert_allclose(d, [[1.0], [2.0]])

    def test_self_distance_zero(self):
        x = np.random.default_rng(0).random((5, 3))
        d = pairwise_sqdist(x, x)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-12)

    def test_nonnegative(self):
        x = np.random.default_rng(1).random((10, 2)) * 1000
        assert pairwise_sqdist(x, x).min() >= 0.0

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            pairwise_sqdist(np.ones((2, 2)), np.ones((2, 3)))


@pytest.mark.parametrize("kernel_cls", [RBF, Matern52])
class TestKernels:
    def test_diagonal_is_sigma2(self, kernel_cls):
        k = kernel_cls(sigma2=2.5, ell=0.3)
        x = np.random.default_rng(0).random((6, 2))
        np.testing.assert_allclose(np.diag(k(x, x)), 2.5, rtol=1e-10)

    def test_symmetry(self, kernel_cls):
        k = kernel_cls()
        x = np.random.default_rng(0).random((6, 2))
        K = k(x, x)
        np.testing.assert_allclose(K, K.T, rtol=1e-12)

    def test_positive_semidefinite(self, kernel_cls):
        k = kernel_cls()
        x = np.random.default_rng(0).random((8, 2))
        eig = np.linalg.eigvalsh(k(x, x))
        assert eig.min() > -1e-8

    def test_decays_with_distance(self, kernel_cls):
        k = kernel_cls(ell=0.2)
        a = np.array([[0.0]])
        near, far = np.array([[0.1]]), np.array([[1.0]])
        assert k(a, near)[0, 0] > k(a, far)[0, 0]

    def test_with_params(self, kernel_cls):
        k = kernel_cls().with_params(4.0, 0.5)
        assert isinstance(k, kernel_cls)
        assert k.sigma2 == 4.0 and k.ell == 0.5

    def test_diag_matches_gram_diagonal(self, kernel_cls):
        """diag() must equal the Gram diagonal without building the Gram
        matrix (the acquisition scan relies on this for large spaces)."""
        k = kernel_cls(sigma2=1.7)
        x = np.random.default_rng(0).random((7, 3))
        np.testing.assert_allclose(k.diag(x), np.diag(k(x, x)), rtol=1e-12)

    def test_rejects_bad_params(self, kernel_cls):
        with pytest.raises(ValueError):
            kernel_cls(sigma2=0.0)
        with pytest.raises(ValueError):
            kernel_cls(ell=-1.0)

    @given(hnp.arrays(np.float64, (4, 2), elements=st.floats(0, 1)))
    @settings(max_examples=25, deadline=None)
    def test_property_gram_psd(self, kernel_cls, x):
        K = kernel_cls()(x, x)
        assert np.linalg.eigvalsh(K).min() > -1e-8


class TestKernelDifferences:
    def test_matern_heavier_tail_than_rbf(self):
        """At moderate distance the Matérn keeps more correlation."""
        r = np.array([[0.0]]), np.array([[1.2]])
        rbf = RBF(ell=0.3)(r[0], r[1])[0, 0]
        mat = Matern52(ell=0.3)(r[0], r[1])[0, 0]
        assert mat > rbf
