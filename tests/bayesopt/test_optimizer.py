"""BayesianOptimizer over finite candidate sets."""

import numpy as np
import pytest

from repro.bayesopt.optimizer import BayesianOptimizer


def grid_candidates(n=60):
    return np.linspace(0, 1, n)[:, None]


def objective_on(candidates):
    """Smooth multimodal 1-D function; global min near x=0.72."""

    def f(idx):
        x = candidates[idx, 0]
        return np.sin(5 * x) + 0.5 * (x - 0.7) ** 2

    return f


class TestAskTell:
    def test_initial_design_is_random_unique(self):
        cands = grid_candidates()
        bo = BayesianOptimizer(cands, n_initial=5, rng=0)
        seen = []
        for _ in range(5):
            idx = bo.ask()
            assert idx not in seen
            seen.append(idx)
            bo.tell(idx, float(idx))

    def test_never_repeats_until_exhausted(self):
        cands = grid_candidates(10)
        bo = BayesianOptimizer(cands, n_initial=3, rng=0)
        f = objective_on(cands)
        seen = set()
        for _ in range(10):
            idx = bo.ask()
            assert idx not in seen
            seen.add(idx)
            bo.tell(idx, f(idx))
        # space exhausted: returns incumbent
        assert bo.ask() == bo.best_index

    def test_tell_validates(self):
        bo = BayesianOptimizer(grid_candidates(), rng=0)
        with pytest.raises(IndexError):
            bo.tell(999, 1.0)
        with pytest.raises(ValueError):
            bo.tell(0, float("nan"))

    def test_best_tracking(self):
        bo = BayesianOptimizer(grid_candidates(), rng=0)
        bo.tell(3, 5.0)
        bo.tell(7, 2.0)
        bo.tell(9, 4.0)
        assert bo.best_index == 7
        assert bo.best_value == 2.0

    def test_best_before_observations_raises(self):
        bo = BayesianOptimizer(grid_candidates(), rng=0)
        with pytest.raises(RuntimeError):
            _ = bo.best_index

    def test_rejects_empty_candidates(self):
        with pytest.raises(ValueError):
            BayesianOptimizer(np.zeros((0, 2)))

    def test_rejects_unknown_acquisition(self):
        with pytest.raises(ValueError):
            BayesianOptimizer(grid_candidates(), acquisition="thompson")


class TestMinimize:
    def test_finds_near_optimum_with_small_budget(self):
        cands = grid_candidates(80)
        f = objective_on(cands)
        truth = min(f(i) for i in range(len(cands)))
        bo = BayesianOptimizer(cands, n_initial=5, rng=1)
        _, best = bo.minimize(f, budget=16)  # 20% of the space
        assert best <= truth + 0.05

    def test_beats_random_search_on_average(self):
        """The paper's core tuner claim: BO > random at equal budget."""
        cands = grid_candidates(100)
        f = objective_on(cands)
        budget = 12
        bo_vals, rand_vals = [], []
        for seed in range(6):
            bo = BayesianOptimizer(cands, n_initial=4, rng=seed)
            _, val = bo.minimize(f, budget=budget)
            bo_vals.append(val)
            rng = np.random.default_rng(seed)
            picks = rng.choice(len(cands), size=budget, replace=False)
            rand_vals.append(min(f(i) for i in picks))
        assert np.mean(bo_vals) <= np.mean(rand_vals) + 1e-9

    def test_deterministic_in_seed(self):
        cands = grid_candidates(50)
        f = objective_on(cands)
        a = BayesianOptimizer(cands, rng=3).minimize(f, budget=10)
        b = BayesianOptimizer(cands, rng=3).minimize(f, budget=10)
        assert a == b

    def test_rejects_zero_budget(self):
        bo = BayesianOptimizer(grid_candidates(), rng=0)
        with pytest.raises(ValueError):
            bo.minimize(lambda i: 1.0, budget=0)

    def test_handles_noisy_objective(self):
        cands = grid_candidates(60)
        f = objective_on(cands)
        rng = np.random.default_rng(0)

        def noisy(idx):
            return f(idx) * (1 + 0.02 * rng.standard_normal())

        bo = BayesianOptimizer(cands, n_initial=5, noise=1e-2, rng=2)
        _, best = bo.minimize(noisy, budget=15)
        truth = min(f(i) for i in range(len(cands)))
        assert best < truth + 0.2
