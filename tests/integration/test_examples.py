"""Example scripts must run end to end (fast ones as subprocesses)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "final test accuracy" in out

    def test_rl_resource_allocation(self):
        out = run_example("rl_resource_allocation.py")
        assert "quality vs oracle" in out

    def test_platform_study(self):
        out = run_example("platform_study.py")
        assert "ARGO auto-tuner" in out
        assert "oracle config" in out

    def test_products_serve(self):
        out = run_example("products_serve.py")
        assert "bit-identical" in out
        assert "cache hit rate" in out
        assert "p99=" in out

    @pytest.mark.slow
    def test_products_autotune(self):
        out = run_example("products_autotune.py")
        assert "best configuration" in out

    @pytest.mark.slow
    def test_convergence_study(self):
        out = run_example("convergence_study.py")
        assert "semantics preserved" in out
