"""The paper's headline claims, asserted end to end on fast setups.

Each test corresponds to a sentence from the abstract/intro; the full
quantitative record lives in the benchmark suite and EXPERIMENTS.md —
these are the fast always-on guards.
"""

import numpy as np
import pytest

from repro.core.autotuner import OnlineAutoTuner
from repro.experiments.setups import ExperimentSetup, build_runtime
from repro.platform.spec import SAPPHIRE_RAPIDS_6430L


@pytest.fixture(scope="module")
def fast_cell():
    """A small evaluation cell: flickr on the 64-core machine."""
    setup = ExperimentSetup("shadow-gcn", "flickr", "sapphire", "dgl")
    return build_runtime(setup)


class TestAbstractClaims:
    def test_poor_baseline_scalability(self, fast_cell):
        """'these libraries show poor scalability on multi-core processors'"""
        rt, _ = fast_cell
        t16 = rt.baseline_epoch_time(16)
        t64 = rt.baseline_epoch_time(64)
        assert t64 > 0.75 * t16  # 4x the cores, <1.33x the speed

    def test_argo_improves_utilisation(self, fast_cell):
        """'ARGO exploits multi-processing and core-binding ... improves
        platform resource utilization'"""
        rt, space = fast_cell
        best, cfg = rt.argo_best_epoch_time(64, space)
        assert best < rt.baseline_epoch_time(64)
        assert cfg[0] > 1  # the win comes from multi-processing

    def test_near_optimal_with_5pct_exploration(self, fast_cell):
        """'select a near-optimal configuration by exploring only 5% of
        the design space'"""
        rt, space = fast_cell
        best, _ = rt.argo_best_epoch_time(64, space)
        tuner = OnlineAutoTuner(space, space.paper_budget(0.05), seed=0)
        res = tuner.tune(rt.measure_epoch)
        assert best / rt.true_epoch_time(res.best_config) >= 0.9

    def test_transparent_interface(self, fast_cell):
        """'completely transparent from the user': the tuner needs only
        num_searches — no platform, model or dataset inputs."""
        import inspect

        params = inspect.signature(OnlineAutoTuner.__init__).parameters
        required = [
            n
            for n, p in params.items()
            if p.default is inspect.Parameter.empty and n != "self"
        ]
        assert required == ["space", "num_searches"]

    def test_adapts_across_setups(self):
        """'the auto-tuner allows ARGO to adapt to various platforms,
        GNN models, datasets': per-setup optima differ, and the tuner
        finds each one from scratch."""
        optima = {}
        for task in ("neighbor-sage", "shadow-gcn"):
            rt, space = build_runtime(ExperimentSetup(task, "flickr", "sapphire", "dgl"))
            _, cfg = rt.argo_best_epoch_time(64, space)
            tuner = OnlineAutoTuner(space, space.paper_budget(), seed=1)
            res = tuner.tune(rt.measure_epoch)
            optima[task] = (cfg, res.best_config)
            # tuner lands in the right region without any task knowledge
            assert rt.argo_best_epoch_time(64, space)[0] / rt.true_epoch_time(
                res.best_config
            ) >= 0.85
        assert optima["neighbor-sage"][0] != optima["shadow-gcn"][0]

    def test_few_lines_integration(self, tiny_dataset):
        """'integrate into widely-used GNN libraries with few lines of
        code': the Listing-3 wrapper is three statements."""
        from repro.core.argo import ARGO
        from repro.core.train_loop import make_train_fn
        from repro.gnn.models import make_task
        from repro.tuning.space import ConfigSpace

        sampler, model = make_task(
            "neighbor-sage", tiny_dataset.layer_dims(2), seed=0, fanouts=[5, 5]
        )
        # the three lines a user adds:
        train = make_train_fn(tiny_dataset, sampler, model, global_batch_size=64)
        runtime = ARGO(n_search=3, epoch=6, space=ConfigSpace(8, max_processes=4), seed=0)
        result = runtime.run(train)
        assert result.total_epochs == 6
