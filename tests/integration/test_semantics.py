"""Paper correctness claims, end to end (Sec. IV-B2 + Fig. 9).

The Multi-Process Engine must preserve GNN training semantics: training
with n processes at per-rank batch B/n converges like a single process at
batch B.
"""

import numpy as np
import pytest

from repro.core.engine import MultiProcessEngine
from repro.gnn.models import make_task


def engine_for(ds, n, seed=0, batch=128):
    sampler, model = make_task("neighbor-sage", ds.layer_dims(2), seed=7, fanouts=[5, 5])
    return MultiProcessEngine(
        ds,
        sampler,
        model,
        num_processes=n,
        global_batch_size=batch,
        backend="inline",
        seed=seed,
    )


class TestEffectiveBatchSize:
    @pytest.mark.parametrize("n", [2, 4])
    def test_total_samples_per_step_constant(self, tiny_dataset, n):
        eng = engine_for(tiny_dataset, n)
        assert eng.per_rank_batch * n == 128

    def test_global_steps_independent_of_n(self, tiny_dataset):
        s1 = engine_for(tiny_dataset, 1).train_epoch()
        s4 = engine_for(tiny_dataset, 4).train_epoch()
        assert s1.num_global_steps == s4.num_global_steps


class TestConvergenceEquivalence:
    """Fig. 9: accuracy-vs-batches curves of ARGO:n overlap the baseline."""

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_losses_track_single_process(self, small_dataset, n):
        epochs = 4
        base = engine_for(small_dataset, 1, batch=256)
        multi = engine_for(small_dataset, n, batch=256)
        lb = base.train(epochs).losses
        lm = multi.train(epochs).losses
        # same trajectory within sampling noise
        for a, b in zip(lb, lm):
            assert abs(a - b) / a < 0.25

    def test_final_accuracy_matches(self, small_dataset):
        epochs = 6
        accs = {}
        for n in (1, 4):
            eng = engine_for(small_dataset, n, batch=256)
            eng.train(epochs)
            accs[n] = eng.evaluate()
        assert abs(accs[1] - accs[4]) < 0.12

    def test_more_processes_do_not_change_step_count(self, small_dataset):
        """ByteGNN contrast (Sec. VIII): ARGO keeps the effective batch
        size and hence the optimiser step count fixed."""
        h1 = engine_for(small_dataset, 1, batch=256).train(2)
        h8 = engine_for(small_dataset, 8, batch=256).train(2)
        steps1 = sum(e.num_global_steps for e in h1.epochs)
        steps8 = sum(e.num_global_steps for e in h8.epochs)
        assert steps1 == steps8


class TestWorkloadInflation:
    def test_sampled_edges_grow_with_processes(self, small_dataset):
        """Fig. 6 on the *real* engine: more processes -> more edges."""
        e1 = engine_for(small_dataset, 1, batch=256).train_epoch().sampled_edges
        e8 = engine_for(small_dataset, 8, batch=256).train_epoch().sampled_edges
        assert e8 > e1
