"""Full-stack integration: ARGO wrapper over real training and over the
platform simulator, mirroring how the benchmarks drive the system."""

import numpy as np
import pytest

from repro.core.argo import ARGO
from repro.core.train_loop import evaluate_accuracy, make_train_fn
from repro.gnn.models import make_task
from repro.platform import DGL, ICE_LAKE_8380H, SAPPHIRE_RAPIDS_6430L, LIBRARIES
from repro.platform.costmodel import CostModel
from repro.platform.simulator import SimulatedRuntime
from repro.tuning.space import ConfigSpace
from repro.workload import WorkloadModel


class TestArgoOverRealTraining:
    def test_listing3_usage(self, tiny_dataset):
        """The paper's integration story: wrap an existing train function,
        get a tuned configuration and a trained model."""
        sampler, model = make_task(
            "neighbor-sage", tiny_dataset.layer_dims(2), seed=0, fanouts=[5, 5]
        )
        train = make_train_fn(tiny_dataset, sampler, model, global_batch_size=64)
        space = ConfigSpace(8, max_processes=4)
        acc_before = evaluate_accuracy(tiny_dataset, sampler, model, seed=0)
        runtime = ARGO(n_search=4, epoch=10, space=space, seed=0)
        result = runtime.run(train)
        acc_after = evaluate_accuracy(tiny_dataset, sampler, model, seed=0)
        assert result.best_config.as_tuple() in space
        assert acc_after > acc_before

    def test_wrapped_epochs_sum_to_total(self, tiny_dataset):
        sampler, model = make_task(
            "neighbor-sage", tiny_dataset.layer_dims(2), seed=0, fanouts=[5, 5]
        )
        train = make_train_fn(tiny_dataset, sampler, model, global_batch_size=64)
        space = ConfigSpace(8, max_processes=4)
        result = ARGO(n_search=3, epoch=8, space=space, seed=0).run(train)
        assert len(result.search_history) + len(result.exploit_epoch_times) == 8


class TestArgoOverSimulator:
    @pytest.fixture(scope="class")
    def sim_stack(self, request):
        ds = request.getfixturevalue("tiny_dataset")
        sampler, _ = make_task("neighbor-sage", ds.layer_dims(3), seed=0)
        wm = WorkloadModel(ds, sampler, num_batches=2, seed=0)
        cm = CostModel(
            ICE_LAKE_8380H,
            DGL,
            wm,
            sampler_name="neighbor",
            model_name="sage",
            dims=ds.layer_dims(3),
            train_nodes=ds.spec.paper_train_nodes,
        )
        return SimulatedRuntime(cm, seed=0), ConfigSpace(112)

    def test_argo_beats_default_end_to_end(self, sim_stack):
        """Fig. 10 pattern: 200 simulated epochs with ARGO (search cost
        included) beat 200 epochs of the library default."""
        rt, space = sim_stack

        def train(*, config, epochs):
            return [rt.measure_epoch(config.as_tuple()) for _ in range(epochs)]

        total_epochs = 200
        result = ARGO(epoch=total_epochs, space=space, seed=0).run(train)
        default_total = total_epochs * rt.baseline_epoch_time(112)
        assert result.total_time < default_total

    def test_tuner_overhead_below_one_percent(self, sim_stack):
        """Sec. VI-D: auto-tuning overhead <1% of overall training time."""
        rt, space = sim_stack

        def train(*, config, epochs):
            return [rt.measure_epoch(config.as_tuple()) for _ in range(epochs)]

        result = ARGO(epoch=200, space=space, seed=0).run(train)
        assert result.tuner_overhead_seconds < 0.01 * result.total_time


class TestCrossPlatformCrossLibrary:
    @pytest.mark.parametrize("libname", ["dgl", "pyg"])
    @pytest.mark.parametrize("plat", [ICE_LAKE_8380H, SAPPHIRE_RAPIDS_6430L])
    def test_tuned_beats_default_everywhere(self, tiny_dataset, neighbor_workload, libname, plat):
        """The Table IV/V headline: the tuned configuration beats the
        library default on every platform x library combination."""
        cm = CostModel(
            plat,
            LIBRARIES[libname],
            neighbor_workload,
            sampler_name="neighbor",
            model_name="sage",
            dims=tiny_dataset.layer_dims(3),
            train_nodes=tiny_dataset.spec.paper_train_nodes,
        )
        rt = SimulatedRuntime(cm, seed=0)
        space = ConfigSpace(plat.total_cores)
        best, _ = rt.argo_best_epoch_time(plat.total_cores, space)
        assert best < rt.baseline_epoch_time(plat.total_cores)
