"""Node partitioning invariants (Multi-Process Engine data splitting)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.partition import (
    contiguous_node_partition,
    greedy_bfs_partition,
    partition_balance,
    partition_edge_cut,
    random_node_partition,
)
from repro.utils.rng import derive_rng


def _assert_valid_partition(nodes, parts):
    merged = np.concatenate(parts)
    assert sorted(merged.tolist()) == sorted(np.asarray(nodes).tolist())
    sizes = [len(p) for p in parts]
    assert max(sizes) - min(sizes) <= 1


class TestRandomPartition:
    def test_partition_covers_exactly(self):
        nodes = np.arange(103)
        parts = random_node_partition(nodes, 4, rng=derive_rng(0))
        _assert_valid_partition(nodes, parts)

    def test_deterministic(self):
        nodes = np.arange(50)
        a = random_node_partition(nodes, 3, rng=derive_rng(1))
        b = random_node_partition(nodes, 3, rng=derive_rng(1))
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_single_part(self):
        nodes = np.arange(10)
        (part,) = random_node_partition(nodes, 1, rng=derive_rng(0))
        assert np.array_equal(part, nodes)

    def test_rejects_too_many_parts(self):
        with pytest.raises(ValueError):
            random_node_partition(np.arange(3), 5)

    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_cover_and_balance(self, n, k):
        if k > n:
            return
        nodes = np.arange(n)
        parts = random_node_partition(nodes, k, rng=derive_rng(n * 13 + k))
        _assert_valid_partition(nodes, parts)


class TestContiguousPartition:
    def test_order_preserved(self):
        parts = contiguous_node_partition(np.arange(10), 3)
        assert np.array_equal(np.concatenate(parts), np.arange(10))


class TestGreedyBfsPartition:
    def test_valid_partition(self, tiny_dataset):
        nodes = tiny_dataset.train_idx
        parts = greedy_bfs_partition(tiny_dataset.graph, nodes, 4, rng=derive_rng(0))
        _assert_valid_partition(nodes, parts)

    def test_locality_beats_random(self, tiny_dataset):
        """The METIS stand-in should cut fewer edges than a random split
        (paper Sec. VII-A observes METIS balances workload better)."""
        g = tiny_dataset.graph
        nodes = np.arange(tiny_dataset.num_nodes)
        cuts_bfs, cuts_rand = [], []
        for seed in range(3):
            bfs = greedy_bfs_partition(g, nodes, 4, rng=derive_rng(seed))
            rand = random_node_partition(nodes, 4, rng=derive_rng(seed))
            cuts_bfs.append(partition_edge_cut(g, bfs))
            cuts_rand.append(partition_edge_cut(g, rand))
        assert np.mean(cuts_bfs) < np.mean(cuts_rand)


class TestMetrics:
    def test_edge_cut_all_in_one_part(self, tiny_dataset):
        g = tiny_dataset.graph
        assert partition_edge_cut(g, [np.arange(g.num_nodes)]) == 0

    def test_edge_cut_counts_cross_edges(self):
        from repro.graph.build import from_edge_index

        g = from_edge_index([0, 2], [1, 3], 4)
        parts = [np.array([0, 1]), np.array([2, 3])]
        assert partition_edge_cut(g, parts) == 0
        parts = [np.array([0, 3]), np.array([1, 2])]
        assert partition_edge_cut(g, parts) == 2

    def test_balance_perfect(self):
        assert partition_balance([np.arange(5), np.arange(5)]) == pytest.approx(1.0)

    def test_balance_skewed(self):
        val = partition_balance([np.arange(9), np.arange(1)])
        assert val == pytest.approx(1.8)

    def test_balance_empty(self):
        assert partition_balance([np.array([]), np.array([])]) == 1.0
