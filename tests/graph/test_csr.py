"""CSRGraph structural invariants, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.build import from_edge_index
from repro.graph.csr import CSRGraph


def small_graph():
    # edges into nodes: 0<-1, 0<-2, 1<-2, 3<-0
    return from_edge_index(np.array([1, 2, 2, 0]), np.array([0, 0, 1, 3]), 4)


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    m = draw(st.integers(min_value=0, max_value=120))
    src = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), min_size=m, max_size=m)
    )
    dst = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), min_size=m, max_size=m)
    )
    return n, np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64)


class TestConstruction:
    def test_basic_counts(self):
        g = small_graph()
        assert g.num_nodes == 4
        assert g.num_edges == 4

    def test_rejects_bad_indptr_start(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 2]), np.array([0]))

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 0]))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([0, 0]))

    def test_rejects_out_of_range_indices(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_arrays_read_only(self):
        g = small_graph()
        with pytest.raises(ValueError):
            g.indptr[0] = 1
        with pytest.raises(ValueError):
            g.indices[0] = 1

    def test_equality(self):
        assert small_graph() == small_graph()

    def test_repr_contains_counts(self):
        assert "4" in repr(small_graph())


class TestAccessors:
    def test_in_degree_all(self):
        g = small_graph()
        assert np.array_equal(g.in_degree(), [2, 1, 0, 1])

    def test_in_degree_subset(self):
        g = small_graph()
        assert np.array_equal(g.in_degree(np.array([0, 2])), [2, 0])

    def test_neighbors(self):
        g = small_graph()
        assert sorted(g.neighbors(0).tolist()) == [1, 2]
        assert g.neighbors(2).size == 0

    def test_gather_neighbors_matches_per_node(self):
        g = small_graph()
        nodes = np.array([0, 1, 2, 3])
        srcs, offsets = g.gather_neighbors(nodes)
        for i, v in enumerate(nodes):
            got = srcs[offsets[i] : offsets[i + 1]]
            assert np.array_equal(got, g.neighbors(v))

    def test_gather_neighbors_empty_frontier(self):
        g = small_graph()
        srcs, offsets = g.gather_neighbors(np.array([2]))
        assert srcs.size == 0
        assert np.array_equal(offsets, [0, 0])

    def test_edge_ids_cover_slices(self):
        g = small_graph()
        ids = g.edge_ids(np.array([0, 3]))
        assert sorted(ids.tolist()) == [0, 1, 3]


class TestDerivedGraphs:
    def test_to_edge_index_roundtrip(self):
        g = small_graph()
        src, dst = g.to_edge_index()
        g2 = from_edge_index(src, dst, g.num_nodes, coalesce=False)
        assert g == g2

    def test_reverse_twice_is_identity(self):
        g = small_graph()
        assert g.reverse().reverse() == g

    def test_reverse_swaps_degrees(self):
        g = small_graph()
        rev = g.reverse()
        src, dst = g.to_edge_index()
        out_deg = np.bincount(src, minlength=g.num_nodes)
        assert np.array_equal(rev.in_degree(), out_deg)

    def test_subgraph_keeps_internal_edges(self):
        g = small_graph()
        sub, nodes = g.subgraph(np.array([0, 1, 2]))
        # edges among {0,1,2}: 0<-1, 0<-2, 1<-2
        assert sub.num_edges == 3
        assert sub.num_nodes == 3

    def test_subgraph_relabels_locally(self):
        g = small_graph()
        sub, nodes = g.subgraph(np.array([3, 0]))
        # only edge 3<-0 survives; local ids: 3 -> 0, 0 -> 1
        assert sub.num_edges == 1
        assert sub.neighbors(0).tolist() == [1]

    def test_subgraph_rejects_duplicates(self):
        with pytest.raises(ValueError):
            small_graph().subgraph(np.array([0, 0]))

    def test_has_self_loops(self):
        g = from_edge_index(np.array([0]), np.array([0]), 1)
        assert g.has_self_loops()
        assert not small_graph().has_self_loops()


class TestProperties:
    @given(edge_lists())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_preserves_edge_multiset(self, data):
        n, src, dst = data
        g = from_edge_index(src, dst, n, coalesce=False)
        s2, d2 = g.to_edge_index()
        assert sorted(zip(s2, d2)) == sorted(zip(src, dst))

    @given(edge_lists())
    @settings(max_examples=50, deadline=None)
    def test_invariants_always_hold(self, data):
        n, src, dst = data
        g = from_edge_index(src, dst, n)
        g.validate()
        assert g.indptr[-1] == g.num_edges
        assert np.all(np.diff(g.indptr) >= 0)
        assert int(g.in_degree().sum()) == g.num_edges

    @given(edge_lists())
    @settings(max_examples=30, deadline=None)
    def test_subgraph_edges_subset(self, data):
        n, src, dst = data
        g = from_edge_index(src, dst, n)
        take = np.arange(0, n, 2)
        sub, nodes = g.subgraph(take)
        s, d = sub.to_edge_index()
        full = set(zip(*g.to_edge_index()))
        for e_src, e_dst in zip(nodes[s], nodes[d]):
            assert (e_src, e_dst) in full
