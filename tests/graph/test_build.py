"""Edge-list builder behaviour."""

import numpy as np
import pytest

from repro.graph.build import (
    coalesce_edges,
    from_edge_index,
    remove_self_loops,
    to_undirected_edges,
)


class TestCoalesce:
    def test_removes_duplicates(self):
        src, dst = coalesce_edges([1, 1, 2], [0, 0, 0])
        assert len(src) == 2

    def test_sorted_by_dst_then_src(self):
        src, dst = coalesce_edges([3, 1, 2], [1, 0, 0])
        assert dst.tolist() == [0, 0, 1]
        assert src.tolist() == [1, 2, 3]

    def test_empty(self):
        src, dst = coalesce_edges([], [])
        assert len(src) == 0


class TestSelfLoops:
    def test_removed(self):
        src, dst = remove_self_loops([0, 1], [0, 2])
        assert src.tolist() == [1]
        assert dst.tolist() == [2]


class TestUndirected:
    def test_mirrors(self):
        src, dst = to_undirected_edges([0], [1])
        assert sorted(zip(src, dst)) == [(0, 1), (1, 0)]


class TestFromEdgeIndex:
    def test_infers_num_nodes(self):
        g = from_edge_index([0, 5], [1, 2])
        assert g.num_nodes == 6

    def test_explicit_num_nodes(self):
        g = from_edge_index([0], [1], 10)
        assert g.num_nodes == 10

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            from_edge_index([0, 4], [1, 1], 3)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            from_edge_index([0, 1], [1])

    def test_undirected_flag(self):
        g = from_edge_index([0], [1], 2, undirected=True)
        assert g.num_edges == 2
        assert g.neighbors(0).tolist() == [1]
        assert g.neighbors(1).tolist() == [0]

    def test_no_self_loops_flag(self):
        g = from_edge_index([0, 1], [0, 0], 2, self_loops=False)
        assert g.num_edges == 1

    def test_coalesce_default(self):
        g = from_edge_index([1, 1], [0, 0], 2)
        assert g.num_edges == 1

    def test_keep_duplicates(self):
        g = from_edge_index([1, 1], [0, 0], 2, coalesce=False)
        assert g.num_edges == 2

    def test_empty_graph(self):
        g = from_edge_index([], [], 5)
        assert g.num_nodes == 5
        assert g.num_edges == 0
