"""Streaming graph deltas: fragments, the layered view, reachability.

The invariant everything here leans on: a :class:`LayeredCSR` must be
*observationally identical* to the frozen CSR it would materialise to —
same degrees, same neighbor lists in the same order (base slice first,
then each fragment's slice in publication order), same induced
subgraphs.  Samplers consume adjacency in that order, so order parity is
what makes post-delta predictions bit-identical to a cold engine on the
merged graph.
"""

import numpy as np
import pytest

from repro.graph.build import from_edge_index
from repro.graph.csr import CSRGraph
from repro.graph.datasets import load_dataset
from repro.graph.delta import (
    DeltaFragment,
    GraphDelta,
    LayeredCSR,
    materialize_dataset,
    reverse_reachable,
)
from repro.utils.rng import derive_rng


def random_graph(num_nodes=64, num_edges=256, seed=0):
    rng = derive_rng(seed, "delta-test-graph")
    src = rng.integers(0, num_nodes, size=num_edges).astype(np.int64)
    dst = rng.integers(0, num_nodes, size=num_edges).astype(np.int64)
    return from_edge_index(src, dst, num_nodes, coalesce=False)


def random_delta(num_nodes, num_edges=32, *, new_nodes=0, feature_dim=4, seed=1):
    rng = derive_rng(seed, "delta-test-delta")
    total = num_nodes + new_nodes
    src = rng.integers(0, num_nodes, size=num_edges).astype(np.int64)
    dst = rng.integers(0, total, size=num_edges).astype(np.int64)
    if new_nodes:
        # guarantee every fresh node actually appears as a destination
        dst[:new_nodes] = np.arange(num_nodes, total, dtype=np.int64)
        features = rng.standard_normal((new_nodes, feature_dim)).astype(np.float32)
        labels = np.zeros(new_nodes, dtype=np.int64)
    else:
        features = None
        labels = None
    return GraphDelta(src=src, dst=dst, features=features, labels=labels)


def make_fragment(graph, delta, feature_dim=4):
    return DeltaFragment.from_delta(
        delta, num_nodes=graph.num_nodes, feature_dim=feature_dim
    )


class TestGraphDelta:
    def test_num_new_nodes(self):
        d = random_delta(32, new_nodes=2)
        assert d.num_new_nodes == 2
        assert random_delta(32).num_new_nodes == 0

    def test_length_mismatch_rejected(self):
        delta = GraphDelta(src=np.zeros(3, dtype=np.int64), dst=np.zeros(2, dtype=np.int64))
        with pytest.raises(ValueError, match="equal length"):
            DeltaFragment.from_delta(delta, num_nodes=8, feature_dim=2)

    def test_empty_delta_rejected(self):
        empty = np.zeros(0, dtype=np.int64)
        delta = GraphDelta(src=empty, dst=empty)
        with pytest.raises(ValueError, match="empty delta"):
            DeltaFragment.from_delta(delta, num_nodes=8, feature_dim=2)

    def test_labels_without_features_rejected(self):
        delta = GraphDelta(
            src=np.zeros(1, dtype=np.int64),
            dst=np.zeros(1, dtype=np.int64),
            labels=np.zeros(1, dtype=np.int64),
        )
        with pytest.raises(ValueError, match="labels"):
            DeltaFragment.from_delta(delta, num_nodes=8, feature_dim=2)


class TestDeltaFragment:
    def test_rows_sorted_and_consistent(self):
        g = random_graph()
        frag = make_fragment(g, random_delta(g.num_nodes))
        assert np.all(np.diff(frag.rows) > 0)  # unique, ascending destinations
        assert frag.indptr[0] == 0
        assert frag.indptr[-1] == len(frag.indices)
        assert len(frag.indptr) == len(frag.rows) + 1

    def test_preserves_edge_order_within_row(self):
        # two edges into the same destination must keep submission order
        delta = GraphDelta(
            src=np.array([5, 3, 7], dtype=np.int64),
            dst=np.array([1, 0, 1], dtype=np.int64),
        )
        frag = DeltaFragment.from_delta(delta, num_nodes=8, feature_dim=2)
        np.testing.assert_array_equal(frag.rows, [0, 1])
        np.testing.assert_array_equal(frag.indices, [3, 5, 7])

    def test_out_of_range_source_rejected(self):
        delta = GraphDelta(
            src=np.array([99], dtype=np.int64), dst=np.array([0], dtype=np.int64)
        )
        with pytest.raises(ValueError, match="out of range"):
            DeltaFragment.from_delta(delta, num_nodes=8, feature_dim=2)

    def test_new_node_needs_features(self):
        # an edge into node 8 of an 8-node graph only works if the delta
        # also appends that node (features define the new id range)
        delta = GraphDelta(
            src=np.array([0], dtype=np.int64), dst=np.array([8], dtype=np.int64)
        )
        with pytest.raises(ValueError, match="out of range"):
            DeltaFragment.from_delta(delta, num_nodes=8, feature_dim=2)

    def test_array_round_trip(self):
        g = random_graph()
        frag = make_fragment(g, random_delta(g.num_nodes, new_nodes=1))
        clone = DeltaFragment.from_arrays(frag.to_arrays())
        np.testing.assert_array_equal(clone.rows, frag.rows)
        np.testing.assert_array_equal(clone.indptr, frag.indptr)
        np.testing.assert_array_equal(clone.indices, frag.indices)
        np.testing.assert_array_equal(clone.features, frag.features)
        assert clone.num_nodes_after == frag.num_nodes_after


class TestLayeredCSR:
    @pytest.fixture()
    def stacked(self):
        g = random_graph()
        frags = [
            make_fragment(g, random_delta(g.num_nodes, seed=1)),
        ]
        frags.append(
            DeltaFragment.from_delta(
                random_delta(g.num_nodes, new_nodes=2, seed=2),
                num_nodes=g.num_nodes,
                feature_dim=4,
            )
        )
        return g, LayeredCSR(g, frags)

    def test_requires_a_fragment(self):
        g = random_graph()
        with pytest.raises(ValueError, match="fragment"):
            LayeredCSR(g, [])

    def test_counts(self, stacked):
        g, view = stacked
        frags = view.fragments
        assert view.num_nodes == g.num_nodes + 2
        assert view.num_edges == g.num_edges + sum(len(f.indices) for f in frags)
        assert view.generation == 2

    def test_matches_materialized(self, stacked):
        g, view = stacked
        frozen = view.materialize()
        assert frozen.num_nodes == view.num_nodes
        assert frozen.num_edges == view.num_edges
        np.testing.assert_array_equal(view.in_degree(), frozen.in_degree())
        nodes = np.arange(view.num_nodes, dtype=np.int64)
        flat, offsets = view.gather_neighbors(nodes)
        flat_f, offsets_f = frozen.gather_neighbors(nodes)
        np.testing.assert_array_equal(offsets, offsets_f)
        np.testing.assert_array_equal(flat, flat_f)  # exact merged ORDER
        for v in [0, 1, g.num_nodes - 1, view.num_nodes - 1]:
            np.testing.assert_array_equal(view.neighbors(v), frozen.neighbors(v))

    def test_subgraph_matches_materialized(self, stacked):
        g, view = stacked
        frozen = view.materialize()
        rng = derive_rng(3, "delta-test-sub")
        nodes = rng.choice(view.num_nodes, size=16, replace=False).astype(np.int64)
        sub_v, map_v = view.subgraph(nodes)
        sub_f, map_f = frozen.subgraph(nodes)
        np.testing.assert_array_equal(map_v, map_f)
        np.testing.assert_array_equal(sub_v.indptr, sub_f.indptr)
        np.testing.assert_array_equal(sub_v.indices, sub_f.indices)

    def test_base_untouched(self, stacked):
        g, view = stacked
        # layering is pure overlay: the frozen base never changes
        assert view.base is g
        assert not g.indptr.flags.writeable


class TestReverseReachable:
    def test_chain(self):
        # edges u -> u+1 (in-CSR rows are destinations)
        n = 8
        src = np.arange(n - 1, dtype=np.int64)
        dst = np.arange(1, n, dtype=np.int64)
        g = from_edge_index(src, dst, n, coalesce=False)
        frag = DeltaFragment.from_delta(
            GraphDelta(src=np.array([0], dtype=np.int64), dst=np.array([3], dtype=np.int64)),
            num_nodes=n,
            feature_dim=1,
        )
        view = LayeredCSR(g, [frag])
        # a write landing on node 3 can affect 3, then 4, then 5 at 2 hops
        np.testing.assert_array_equal(reverse_reachable(view, [3], 0), [3])
        np.testing.assert_array_equal(reverse_reachable(view, [3], 1), [3, 4])
        np.testing.assert_array_equal(reverse_reachable(view, [3], 2), [3, 4, 5])

    def test_layered_matches_materialized(self):
        g = random_graph(seed=5)
        frag = make_fragment(g, random_delta(g.num_nodes, seed=6))
        view = LayeredCSR(g, [frag])
        frozen = view.materialize()
        for hops in (1, 2, 3):
            np.testing.assert_array_equal(
                reverse_reachable(view, frag.rows, hops),
                reverse_reachable(frozen, frag.rows, hops),
            )


class TestMaterializeDataset:
    def test_features_and_labels_extend(self):
        ds = load_dataset("ogbn-products", seed=0, scale_override=8)
        delta = random_delta(
            ds.num_nodes, new_nodes=2, feature_dim=ds.features.shape[1], seed=9
        )
        frag = DeltaFragment.from_delta(
            delta,
            num_nodes=ds.num_nodes,
            feature_dim=int(ds.features.shape[1]),
            feature_dtype=ds.features.dtype,
            label_dtype=ds.labels.dtype,
        )
        merged = materialize_dataset(ds, [frag])
        assert merged.num_nodes == ds.num_nodes + 2
        assert merged.num_edges == ds.num_edges + len(frag.indices)
        np.testing.assert_array_equal(merged.features[: ds.num_nodes], ds.features)
        np.testing.assert_array_equal(merged.features[ds.num_nodes :], frag.features)
        np.testing.assert_array_equal(merged.labels[ds.num_nodes :], frag.labels)
        np.testing.assert_array_equal(merged.train_idx, ds.train_idx)
