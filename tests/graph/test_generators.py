"""Synthetic graph generator properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.generators import erdos_renyi_graph, powerlaw_graph, rmat_edges
from repro.utils.rng import derive_rng


class TestRmat:
    def test_edge_count(self):
        src, dst = rmat_edges(8, 4.0, rng=derive_rng(0))
        assert len(src) == 4 * 256
        assert len(dst) == len(src)

    def test_endpoints_in_range(self):
        src, dst = rmat_edges(8, 4.0, rng=derive_rng(0))
        for arr in (src, dst):
            assert arr.min() >= 0
            assert arr.max() < 256

    def test_deterministic(self):
        a = rmat_edges(8, 2.0, rng=derive_rng(1))
        b = rmat_edges(8, 2.0, rng=derive_rng(1))
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_heavy_tail(self):
        """RMAT with Graph500 params must produce a skewed degree profile."""
        src, dst = rmat_edges(12, 8.0, rng=derive_rng(0))
        deg = np.bincount(dst, minlength=1 << 12)
        assert deg.max() > 10 * max(deg.mean(), 1.0)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            rmat_edges(0, 4.0)

    def test_rejects_bad_probs(self):
        with pytest.raises(ValueError):
            rmat_edges(4, 4.0, a=0.9, b=0.2, c=0.2)

    @given(st.integers(min_value=2, max_value=10))
    @settings(max_examples=10, deadline=None)
    def test_any_scale_valid(self, scale):
        src, dst = rmat_edges(scale, 1.0, rng=derive_rng(0))
        assert src.max(initial=0) < (1 << scale)


class TestPowerlaw:
    def test_basic_shape(self):
        g = powerlaw_graph(500, 6.0, rng=derive_rng(0))
        assert g.num_nodes == 500
        assert g.num_edges > 0
        assert not g.has_self_loops()

    def test_undirected(self):
        g = powerlaw_graph(200, 4.0, rng=derive_rng(1))
        src, dst = g.to_edge_index()
        edges = set(zip(src.tolist(), dst.tolist()))
        assert all((d, s) in edges for s, d in edges)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            powerlaw_graph(1, 2.0)

    def test_rejects_nonpositive_degree(self):
        with pytest.raises(ValueError):
            powerlaw_graph(10, 0.0)


class TestErdosRenyi:
    def test_average_degree_close(self):
        g = erdos_renyi_graph(2000, 10.0, rng=derive_rng(0))
        # undirected edges are stored in both directions, so mean in-degree
        # equals the target average degree (minus duplicate/self-loop loss)
        avg = g.num_edges / g.num_nodes
        assert 8.0 < avg < 10.5

    def test_deterministic(self):
        a = erdos_renyi_graph(100, 4.0, rng=derive_rng(2))
        b = erdos_renyi_graph(100, 4.0, rng=derive_rng(2))
        assert a == b
