"""Dataset registry and synthetic instantiation."""

import numpy as np
import pytest

from repro.graph.datasets import (
    DATASET_REGISTRY,
    DatasetSpec,
    list_datasets,
    load_dataset,
)


class TestRegistry:
    def test_all_paper_datasets_present(self):
        names = list_datasets()
        assert names == ["flickr", "reddit", "ogbn-products", "ogbn-papers100m"]

    def test_paper_table3_statistics(self):
        spec = DATASET_REGISTRY["ogbn-products"]
        assert spec.paper_num_nodes == 2_449_029
        assert spec.paper_num_edges == 61_859_140
        assert spec.feature_dim == 100
        assert spec.num_classes == 47

    def test_size_ordering_preserved(self):
        sizes = [DATASET_REGISTRY[n].local_num_nodes for n in list_datasets()]
        assert sizes == sorted(sizes)

    def test_avg_degree(self):
        spec = DATASET_REGISTRY["reddit"]
        assert spec.avg_degree == pytest.approx(11_606_919 / 232_965)

    def test_scale_factor(self):
        spec = DATASET_REGISTRY["flickr"]
        assert spec.paper_scale_factor == pytest.approx(89_250 / 4096)


class TestLoadDataset:
    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("citeseer")

    def test_case_insensitive(self):
        ds = load_dataset("FLICKR", seed=0, scale_override=8)
        assert ds.name == "flickr"

    def test_shapes_consistent(self, tiny_dataset):
        ds = tiny_dataset
        n = ds.num_nodes
        assert ds.features.shape == (n, ds.spec.feature_dim)
        assert ds.labels.shape == (n,)
        assert ds.labels.min() >= 0
        assert ds.labels.max() < ds.spec.num_classes

    def test_split_partitions_nodes(self, tiny_dataset):
        ds = tiny_dataset
        all_idx = np.concatenate([ds.train_idx, ds.val_idx, ds.test_idx])
        assert len(all_idx) == ds.num_nodes
        assert len(np.unique(all_idx)) == ds.num_nodes

    def test_deterministic_in_seed(self):
        a = load_dataset("flickr", seed=3, scale_override=8)
        b = load_dataset("flickr", seed=3, scale_override=8)
        assert a.graph == b.graph
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.labels, b.labels)
        assert np.array_equal(a.train_idx, b.train_idx)

    def test_seed_changes_instance(self):
        a = load_dataset("flickr", seed=3, scale_override=8)
        b = load_dataset("flickr", seed=4, scale_override=8)
        assert not np.array_equal(a.features, b.features)

    def test_scale_override(self):
        ds = load_dataset("reddit", seed=0, scale_override=9)
        assert ds.num_nodes == 512

    def test_layer_dims_paper_shape(self, tiny_dataset):
        dims = tiny_dataset.layer_dims(3)
        assert dims == [100, 128, 128, 47]

    def test_layer_dims_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.layer_dims(0)

    def test_labels_graph_correlated(self, tiny_dataset):
        """Planted labels must beat chance when predicted from neighbours —
        otherwise the convergence experiment is untrainable."""
        ds = tiny_dataset
        g = ds.graph
        hits, total = 0, 0
        for v in range(0, ds.num_nodes, 7):
            nb = g.neighbors(v)
            if nb.size == 0:
                continue
            counts = np.bincount(ds.labels[nb], minlength=ds.spec.num_classes)
            hits += counts.argmax() == ds.labels[v]
            total += 1
        assert hits / total > 2.0 / ds.spec.num_classes
