"""CLI smoke tests."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out and "fig1" in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "available commands" in capsys.readouterr().out

    def test_table6(self, capsys):
        assert main(["table6"]) == 0
        out = capsys.readouterr().out
        assert "Ice Lake" in out
        assert "295" in out

    def test_fig6(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "bandwidth" in out

    def test_landscape(self, capsys):
        assert main(["landscape", "--dataset", "flickr", "--platform", "sapphire"]) == 0
        out = capsys.readouterr().out
        assert "opt=" in out

    def test_bad_command(self):
        with pytest.raises(SystemExit):
            main(["nonexistent"])
