"""CLI smoke tests."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out and "fig1" in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "available commands" in capsys.readouterr().out

    def test_table6(self, capsys):
        assert main(["table6"]) == 0
        out = capsys.readouterr().out
        assert "Ice Lake" in out
        assert "295" in out

    def test_fig6(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "bandwidth" in out

    def test_landscape(self, capsys):
        assert main(["landscape", "--dataset", "flickr", "--platform", "sapphire"]) == 0
        out = capsys.readouterr().out
        assert "opt=" in out

    def test_bad_command(self):
        with pytest.raises(SystemExit):
            main(["nonexistent"])


class TestBackendValidation:
    def test_unknown_backend_fails_fast(self, capsys):
        with pytest.raises(SystemExit):
            main(["train", "--backend", "mpi"])
        err = capsys.readouterr().err
        assert "unknown backend 'mpi'" in err
        assert "inline" in err and "process" in err and "thread" in err

    def test_backend_case_insensitive(self, capsys):
        assert main(
            ["train", "--backend", "INLINE", "--processes", "1", "--epochs", "1",
             "--scale", "9", "--batch", "64"]
        ) == 0
        assert "backend=inline" in capsys.readouterr().out


class TestTrainPrefetch:
    def test_prefetch_flag_smoke(self, capsys):
        assert main(
            ["train", "--processes", "2", "--epochs", "1", "--scale", "9",
             "--batch", "64", "--prefetch", "--samplers", "2", "--queue-depth", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "prefetch(s=2, q=4)" in out
        assert "sample wait s" in out


class TestTrainPersistent:
    def test_persistent_smoke_reports_launch_column(self, capsys):
        assert main(
            ["train", "--backend", "process", "--processes", "2", "--epochs", "2",
             "--scale", "9", "--batch", "64", "--persistent"]
        ) == 0
        out = capsys.readouterr().out
        assert "persistent" in out
        assert "launch s" in out

    def test_no_persistent_selects_respawn(self, capsys):
        assert main(
            ["train", "--backend", "process", "--processes", "2", "--epochs", "1",
             "--scale", "9", "--batch", "64", "--no-persistent"]
        ) == 0
        assert "respawn" in capsys.readouterr().out

    def test_persistent_rejected_off_process_backend(self):
        with pytest.raises(SystemExit, match="process backend only"):
            main(
                ["train", "--backend", "inline", "--processes", "1", "--epochs", "1",
                 "--scale", "9", "--batch", "64", "--persistent"]
            )

    def test_no_persistent_rejected_off_process_backend(self):
        with pytest.raises(SystemExit, match="process backend only"):
            main(
                ["train", "--backend", "thread", "--processes", "1", "--epochs", "1",
                 "--scale", "9", "--batch", "64", "--no-persistent"]
            )
