"""CLI smoke tests."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out and "fig1" in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "available commands" in capsys.readouterr().out

    def test_table6(self, capsys):
        assert main(["table6"]) == 0
        out = capsys.readouterr().out
        assert "Ice Lake" in out
        assert "295" in out

    def test_fig6(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "bandwidth" in out

    def test_landscape(self, capsys):
        assert main(["landscape", "--dataset", "flickr", "--platform", "sapphire"]) == 0
        out = capsys.readouterr().out
        assert "opt=" in out

    def test_bad_command(self):
        with pytest.raises(SystemExit):
            main(["nonexistent"])


class TestBackendValidation:
    def test_unknown_backend_fails_fast(self, capsys):
        with pytest.raises(SystemExit):
            main(["train", "--backend", "mpi"])
        err = capsys.readouterr().err
        assert "unknown backend 'mpi'" in err
        assert "inline" in err and "process" in err and "thread" in err

    def test_backend_case_insensitive(self, capsys):
        assert main(
            ["train", "--backend", "INLINE", "--processes", "1", "--epochs", "1",
             "--scale", "9", "--batch", "64"]
        ) == 0
        assert "backend=inline" in capsys.readouterr().out


class TestTrainPrefetch:
    def test_prefetch_flag_smoke(self, capsys):
        assert main(
            ["train", "--processes", "2", "--epochs", "1", "--scale", "9",
             "--batch", "64", "--prefetch", "--samplers", "2", "--queue-depth", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "prefetch(s=2, q=4)" in out
        assert "sample wait s" in out


class TestTrainPersistent:
    def test_persistent_smoke_reports_launch_column(self, capsys):
        assert main(
            ["train", "--backend", "process", "--processes", "2", "--epochs", "2",
             "--scale", "9", "--batch", "64", "--persistent"]
        ) == 0
        out = capsys.readouterr().out
        assert "persistent" in out
        assert "launch s" in out

    def test_no_persistent_selects_respawn(self, capsys):
        assert main(
            ["train", "--backend", "process", "--processes", "2", "--epochs", "1",
             "--scale", "9", "--batch", "64", "--no-persistent"]
        ) == 0
        assert "respawn" in capsys.readouterr().out

    def test_persistent_rejected_off_process_backend(self):
        with pytest.raises(SystemExit, match="process backend only"):
            main(
                ["train", "--backend", "inline", "--processes", "1", "--epochs", "1",
                 "--scale", "9", "--batch", "64", "--persistent"]
            )

    def test_no_persistent_rejected_off_process_backend(self):
        with pytest.raises(SystemExit, match="process backend only"):
            main(
                ["train", "--backend", "thread", "--processes", "1", "--epochs", "1",
                 "--scale", "9", "--batch", "64", "--no-persistent"]
            )


class TestServeBench:
    def test_inline_smoke_reports_latency_and_cache(self, capsys):
        assert main(
            ["serve-bench", "--scale", "9", "--requests", "48", "--rate", "2000",
             "--max-batch", "4", "--max-wait-ms", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "throughput req/s" in out
        assert "latency p50 ms" in out and "latency p99 ms" in out
        assert "cache hit rate" in out
        assert "mode=inline" in out

    def test_pool_smoke_reports_pool_and_arena_stats(self, capsys):
        assert main(
            ["serve-bench", "--scale", "9", "--requests", "32", "--mode", "pool",
             "--serve-workers", "2", "--timeout", "30", "--max-batch", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "mode=pool" in out
        assert "launches=1" in out
        assert "slot hits=" in out and "pickle fallbacks=" in out

    def test_slo_verdict_rendered(self, capsys):
        assert main(
            ["serve-bench", "--scale", "9", "--requests", "24", "--slo-ms", "1e9"]
        ) == 0
        out = capsys.readouterr().out
        assert "SLO" in out and "MET" in out and "objective" in out

    def test_closed_loop_flag(self, capsys):
        assert main(
            ["serve-bench", "--scale", "9", "--requests", "24", "--closed",
             "--concurrency", "4"]
        ) == 0
        assert "closed(c=4)" in capsys.readouterr().out

    def test_frontier_batch_mode_smoke(self, capsys):
        assert main(
            ["serve-bench", "--scale", "9", "--requests", "32", "--rate", "5000",
             "--max-batch", "8", "--batch-mode", "frontier"]
        ) == 0
        assert "mode=inline/frontier" in capsys.readouterr().out

    def test_queue_limit_reports_shed(self, capsys):
        assert main(
            ["serve-bench", "--scale", "9", "--requests", "24",
             "--queue-limit", "16"]
        ) == 0
        out = capsys.readouterr().out
        assert "shed (queue limit)" in out and "max queue" in out

    def test_swaps_report_flat_launches(self, capsys):
        assert main(
            ["serve-bench", "--scale", "9", "--requests", "30", "--mode", "pool",
             "--serve-workers", "2", "--timeout", "30", "--swaps", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "swap 1: generation=1, launches=1" in out
        assert "swap 2: generation=2, launches=1" in out

    def test_bad_mode_fails_in_parser(self):
        with pytest.raises(SystemExit):
            main(["serve-bench", "--mode", "thread"])

    def test_bad_batch_mode_fails_in_parser(self):
        with pytest.raises(SystemExit):
            main(["serve-bench", "--batch-mode", "mega"])

    def test_zero_queue_limit_fails_in_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve-bench", "--queue-limit", "0"])
        assert "positive" in capsys.readouterr().err

    def test_negative_cache_fails_in_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve-bench", "--cache-entries", "-1"])
        assert "non-negative" in capsys.readouterr().err


class TestTrainPoolDiagnostics:
    def test_persistent_report_has_launches_and_parked_columns(self, capsys):
        assert main(
            ["train", "--backend", "process", "--processes", "2", "--epochs", "2",
             "--scale", "9", "--batch", "64", "--persistent"]
        ) == 0
        out = capsys.readouterr().out
        assert "launches" in out and "parked" in out

    def test_respawn_report_omits_pool_columns(self, capsys):
        assert main(
            ["train", "--backend", "process", "--processes", "2", "--epochs", "1",
             "--scale", "9", "--batch", "64", "--no-persistent"]
        ) == 0
        out = capsys.readouterr().out
        assert "launches" not in out and "parked" not in out


class TestServeBenchStreaming:
    def test_deltas_report_applied_and_flat_launches_inline(self, capsys):
        assert main(
            ["serve-bench", "--scale", "9", "--requests", "32", "--deltas", "3",
             "--delta-rate", "500", "--max-batch", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "deltas: applied=3/3" in out
        assert "generation=3" in out
        assert "invalidation=scoped" in out

    def test_deltas_into_live_pool_keep_launches_flat(self, capsys):
        assert main(
            ["serve-bench", "--scale", "9", "--requests", "32", "--mode", "pool",
             "--serve-workers", "2", "--timeout", "30", "--deltas", "2",
             "--delta-rate", "500", "--max-batch", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "deltas: applied=2/2" in out
        assert "launches=1" in out  # streaming never re-forked the pool

    def test_flush_invalidation_flag(self, capsys):
        assert main(
            ["serve-bench", "--scale", "9", "--requests", "24", "--deltas", "1",
             "--delta-rate", "500", "--delta-invalidation", "flush"]
        ) == 0
        assert "invalidation=flush" in capsys.readouterr().out

    def test_report_json_is_one_full_document(self, capsys, tmp_path):
        import json

        path = tmp_path / "report.json"
        assert main(
            ["serve-bench", "--scale", "9", "--requests", "24", "--deltas", "2",
             "--delta-rate", "500", "--staleness-budget", "1",
             "--slo-ms", "1e9", "--report-json", str(path)]
        ) == 0
        assert f"report-json: wrote {path}" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        # one document carrying the whole ServingReport
        for section in ("latency_ms", "batching", "phases_ms", "cache",
                        "transport", "freshness", "slo", "bench"):
            assert section in doc
        assert doc["requests"] == 24
        assert doc["freshness"]["updates_applied"] == 2
        assert doc["freshness"]["graph_generation"] == 2
        assert doc["bench"]["staleness_budget"] == 1
        assert doc["slo"]["attainment"] == 1.0

    def test_bad_delta_invalidation_fails_in_parser(self):
        with pytest.raises(SystemExit):
            main(["serve-bench", "--delta-invalidation", "psychic"])
