"""Communicator collectives: single-process and threaded worlds."""

import threading
import time

import numpy as np
import pytest

from repro.distributed.comm import (
    ProcessWorld,
    ResizableBarrier,
    SingleProcessComm,
    ThreadWorld,
)


class TestSingleProcessComm:
    def test_allreduce_identity(self):
        comm = SingleProcessComm()
        (out,) = comm.allreduce_mean([np.array([1.0, 2.0])])
        np.testing.assert_allclose(out, [1.0, 2.0])

    def test_allreduce_copies(self):
        comm = SingleProcessComm()
        arr = np.array([1.0])
        (out,) = comm.allreduce_mean([arr])
        out[0] = 9.0
        assert arr[0] == 1.0

    def test_broadcast_identity(self):
        comm = SingleProcessComm()
        (out,) = comm.broadcast([np.array([3.0])])
        np.testing.assert_allclose(out, [3.0])

    def test_broadcast_bad_root(self):
        with pytest.raises(ValueError):
            SingleProcessComm().broadcast([np.ones(1)], root=1)

    def test_gather(self):
        assert SingleProcessComm().gather("x") == ["x"]


def run_world(world_size, fn):
    """Run fn(comm, rank) on world_size threads; return results by rank."""
    world = ThreadWorld(world_size)
    results = [None] * world_size
    errors = []

    def worker(rank):
        try:
            results[rank] = fn(world.communicator(rank), rank)
        except BaseException as exc:
            errors.append(exc)
            world.abort()
            raise

    threads = [threading.Thread(target=worker, args=(r,)) for r in range(world_size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return results


class TestThreadWorld:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_allreduce_mean(self, n):
        def fn(comm, rank):
            (out,) = comm.allreduce_mean([np.full(3, float(rank))])
            return out

        results = run_world(n, fn)
        expected = np.full(3, (n - 1) / 2.0)
        for out in results:
            np.testing.assert_allclose(out, expected)

    def test_allreduce_multiple_arrays(self):
        def fn(comm, rank):
            return comm.allreduce_mean([np.array([rank + 1.0]), np.array([10.0 * rank])])

        for out in run_world(2, fn):
            np.testing.assert_allclose(out[0], [1.5])
            np.testing.assert_allclose(out[1], [5.0])

    def test_repeated_allreduce_rounds(self):
        def fn(comm, rank):
            vals = []
            for i in range(5):
                (out,) = comm.allreduce_mean([np.array([float(rank + i)])])
                vals.append(out[0])
            return vals

        a, b = run_world(2, fn)
        assert a == b == [0.5, 1.5, 2.5, 3.5, 4.5]

    def test_broadcast(self):
        def fn(comm, rank):
            payload = [np.array([42.0])] if rank == 0 else [np.array([0.0])]
            (out,) = comm.broadcast(payload, root=0)
            return out[0]

        assert run_world(3, fn) == [42.0, 42.0, 42.0]

    def test_gather(self):
        def fn(comm, rank):
            return comm.gather(rank * 10, root=0)

        results = run_world(3, fn)
        assert results[0] == [0, 10, 20]
        assert results[1] is None and results[2] is None

    def test_allreduce_dtype_preserved(self):
        def fn(comm, rank):
            (out,) = comm.allreduce_mean([np.ones(2, dtype=np.float32)])
            return out.dtype

        assert all(d == np.float32 for d in run_world(2, fn))

    def test_world_size_one(self):
        def fn(comm, rank):
            (out,) = comm.allreduce_mean([np.array([7.0])])
            return out[0]

        assert run_world(1, fn) == [7.0]

    def test_invalid_rank(self):
        world = ThreadWorld(2)
        with pytest.raises(ValueError):
            world.communicator(5)

    def test_invalid_world_size(self):
        with pytest.raises(ValueError):
            ThreadWorld(0)

    @pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_abort_unblocks(self):
        """One failing rank must not deadlock the others."""

        def fn(comm, rank):
            if rank == 0:
                raise RuntimeError("rank 0 dies")
            with pytest.raises(threading.BrokenBarrierError):
                comm.allreduce_mean([np.ones(1)])
            return "survived"

        with pytest.raises(RuntimeError, match="rank 0 dies"):
            run_world(2, fn)


class TestResizableBarrier:
    """The shared-state barrier behind the single resizable ProcessWorld.

    Thread-level tests: the barrier's state lives in a shared RawArray,
    so the cross-process behaviour is the same code path — these cover
    the generation/resize/broken protocol without fork overhead.
    """

    def _rendezvous(self, barrier, parties, timeout=5.0):
        results = [None] * parties

        def worker(i):
            results[i] = barrier.wait(timeout=timeout)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(parties)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return results

    def test_arrival_indices(self):
        barrier = ResizableBarrier(3)
        out = self._rendezvous(barrier, 3)
        assert sorted(out) == [0, 1, 2]

    def test_reusable_across_generations(self):
        barrier = ResizableBarrier(2)
        for _ in range(3):
            out = self._rendezvous(barrier, 2)
            assert sorted(out) == [0, 1]

    def test_single_party_returns_immediately(self):
        barrier = ResizableBarrier(1)
        assert barrier.wait(timeout=0.1) == 0
        assert barrier.wait(timeout=0.1) == 0

    def test_resize_changes_parties(self):
        barrier = ResizableBarrier(3)
        assert barrier.parties == 3
        barrier.resize(2)
        assert barrier.parties == 2
        assert sorted(self._rendezvous(barrier, 2)) == [0, 1]
        barrier.resize(1)
        assert barrier.wait(timeout=0.1) == 0

    def test_timeout_breaks_permanently(self):
        barrier = ResizableBarrier(2)
        with pytest.raises(threading.BrokenBarrierError):
            barrier.wait(timeout=0.05)
        assert barrier.broken
        # broken is permanent: future waiters fail fast, resize refuses
        with pytest.raises(threading.BrokenBarrierError):
            barrier.wait(timeout=0.05)
        with pytest.raises(RuntimeError):
            barrier.resize(3)

    def test_abort_wakes_waiter(self):
        barrier = ResizableBarrier(2)
        caught = []

        def waiter():
            try:
                barrier.wait(timeout=5.0)
            except threading.BrokenBarrierError:
                caught.append(True)

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        barrier.abort()
        t.join(timeout=5.0)
        assert caught == [True]
        assert barrier.broken

    def test_rejects_bad_parties(self):
        with pytest.raises(ValueError):
            ResizableBarrier(0)
        with pytest.raises(ValueError):
            ResizableBarrier(2).resize(0)


class TestProcessWorldResize:
    """Parent resize / worker rebind bookkeeping on one shared world."""

    def test_resize_within_creation_ceiling(self):
        world = ProcessWorld(3, capacity=8)
        try:
            assert world.max_world_size == 3
            world.resize(1)
            assert world.world_size == 1
            assert world._barrier.parties == 1
            world.resize(2)
            assert world.world_size == 2
            with pytest.raises(ValueError):
                world.resize(4)  # beyond the creation layout
            with pytest.raises(ValueError):
                world.resize(0)
        finally:
            world.close()
            world.unlink()

    def test_rebind_is_local_only(self):
        world = ProcessWorld(2, capacity=8)
        try:
            world.resize(1)
            world.rebind(1)
            assert world.world_size == 1
            with pytest.raises(ValueError):
                world.rebind(3)
            with pytest.raises(ValueError):
                world.communicator(1)  # rank beyond the rebound size
        finally:
            world.close()
            world.unlink()


class TestResizeAbortRaces:
    """Resize racing timeouts/aborts: the pool's live-resize hazard.

    ``resize`` is documented legal only between collectives, but the
    parent cannot *observe* a worker entering ``wait`` atomically — so
    the barrier must turn every racy interleaving into a clean refusal
    (RuntimeError) or a clean break (BrokenBarrierError), never a hang
    and never a silent wrong-parties rendezvous.
    """

    def test_resize_refused_while_rank_waiting(self):
        barrier = ResizableBarrier(2)
        entered = threading.Event()
        out = []

        def waiter():
            entered.set()
            out.append(barrier.wait(timeout=5.0))

        t = threading.Thread(target=waiter)
        t.start()
        entered.wait(timeout=5.0)
        time.sleep(0.05)  # let the waiter register (count == 1)
        with pytest.raises(RuntimeError, match="waiting"):
            barrier.resize(3)
        # the refusal left the barrier fully usable: complete the cycle
        assert barrier.wait(timeout=5.0) in (0, 1)
        t.join(timeout=5.0)
        assert not t.is_alive() and len(out) == 1

    def test_resize_concurrent_with_worker_timeout(self):
        """Parent hammers resize() while a worker times out mid-wait.

        Every resize call must either succeed (strictly before the
        waiter registered) or raise RuntimeError (waiter registered, or
        barrier already broken) — and the timing-out waiter must always
        get its BrokenBarrierError, never a hang.
        """
        barrier = ResizableBarrier(2)
        broke = []

        def waiter():
            try:
                barrier.wait(timeout=0.2)
            except threading.BrokenBarrierError:
                broke.append(True)

        t = threading.Thread(target=waiter)
        t.start()
        deadline = time.monotonic() + 2.0
        refusals = 0
        while t.is_alive() and time.monotonic() < deadline:
            try:
                barrier.resize(2)
            except RuntimeError:
                refusals += 1
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert broke == [True]
        assert barrier.broken
        # post-break resizes keep refusing with the broken-barrier error
        with pytest.raises(RuntimeError, match="broken"):
            barrier.resize(1)

    def test_abort_racing_resize_never_hangs(self):
        """abort() from one thread while another resizes: both return,
        and the loser of the race sees a consistent broken barrier."""
        for _ in range(20):
            barrier = ResizableBarrier(3)
            t = threading.Thread(target=barrier.abort)
            t.start()
            try:
                barrier.resize(2)
            except RuntimeError:
                pass  # abort won the race
            t.join(timeout=5.0)
            assert not t.is_alive()
            assert barrier.broken
            with pytest.raises(threading.BrokenBarrierError):
                barrier.wait(timeout=0.1)


class TestRebindAfterBreak:
    def test_rebind_broken_world_raises_cleanly(self):
        """A worker whose Rebind command lands after a peer abort must
        fail attributably instead of adopting the new size and dying in
        the next collective."""
        world = ProcessWorld(2, capacity=8)
        try:
            world.abort()
            assert world.broken
            with pytest.raises(RuntimeError, match="broken world"):
                world.rebind(1)
            # bookkeeping untouched by the refused rebind
            assert world.world_size == 2
        finally:
            world.close()
            world.unlink()

    def test_rebind_range_check_precedes_broken_check(self):
        world = ProcessWorld(2, capacity=8)
        try:
            world.abort()
            with pytest.raises(ValueError):
                world.rebind(5)  # out of range stays ValueError, broken or not
        finally:
            world.close()
            world.unlink()
