"""Communicator collectives: single-process and threaded worlds."""

import threading

import numpy as np
import pytest

from repro.distributed.comm import SingleProcessComm, ThreadWorld


class TestSingleProcessComm:
    def test_allreduce_identity(self):
        comm = SingleProcessComm()
        (out,) = comm.allreduce_mean([np.array([1.0, 2.0])])
        np.testing.assert_allclose(out, [1.0, 2.0])

    def test_allreduce_copies(self):
        comm = SingleProcessComm()
        arr = np.array([1.0])
        (out,) = comm.allreduce_mean([arr])
        out[0] = 9.0
        assert arr[0] == 1.0

    def test_broadcast_identity(self):
        comm = SingleProcessComm()
        (out,) = comm.broadcast([np.array([3.0])])
        np.testing.assert_allclose(out, [3.0])

    def test_broadcast_bad_root(self):
        with pytest.raises(ValueError):
            SingleProcessComm().broadcast([np.ones(1)], root=1)

    def test_gather(self):
        assert SingleProcessComm().gather("x") == ["x"]


def run_world(world_size, fn):
    """Run fn(comm, rank) on world_size threads; return results by rank."""
    world = ThreadWorld(world_size)
    results = [None] * world_size
    errors = []

    def worker(rank):
        try:
            results[rank] = fn(world.communicator(rank), rank)
        except BaseException as exc:
            errors.append(exc)
            world.abort()
            raise

    threads = [threading.Thread(target=worker, args=(r,)) for r in range(world_size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return results


class TestThreadWorld:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_allreduce_mean(self, n):
        def fn(comm, rank):
            (out,) = comm.allreduce_mean([np.full(3, float(rank))])
            return out

        results = run_world(n, fn)
        expected = np.full(3, (n - 1) / 2.0)
        for out in results:
            np.testing.assert_allclose(out, expected)

    def test_allreduce_multiple_arrays(self):
        def fn(comm, rank):
            return comm.allreduce_mean([np.array([rank + 1.0]), np.array([10.0 * rank])])

        for out in run_world(2, fn):
            np.testing.assert_allclose(out[0], [1.5])
            np.testing.assert_allclose(out[1], [5.0])

    def test_repeated_allreduce_rounds(self):
        def fn(comm, rank):
            vals = []
            for i in range(5):
                (out,) = comm.allreduce_mean([np.array([float(rank + i)])])
                vals.append(out[0])
            return vals

        a, b = run_world(2, fn)
        assert a == b == [0.5, 1.5, 2.5, 3.5, 4.5]

    def test_broadcast(self):
        def fn(comm, rank):
            payload = [np.array([42.0])] if rank == 0 else [np.array([0.0])]
            (out,) = comm.broadcast(payload, root=0)
            return out[0]

        assert run_world(3, fn) == [42.0, 42.0, 42.0]

    def test_gather(self):
        def fn(comm, rank):
            return comm.gather(rank * 10, root=0)

        results = run_world(3, fn)
        assert results[0] == [0, 10, 20]
        assert results[1] is None and results[2] is None

    def test_allreduce_dtype_preserved(self):
        def fn(comm, rank):
            (out,) = comm.allreduce_mean([np.ones(2, dtype=np.float32)])
            return out.dtype

        assert all(d == np.float32 for d in run_world(2, fn))

    def test_world_size_one(self):
        def fn(comm, rank):
            (out,) = comm.allreduce_mean([np.array([7.0])])
            return out[0]

        assert run_world(1, fn) == [7.0]

    def test_invalid_rank(self):
        world = ThreadWorld(2)
        with pytest.raises(ValueError):
            world.communicator(5)

    def test_invalid_world_size(self):
        with pytest.raises(ValueError):
            ThreadWorld(0)

    @pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_abort_unblocks(self):
        """One failing rank must not deadlock the others."""

        def fn(comm, rank):
            if rank == 0:
                raise RuntimeError("rank 0 dies")
            with pytest.raises(threading.BrokenBarrierError):
                comm.allreduce_mean([np.ones(1)])
            return "survived"

        with pytest.raises(RuntimeError, match="rank 0 dies"):
            run_world(2, fn)
