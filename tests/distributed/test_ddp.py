"""DDP semantics: replication, gradient averaging, batch-size equivalence."""

import numpy as np
import pytest

from repro.autograd.functional import cross_entropy
from repro.autograd.module import Linear
from repro.autograd.tensor import Tensor
from repro.distributed.comm import SingleProcessComm
from repro.distributed.ddp import (
    DistributedDataParallel,
    average_gradients,
    replicate_module,
)


def make_model(seed=0):
    return Linear(4, 3, rng=np.random.default_rng(seed))


class TestReplicate:
    def test_count(self):
        reps = replicate_module(make_model(), 4)
        assert len(reps) == 4

    def test_first_is_original(self):
        m = make_model()
        reps = replicate_module(m, 3)
        assert reps[0] is m

    def test_weights_identical_but_independent(self):
        reps = replicate_module(make_model(), 2)
        np.testing.assert_array_equal(reps[0].weight.data, reps[1].weight.data)
        reps[1].weight.data = reps[1].weight.data + 1.0
        assert not np.array_equal(reps[0].weight.data, reps[1].weight.data)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            replicate_module(make_model(), 0)


class TestAverageGradients:
    def test_mean_of_grads(self):
        reps = replicate_module(make_model(), 2)
        reps[0].weight.grad = np.ones((4, 3), dtype=np.float32)
        reps[1].weight.grad = 3 * np.ones((4, 3), dtype=np.float32)
        reps[0].bias.grad = np.zeros(3, dtype=np.float32)
        reps[1].bias.grad = np.zeros(3, dtype=np.float32)
        average_gradients(reps)
        np.testing.assert_allclose(reps[0].weight.grad, 2.0)
        np.testing.assert_allclose(reps[1].weight.grad, 2.0)

    def test_none_counts_as_zero(self):
        reps = replicate_module(make_model(), 2)
        reps[0].weight.grad = np.full((4, 3), 4.0, dtype=np.float32)
        average_gradients(reps)
        np.testing.assert_allclose(reps[0].weight.grad, 2.0)
        np.testing.assert_allclose(reps[1].weight.grad, 2.0)

    def test_all_none_stays_none(self):
        reps = replicate_module(make_model(), 2)
        average_gradients(reps)
        assert reps[0].weight.grad is None

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            average_gradients([])


class TestBatchSizeEquivalence:
    """Paper Sec. IV-B2: n ranks at batch b/n with gradient averaging is
    algorithmically equivalent to one process at batch b."""

    def test_gradient_identity(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((8, 4)).astype(np.float32)
        y = rng.integers(0, 3, size=8)

        # single process, full batch
        single = make_model(seed=1)
        loss = cross_entropy(single(Tensor(x)), y)
        single.zero_grad()
        loss.backward()
        ref = single.weight.grad.copy()

        # two ranks, half batches each, averaged
        reps = replicate_module(make_model(seed=1), 2)
        for rank, sl in enumerate([slice(0, 4), slice(4, 8)]):
            loss = cross_entropy(reps[rank](Tensor(x[sl])), y[sl])
            reps[rank].zero_grad()
            loss.backward()
        average_gradients(reps)
        np.testing.assert_allclose(reps[0].weight.grad, ref, rtol=1e-4, atol=1e-6)

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_identity_for_any_rank_count(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal((16, 4)).astype(np.float32)
        y = rng.integers(0, 3, size=16)
        single = make_model(seed=2)
        loss = cross_entropy(single(Tensor(x)), y)
        loss.backward()
        ref = single.weight.grad.copy()

        reps = replicate_module(make_model(seed=2), n)
        chunk = 16 // n
        for rank in range(n):
            sl = slice(rank * chunk, (rank + 1) * chunk)
            loss = cross_entropy(reps[rank](Tensor(x[sl])), y[sl])
            loss.backward()
        average_gradients(reps)
        np.testing.assert_allclose(reps[0].weight.grad, ref, rtol=1e-3, atol=1e-5)


class TestDDPWrapper:
    def test_broadcast_on_init(self):
        model = make_model()
        ddp = DistributedDataParallel(model, SingleProcessComm())
        assert ddp.module is model

    def test_sync_gradients_single_world(self):
        ddp = DistributedDataParallel(make_model())
        x = Tensor(np.ones((2, 4)))
        loss = cross_entropy(ddp(x), np.array([0, 1]))
        ddp.zero_grad()
        loss.backward()
        before = ddp.module.weight.grad.copy()
        ddp.sync_gradients()
        np.testing.assert_allclose(ddp.module.weight.grad, before, rtol=1e-6)

    def test_train_eval_passthrough(self):
        ddp = DistributedDataParallel(make_model())
        ddp.eval()
        assert not ddp.module.training
        ddp.train()
        assert ddp.module.training
