"""Workload measurement: the Fig. 5/6 mechanisms on real samplers."""

import numpy as np
import pytest

from repro.sampling.neighbor import NeighborSampler
from repro.sampling.shadow import ShadowSampler
from repro.workload.stats import duplicate_aggregation_count, measure_workload


class TestMeasureWorkload:
    def test_basic_fields(self, tiny_dataset):
        ws = measure_workload(tiny_dataset, NeighborSampler([5, 5]), 16, seed=0)
        assert ws.batch_size == 16
        assert ws.edges_per_iter > 0
        assert ws.input_nodes_per_iter >= 16
        assert ws.num_layers == 2
        assert len(ws.layer_rows) == 2

    def test_deterministic(self, tiny_dataset):
        a = measure_workload(tiny_dataset, NeighborSampler([5, 5]), 16, seed=3)
        b = measure_workload(tiny_dataset, NeighborSampler([5, 5]), 16, seed=3)
        assert a == b

    def test_edges_grow_with_batch(self, tiny_dataset):
        s = NeighborSampler([5, 5])
        e8 = measure_workload(tiny_dataset, s, 8, seed=0).edges_per_iter
        e64 = measure_workload(tiny_dataset, s, 64, seed=0).edges_per_iter
        assert e64 > e8

    def test_sublinear_growth(self, tiny_dataset):
        """Shared neighbours make edges-per-seed fall as batches grow."""
        s = NeighborSampler([10, 10])
        e8 = measure_workload(tiny_dataset, s, 8, seed=0).edges_per_iter
        e128 = measure_workload(tiny_dataset, s, 128, seed=0).edges_per_iter
        assert e128 / 128 < e8 / 8

    def test_neighbor_structure_equals_total(self, tiny_dataset):
        """Every neighbour-sampling block is a distinct structure."""
        ws = measure_workload(tiny_dataset, NeighborSampler([5, 5]), 16, seed=0)
        assert ws.structure_edges_per_iter == pytest.approx(ws.edges_per_iter)

    def test_shadow_structure_cheaper_than_total(self, tiny_dataset):
        """ShaDow reuses one subgraph across L layers: the sampler pays
        for far fewer edges than aggregation touches."""
        ws = measure_workload(tiny_dataset, ShadowSampler(num_layers=3), 16, seed=0)
        assert ws.structure_edges_per_iter < 0.8 * ws.edges_per_iter

    def test_rejects_bad_args(self, tiny_dataset):
        with pytest.raises(ValueError):
            measure_workload(tiny_dataset, NeighborSampler([5]), 0)
        with pytest.raises(ValueError):
            measure_workload(tiny_dataset, NeighborSampler([5]), 8, num_batches=0)


class TestFig5Effect:
    def test_splitting_increases_workload(self, tiny_dataset):
        """Paper Fig. 5: splitting a batch loses shared neighbours, so the
        summed workload of the splits exceeds the whole batch's."""
        sampler = NeighborSampler([10, 10])
        whole, split = duplicate_aggregation_count(tiny_dataset, sampler, 64, 8, seed=0)
        assert split > whole

    def test_single_split_is_identity_scale(self, tiny_dataset):
        sampler = NeighborSampler([5, 5])
        whole, split = duplicate_aggregation_count(tiny_dataset, sampler, 32, 1, seed=0)
        # same seeds, sampling randomness only
        assert split == pytest.approx(whole, rel=0.2)

    def test_rejects_bad_splits(self, tiny_dataset):
        with pytest.raises(ValueError):
            duplicate_aggregation_count(tiny_dataset, NeighborSampler([5]), 8, 0)
