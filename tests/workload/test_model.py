"""WorkloadModel curves and accounting."""

import numpy as np
import pytest

from repro.sampling.neighbor import NeighborSampler
from repro.sampling.shadow import ShadowSampler
from repro.workload.model import ALPHA_CAP, WorkloadModel


@pytest.fixture(scope="module")
def neighbor_wm(request):
    tiny = request.getfixturevalue("tiny_dataset")
    return WorkloadModel(tiny, NeighborSampler([5, 5, 5]), num_batches=2, seed=0)


class TestCurves:
    def test_alpha_sublinear(self, neighbor_wm):
        assert 0.0 < neighbor_wm.alpha <= ALPHA_CAP

    def test_monotone_in_batch(self, neighbor_wm):
        vals = [neighbor_wm.edges_per_iter(b) for b in (1, 8, 64, 512)]
        assert vals == sorted(vals)

    def test_anchored_at_measurement(self, neighbor_wm):
        """The power-law prediction must match the largest measured point."""
        anchor = neighbor_wm.samples[-1]
        pred = neighbor_wm.edges_per_iter(anchor.batch_size)
        assert pred == pytest.approx(anchor.edges_per_iter, rel=1e-6)

    def test_interp_mode_hits_all_measurements(self, tiny_dataset):
        wm = WorkloadModel(
            tiny_dataset, NeighborSampler([5, 5]), mode="interp", num_batches=2, seed=0
        )
        for s in wm.samples:
            assert wm.edges_per_iter(s.batch_size) == pytest.approx(
                max(s.edges_per_iter, 1.0), rel=1e-6
            )

    def test_shadow_alpha_capped(self, tiny_dataset):
        """Small dense graphs measure superlinear ShaDow growth; the model
        must cap the exponent (superlinear per-iteration workload is a
        small-graph artefact, impossible at paper scale)."""
        wm = WorkloadModel(tiny_dataset, ShadowSampler(num_layers=3), num_batches=2, seed=0)
        assert wm.alpha <= ALPHA_CAP

    def test_rejects_bad_mode(self, tiny_dataset):
        with pytest.raises(ValueError):
            WorkloadModel(tiny_dataset, NeighborSampler([5]), mode="spline")


class TestEpochAccounting:
    def test_epoch_edges_grow_with_processes(self, neighbor_wm):
        """Fig. 6 workload curve."""
        vals = [neighbor_wm.epoch_edges(n, 1024, 50_000) for n in (1, 2, 4, 8, 16)]
        assert vals == sorted(vals)

    def test_epoch_edges_single_process_baseline(self, neighbor_wm):
        iters = int(np.ceil(50_000 / 1024))
        expected = iters * neighbor_wm.edges_per_iter(1024)
        assert neighbor_wm.epoch_edges(1, 1024, 50_000) == pytest.approx(expected)

    def test_rejects_zero_processes(self, neighbor_wm):
        with pytest.raises(ValueError):
            neighbor_wm.epoch_edges(0, 1024, 1000)


class TestConversion:
    def test_flops_positive_and_monotone(self, neighbor_wm, request):
        tiny = request.getfixturevalue("tiny_dataset")
        dims = tiny.layer_dims(3)
        f64 = neighbor_wm.flops_per_iter(64, dims, "sage")
        f512 = neighbor_wm.flops_per_iter(512, dims, "sage")
        assert 0 < f64 < f512

    def test_sage_concat_doubles_gemm(self, neighbor_wm, request):
        tiny = request.getfixturevalue("tiny_dataset")
        dims = tiny.layer_dims(3)
        sage = neighbor_wm.flops_per_iter(64, dims, "sage")
        gcn = neighbor_wm.flops_per_iter(64, dims, "gcn")
        assert sage > 1.5 * gcn

    def test_bytes_positive(self, neighbor_wm, request):
        tiny = request.getfixturevalue("tiny_dataset")
        assert neighbor_wm.bytes_per_iter(64, tiny.layer_dims(3)) > 0

    def test_dims_validated(self, neighbor_wm):
        with pytest.raises(ValueError):
            neighbor_wm.flops_per_iter(64, [4, 2], "sage")
        with pytest.raises(ValueError):
            neighbor_wm.bytes_per_iter(64, [4, 2])
