"""MicroBatcher deadline semantics, driven with an explicit clock."""

import pytest

from repro.serve.batcher import MicroBatcher, Request


def req(i, t):
    return Request(id=i, node=i, arrival=t)


class TestValidation:
    def test_bad_max_batch(self):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(0, 1.0)

    def test_bad_max_wait(self):
        with pytest.raises(ValueError, match="max_wait_ms"):
            MicroBatcher(1, -1.0)

    def test_pop_empty(self):
        with pytest.raises(ValueError, match="empty"):
            MicroBatcher(2, 1.0).pop(0.0)


class TestFullFlush:
    def test_flushes_immediately_when_full(self):
        b = MicroBatcher(3, max_wait_ms=1000.0)
        for i in range(3):
            b.submit(req(i, 0.0))
        assert b.ready(0.0)  # long deadline irrelevant: the batch is full
        batch = b.pop(0.0)
        assert [r.id for r in batch] == [0, 1, 2]
        assert b.stats.full_flushes == 1 and b.stats.deadline_flushes == 0

    def test_burst_larger_than_batch_splits_fifo(self):
        b = MicroBatcher(4, max_wait_ms=50.0)
        for i in range(10):
            b.submit(req(i, 0.0))
        first = b.pop(0.0)
        second = b.pop(0.0)
        assert [r.id for r in first] == [0, 1, 2, 3]
        assert [r.id for r in second] == [4, 5, 6, 7]
        # the burst's tail is below max_batch: it waits for its deadline
        assert not b.ready(0.0)
        assert b.ready(0.050)
        assert [r.id for r in b.pop(0.050)] == [8, 9]
        assert b.stats.full_flushes == 2 and b.stats.deadline_flushes == 1
        assert b.stats.mean_batch == pytest.approx(10 / 3)


class TestDeadlineFlush:
    def test_partial_batch_waits_until_oldest_deadline(self):
        b = MicroBatcher(8, max_wait_ms=2.0)
        b.submit(req(0, 0.010))
        assert not b.ready(0.010)
        assert not b.ready(0.0119)
        assert b.next_deadline() == pytest.approx(0.012)
        assert b.ready(0.012)
        assert [r.id for r in b.pop(0.012)] == [0]
        assert b.stats.deadline_flushes == 1

    def test_deadline_follows_oldest_not_newest(self):
        """A trickle of arrivals must not postpone the first request."""
        b = MicroBatcher(8, max_wait_ms=5.0)
        b.submit(req(0, 0.0))
        b.submit(req(1, 0.004))  # newer arrival, later own deadline
        assert b.next_deadline() == pytest.approx(0.005)
        assert b.ready(0.005)
        batch = b.pop(0.005)
        assert [r.id for r in batch] == [0, 1]  # the newcomer rides along

    def test_pop_before_deadline_rejected(self):
        b = MicroBatcher(8, max_wait_ms=10.0)
        b.submit(req(0, 0.0))
        with pytest.raises(ValueError, match="not ready"):
            b.pop(0.001)

    def test_zero_wait_flushes_on_first_poll(self):
        b = MicroBatcher(8, max_wait_ms=0.0)
        b.submit(req(0, 0.5))
        assert b.ready(0.5)
        assert b.pop(0.5)[0].id == 0


class TestBurstyArrivals:
    def test_gapped_bursts_each_flush_on_their_own_deadline(self):
        b = MicroBatcher(16, max_wait_ms=1.0)
        for i in range(3):
            b.submit(req(i, 0.0))
        # first burst flushes at its deadline, before the second arrives
        assert b.ready(0.001)
        assert len(b.pop(0.001)) == 3
        for i in range(3, 5):
            b.submit(req(i, 0.100))
        assert not b.ready(0.100)
        assert b.ready(0.101)
        assert [r.id for r in b.pop(0.101)] == [3, 4]
        assert b.stats.deadline_flushes == 2

    def test_drain_flushes_partial_batch_before_deadline(self):
        b = MicroBatcher(16, max_wait_ms=1000.0)
        b.submit(req(0, 0.0))
        batch = b.pop(0.0, drain=True)
        assert [r.id for r in batch] == [0]
        assert b.stats.drain_flushes == 1
        assert len(b) == 0


class TestShedOldest:
    def test_shed_drops_head_and_counts(self):
        b = MicroBatcher(8, max_wait_ms=5.0)
        for i in range(3):
            b.submit(req(i, i * 0.001))
        victim = b.shed_oldest()
        assert victim.id == 0  # oldest first
        assert len(b) == 2
        assert b.stats.shed == 1
        # the survivors flush normally, in arrival order
        assert [r.id for r in b.pop(0.0, drain=True)] == [1, 2]

    def test_shed_moves_the_deadline(self):
        b = MicroBatcher(8, max_wait_ms=1.0)  # 1 ms wait -> 0.001 s
        b.submit(req(0, 0.0))
        b.submit(req(1, 0.5))
        assert b.next_deadline() == pytest.approx(0.001)
        b.shed_oldest()
        assert b.next_deadline() == pytest.approx(0.501)

    def test_shed_empty_rejected(self):
        b = MicroBatcher(4, max_wait_ms=1.0)
        with pytest.raises(ValueError, match="empty"):
            b.shed_oldest()

    def test_shed_requests_never_enter_flush_stats(self):
        b = MicroBatcher(2, max_wait_ms=1.0)
        for i in range(3):
            b.submit(req(i, 0.0))
        b.shed_oldest()
        batch = b.pop(0.0)
        assert b.stats.requests == len(batch) == 2
        assert b.stats.shed == 1
