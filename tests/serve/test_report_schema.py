"""ServingReport JSON schema: versioned, JSON-round-trippable documents."""

import json

import numpy as np

from repro.serve.cache import CacheStats
from repro.serve.workload import (
    SERVING_REPORT_SCHEMA_VERSION,
    ServingReport,
    run_serving_workload,
)
from repro.shm.arena import TransportStats


def _report(**overrides) -> ServingReport:
    base = dict(
        mode="inline",
        requests=4,
        duration_s=0.5,
        service_s=0.1,
        throughput_rps=8.0,
        mean_ms=1.0,
        p50_ms=1.0,
        p95_ms=2.0,
        p99_ms=3.0,
        mean_batch=2.0,
        full_flushes=1,
        deadline_flushes=1,
        drain_flushes=0,
        cache=CacheStats(hits=2, misses=2),
        transport=TransportStats(arena_hits=3, pickle_fallbacks=1),
        latencies_s=np.array([0.001, 0.002, 0.001, np.nan]),
        shed_count=1,
    )
    base.update(overrides)
    return ServingReport(**base)


class TestReportSchema:
    def test_as_dict_carries_schema_version(self):
        doc = _report().as_dict()
        assert doc["schema_version"] == SERVING_REPORT_SCHEMA_VERSION

    def test_round_trips_through_json(self):
        doc = _report().as_dict(slo_ms=10.0)
        clone = json.loads(json.dumps(doc))
        assert clone == doc
        assert clone["schema_version"] == SERVING_REPORT_SCHEMA_VERSION
        assert clone["transport"]["pickle_fallbacks"] == 1
        assert clone["slo"]["target_ms"] == 10.0

    def test_expected_sections(self):
        doc = _report().as_dict()
        assert set(doc) >= {
            "schema_version", "mode", "requests", "served", "latency_ms",
            "batching", "phases_ms", "cache", "transport", "balance",
            "freshness",
        }

    def test_live_workload_document(self, tiny_dataset, trained_snapshot):
        """End-to-end: a real run's as_dict is a valid versioned doc."""
        from repro.serve.engine import InferenceEngine

        with InferenceEngine(
            trained_snapshot, tiny_dataset, cache_entries=64
        ) as eng:
            report = run_serving_workload(
                eng, num_requests=16, rate_rps=1e6, seed=0
            )
        doc = json.loads(json.dumps(report.as_dict(slo_ms=50.0)))
        assert doc["schema_version"] == SERVING_REPORT_SCHEMA_VERSION
        assert doc["requests"] == 16
        assert doc["batching"]["full_flushes"] == report.full_flushes
