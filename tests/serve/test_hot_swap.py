"""Hot snapshot swap: live engines reload weights without relaunching.

``InferenceEngine.reload(snapshot)`` must (1) serve the new weights
bit-identically to a fresh engine built from that snapshot, (2) keep the
persistent pool's workers alive — weights travel the ParamStore channel,
``pool.launches`` never increments — and (3) invalidate the prediction
cache (cached rows belong to the old weights).
"""

import numpy as np
import pytest

from repro.core.engine import MultiProcessEngine
from repro.gnn.models import make_task
from repro.serve.engine import InferenceEngine
from repro.serve.snapshot import ModelSnapshot


@pytest.fixture(scope="module")
def snapshot_generations(tiny_dataset):
    """Snapshots of the same model at three training generations."""
    sampler, model = make_task(
        "neighbor-sage", tiny_dataset.layer_dims(2), seed=0, fanouts=[5, 5]
    )
    engine = MultiProcessEngine(
        tiny_dataset, sampler, model, num_processes=1, global_batch_size=128,
        backend="inline", seed=0,
    )
    snaps = [ModelSnapshot.from_engine(engine)]
    for _ in range(2):
        engine.train(1)
        snaps.append(ModelSnapshot.from_engine(engine))
    return snaps


def fresh_predictions(snapshot, dataset, nodes):
    with InferenceEngine(snapshot, dataset, cache_entries=0) as eng:
        return eng.predict(nodes)


class TestInlineReload:
    def test_reload_matches_fresh_engine_each_generation(
        self, tiny_dataset, snapshot_generations
    ):
        nodes = tiny_dataset.val_idx[:8]
        eng = InferenceEngine(snapshot_generations[0], tiny_dataset, cache_entries=64)
        try:
            for gen, snap in enumerate(snapshot_generations):
                if gen > 0:
                    eng.reload(snap)
                    assert eng.generation == gen
                np.testing.assert_array_equal(
                    eng.predict(nodes), fresh_predictions(snap, tiny_dataset, nodes)
                )
        finally:
            eng.close()

    def test_reload_invalidates_cache(self, tiny_dataset, snapshot_generations):
        old, new = snapshot_generations[0], snapshot_generations[-1]
        nodes = tiny_dataset.val_idx[:4]
        eng = InferenceEngine(old, tiny_dataset, cache_entries=64)
        try:
            stale = eng.predict(nodes)
            assert len(eng.cache) == len(nodes)
            eng.reload(new)
            # the swap is O(1): old-weight rows stay resident but carry a
            # dead weight tag, so none is servable and lookups drop them
            assert all(int(n) not in eng.cache for n in nodes)
            got = eng.predict(nodes)
            assert not np.array_equal(got, stale)  # training moved the weights
            np.testing.assert_array_equal(
                got, fresh_predictions(new, tiny_dataset, nodes)
            )
        finally:
            eng.close()

    def test_reload_works_for_frontier_batching(
        self, tiny_dataset, snapshot_generations
    ):
        new = snapshot_generations[-1]
        nodes = tiny_dataset.val_idx[:8]
        eng = InferenceEngine(
            snapshot_generations[0], tiny_dataset, batch_mode="frontier",
            cache_entries=0,
        )
        try:
            eng.predict(nodes)
            eng.reload(new)
            np.testing.assert_array_equal(
                eng.predict(nodes), fresh_predictions(new, tiny_dataset, nodes)
            )
        finally:
            eng.close()

    def test_incompatible_snapshot_rejected(self, tiny_dataset, snapshot_generations):
        sampler, other = make_task(
            "neighbor-sage", tiny_dataset.layer_dims(3), seed=0, fanouts=[5, 5, 5]
        )
        wrong = ModelSnapshot.capture(other, sampler)
        eng = InferenceEngine(snapshot_generations[0], tiny_dataset)
        try:
            before = eng.model.state_dict()
            with pytest.raises(ValueError, match="incompatible snapshot"):
                eng.reload(wrong)
            # the served weights are untouched by the failed swap
            after = eng.model.state_dict()
            for k in before:
                np.testing.assert_array_equal(before[k], after[k])
            assert eng.generation == 0
        finally:
            eng.close()

    def test_closed_engine_rejects_reload(self, tiny_dataset, snapshot_generations):
        eng = InferenceEngine(snapshot_generations[0], tiny_dataset)
        eng.close()
        with pytest.raises(ValueError, match="closed"):
            eng.reload(snapshot_generations[-1])


class TestPoolReload:
    @pytest.mark.parametrize("batch_mode", ["per_node", "frontier"])
    def test_swaps_keep_launches_flat(
        self, tiny_dataset, snapshot_generations, batch_mode
    ):
        """Reload N snapshots into a live pool: every generation serves
        the right weights and nobody is ever re-forked."""
        nodes = tiny_dataset.val_idx[:6]
        with InferenceEngine(
            snapshot_generations[0], tiny_dataset, mode="pool", workers=2,
            batch_mode=batch_mode, cache_entries=0, timeout=30.0,
        ) as eng:
            eng.warm_up()
            pids = eng.pool.worker_pids()
            for gen, snap in enumerate(snapshot_generations):
                if gen > 0:
                    eng.reload(snap)
                np.testing.assert_array_equal(
                    eng.predict(nodes), fresh_predictions(snap, tiny_dataset, nodes)
                )
                assert eng.pool.launches == 1, "hot swap must not relaunch"
                assert eng.pool.worker_pids() == pids

    def test_reload_before_first_batch_launches_once(
        self, tiny_dataset, snapshot_generations
    ):
        """A swap on a cold engine rides the launch itself: the fork
        pickles the reloaded weights, no publish round needed."""
        new = snapshot_generations[-1]
        nodes = tiny_dataset.val_idx[:4]
        with InferenceEngine(
            snapshot_generations[0], tiny_dataset, mode="pool", workers=2,
            cache_entries=0, timeout=30.0,
        ) as eng:
            eng.reload(new)  # pool not launched yet
            np.testing.assert_array_equal(
                eng.predict(nodes), fresh_predictions(new, tiny_dataset, nodes)
            )
            assert eng.pool.launches == 1
