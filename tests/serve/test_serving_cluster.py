"""Cluster serving: routing, parity, rolling swaps, autoscale, crash-restart.

The tentpole battery for ``repro.serve.cluster``: consistent-hash ring
properties, router policies (including cache-affinity and queue-depth
spill), the bitwise parity sweep (cluster == single inline engine for
any replica count x routing policy x batch mode), rolling hot-swaps at
flat per-replica ``pool.launches``, the deterministic autoscale policy,
and crash supervision — a SIGKILLed replica is reaped and relaunched
without dropping the cluster or leaking shared memory (extending the
pattern from ``tests/serve/test_serve_crash.py``).
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.serve.cluster import (
    ROUTE_POLICIES,
    HashRing,
    ReplicaHandle,
    Router,
    ServingCluster,
    run_cluster_workload,
)
from repro.serve.engine import InferenceEngine
from repro.serve.workload import run_serving_workload

from test_serve_crash import SlowServeSampler, shm_segments

has_dev_shm = os.path.isdir("/dev/shm")
needs_dev_shm = pytest.mark.skipif(not has_dev_shm, reason="no /dev/shm to inspect")

ROUTES = pytest.mark.parametrize("route_policy", ROUTE_POLICIES)
BATCH_MODES = pytest.mark.parametrize("batch_mode", ["per_node", "frontier"])


# ----------------------------------------------------------------------
# unit doubles for router tests: no engines, just a cache probe surface
class FakeCache:
    def __init__(self, keys=()):
        self.keys = {int(k) for k in keys}

    def __contains__(self, key):
        return int(key) in self.keys


class FakeEngine:
    def __init__(self, keys=()):
        self.cache = FakeCache(keys)


class FakeHandle:
    def __init__(self, index, *, state="ready", keys=()):
        self.index = index
        self.state = state
        self.engine = FakeEngine(keys)


class TestHashRing:
    def test_lookup_is_deterministic_and_process_stable(self):
        ring = HashRing([0, 1, 2])
        owners = [ring.lookup(n) for n in range(100)]
        again = HashRing([0, 1, 2])
        assert owners == [again.lookup(n) for n in range(100)]
        # every member owns some arc at 64 virtual points
        assert set(owners) == {0, 1, 2}

    def test_membership_change_remaps_boundedly(self):
        """Removing one of R members may remap only the keys it owned
        (~1/R of the space) — everything else must stay put."""
        ring = HashRing([0, 1, 2, 3])
        keys = list(range(500))
        before = {k: ring.lookup(k) for k in keys}
        ring.remove(3)
        after = {k: ring.lookup(k) for k in keys}
        moved = [k for k in keys if before[k] != after[k]]
        # only keys that replica 3 owned can move...
        assert all(before[k] == 3 for k in moved)
        # ...and they all must (3 is gone)
        assert {k for k in keys if before[k] == 3} == set(moved)
        # adding it back restores the original placement exactly
        ring.add(3)
        assert {k: ring.lookup(k) for k in keys} == before

    def test_empty_ring_raises_and_membership_api(self):
        ring = HashRing()
        with pytest.raises(ValueError, match="empty hash ring"):
            ring.lookup(7)
        ring.add(5)
        ring.add(5)  # idempotent
        assert 5 in ring and len(ring) == 1
        ring.remove(9)  # absent: no-op
        assert ring.members() == [5]


class TestRouter:
    def test_round_robin_cycles_ready_only(self):
        handles = [
            FakeHandle(0),
            FakeHandle(1, state="draining"),
            FakeHandle(2),
        ]
        router = Router("round_robin")
        assignment = router.route_many(np.arange(6), handles)
        assert assignment.tolist() == [0, 2, 0, 2, 0, 2]

    def test_no_ready_replicas_raises(self):
        router = Router("round_robin")
        with pytest.raises(RuntimeError, match="no ready replicas"):
            router.route_many([1, 2], [FakeHandle(0, state="failed")])

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="route_policy"):
            Router("random")

    def test_consistent_hash_matches_ring_and_survives_churn(self):
        handles = [FakeHandle(i) for i in range(3)]
        router = Router("consistent_hash")
        nodes = np.arange(64)
        assignment = router.route_many(nodes, handles)
        ring = HashRing([0, 1, 2])
        assert assignment.tolist() == [ring.lookup(int(n)) for n in nodes]
        # a draining replica vanishes; only its nodes remap
        handles[1].state = "draining"
        moved = router.route_many(nodes, handles)
        assert all(
            (a == b) or (a == 1) for a, b in zip(assignment.tolist(), moved.tolist())
        )
        assert 1 not in moved.tolist()

    def test_cache_affinity_prefers_warm_replica(self):
        handles = [FakeHandle(0), FakeHandle(1, keys=(7, 8)), FakeHandle(2, keys=(9,))]
        router = Router("cache_affinity")
        assignment = router.route_many([7, 8, 9], handles)
        assert assignment.tolist() == [1, 1, 2]

    def test_cache_affinity_sticky_without_warmth(self):
        # nothing cached: the first route falls back to the hash ring,
        # later routes of the same node stick to that choice
        handles = [FakeHandle(0), FakeHandle(1)]
        router = Router("cache_affinity")
        first = router.route_many([42], handles)[0]
        assert router.route_many([42, 42, 42], handles).tolist() == [first] * 3

    def test_cache_affinity_spills_on_queue_depth(self):
        # every node warm on replica 0: without spill it takes the whole
        # burst; with a spill threshold the overflow goes to replica 1
        nodes = list(range(100))
        handles = [FakeHandle(0, keys=nodes), FakeHandle(1)]
        greedy = Router("cache_affinity", spill_threshold=None)
        assert set(greedy.route_many(nodes, handles).tolist()) == {0}
        spilling = Router("cache_affinity", spill_threshold=10)
        counts = np.bincount(spilling.route_many(nodes, handles), minlength=2)
        assert counts[1] > 0
        assert spilling.reroutes == counts[1]
        # depth never runs away: replica 0 stays within threshold+1 of 1
        assert counts[0] - counts[1] <= 11


class TestClusterParity:
    @ROUTES
    @BATCH_MODES
    @pytest.mark.parametrize("replicas", [1, 2, 4])
    def test_cluster_bitwise_equals_single_engine(
        self, tiny_dataset, trained_snapshot, route_policy, batch_mode, replicas
    ):
        """The acceptance sweep: predictions are pure in (weights, seed,
        node), so *where* the router sends a request cannot change one
        bit — any replica count x policy x batch mode equals one inline
        engine."""
        nodes = np.concatenate([tiny_dataset.val_idx[:12], tiny_dataset.val_idx[:4]])
        with InferenceEngine(
            trained_snapshot, tiny_dataset, batch_mode=batch_mode
        ) as ref:
            expected = ref.predict(nodes)
        with ServingCluster(
            trained_snapshot,
            tiny_dataset,
            replicas=replicas,
            route_policy=route_policy,
            batch_mode=batch_mode,
        ) as cluster:
            np.testing.assert_array_equal(cluster.predict(nodes), expected)
            # a second pass hits replica caches; still identical
            np.testing.assert_array_equal(cluster.predict(nodes), expected)

    def test_pool_cluster_bitwise_equals_inline_engine(
        self, tiny_dataset, trained_snapshot
    ):
        nodes = tiny_dataset.val_idx[:10]
        with InferenceEngine(trained_snapshot, tiny_dataset) as ref:
            expected = ref.predict(nodes)
        with ServingCluster(
            trained_snapshot,
            tiny_dataset,
            replicas=2,
            route_policy="consistent_hash",
            mode="pool",
            workers=2,
            timeout=30.0,
        ) as cluster:
            np.testing.assert_array_equal(cluster.predict(nodes), expected)
            assert cluster.launches() == [1, 1]

    def test_empty_predict(self, tiny_dataset, trained_snapshot):
        with ServingCluster(trained_snapshot, tiny_dataset, replicas=2) as cluster:
            out = cluster.predict(np.array([], dtype=np.int64))
            assert out.shape == (0, trained_snapshot.out_dim)


class TestClusterWorkload:
    @ROUTES
    def test_workload_is_deterministic_in_seed(
        self, tiny_dataset, trained_snapshot, route_policy
    ):
        def run():
            with ServingCluster(
                trained_snapshot,
                tiny_dataset,
                replicas=2,
                route_policy=route_policy,
            ) as cluster:
                result = run_cluster_workload(
                    cluster, num_requests=48, rate_rps=4000.0, seed=7
                )
            return result

        a, b = run(), run()
        assert a.assignments.tolist() == b.assignments.tolist()
        assert a.report.requests == b.report.requests == 48
        assert {i: r.requests for i, r in a.replica_reports.items()} == {
            i: r.requests for i, r in b.replica_reports.items()
        }

    def test_merged_report_uses_wall_clock_duration(
        self, tiny_dataset, trained_snapshot
    ):
        with ServingCluster(trained_snapshot, tiny_dataset, replicas=2) as cluster:
            result = run_cluster_workload(
                cluster, num_requests=64, rate_rps=4000.0, seed=3
            )
        segments = list(result.replica_reports.values())
        assert sum(s.requests for s in segments) == 64
        assert result.report.duration_s == max(s.duration_s for s in segments)
        assert result.report.throughput_rps == pytest.approx(
            result.report.served / result.report.duration_s
        )
        # request-ordered latencies: one entry per edge request
        assert len(result.report.latencies_s) == 64
        assert np.isfinite(result.report.latencies_s).all()
        # cache counters summed across replicas, not taken from the last
        assert result.report.cache.lookups == sum(s.cache.lookups for s in segments)

    def test_replica_count_preserves_traffic(self, tiny_dataset, trained_snapshot):
        """Same seed, different replica counts: the edge draw is shared,
        so the union of routed sub-streams is the same request set."""
        totals = {}
        for n in (1, 2, 4):
            with ServingCluster(
                trained_snapshot, tiny_dataset, replicas=n
            ) as cluster:
                result = run_cluster_workload(
                    cluster, num_requests=48, rate_rps=4000.0, seed=11
                )
            totals[n] = (
                result.report.requests,
                result.report.served,
                len(result.assignments),
            )
        assert totals[1] == totals[2] == totals[4] == (48, 48, 48)


class TestRollingSwap:
    def test_rolling_reload_keeps_launches_flat(self, tiny_dataset, trained_snapshot):
        probe = tiny_dataset.val_idx[:2]
        with ServingCluster(
            trained_snapshot,
            tiny_dataset,
            replicas=2,
            route_policy="consistent_hash",
            mode="pool",
            workers=2,
            timeout=30.0,
        ) as cluster:
            run_cluster_workload(cluster, num_requests=24, rate_rps=4000.0, seed=0)
            assert cluster.launches() == [1, 1]
            for swap in (1, 2):
                records = cluster.rolling_reload(trained_snapshot, probe_nodes=probe)
                assert [r["replica"] for r in records] == [0, 1]
                assert all(r["generation"] == swap for r in records)
                # the whole point: weights travelled the ParamStore
                # channel — not one replica re-forked, cluster-wide
                assert all(r["launches"] == 1 for r in records)
            result = run_cluster_workload(
                cluster, num_requests=24, rate_rps=4000.0, seed=1
            )
            assert result.report.served == 24
            assert cluster.launches() == [1, 1]

    def test_swap_preserves_parity_with_single_engine(
        self, tiny_dataset, trained_snapshot
    ):
        nodes = tiny_dataset.val_idx[:8]
        with InferenceEngine(trained_snapshot, tiny_dataset) as ref:
            expected = ref.predict(nodes)
        with ServingCluster(trained_snapshot, tiny_dataset, replicas=3) as cluster:
            cluster.predict(nodes)
            cluster.rolling_reload(trained_snapshot)
            np.testing.assert_array_equal(cluster.predict(nodes), expected)
            assert all(h.engine.generation == 1 for h in cluster.replicas)


def fake_report(**overrides):
    """A minimal ServingReport for autoscale policy tests."""
    from repro.serve.cache import CacheStats
    from repro.serve.workload import ServingReport
    from repro.shm.arena import TransportStats

    base = dict(
        mode="inline",
        requests=64,
        duration_s=1.0,
        service_s=0.9,
        throughput_rps=64.0,
        mean_ms=1.0,
        p50_ms=1.0,
        p95_ms=2.0,
        p99_ms=3.0,
        mean_batch=2.0,
        full_flushes=0,
        deadline_flushes=0,
        drain_flushes=0,
        cache=CacheStats(),
        transport=TransportStats(),
        latencies_s=np.full(64, 1e-3),
    )
    base.update(overrides)
    return ServingReport(**base)


class TestAutoscale:
    def test_shed_scales_up(self, tiny_dataset, trained_snapshot):
        with ServingCluster(trained_snapshot, tiny_dataset, replicas=1) as cluster:
            decision = cluster.autoscale(1, 4, fake_report(shed_count=5))
            assert decision.action == "up"
            assert decision.replicas_after == 2
            assert len(cluster.replicas) == 2
            assert all(h.state == "ready" for h in cluster.replicas)

    def test_queue_depth_scales_up(self, tiny_dataset, trained_snapshot):
        with ServingCluster(trained_snapshot, tiny_dataset, replicas=1) as cluster:
            decision = cluster.autoscale(1, 4, fake_report(max_queue=40))
            assert decision.action == "up" and "max_queue" in decision.reason

    def test_slo_miss_scales_up(self, tiny_dataset, trained_snapshot):
        late = fake_report(latencies_s=np.full(64, 0.5))  # 500ms >> slo
        with ServingCluster(trained_snapshot, tiny_dataset, replicas=1) as cluster:
            decision = cluster.autoscale(1, 4, late, slo_ms=10.0)
            assert decision.action == "up" and "slo_attainment" in decision.reason

    def test_idle_scales_down_to_min(self, tiny_dataset, trained_snapshot):
        idle = fake_report(service_s=0.01)
        with ServingCluster(trained_snapshot, tiny_dataset, replicas=2) as cluster:
            decision = cluster.autoscale(1, 4, idle)
            assert decision.action == "down"
            assert len(cluster.replicas) == 1
            # at min_replicas the same signal holds instead
            assert cluster.autoscale(1, 4, idle).action == "hold"

    def test_bounds_respected_and_repaired(self, tiny_dataset, trained_snapshot):
        overloaded = fake_report(shed_count=64)
        with ServingCluster(trained_snapshot, tiny_dataset, replicas=2) as cluster:
            assert cluster.autoscale(1, 2, overloaded).action == "hold"
            # a cluster outside its band is pulled back in
            assert cluster.autoscale(3, 4).action == "up"
            assert len(cluster.replicas) == 3
            assert cluster.autoscale(1, 2).action == "down"
            with pytest.raises(ValueError, match="max_replicas"):
                cluster.autoscale(3, 2)

    def test_scaled_up_replica_serves_identically(
        self, tiny_dataset, trained_snapshot
    ):
        nodes = tiny_dataset.val_idx[:8]
        with InferenceEngine(trained_snapshot, tiny_dataset) as ref:
            expected = ref.predict(nodes)
        with ServingCluster(trained_snapshot, tiny_dataset, replicas=1) as cluster:
            cluster.autoscale(1, 4, fake_report(shed_count=1))
            np.testing.assert_array_equal(cluster.predict(nodes), expected)


class TestClusterMetrics:
    def test_per_replica_prefixes_and_cluster_fold(
        self, tiny_dataset, trained_snapshot
    ):
        with ServingCluster(trained_snapshot, tiny_dataset, replicas=2) as cluster:
            run_cluster_workload(cluster, num_requests=32, rate_rps=4000.0, seed=0)
            doc = cluster.metrics_snapshot()
        names = set(doc["metrics"])
        # every replica's instruments appear verbatim under a prefix...
        assert any(n.startswith("replica.0.serve.") for n in names)
        assert any(n.startswith("replica.1.serve.") for n in names)
        # ...and the cluster fold adds counters across replicas
        per_replica = [
            doc["metrics"][f"replica.{i}.serve.cache.lookups"]["value"]
            for i in (0, 1)
            if f"replica.{i}.serve.cache.lookups" in doc["metrics"]
        ]
        if per_replica:
            folded = doc["metrics"]["cluster.serve.cache.lookups"]["value"]
            assert folded == sum(per_replica)
        assert doc["metrics"]["cluster.replicas"]["value"] == 2.0


class TestCrashRestart:
    @needs_dev_shm
    def test_sigkill_mid_burst_refuses_restarts_no_leak(
        self, tiny_dataset, trained_snapshot
    ):
        """SIGKILL one replica's rank worker while the cluster serves a
        burst: that replica's share of the stream is refused (counted in
        the merged report), the replica is reaped and relaunched, the
        other replica's segment is unaffected, and nothing leaks."""
        before = shm_segments()
        cluster = ServingCluster(
            trained_snapshot,
            tiny_dataset,
            replicas=2,
            route_policy="round_robin",
            mode="pool",
            workers=2,
            cache_entries=0,
            timeout=30.0,
        )
        try:
            victim_handle = cluster.replicas[0]
            # stretch replica 0's batches so the kill lands mid-InferPlan
            victim_handle.engine.sampler = SlowServeSampler([5, 5], nap=0.15)
            victim = victim_handle.engine.pool.procs[0]

            def kill_soon():
                time.sleep(0.3)
                victim.kill()

            killer = threading.Thread(target=kill_soon)
            killer.start()
            result = run_cluster_workload(
                cluster, num_requests=24, rate_rps=1e6, seed=0
            )
            killer.join(10.0)
            # replica 0's share refused, replica 1 served its share
            assert result.restarted == [0]
            assert result.refused > 0
            assert result.report.shed_count >= result.refused
            assert result.report.served == 24 - result.report.shed_count
            assert result.replica_reports[1].shed_count == 0
            # the all-shed refusal segment kept percentiles NaN-free
            assert np.isfinite(result.report.p99_ms)
            # supervision relaunched the replica with a fresh engine
            # (healthy sampler again): the next burst serves everything
            assert victim_handle.state == "ready"
            assert victim_handle.restarts == 1
            follow_up = run_cluster_workload(
                cluster, num_requests=16, rate_rps=1e6, seed=1
            )
            assert follow_up.refused == 0
            assert follow_up.report.served == 16
        finally:
            cluster.close()
        assert shm_segments() == before

    @needs_dev_shm
    def test_check_replicas_restarts_killed_idle_replica(
        self, tiny_dataset, trained_snapshot
    ):
        before = shm_segments()
        cluster = ServingCluster(
            trained_snapshot,
            tiny_dataset,
            replicas=2,
            mode="pool",
            workers=2,
            cache_entries=0,
            timeout=30.0,
        )
        try:
            cluster.replicas[1].engine.pool.procs[0].kill()
            deadline = time.monotonic() + 10.0
            while cluster.replicas[1].engine.healthy and time.monotonic() < deadline:
                time.sleep(0.05)
            assert not cluster.replicas[1].engine.healthy
            assert cluster.check_replicas() == [1]
            assert cluster.replicas[1].state == "ready"
            assert cluster.replicas[1].restarts == 1
            # and it serves again, bit-identical to a reference engine
            nodes = tiny_dataset.val_idx[:6]
            with InferenceEngine(
                trained_snapshot, tiny_dataset, cache_entries=0
            ) as ref:
                np.testing.assert_array_equal(
                    cluster.predict(nodes), ref.predict(nodes)
                )
        finally:
            cluster.close()
        assert shm_segments() == before


class TestReplicaHandle:
    def test_lifecycle(self, tiny_dataset, trained_snapshot):
        handle = ReplicaHandle(
            0, lambda: InferenceEngine(trained_snapshot, tiny_dataset)
        )
        assert handle.state == "stopped" and handle.launches == 0
        handle.launch()
        assert handle.state == "ready" and handle.check()
        doc = handle.collect()
        assert doc["state"] == "ready" and doc["restarts"] == 0
        handle.restart()
        assert handle.restarts == 1 and handle.state == "ready"
        handle.delete()
        assert handle.state == "stopped" and handle.engine is None
        handle.delete()  # idempotent
