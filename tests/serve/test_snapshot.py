"""ModelSnapshot capture/save/load round-trips across models and dtypes."""

import numpy as np
import pytest

from repro.autograd.serialize import load_payload, save_payload
from repro.gnn.models import build_model
from repro.sampling.base import make_sampler
from repro.serve.snapshot import ModelSnapshot


def snapshot_for(model_name, sampler_name, dims, *, dropout=0.5, seed=3):
    model = build_model(model_name, dims, dropout=dropout, seed=seed)
    if sampler_name == "neighbor":
        sampler = make_sampler("neighbor", fanouts=[4] * (len(dims) - 1))
    else:
        sampler = make_sampler("shadow", fanouts=(3, 2), num_layers=len(dims) - 1)
    return model, sampler, ModelSnapshot.capture(model, sampler, dataset_name="toy")


class TestCapture:
    @pytest.mark.parametrize("model_name", ["gcn", "sage", "gat"])
    def test_capture_records_config_and_weights(self, model_name):
        dims = [12, 8, 5]
        model, _, snap = snapshot_for(model_name, "neighbor", dims)
        assert snap.dims == dims
        assert snap.dropout == 0.5
        assert snap.seed == 3
        assert snap.out_dim == 5
        assert snap.num_parameters == model.num_parameters()
        for k, v in model.state_dict().items():
            np.testing.assert_array_equal(snap.state[k], v)

    def test_capture_is_a_copy(self):
        model, _, snap = snapshot_for("gcn", "neighbor", [6, 4, 3])
        before = {k: v.copy() for k, v in snap.state.items()}
        for p in model.parameters():
            p.data = p.data + 1.0
        for k in before:
            np.testing.assert_array_equal(snap.state[k], before[k])

    def test_sampler_config_round_trips(self):
        _, sampler, snap = snapshot_for("gcn", "shadow", [6, 4, 3])
        rebuilt = snap.build_sampler()
        assert type(rebuilt) is type(sampler)
        assert list(rebuilt.fanouts) == list(sampler.fanouts)
        assert rebuilt.num_layers == sampler.num_layers

    def test_unregistered_model_rejected(self):
        from repro.autograd.module import Linear

        sampler = make_sampler("neighbor", fanouts=[4])
        with pytest.raises(ValueError, match="not a registered model"):
            ModelSnapshot.capture(Linear(4, 2), sampler)


class TestFileRoundTrip:
    @pytest.mark.parametrize("model_name", ["gcn", "sage", "gat"])
    @pytest.mark.parametrize("sampler_name", ["neighbor", "shadow"])
    def test_save_load_round_trip(self, tmp_path, model_name, sampler_name):
        dims = [10, 6, 4]
        model, _, snap = snapshot_for(model_name, sampler_name, dims, dropout=0.25)
        path = snap.save(tmp_path / f"{model_name}-{sampler_name}")
        loaded = ModelSnapshot.load(path)
        assert loaded.model_name == snap.model_name
        assert loaded.dims == dims
        assert loaded.dropout == 0.25
        assert loaded.sampler_name == snap.sampler_name
        assert loaded.dataset_name == "toy"
        assert set(loaded.state) == set(snap.state)
        for k in snap.state:
            assert loaded.state[k].dtype == snap.state[k].dtype
            np.testing.assert_array_equal(loaded.state[k], snap.state[k])
        # the rebuilt model carries the exact weights
        rebuilt = loaded.build_model()
        for k, v in model.state_dict().items():
            np.testing.assert_array_equal(rebuilt.state_dict()[k], v)

    def test_suffixless_path_round_trips(self, tmp_path):
        """Loading with the exact path given to save() must work even
        though save() appends the .npz suffix."""
        _, _, snap = snapshot_for("gcn", "neighbor", [6, 4, 3])
        raw = tmp_path / "model"  # no suffix; save writes model.npz
        snap.save(raw)
        loaded = ModelSnapshot.load(raw)
        assert loaded.dims == snap.dims

    def test_rejects_future_format(self, tmp_path):
        path = save_payload(tmp_path / "bad", {"param/x": np.zeros(2)}, {"format": 99})
        with pytest.raises(ValueError, match="unsupported snapshot format"):
            ModelSnapshot.load(path)


class TestPayloadDtypes:
    @pytest.mark.parametrize(
        "dtype", [np.float32, np.float64, np.int64, np.int32, np.uint8]
    )
    def test_payload_preserves_dtype_and_values(self, tmp_path, dtype):
        arr = (np.arange(12).reshape(3, 4) * 3).astype(dtype)
        path = save_payload(tmp_path / "p", {"a": arr}, {"k": [1, 2], "s": "x"})
        arrays, meta = load_payload(path)
        assert arrays["a"].dtype == np.dtype(dtype)
        np.testing.assert_array_equal(arrays["a"], arr)
        assert meta == {"k": [1, 2], "s": "x"}

    def test_meta_key_reserved(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            save_payload(tmp_path / "p", {"__meta__": np.zeros(1)}, {})

    def test_non_payload_file_rejected(self, tmp_path):
        p = tmp_path / "plain.npz"
        np.savez(p, a=np.zeros(3))
        with pytest.raises(ValueError, match="missing"):
            load_payload(p)
