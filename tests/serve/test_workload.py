"""Workload generators and the virtual-clock serving driver."""

import numpy as np
import pytest

from repro.serve.engine import InferenceEngine
from repro.serve.workload import poisson_arrivals, run_serving_workload, zipf_nodes
from repro.utils.rng import derive_rng


class TestGenerators:
    def test_zipf_deterministic_in_seed(self):
        catalog = np.arange(100, dtype=np.int64)
        a = zipf_nodes(catalog, 50, alpha=1.2, rng=derive_rng(0, "z"))
        b = zipf_nodes(catalog, 50, alpha=1.2, rng=derive_rng(0, "z"))
        np.testing.assert_array_equal(a, b)

    def test_zipf_skew_concentrates_mass(self):
        catalog = np.arange(1000, dtype=np.int64)
        skewed = zipf_nodes(catalog, 2000, alpha=1.5, rng=derive_rng(0, "z"))
        uniform = zipf_nodes(catalog, 2000, alpha=0.0, rng=derive_rng(0, "z"))
        assert len(np.unique(skewed)) < len(np.unique(uniform)) / 2

    def test_zipf_draws_from_catalog(self):
        catalog = np.array([5, 9, 42], dtype=np.int64)
        draws = zipf_nodes(catalog, 30, alpha=1.0, rng=derive_rng(1, "z"))
        assert set(draws) <= set(catalog.tolist())

    def test_zipf_rejects_empty_catalog(self):
        with pytest.raises(ValueError, match="empty"):
            zipf_nodes(np.array([], dtype=np.int64), 5)

    def test_poisson_mean_gap_matches_rate(self):
        times = poisson_arrivals(4000, 100.0, rng=derive_rng(0, "p"))
        assert np.all(np.diff(times) >= 0)
        assert np.mean(np.diff(times)) == pytest.approx(0.01, rel=0.15)

    def test_poisson_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="rate_rps"):
            poisson_arrivals(10, 0.0)


class TestDriver:
    @pytest.fixture(scope="class")
    def engine(self, tiny_dataset, trained_snapshot):
        return InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=256)

    def test_report_accounts_every_request(self, engine):
        report = run_serving_workload(
            engine, num_requests=64, rate_rps=5000.0, max_batch=8,
            max_wait_ms=1.0, seed=0,
        )
        assert report.requests == 64
        assert len(report.latencies_s) == 64
        assert np.all(report.latencies_s > 0)
        assert report.full_flushes + report.deadline_flushes + report.drain_flushes > 0
        assert report.throughput_rps > 0
        assert report.duration_s >= report.service_s

    def test_percentiles_ordered(self, engine):
        report = run_serving_workload(
            engine, num_requests=64, rate_rps=2000.0, max_batch=4,
            max_wait_ms=2.0, seed=1,
        )
        assert report.p50_ms <= report.p95_ms <= report.p99_ms
        assert report.p50_ms > 0

    def test_zipf_traffic_hits_cache(self, tiny_dataset, trained_snapshot):
        eng = InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=4096)
        report = run_serving_workload(
            eng, num_requests=200, rate_rps=5000.0, zipf_alpha=1.3,
            max_batch=8, max_wait_ms=1.0, seed=0,
        )
        assert report.cache.hit_rate > 0.3  # hot nodes repeat

    def test_unbatched_config_serves_singly(self, tiny_dataset, trained_snapshot):
        eng = InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=0)
        report = run_serving_workload(
            eng, num_requests=32, rate_rps=100.0, max_batch=1,
            max_wait_ms=5.0, seed=0,
        )
        assert report.mean_batch == 1.0
        assert report.full_flushes == 32

    def test_closed_loop_completes_all(self, tiny_dataset, trained_snapshot):
        eng = InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=256)
        report = run_serving_workload(
            eng, num_requests=48, closed_loop=True, concurrency=6,
            max_batch=4, max_wait_ms=1.0, seed=0,
        )
        assert report.requests == 48
        assert np.all(report.latencies_s > 0)

    def test_slo_attainment_bounds(self, engine):
        report = run_serving_workload(
            engine, num_requests=32, rate_rps=2000.0, max_batch=4,
            max_wait_ms=1.0, seed=2,
        )
        assert report.slo_attainment(1e9) == 1.0
        assert report.slo_attainment(1e-9) == 0.0

    def test_overload_coalesces_into_batches(self, tiny_dataset, trained_snapshot):
        """Arrivals far faster than service must build real batches —
        the queue forms behind the busy server and flushes full."""
        eng = InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=0)
        report = run_serving_workload(
            eng, num_requests=80, rate_rps=50000.0, zipf_alpha=0.0,
            max_batch=8, max_wait_ms=2.0, seed=7,
        )
        assert report.mean_batch > 1.5
        assert report.full_flushes > 0
