"""Workload generators and the virtual-clock serving driver."""

import time

import numpy as np
import pytest

from repro.serve.engine import InferenceEngine
from repro.serve.workload import (
    merge_reports,
    poisson_arrivals,
    run_serving_workload,
    zipf_nodes,
)
from repro.utils.rng import derive_rng


class TestGenerators:
    def test_zipf_deterministic_in_seed(self):
        catalog = np.arange(100, dtype=np.int64)
        a = zipf_nodes(catalog, 50, alpha=1.2, rng=derive_rng(0, "z"))
        b = zipf_nodes(catalog, 50, alpha=1.2, rng=derive_rng(0, "z"))
        np.testing.assert_array_equal(a, b)

    def test_zipf_skew_concentrates_mass(self):
        catalog = np.arange(1000, dtype=np.int64)
        skewed = zipf_nodes(catalog, 2000, alpha=1.5, rng=derive_rng(0, "z"))
        uniform = zipf_nodes(catalog, 2000, alpha=0.0, rng=derive_rng(0, "z"))
        assert len(np.unique(skewed)) < len(np.unique(uniform)) / 2

    def test_zipf_draws_from_catalog(self):
        catalog = np.array([5, 9, 42], dtype=np.int64)
        draws = zipf_nodes(catalog, 30, alpha=1.0, rng=derive_rng(1, "z"))
        assert set(draws) <= set(catalog.tolist())

    def test_zipf_rejects_empty_catalog(self):
        with pytest.raises(ValueError, match="empty"):
            zipf_nodes(np.array([], dtype=np.int64), 5)

    def test_poisson_mean_gap_matches_rate(self):
        times = poisson_arrivals(4000, 100.0, rng=derive_rng(0, "p"))
        assert np.all(np.diff(times) >= 0)
        assert np.mean(np.diff(times)) == pytest.approx(0.01, rel=0.15)

    def test_poisson_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="rate_rps"):
            poisson_arrivals(10, 0.0)


class TestDriver:
    @pytest.fixture(scope="class")
    def engine(self, tiny_dataset, trained_snapshot):
        return InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=256)

    def test_report_accounts_every_request(self, engine):
        report = run_serving_workload(
            engine, num_requests=64, rate_rps=5000.0, max_batch=8,
            max_wait_ms=1.0, seed=0,
        )
        assert report.requests == 64
        assert len(report.latencies_s) == 64
        assert np.all(report.latencies_s > 0)
        assert report.full_flushes + report.deadline_flushes + report.drain_flushes > 0
        assert report.throughput_rps > 0
        assert report.duration_s >= report.service_s

    def test_percentiles_ordered(self, engine):
        report = run_serving_workload(
            engine, num_requests=64, rate_rps=2000.0, max_batch=4,
            max_wait_ms=2.0, seed=1,
        )
        assert report.p50_ms <= report.p95_ms <= report.p99_ms
        assert report.p50_ms > 0

    def test_zipf_traffic_hits_cache(self, tiny_dataset, trained_snapshot):
        eng = InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=4096)
        report = run_serving_workload(
            eng, num_requests=200, rate_rps=5000.0, zipf_alpha=1.3,
            max_batch=8, max_wait_ms=1.0, seed=0,
        )
        assert report.cache.hit_rate > 0.3  # hot nodes repeat

    def test_unbatched_config_serves_singly(self, tiny_dataset, trained_snapshot):
        eng = InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=0)
        report = run_serving_workload(
            eng, num_requests=32, rate_rps=100.0, max_batch=1,
            max_wait_ms=5.0, seed=0,
        )
        assert report.mean_batch == 1.0
        assert report.full_flushes == 32

    def test_closed_loop_completes_all(self, tiny_dataset, trained_snapshot):
        eng = InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=256)
        report = run_serving_workload(
            eng, num_requests=48, closed_loop=True, concurrency=6,
            max_batch=4, max_wait_ms=1.0, seed=0,
        )
        assert report.requests == 48
        assert np.all(report.latencies_s > 0)

    def test_slo_attainment_bounds(self, engine):
        report = run_serving_workload(
            engine, num_requests=32, rate_rps=2000.0, max_batch=4,
            max_wait_ms=1.0, seed=2,
        )
        assert report.slo_attainment(1e9) == 1.0
        assert report.slo_attainment(1e-9) == 0.0

    def test_overload_coalesces_into_batches(self, tiny_dataset, trained_snapshot):
        """Arrivals far faster than service must build real batches —
        the queue forms behind the busy server and flushes full."""
        eng = InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=0)
        report = run_serving_workload(
            eng, num_requests=80, rate_rps=50000.0, zipf_alpha=0.0,
            max_batch=8, max_wait_ms=2.0, seed=7,
        )
        assert report.mean_batch > 1.5
        assert report.full_flushes > 0


class SlowFakeEngine:
    """Minimal engine double with a fixed real service time per batch —
    saturates any open-loop rate deterministically."""

    mode = "fake"

    def __init__(self, dataset, service_s=0.0005):
        self.dataset = dataset
        self.service_s = service_s
        from repro.serve.cache import EmbeddingCache
        from repro.shm.arena import TransportStats

        self.cache = EmbeddingCache(0)
        self.transport = TransportStats()
        self.predicted: list[int] = []

    def predict(self, node_ids):
        time.sleep(self.service_s)
        self.predicted.extend(int(n) for n in node_ids)
        return np.zeros((len(node_ids), 2), dtype=np.float32)


class TestAdmissionControl:
    def overload_report(self, tiny_dataset, queue_limit, num_requests=400):
        eng = SlowFakeEngine(tiny_dataset)
        return run_serving_workload(
            eng, num_requests=num_requests, rate_rps=1e6, zipf_alpha=0.0,
            max_batch=4, max_wait_ms=1.0, queue_limit=queue_limit, seed=3,
        ), eng

    def test_queue_bounded_past_saturation(self, tiny_dataset):
        """Arrivals at 1M rps against a ~2ms/batch server: without a
        limit the queue grows without bound; with one it never exceeds
        the bound and overflow requests are shed, oldest first."""
        unbounded, _ = self.overload_report(tiny_dataset, queue_limit=None)
        bounded, eng = self.overload_report(tiny_dataset, queue_limit=16)
        assert unbounded.max_queue > 16  # saturation really happened
        assert unbounded.shed_count == 0
        assert bounded.max_queue <= 16
        assert bounded.shed_count > 0
        assert bounded.served == bounded.requests - bounded.shed_count
        assert len(eng.predicted) == bounded.served

    def test_every_request_resolved(self, tiny_dataset):
        report, _ = self.overload_report(tiny_dataset, queue_limit=8)
        assert len(report.latencies_s) == report.requests
        shed_mask = np.isnan(report.latencies_s)
        assert int(shed_mask.sum()) == report.shed_count
        assert np.all(report.latencies_s[~shed_mask] > 0)

    def test_shedding_caps_served_tail_latency(self, tiny_dataset):
        """The point of admission control: the served tail stays bounded
        while the unbounded queue's tail grows with the backlog."""
        unbounded, _ = self.overload_report(tiny_dataset, queue_limit=None)
        bounded, _ = self.overload_report(tiny_dataset, queue_limit=8)
        assert bounded.p99_ms < unbounded.p99_ms

    def test_shed_counts_as_slo_miss(self, tiny_dataset):
        report, _ = self.overload_report(tiny_dataset, queue_limit=8)
        assert report.shed_count > 0
        # even an infinite SLO cannot reach 1.0 once requests were refused
        attainment = report.slo_attainment(1e12)
        assert attainment == pytest.approx(report.served / report.requests)

    def test_closed_loop_sheds_and_completes(self, tiny_dataset):
        eng = SlowFakeEngine(tiny_dataset)
        report = run_serving_workload(
            eng, num_requests=60, closed_loop=True, concurrency=12,
            max_batch=2, max_wait_ms=0.5, queue_limit=4, seed=0,
        )
        assert report.requests == 60
        assert report.served + report.shed_count == 60
        assert report.max_queue <= 4

    def test_closed_loop_shed_keeps_arrival_order(self, tiny_dataset, monkeypatch):
        """Invariant guard: requests enter the batcher in nondecreasing
        arrival order even under shed-heavy closed-loop traffic — a
        shed's replacement re-enters at the sorted *head* of the arrival
        queue (it carries the just-popped head's timestamp), so
        shed-oldest and the deadline accounting always see the true
        oldest request."""
        from repro.serve.batcher import MicroBatcher

        orig_submit = MicroBatcher.submit
        last_arrival = [-np.inf]

        def checked(self, request):
            assert request.arrival >= last_arrival[0], "out-of-order submit"
            last_arrival[0] = request.arrival
            return orig_submit(self, request)

        monkeypatch.setattr(MicroBatcher, "submit", checked)
        eng = SlowFakeEngine(tiny_dataset)
        report = run_serving_workload(
            eng, num_requests=80, closed_loop=True, concurrency=16,
            max_batch=2, max_wait_ms=0.5, queue_limit=3, seed=1,
        )
        assert report.shed_count > 0  # the scenario actually triggered

    def test_queue_limit_validated(self, tiny_dataset):
        eng = SlowFakeEngine(tiny_dataset)
        with pytest.raises(ValueError, match="queue_limit"):
            run_serving_workload(eng, num_requests=4, queue_limit=0)

    def test_no_shedding_below_saturation(self, tiny_dataset, trained_snapshot):
        """A generous limit on a light workload is invisible — same
        latencies as the unbounded run."""
        def run():
            eng = InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=0)
            return run_serving_workload(
                eng, num_requests=48, rate_rps=500.0, max_batch=4,
                max_wait_ms=1.0, queue_limit=1024, seed=5,
            )

        report = run()
        assert report.shed_count == 0
        assert report.served == 48


class TestMergeReports:
    def test_merge_aggregates_segments(self, tiny_dataset, trained_snapshot):
        eng = InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=0)
        reports = [
            run_serving_workload(
                eng, num_requests=32, rate_rps=2000.0, max_batch=4,
                max_wait_ms=1.0, seed=s,
            )
            for s in (0, 1)
        ]
        merged = merge_reports(reports)
        assert merged.requests == 64
        assert merged.duration_s == pytest.approx(sum(r.duration_s for r in reports))
        assert merged.full_flushes == sum(r.full_flushes for r in reports)
        assert len(merged.latencies_s) == 64
        assert min(r.p50_ms for r in reports) <= merged.p50_ms <= max(
            r.p50_ms for r in reports
        )

    def test_merge_single_and_empty(self, tiny_dataset, trained_snapshot):
        eng = InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=0)
        report = run_serving_workload(
            eng, num_requests=8, rate_rps=2000.0, max_batch=4, max_wait_ms=1.0,
        )
        assert merge_reports([report]) is report
        with pytest.raises(ValueError, match="at least one"):
            merge_reports([])


def _synthetic_report(scale=1.0, **overrides):
    """A hand-built report with every additive field non-zero, so the
    aggregation regression below catches any field merge_reports drops."""
    from repro.serve.cache import CacheStats
    from repro.serve.workload import ServingReport
    from repro.shm.arena import TransportStats

    base = dict(
        mode="inline",
        requests=10,
        duration_s=1.0 * scale,
        service_s=0.5 * scale,
        throughput_rps=10.0,
        mean_ms=1.0,
        p50_ms=1.0,
        p95_ms=2.0,
        p99_ms=3.0,
        mean_batch=2.0,
        full_flushes=2,
        deadline_flushes=3,
        drain_flushes=1,
        cache=CacheStats(hits=4, misses=6),
        transport=TransportStats(),
        shed_count=1,
        max_queue=4,
        sample_ms=10.0 * scale,
        merge_ms=5.0 * scale,
        forward_ms=20.0 * scale,
        cache_ms=1.0 * scale,
        updates_applied=2,
        update_ms=7.0 * scale,
        stale_served=3,
        invalidated=5,
        graph_generation=2,
        latencies_s=np.full(10, 0.001 * scale),
    )
    base.update(overrides)
    return ServingReport(**base)


class TestMergeReportsAggregation:
    """Regression: merge_reports must aggregate EVERY additive field —
    the per-phase engine breakdown and the streaming-update freshness
    counters included (both were easy to silently drop when new fields
    landed on ServingReport)."""

    def test_phase_fields_sum(self):
        merged = merge_reports([_synthetic_report(1.0), _synthetic_report(2.0)])
        assert merged.sample_ms == pytest.approx(30.0)
        assert merged.merge_ms == pytest.approx(15.0)
        assert merged.forward_ms == pytest.approx(60.0)
        assert merged.cache_ms == pytest.approx(3.0)
        # sampling_share recomputes over the merged totals
        assert merged.sampling_share == pytest.approx(30.0 / 108.0)

    def test_freshness_fields_sum(self):
        merged = merge_reports([
            _synthetic_report(1.0, graph_generation=2),
            _synthetic_report(1.0, updates_applied=3, stale_served=1,
                              invalidated=2, graph_generation=5),
        ])
        assert merged.updates_applied == 5
        assert merged.update_ms == pytest.approx(14.0)
        assert merged.stale_served == 4
        assert merged.invalidated == 7
        # generation is a high-water mark: the last segment's value wins
        assert merged.graph_generation == 5

    def test_counts_and_peaks(self):
        merged = merge_reports([
            _synthetic_report(1.0, max_queue=4), _synthetic_report(1.0, max_queue=9),
        ])
        assert merged.requests == 20
        assert merged.shed_count == 2
        assert merged.max_queue == 9
        assert merged.service_s == pytest.approx(1.0)
        assert merged.freshness == pytest.approx(1.0 - 6 / 18)


class TestConcurrentMerge:
    """``merge_reports(concurrent=True)`` — the cross-replica fold: the
    segments ran side by side on the virtual clock, so duration is the
    wall-clock max (not the sum), cache/transport counters add, rank
    columns concatenate, and graph generation is a cluster high-water."""

    def test_duration_is_wall_clock_max(self):
        merged = merge_reports(
            [_synthetic_report(1.0), _synthetic_report(3.0)], concurrent=True
        )
        assert merged.requests == 20
        assert merged.duration_s == pytest.approx(3.0)  # max, not 4.0
        assert merged.throughput_rps == pytest.approx(merged.served / 3.0)
        # additive fields still sum across replicas
        assert merged.service_s == pytest.approx(0.5 + 1.5)
        assert merged.full_flushes == 4 and merged.shed_count == 2

    def test_cache_and_transport_sum_not_last(self):
        from repro.serve.cache import CacheStats
        from repro.shm.arena import TransportStats

        merged = merge_reports(
            [
                _synthetic_report(1.0, cache=CacheStats(hits=4, misses=6),
                                  transport=TransportStats(arena_hits=2)),
                _synthetic_report(1.0, cache=CacheStats(hits=1, misses=2,
                                                        evictions=3),
                                  transport=TransportStats(pickle_fallbacks=5)),
            ],
            concurrent=True,
        )
        # the sequential fold takes the last segment's cumulative stats;
        # replicas count independently, so the concurrent fold must sum
        assert merged.cache.hits == 5 and merged.cache.misses == 8
        assert merged.cache.evictions == 3
        assert merged.transport.arena_hits == 2
        assert merged.transport.pickle_fallbacks == 5

    def test_rank_columns_concatenate_and_generation_is_max(self):
        merged = merge_reports(
            [
                _synthetic_report(1.0, rank_busy_ms=[1.0, 2.0], graph_generation=2),
                _synthetic_report(1.0, rank_busy_ms=[3.0], graph_generation=7),
            ],
            concurrent=True,
        )
        assert merged.rank_busy_ms == [1.0, 2.0, 3.0]
        assert merged.graph_generation == 7

    def test_mixed_schema_versions_refused(self):
        old = _synthetic_report(1.0, schema_version=99)
        new = _synthetic_report(1.0)
        for concurrent in (False, True):
            with pytest.raises(ValueError, match="mixed schema_version"):
                merge_reports([old, new], concurrent=concurrent)

    def test_merge_replica_reports_is_the_concurrent_fold(self):
        from repro.serve.workload import merge_replica_reports

        segments = [_synthetic_report(1.0), _synthetic_report(2.0)]
        via_alias = merge_replica_reports(segments)
        via_flag = merge_reports(segments, concurrent=True)
        assert via_alias.duration_s == via_flag.duration_s == pytest.approx(2.0)
        assert via_alias.requests == via_flag.requests == 20


class TestAllShedSegments:
    """Regression: a segment that shed everything (or that carries no
    latencies at all) must merge NaN-free — percentiles over the served
    subset only, served == 0 when nothing survived."""

    def test_all_shed_report_is_nan_free(self):
        shed = _synthetic_report(
            1.0, shed_count=10, latencies_s=np.full(10, np.nan),
            mean_ms=0.0, p50_ms=0.0, p95_ms=0.0, p99_ms=0.0,
        )
        assert shed.served == 0
        assert shed.slo_attainment(1e9) == 0.0
        merged = merge_reports([shed, shed], concurrent=True)
        assert merged.served == 0 and merged.shed_count == 20
        for value in (merged.mean_ms, merged.p50_ms, merged.p95_ms, merged.p99_ms):
            assert np.isfinite(value)

    def test_mixed_shed_and_served_percentiles_use_served_only(self):
        served = _synthetic_report(1.0)  # 10 requests at 1 ms
        shed = _synthetic_report(
            1.0, shed_count=10, latencies_s=np.full(10, np.nan),
        )
        merged = merge_reports([served, shed], concurrent=True)
        # the base synthetic segment itself sheds 1 of its 10 requests
        assert merged.served == 9 and merged.shed_count == 11
        assert merged.p99_ms == pytest.approx(1.0)
        assert np.isfinite(merged.mean_ms)

    def test_none_latency_segment_merges(self):
        merged = merge_reports(
            [_synthetic_report(1.0), _synthetic_report(1.0, latencies_s=None)],
            concurrent=True,
        )
        # the latency-less segment pads with NaN (unknown == not served
        # within any SLO), keeping request accounting intact
        assert len(merged.latencies_s) == 20
        assert np.isnan(merged.latencies_s).sum() == 10
        assert np.isfinite(merged.p99_ms)


class TestRefusalReport:
    def test_make_refusal_report_shape(self):
        from repro.serve.workload import make_refusal_report

        report = make_refusal_report("pool", 7)
        assert report.requests == 7 and report.shed_count == 7
        assert report.served == 0 and report.mode == "pool"
        assert len(report.latencies_s) == 7
        assert np.isnan(report.latencies_s).all()
        assert report.slo_attainment(1e9) == 0.0
        # merges cleanly with a real segment (same schema version)
        merged = merge_reports(
            [_synthetic_report(1.0), report], concurrent=True
        )
        assert merged.requests == 17 and merged.shed_count == 8


class TestArrivalTimesOverride:
    def test_override_replaces_poisson_draw(self, tiny_dataset, trained_snapshot):
        eng = InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=0)
        times = np.linspace(0.0, 0.01, 16)
        report = run_serving_workload(
            eng, num_requests=16, rate_rps=2000.0, arrival_times=times, seed=0,
        )
        assert report.requests == 16 and report.served == 16
        # the virtual makespan starts at the overridden first epoch
        assert report.duration_s >= times[-1] - times[0]

    def test_override_validated(self, tiny_dataset, trained_snapshot):
        eng = InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=0)
        with pytest.raises(ValueError, match="arrival_times"):
            run_serving_workload(
                eng, num_requests=8, rate_rps=100.0,
                arrival_times=np.zeros(5),
            )
        with pytest.raises(ValueError, match="nondecreasing"):
            run_serving_workload(
                eng, num_requests=3, rate_rps=100.0,
                arrival_times=np.array([0.0, 2.0, 1.0]),
            )
        with pytest.raises(ValueError, match="open-loop"):
            run_serving_workload(
                eng, num_requests=3, rate_rps=100.0, closed_loop=True,
                arrival_times=np.array([0.0, 1.0, 2.0]),
            )
