"""Serving under pool-worker failure: clean errors, no leaks, recovery.

The serving counterpart of ``tests/exec/test_process_crash.py``: a rank
worker SIGKILL'd (or exploding) mid-``InferPlan`` must surface a clear
error from ``predict``, the engine/pool must reap every child and unlink
all shared-memory segments on the failure path, and the engine must
recover on the next request by relaunching lazily.
"""

import multiprocessing as mp
import os
import threading
import time

import numpy as np
import pytest

from repro.sampling.neighbor import NeighborSampler
from repro.serve.engine import InferenceEngine

has_dev_shm = os.path.isdir("/dev/shm")
needs_dev_shm = pytest.mark.skipif(not has_dev_shm, reason="no /dev/shm to inspect")

BATCH_MODES = pytest.mark.parametrize("batch_mode", ["per_node", "frontier"])


def shm_segments() -> frozenset:
    return frozenset(n for n in os.listdir("/dev/shm") if n.startswith("psm_"))


class SlowServeSampler(NeighborSampler):
    """Picklable sampler that naps per request — stretches an InferPlan
    so the parent can kill a worker mid-batch."""

    def __init__(self, fanouts, *, nap: float = 0.1):
        super().__init__(fanouts)
        self.nap = nap

    def sample(self, graph, seeds, *, rng=None):
        time.sleep(self.nap)
        return super().sample(graph, seeds, rng=rng)


class ExplodingServeSampler(NeighborSampler):
    """Picklable sampler that detonates inside the worker's forward."""

    def sample(self, graph, seeds, *, rng=None):
        raise RuntimeError("injected serving crash")


def pool_engine(
    snapshot, dataset, *, batch_mode="per_node", sampler=None, shard_policy="chunk"
):
    engine = InferenceEngine(
        snapshot, dataset, mode="pool", workers=2, batch_mode=batch_mode,
        shard_policy=shard_policy, cache_entries=0, timeout=30.0,
    )
    if sampler is not None:
        engine.sampler = sampler  # rides each InferPlan to the workers
    return engine


def kill_one_mid_batch(engine, nodes):
    """predict() in a thread; SIGKILL a pool worker once the batch is
    in flight.  Returns the errors the predict call raised."""
    errors: list[BaseException] = []

    def run():
        try:
            engine.predict(nodes)
        except BaseException as exc:
            errors.append(exc)

    t = threading.Thread(target=run)
    t.start()
    deadline = time.monotonic() + 10.0
    victim = None
    while time.monotonic() < deadline and victim is None:
        pool = engine.pool
        if pool is not None and pool.procs:
            victim = pool.procs[0]
        else:
            time.sleep(0.01)
    assert victim is not None, "pool never launched"
    time.sleep(0.3)  # let the InferPlan land in the worker
    victim.kill()
    t.join(60.0)
    assert not t.is_alive(), "predict did not fail after worker kill"
    return errors


class TestServeCrash:
    @BATCH_MODES
    def test_worker_error_is_surfaced(self, tiny_dataset, trained_snapshot, batch_mode):
        with pool_engine(
            trained_snapshot, tiny_dataset, batch_mode=batch_mode,
            sampler=ExplodingServeSampler([5, 5]),
        ) as eng:
            with pytest.raises(RuntimeError, match="injected serving crash"):
                eng.predict(tiny_dataset.val_idx[:6])

    @needs_dev_shm
    @BATCH_MODES
    def test_killed_worker_leaks_nothing(self, tiny_dataset, trained_snapshot, batch_mode):
        before = shm_segments()
        eng = pool_engine(
            trained_snapshot, tiny_dataset, batch_mode=batch_mode,
            sampler=SlowServeSampler([5, 5], nap=0.15),
        )
        try:
            errors = kill_one_mid_batch(eng, tiny_dataset.val_idx[:8])
            assert errors, "killed worker produced no error"
            assert "died" in str(errors[0]) or "collective broken" in str(errors[0])
            # the failed batch reaped the pool's workers and unlinked its
            # segments; the engine's own graph store/arena go at close()
            assert not eng.pool.procs
        finally:
            eng.close()
        assert shm_segments() == before

    def test_engine_recovers_after_kill(self, tiny_dataset, trained_snapshot):
        """The next predict relaunches the pool lazily and serves the
        same bits as a healthy engine."""
        nodes = tiny_dataset.val_idx[:6]
        with InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=0) as ref:
            expected = ref.predict(nodes)
        eng = pool_engine(
            trained_snapshot, tiny_dataset,
            sampler=SlowServeSampler([5, 5], nap=0.15),
        )
        try:
            errors = kill_one_mid_batch(eng, nodes)
            assert errors
            eng.sampler = eng.snapshot.build_sampler()  # healthy again
            np.testing.assert_array_equal(eng.predict(nodes), expected)
            assert eng.pool.launches == 2  # crash relaunch, not a swap
        finally:
            eng.close()

    @needs_dev_shm
    def test_kill_mid_steal_leaks_nothing_and_recovers(
        self, tiny_dataset, trained_snapshot
    ):
        """SIGKILL a rank while segments sit half-claimed in the shared
        task ring: the batch must fail cleanly (no hang on unclaimed
        segments), the pool must reap and unlink everything — ring and
        claim board included — and the next predict must relaunch once
        and serve inline-identical bits under the same steal policy."""
        nodes = tiny_dataset.val_idx[:8]
        with InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=0) as ref:
            expected = ref.predict(nodes)
        before = shm_segments()
        eng = pool_engine(
            trained_snapshot, tiny_dataset, shard_policy="steal",
            sampler=SlowServeSampler([5, 5], nap=0.15),
        )
        try:
            errors = kill_one_mid_batch(eng, nodes)
            assert errors, "killed worker produced no error"
            assert "died" in str(errors[0]) or "collective broken" in str(errors[0])
            assert not eng.pool.procs  # reaped on the failure path
            eng.sampler = eng.snapshot.build_sampler()  # healthy again
            np.testing.assert_array_equal(eng.predict(nodes), expected)
            assert eng.pool.launches == 2  # crash relaunch, nothing more
        finally:
            eng.close()
        assert shm_segments() == before

    @needs_dev_shm
    def test_close_idempotent_after_crash(self, tiny_dataset, trained_snapshot):
        before = shm_segments()
        eng = pool_engine(
            trained_snapshot, tiny_dataset,
            sampler=ExplodingServeSampler([5, 5]),
        )
        with pytest.raises(RuntimeError):
            eng.predict(tiny_dataset.val_idx[:4])
        eng.close()
        eng.close()
        assert shm_segments() == before
        for p in mp.active_children():
            p.join(5.0)
        assert not [p for p in mp.active_children() if p.is_alive()]
