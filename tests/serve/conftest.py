"""Serving-test fixtures: one trained snapshot shared by the suite."""

from __future__ import annotations

import pytest

from repro.core.engine import MultiProcessEngine
from repro.gnn.models import make_task
from repro.serve.snapshot import ModelSnapshot


@pytest.fixture(scope="session")
def trained_snapshot(tiny_dataset):
    """A briefly-trained neighbor-sage snapshot over the tiny dataset."""
    sampler, model = make_task(
        "neighbor-sage", tiny_dataset.layer_dims(2), seed=0, fanouts=[5, 5]
    )
    engine = MultiProcessEngine(
        tiny_dataset, sampler, model, num_processes=1, global_batch_size=128,
        backend="inline", seed=0,
    )
    engine.train(1)
    return ModelSnapshot.from_engine(engine)
