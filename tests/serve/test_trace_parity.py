"""Tracing must be free of numerics: traced predictions are bitwise
identical to untraced ones across every execution configuration, and the
trace arena must never outlive its engine — clean close and
SIGKILL-mid-plan included."""

import os
import threading
import time

import numpy as np
import pytest

from repro.serve.engine import InferenceEngine

has_dev_shm = os.path.isdir("/dev/shm")
needs_dev_shm = pytest.mark.skipif(not has_dev_shm, reason="no /dev/shm to inspect")

#: the sweep: (mode, batch_mode, shard_policy).  Shard policies only
#: exist in pool mode; inline covers both batch modes.
CONFIGS = [
    ("inline", "per_node", "chunk"),
    ("inline", "frontier", "chunk"),
    ("pool", "per_node", "chunk"),
    ("pool", "frontier", "chunk"),
    ("pool", "frontier", "size_binned"),
    ("pool", "frontier", "steal"),
]


def shm_segments() -> frozenset:
    return frozenset(n for n in os.listdir("/dev/shm") if n.startswith("psm_"))


def make_engine(snapshot, dataset, mode, batch_mode, shard_policy, *, tracing):
    return InferenceEngine(
        snapshot,
        dataset,
        mode=mode,
        batch_mode=batch_mode,
        shard_policy=shard_policy,
        workers=2,
        cache_entries=0,  # every request computes: nothing hides behind hits
        timeout=60.0,
        tracing=tracing,
    )


class TestTraceParity:
    @pytest.mark.parametrize("mode,batch_mode,shard_policy", CONFIGS)
    def test_traced_predictions_bit_identical(
        self, tiny_dataset, trained_snapshot, mode, batch_mode, shard_policy
    ):
        nodes = tiny_dataset.val_idx[:10]
        with make_engine(
            trained_snapshot, tiny_dataset, mode, batch_mode, shard_policy,
            tracing=False,
        ) as plain:
            expected = plain.predict(nodes)
        with make_engine(
            trained_snapshot, tiny_dataset, mode, batch_mode, shard_policy,
            tracing=True,
        ) as traced:
            got = traced.predict(nodes)
            records = traced.trace_arena.drain()
        np.testing.assert_array_equal(got, expected)  # bitwise, not approx
        assert records, "tracing enabled but no spans recorded"

    def test_traced_spans_cover_the_serving_phases(
        self, tiny_dataset, trained_snapshot
    ):
        from repro.obs.trace import CANONICAL_SPANS

        with make_engine(
            trained_snapshot, tiny_dataset, "pool", "frontier", "steal",
            tracing=True,
        ) as eng:
            eng.predict(tiny_dataset.val_idx[:10])
            names = {
                CANONICAL_SPANS[r.name_id] for r in eng.trace_arena.drain()
            }
        # engine-side spans plus the workers' plan/sample/forward rings
        assert {"predict", "cache", "barrier", "launch", "plan",
                "sample", "forward"} <= names

    def test_tracing_off_keeps_null_recorder(self, tiny_dataset, trained_snapshot):
        with make_engine(
            trained_snapshot, tiny_dataset, "inline", "frontier", "chunk",
            tracing=False,
        ) as eng:
            assert eng.trace_arena is None
            assert eng.recorder.enabled is False
            eng.predict(tiny_dataset.val_idx[:4])


class TestTraceArenaLifecycle:
    @needs_dev_shm
    @pytest.mark.parametrize("mode", ["inline", "pool"])
    def test_close_unlinks_trace_segments(
        self, tiny_dataset, trained_snapshot, mode
    ):
        before = shm_segments()
        eng = make_engine(
            trained_snapshot, tiny_dataset, mode, "frontier", "chunk",
            tracing=True,
        )
        try:
            eng.predict(tiny_dataset.val_idx[:6])
        finally:
            eng.close()
        assert shm_segments() == before
        assert eng.trace_arena is None
        eng.close()  # idempotent

    @needs_dev_shm
    def test_sigkill_mid_plan_leaks_nothing(self, tiny_dataset, trained_snapshot):
        """SIGKILL a traced pool worker mid-InferPlan: predict fails
        cleanly and close() still unlinks every segment, trace rings
        included (the killed worker never ran its finally block)."""
        from repro.sampling.neighbor import NeighborSampler

        class SlowSampler(NeighborSampler):
            def sample(self, graph, seeds, *, rng=None):
                time.sleep(0.1)
                return super().sample(graph, seeds, rng=rng)

        before = shm_segments()
        eng = make_engine(
            trained_snapshot, tiny_dataset, "pool", "per_node", "chunk",
            tracing=True,
        )
        eng.sampler = SlowSampler([5, 5])
        try:
            errors: list[BaseException] = []

            def run():
                try:
                    eng.predict(tiny_dataset.val_idx[:8])
                except BaseException as exc:
                    errors.append(exc)

            t = threading.Thread(target=run)
            t.start()
            deadline = time.monotonic() + 10.0
            victim = None
            while time.monotonic() < deadline and victim is None:
                pool = eng.pool
                if pool is not None and pool.procs:
                    victim = pool.procs[0]
                else:
                    time.sleep(0.01)
            assert victim is not None, "pool never launched"
            time.sleep(0.3)  # let the InferPlan land in the worker
            victim.kill()
            t.join(60.0)
            assert not t.is_alive(), "predict did not fail after worker kill"
            assert errors, "killed worker produced no error"
        finally:
            eng.close()
        assert shm_segments() == before
