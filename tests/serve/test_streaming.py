"""Streaming graph deltas into a live serving deployment.

The exactness oracle of this battery: after any sequence of
``apply_delta`` calls, a live engine's predictions must be **bitwise
identical** to a cold engine built on the *materialised* merged graph
(:func:`~repro.graph.delta.materialize_dataset`) — across every model
family, sampler, batch mode and execution mode, including the fused
``sample_merged`` path on frontiers that touch delta edges.  On top of
that: scoped invalidation must beat a full flush on cache hit rate at
equal correctness, the persistent pool must absorb deltas without a
single re-fork (``launches`` stays flat), and the interleaved
update/read workload must account for freshness.
"""

import numpy as np
import pytest

from repro.gnn.models import build_model
from repro.graph.delta import GraphDelta, materialize_dataset
from repro.sampling import make_sampler
from repro.serve.engine import InferenceEngine
from repro.serve.snapshot import ModelSnapshot
from repro.serve.workload import make_update_stream, run_serving_workload
from repro.utils.rng import derive_rng


def edge_delta(num_nodes, k=12, seed=0):
    rng = derive_rng(seed, "streaming-test-delta")
    return GraphDelta(
        src=rng.integers(0, num_nodes, size=k).astype(np.int64),
        dst=rng.integers(0, num_nodes, size=k).astype(np.int64),
    )


def node_delta(dataset, seed=0):
    """A delta appending one node wired into the existing graph."""
    rng = derive_rng(seed, "streaming-test-node")
    n = dataset.num_nodes
    src = rng.integers(0, n, size=4).astype(np.int64)
    dst = np.full(4, n, dtype=np.int64)
    feats = rng.standard_normal((1, dataset.features.shape[1])).astype(
        dataset.features.dtype
    )
    return GraphDelta(
        src=src, dst=dst, features=feats, labels=np.zeros(1, dtype=dataset.labels.dtype)
    )


def make_snapshot(dataset, model_name, sampler_name, seed=0):
    """Snapshot any model x sampler combination (TASKS only covers two)."""
    dims = dataset.layer_dims(2)
    model = build_model(model_name, dims, seed=seed)
    if sampler_name == "neighbor":
        sampler = make_sampler("neighbor", fanouts=[4, 4])
    else:
        sampler = make_sampler("shadow", fanouts=(4, 4), num_layers=2)
    return ModelSnapshot.capture(model, sampler, dataset_name=dataset.name)


def delta_touching_nodes(dataset, fragments, width=6):
    """Query nodes whose receptive field includes delta edges, plus the
    appended nodes themselves — the frontiers that exercise the merged
    adjacency in the fused ``sample_merged`` kernels."""
    rows = np.unique(np.concatenate([f.rows for f in fragments]))
    fresh = np.arange(dataset.num_nodes, fragments[-1].num_nodes_after, dtype=np.int64)
    return np.unique(np.concatenate([rows[:width], fresh])).astype(np.int64)


def oracle_check(live, nodes):
    """Live predictions == cold engine on the materialised merged graph."""
    merged = materialize_dataset(live.dataset, live._fragments)
    with InferenceEngine(
        live.snapshot,
        merged,
        mode="inline",
        batch_mode=live.batch_mode,
        cache_entries=0,
    ) as cold:
        np.testing.assert_array_equal(live.predict(nodes), cold.predict(nodes))


MODELS = ["gcn", "sage", "gat"]
SAMPLERS = ["neighbor", "shadow"]
BATCH_MODES = ["per_node", "frontier"]


class TestExactnessOracleInline:
    @pytest.mark.parametrize("model_name", MODELS)
    @pytest.mark.parametrize("sampler_name", SAMPLERS)
    @pytest.mark.parametrize("batch_mode", BATCH_MODES)
    def test_post_delta_bitwise_parity(
        self, tiny_dataset, model_name, sampler_name, batch_mode
    ):
        snap = make_snapshot(tiny_dataset, model_name, sampler_name)
        with InferenceEngine(
            snap, tiny_dataset, mode="inline", batch_mode=batch_mode, cache_entries=0
        ) as live:
            live.apply_delta(edge_delta(tiny_dataset.num_nodes, seed=1))
            live.apply_delta(node_delta(tiny_dataset, seed=2))
            nodes = delta_touching_nodes(tiny_dataset, live._fragments)
            oracle_check(live, nodes)

    def test_inline_matches_across_batch_modes(self, tiny_dataset):
        snap = make_snapshot(tiny_dataset, "sage", "neighbor")
        preds = []
        for batch_mode in BATCH_MODES:
            with InferenceEngine(
                snap, tiny_dataset, mode="inline", batch_mode=batch_mode,
                cache_entries=0,
            ) as eng:
                eng.apply_delta(edge_delta(tiny_dataset.num_nodes, seed=3))
                nodes = delta_touching_nodes(tiny_dataset, eng._fragments)
                preds.append(eng.predict(nodes))
        np.testing.assert_array_equal(preds[0], preds[1])


@pytest.mark.parametrize("model_name,sampler_name", [
    ("sage", "neighbor"),
    ("gcn", "shadow"),
    ("gat", "neighbor"),
])
@pytest.mark.parametrize("batch_mode", BATCH_MODES)
def test_exactness_oracle_pool(tiny_dataset, model_name, sampler_name, batch_mode):
    """Pool engines see deltas through the shared store + GraphDeltaPlan
    broadcast and stay bit-identical to the cold merged-graph oracle —
    without a single worker re-fork."""
    snap = make_snapshot(tiny_dataset, model_name, sampler_name)
    with InferenceEngine(
        snap, tiny_dataset, mode="pool", batch_mode=batch_mode, workers=2,
        cache_entries=0, timeout=60.0,
    ) as live:
        live.warm_up()
        launches_before = live.pool.launches
        live.apply_delta(edge_delta(tiny_dataset.num_nodes, seed=4))
        live.apply_delta(node_delta(tiny_dataset, seed=5))
        nodes = delta_touching_nodes(tiny_dataset, live._fragments)
        oracle_check(live, nodes)
        assert live.pool.launches == launches_before  # no re-fork


class TestDeltaBeforePoolLaunch:
    def test_fresh_pool_ships_existing_deltas(self, tiny_dataset):
        """Deltas applied while inline must reach a pool launched later."""
        snap = make_snapshot(tiny_dataset, "sage", "neighbor")
        with InferenceEngine(
            snap, tiny_dataset, mode="pool", batch_mode="frontier", workers=2,
            cache_entries=0, timeout=60.0,
        ) as live:
            # apply before warm_up: the store/pool do not exist yet
            live.apply_delta(edge_delta(tiny_dataset.num_nodes, seed=6))
            nodes = delta_touching_nodes(tiny_dataset, live._fragments)
            oracle_check(live, nodes)


class TestScopedInvalidation:
    def _warm_and_update(self, tiny_dataset, delta_invalidation):
        snap = make_snapshot(tiny_dataset, "sage", "neighbor")
        eng = InferenceEngine(
            snap, tiny_dataset, mode="inline", batch_mode="frontier",
            cache_entries=4096, delta_invalidation=delta_invalidation,
        )
        catalog = np.arange(0, tiny_dataset.num_nodes, 4, dtype=np.int64)
        eng.predict(catalog)  # warm every catalog entry
        receipt = eng.apply_delta(edge_delta(tiny_dataset.num_nodes, k=6, seed=7))
        before = eng.cache.stats.hits
        preds = eng.predict(catalog)
        hits = eng.cache.stats.hits - before
        return eng, receipt, preds, hits / len(catalog)

    def test_scoped_beats_flush_at_equal_correctness(self, tiny_dataset):
        scoped_eng, receipt, scoped_preds, scoped_rate = self._warm_and_update(
            tiny_dataset, "scoped"
        )
        flush_eng, _, flush_preds, flush_rate = self._warm_and_update(
            tiny_dataset, "flush"
        )
        try:
            # identical answers...
            np.testing.assert_array_equal(scoped_preds, flush_preds)
            # ...but scoped kept every entry outside the reverse-reachable
            # set, so its post-delta hit rate must be strictly better
            assert flush_rate == 0.0
            assert scoped_rate > 0.0
            # and the receipt only names reachable nodes
            assert receipt.affected < scoped_eng.dataset.num_nodes
            assert receipt.invalidated <= receipt.affected
        finally:
            scoped_eng.close()
            flush_eng.close()

    def test_affected_entries_do_refresh(self, tiny_dataset):
        """Scoped is not *too* lazy: nodes in the reachable set recompute."""
        eng, receipt, _, _ = self._warm_and_update(tiny_dataset, "scoped")
        try:
            nodes = delta_touching_nodes(tiny_dataset, eng._fragments)
            oracle_check(eng, nodes)
        finally:
            eng.close()


class TestStalenessBudget:
    def test_budget_serves_stale_and_counts_it(self, tiny_dataset):
        snap = make_snapshot(tiny_dataset, "sage", "neighbor")
        with InferenceEngine(
            snap, tiny_dataset, mode="inline", cache_entries=4096,
            staleness_budget=1,
        ) as eng:
            nodes = np.arange(16, dtype=np.int64)
            eng.predict(nodes)
            receipt = eng.apply_delta(edge_delta(tiny_dataset.num_nodes, seed=8))
            # budget 1: the first affecting delta drops nothing
            assert receipt.invalidated == 0
            stale_before = eng.cache.stats.stale_hits
            eng.predict(nodes)
            assert eng.cache.stats.stale_hits > stale_before
            # a second affecting delta exhausts the budget
            receipt2 = eng.apply_delta(edge_delta(tiny_dataset.num_nodes, seed=9))
            assert receipt2.invalidated > 0

    def test_budget_zero_is_exact(self, tiny_dataset):
        snap = make_snapshot(tiny_dataset, "sage", "neighbor")
        with InferenceEngine(
            snap, tiny_dataset, mode="inline", cache_entries=4096,
        ) as eng:
            nodes = np.arange(16, dtype=np.int64)
            eng.predict(nodes)
            eng.apply_delta(edge_delta(tiny_dataset.num_nodes, seed=8))
            oracle_check(eng, nodes)


class TestReloadTagBump:
    def test_swap_results_identical_to_full_clear(
        self, tiny_dataset, trained_snapshot
    ):
        """The O(1) weight-tag bump serves exactly what a full clear would."""
        nodes = tiny_dataset.val_idx[:12]
        with InferenceEngine(
            trained_snapshot, tiny_dataset, cache_entries=4096
        ) as bumped, InferenceEngine(
            trained_snapshot, tiny_dataset, cache_entries=4096
        ) as cleared:
            bumped.predict(nodes)
            cleared.predict(nodes)
            bumped.reload(trained_snapshot)  # tag bump (entries resident)
            cleared.reload(trained_snapshot)
            cleared.cache.clear()  # the old eager behaviour on top
            assert len(bumped.cache) > 0
            assert len(cleared.cache) == 0
            np.testing.assert_array_equal(
                bumped.predict(nodes), cleared.predict(nodes)
            )

    def test_tag_bump_composes_with_deltas(self, tiny_dataset, trained_snapshot):
        with InferenceEngine(
            trained_snapshot, tiny_dataset, cache_entries=4096
        ) as eng:
            nodes = tiny_dataset.val_idx[:8]
            eng.predict(nodes)
            eng.apply_delta(edge_delta(tiny_dataset.num_nodes, seed=10))
            eng.reload(trained_snapshot)
            oracle_check(eng, np.asarray(nodes, dtype=np.int64))


class TestStreamingWorkload:
    def test_interleaved_updates_and_reads(self, tiny_dataset, trained_snapshot):
        with InferenceEngine(
            trained_snapshot, tiny_dataset, cache_entries=1024, staleness_budget=1
        ) as eng:
            updates = make_update_stream(
                tiny_dataset.num_nodes, num_updates=4, rate_ups=200.0,
                edges_per_update=4, rng=derive_rng(0, "streaming-workload"),
            )
            report = run_serving_workload(
                eng, num_requests=64, rate_rps=400.0, seed=0, updates=updates
            )
            assert report.updates_applied == 4
            assert report.graph_generation == 4
            assert report.update_ms > 0.0
            assert 0.0 <= report.freshness <= 1.0
            doc = report.as_dict(slo_ms=100.0)
            assert doc["freshness"]["updates_applied"] == 4
            assert doc["slo"]["target_ms"] == 100.0
            # post-workload the engine still satisfies the oracle
            nodes = delta_touching_nodes(tiny_dataset, eng._fragments)
            oracle_check(eng, nodes)

    def test_update_stream_is_deterministic(self, tiny_dataset):
        a = make_update_stream(
            128, num_updates=3, rate_ups=50.0, new_node_every=2, feature_dim=4,
            rng=derive_rng(1, "stream-det"),
        )
        b = make_update_stream(
            128, num_updates=3, rate_ups=50.0, new_node_every=2, feature_dim=4,
            rng=derive_rng(1, "stream-det"),
        )
        assert [t for t, _ in a] == [t for t, _ in b]
        for (_, da), (_, db) in zip(a, b):
            np.testing.assert_array_equal(da.src, db.src)
            np.testing.assert_array_equal(da.dst, db.dst)
        # the second update appends node 128; later draws may cite it
        assert a[1][1].num_new_nodes == 1
        assert a[1][1].dst[0] == 128
