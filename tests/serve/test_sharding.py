"""Skew-aware sharding: planners, steal protocol, assignment invariance.

The correctness battery for request->rank placement
(:func:`repro.serve.frontier.plan_shards` and friends): unit coverage of
the cost probe, the LPT bin-packer, the segment/steal-order geometry and
the shared-memory claim primitives, then the load-bearing guarantee —
predictions are **bit-identical across every shard policy** (chunk,
size_binned, steal) x models {GCN, SAGE, GAT} x samplers {neighbor,
shadow} x workers {1, 2, 4}, because each request's RNG stream is
``derive_rng(seed, "serve", node)`` and each request segment keeps its
own BLAS call — placement can only move work, never change it.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.distributed.comm import ClaimBoard
from repro.gnn.models import build_model
from repro.graph.shm import SharedGraphStore
from repro.sampling.base import make_sampler
from repro.sampling.batch import estimate_request_costs
from repro.serve.engine import InferenceEngine
from repro.serve.frontier import (
    SHARD_POLICIES,
    plan_shards,
    segment_bins,
    steal_order,
)
from repro.serve.snapshot import ModelSnapshot
from repro.shm.arena import TaskRing

MODELS = ("gcn", "sage", "gat")
SAMPLERS = {
    "neighbor": {"fanouts": [5, 5]},
    "shadow": {"fanouts": (4, 3), "num_layers": 2},
}


def request_nodes(dataset, n):
    nodes = dataset.val_idx
    if len(nodes) < n:
        nodes = np.arange(dataset.num_nodes, dtype=np.int64)
    return nodes[:n]


class TestCostProbe:
    def test_hop1_counts_are_exact(self, tiny_dataset):
        """Without-replacement sampling keeps exactly min(deg, fanout)
        neighbours — the hop-1 term is a count, not an estimate."""
        nodes = request_nodes(tiny_dataset, 16)
        deg = tiny_dataset.graph.in_degree(nodes)
        costs = estimate_request_costs(tiny_dataset.graph, nodes, [5, 5])
        hop1 = np.minimum(deg, 5)
        np.testing.assert_array_equal(costs, 1.0 + hop1 * (1.0 + 5.0))

    def test_no_fanouts_falls_back_to_degree(self, tiny_dataset):
        nodes = request_nodes(tiny_dataset, 8)
        costs = estimate_request_costs(tiny_dataset.graph, nodes)
        np.testing.assert_array_equal(
            costs, 1.0 + tiny_dataset.graph.in_degree(nodes)
        )

    def test_empty_and_floor(self, tiny_dataset):
        assert estimate_request_costs(
            tiny_dataset.graph, np.array([], dtype=np.int64)
        ).shape == (0,)
        costs = estimate_request_costs(
            tiny_dataset.graph, request_nodes(tiny_dataset, 8), [5, 5]
        )
        assert (costs >= 1.0).all()  # even isolated nodes cost a forward

    def test_never_touches_rng(self, tiny_dataset):
        """The probe is a balancing signal only — it must not advance
        any RNG stream (predictions would stop being placement-pure)."""
        import repro.utils.rng as rng_mod

        nodes = request_nodes(tiny_dataset, 8)
        a = estimate_request_costs(tiny_dataset.graph, nodes, [5, 5])
        b = estimate_request_costs(tiny_dataset.graph, nodes, [5, 5])
        np.testing.assert_array_equal(a, b)
        assert rng_mod.derive_rng(0, "serve", 1).integers(1 << 30) == rng_mod.derive_rng(
            0, "serve", 1
        ).integers(1 << 30)


class TestPlanShards:
    def test_chunk_matches_array_split(self):
        bins = plan_shards(10, 3, policy="chunk")
        for got, want in zip(bins, np.array_split(np.arange(10), 3)):
            np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("policy", ["chunk", "size_binned", "steal"])
    def test_every_request_exactly_once(self, policy):
        rng = np.random.default_rng(0)
        costs = rng.exponential(size=23)
        bins = plan_shards(23, 4, policy=policy, costs=costs)
        assert len(bins) == 4
        all_ids = np.sort(np.concatenate(bins))
        np.testing.assert_array_equal(all_ids, np.arange(23))

    def test_lpt_levels_a_skewed_batch(self):
        # one huge request + many small ones: chunk puts the hub with a
        # third of the small ones; LPT isolates it
        costs = np.array([100.0] + [1.0] * 11)
        bins = plan_shards(12, 3, policy="size_binned", costs=costs)
        loads = sorted(float(costs[b].sum()) for b in bins)
        chunk_loads = sorted(
            float(costs[b].sum()) for b in plan_shards(12, 3, policy="chunk")
        )
        assert max(loads) < max(chunk_loads)
        # LPT bound: max load <= mean + max item
        assert max(loads) <= costs.sum() / 3 + costs.max()

    def test_single_rank_and_validation(self):
        (only,) = plan_shards(5, 1, policy="size_binned", costs=np.ones(5))
        np.testing.assert_array_equal(only, np.arange(5))
        with pytest.raises(ValueError, match="policy"):
            plan_shards(5, 2, policy="round_robin")
        with pytest.raises(ValueError, match="costs"):
            plan_shards(5, 2, policy="size_binned", costs=np.ones(4))

    def test_deterministic(self):
        costs = np.random.default_rng(1).exponential(size=40)
        a = plan_shards(40, 4, policy="size_binned", costs=costs)
        b = plan_shards(40, 4, policy="size_binned", costs=costs)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


class TestSegmentsAndStealOrder:
    def test_segments_respect_bins_and_grain(self):
        costs = np.ones(20)
        bins = plan_shards(20, 3, policy="size_binned", costs=costs)
        order, seg_splits, rank_splits, weights = segment_bins(bins, costs, grain=3)
        np.testing.assert_array_equal(np.sort(order), np.arange(20))
        sizes = np.diff(seg_splits)
        assert (sizes >= 1).all() and (sizes <= 3).all()
        # segments never straddle bins: each rank's range covers its bin
        assert len(rank_splits) == 4
        for rank, b in enumerate(bins):
            lo, hi = rank_splits[rank], rank_splits[rank + 1]
            seg_rows = order[seg_splits[lo] : seg_splits[hi]]
            np.testing.assert_array_equal(np.sort(seg_rows), np.sort(b))
        np.testing.assert_allclose(
            weights, [float(costs[b].sum()) for b in bins]
        )

    def test_steal_order_covers_all_own_first(self):
        rank_splits = np.array([0, 3, 5, 9])
        weights = np.array([5.0, 9.0, 2.0])
        for rank in range(3):
            walk = steal_order(rank, rank_splits, weights)
            np.testing.assert_array_equal(np.sort(walk), np.arange(9))
            own = np.arange(rank_splits[rank], rank_splits[rank + 1])
            np.testing.assert_array_equal(walk[: len(own)], own)
        # peers visited by descending weight, their segments tail-first
        walk = steal_order(2, rank_splits, weights)
        np.testing.assert_array_equal(walk, [5, 6, 7, 8, 4, 3, 2, 1, 0])

    def test_claim_board_claims_each_task_once(self):
        board = ClaimBoard(8, ctx=mp.get_context())
        board.reset(5)
        assert all(board.try_claim(t) for t in range(5))
        assert not any(board.try_claim(t) for t in range(5))
        assert not board.try_claim(5)  # out of published range
        assert board.claimed_count() == 5
        board.reset(2)  # next batch starts clean
        assert board.claimed_count() == 0
        assert board.try_claim(1)

    def test_task_ring_roundtrip_and_fits(self):
        ring = TaskRing.create(node_capacity=64, rank_capacity=4)
        try:
            node_ids = np.arange(10, dtype=np.int64) * 7
            seg_splits = np.array([0, 4, 7, 10], dtype=np.int64)
            rank_splits = np.array([0, 2, 3], dtype=np.int64)
            weights = np.array([8.0, 3.0])
            ring.publish(node_ids, seg_splits, rank_splits, weights)
            peer = TaskRing.attach(ring.spec)
            try:
                got_nodes, got_segs, got_ranks, got_w = peer.load()
                np.testing.assert_array_equal(got_nodes, node_ids)
                np.testing.assert_array_equal(got_segs, seg_splits)
                np.testing.assert_array_equal(got_ranks, rank_splits)
                np.testing.assert_allclose(got_w, weights)
            finally:
                peer.close()
            assert ring.fits(64, 4) and not ring.fits(65, 4) and not ring.fits(8, 5)
        finally:
            ring.unlink()


class TestAssignmentInvariance:
    """The guarantee the whole design rests on: placement cannot change
    bits.  One battery per (model, sampler) pair; within it a single
    persistent pool serves workers 4 -> 2 -> 1 (park/rebind, launches
    stays 1) under every shard policy, always matching inline."""

    @pytest.mark.parametrize("model_name", MODELS)
    @pytest.mark.parametrize("sampler_name", sorted(SAMPLERS))
    def test_bitwise_parity_across_policies(
        self, tiny_dataset, model_name, sampler_name
    ):
        from repro.exec.pool import WorkerPool

        model = build_model(model_name, tiny_dataset.layer_dims(2), seed=3)
        sampler = make_sampler(sampler_name, **SAMPLERS[sampler_name])
        snapshot = ModelSnapshot.capture(model, sampler)
        nodes = request_nodes(tiny_dataset, 10)
        with InferenceEngine(snapshot, tiny_dataset, cache_entries=0) as solo:
            expected = solo.predict(nodes)

        pool = WorkerPool(mp.get_context(), timeout=30.0)
        shared_model = snapshot.build_model()
        store = SharedGraphStore.from_dataset(tiny_dataset)
        try:
            for workers in (4, 2, 1):
                for policy in SHARD_POLICIES:
                    with InferenceEngine(
                        snapshot, tiny_dataset, mode="pool",
                        batch_mode="frontier", shard_policy=policy,
                        workers=workers, cache_entries=0, timeout=30.0,
                        pool=pool, model=shared_model, store=store,
                    ) as eng:
                        np.testing.assert_array_equal(eng.predict(nodes), expected)
            # every swap was served by park/rebind on one forked pool —
            # steal serving included — never a relaunch
            assert pool.launches == 1
            assert pool.steal_fallbacks == 0
        finally:
            pool.shutdown()
            if not store.closed:
                store.unlink()

    def test_steal_policy_actually_exercises_the_ring(
        self, tiny_dataset, trained_snapshot
    ):
        """Sanity against silent fallback: a steal engine must record
        per-rank busy time and keep its batches on the claim path."""
        nodes = request_nodes(tiny_dataset, 12)
        with InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=0) as solo:
            expected = solo.predict(nodes)
        with InferenceEngine(
            trained_snapshot, tiny_dataset, mode="pool", batch_mode="frontier",
            shard_policy="steal", workers=2, cache_entries=0, timeout=30.0,
        ) as eng:
            np.testing.assert_array_equal(eng.predict(nodes), expected)
            assert eng.pool.steal_fallbacks == 0
            assert eng.rank_stats.batches >= 1
            assert len(eng.rank_stats.busy_s) == 2
            assert sum(eng.rank_stats.busy_s) > 0.0
            assert eng.rank_stats.imbalance >= 1.0

    def test_costs_flow_into_size_binned_predictions_unchanged(
        self, tiny_dataset, trained_snapshot
    ):
        """size_binned with the real degree-based cost probe (not unit
        costs): reordering by cost must still be invisible in the bits."""
        nodes = request_nodes(tiny_dataset, 9)
        with InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=0) as solo:
            expected = solo.predict(nodes)
        with InferenceEngine(
            trained_snapshot, tiny_dataset, mode="pool", batch_mode="per_node",
            shard_policy="size_binned", workers=2, cache_entries=0, timeout=30.0,
        ) as eng:
            np.testing.assert_array_equal(eng.predict(nodes), expected)

    def test_bad_shard_policy_rejected(self, tiny_dataset, trained_snapshot):
        with pytest.raises(ValueError, match="shard_policy"):
            InferenceEngine(
                trained_snapshot, tiny_dataset, shard_policy="round_robin"
            )
