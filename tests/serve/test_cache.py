"""EmbeddingCache LRU eviction order and hit/miss accounting."""

import numpy as np
import pytest

from repro.serve.cache import EmbeddingCache


def row(v):
    return np.full(4, float(v), dtype=np.float32)


class TestLookups:
    def test_miss_then_hit(self):
        c = EmbeddingCache(4)
        assert c.get(7) is None
        c.put(7, row(7))
        np.testing.assert_array_equal(c.get(7), row(7))
        assert c.stats.hits == 1 and c.stats.misses == 1
        assert c.stats.hit_rate == pytest.approx(0.5)

    def test_hit_rate_zero_before_lookups(self):
        assert EmbeddingCache(4).stats.hit_rate == 0.0

    def test_contains_does_not_touch_counters(self):
        c = EmbeddingCache(4)
        c.put(1, row(1))
        assert 1 in c and 2 not in c
        assert c.stats.lookups == 0

    def test_stored_rows_are_isolated_copies(self):
        c = EmbeddingCache(4)
        src = row(1)
        c.put(1, src)
        src[:] = 99.0
        np.testing.assert_array_equal(c.get(1), row(1))
        with pytest.raises(ValueError):
            c.get(1)[:] = 0.0  # handed out read-only


class TestEviction:
    def test_lru_order(self):
        c = EmbeddingCache(2)
        c.put(1, row(1))
        c.put(2, row(2))
        c.get(1)  # refresh 1: now 2 is least recently used
        c.put(3, row(3))
        assert 2 not in c and 1 in c and 3 in c
        assert c.stats.evictions == 1

    def test_eviction_count_tracks_capacity_pressure(self):
        c = EmbeddingCache(3)
        for i in range(10):
            c.put(i, row(i))
        assert len(c) == 3
        assert c.stats.evictions == 7
        assert set(k for k in range(10) if k in c) == {7, 8, 9}

    def test_put_refresh_does_not_evict(self):
        c = EmbeddingCache(2)
        c.put(1, row(1))
        c.put(2, row(2))
        c.put(1, row(1))  # refresh, not insert
        assert len(c) == 2 and c.stats.evictions == 0
        c.put(3, row(3))
        assert 2 not in c  # 1 was refreshed, 2 became LRU

    def test_zero_capacity_disables_storage(self):
        c = EmbeddingCache(0)
        c.put(1, row(1))
        assert len(c) == 0
        assert c.get(1) is None
        assert c.stats.misses == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            EmbeddingCache(-1)

    def test_clear_keeps_history(self):
        c = EmbeddingCache(4)
        c.put(1, row(1))
        c.get(1)
        c.clear()
        assert len(c) == 0
        assert c.stats.hits == 1
