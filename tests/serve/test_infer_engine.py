"""InferenceEngine: determinism, inline/pool parity, cache interaction."""

import os

import numpy as np
import pytest

from repro.autograd.tensor import Tensor, inference_mode
from repro.exec.pool import WorkerPool
from repro.graph.shm import SharedGraphStore
from repro.serve.engine import InferenceEngine, predict_nodes

has_dev_shm = os.path.isdir("/dev/shm")
needs_dev_shm = pytest.mark.skipif(not has_dev_shm, reason="no /dev/shm to inspect")


def shm_segments() -> frozenset:
    return frozenset(n for n in os.listdir("/dev/shm") if n.startswith("psm_"))


class TestPredictNodes:
    def test_inference_mode_matches_training_mode_forward(self, tiny_dataset, trained_snapshot):
        """The no-grad fast path must be bit-identical to the tape-building
        forward the training engine runs (same weights, eval dropout)."""
        model = trained_snapshot.build_model()
        sampler = trained_snapshot.build_sampler()
        nodes = tiny_dataset.val_idx[:8]
        features = Tensor(tiny_dataset.features)
        served = predict_nodes(
            model, tiny_dataset.graph, features, sampler, nodes, seed=0
        )
        # reference: grad-enabled forward, identical sampling streams
        from repro.autograd.ops import gather_rows
        from repro.utils.rng import derive_rng

        model.eval()
        for i, node in enumerate(nodes):
            batch = sampler.sample(
                tiny_dataset.graph,
                np.asarray([node], dtype=np.int64),
                rng=derive_rng(0, "serve", int(node)),
            )
            out = model(batch.blocks, gather_rows(features, batch.input_ids))
            assert out.requires_grad or out._parents  # the tape exists here
            np.testing.assert_array_equal(served[i], out.data[0])
        model.train()

    def test_training_flag_and_dropout_counter_untouched(self, tiny_dataset, trained_snapshot):
        model = trained_snapshot.build_model()
        sampler = trained_snapshot.build_sampler()
        assert model.training
        calls_before = model.extra_state_dict()
        predict_nodes(
            model, tiny_dataset.graph, Tensor(tiny_dataset.features), sampler,
            tiny_dataset.val_idx[:4], seed=0,
        )
        assert model.training  # restored
        assert model.extra_state_dict() == calls_before

    def test_empty_request_shape(self, tiny_dataset, trained_snapshot):
        """Empty input matches the model's output width (regression:
        this used to collapse to ``(0, 0)``)."""
        model = trained_snapshot.build_model()
        sampler = trained_snapshot.build_sampler()
        out = predict_nodes(
            model, tiny_dataset.graph, Tensor(tiny_dataset.features), sampler,
            np.array([], dtype=np.int64), seed=0,
        )
        assert out.shape == (0, trained_snapshot.out_dim)
        assert out.dtype == np.float32


class TestInlineEngine:
    def test_batch_composition_independent(self, tiny_dataset, trained_snapshot):
        """Prediction of a node must not depend on which batch carried it —
        the property that makes caching exact and pool sharding free."""
        eng = InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=0)
        nodes = tiny_dataset.val_idx[:12]
        together = eng.predict(nodes)
        singles = np.stack([eng.predict([n])[0] for n in nodes])
        np.testing.assert_array_equal(together, singles)

    def test_predict_deterministic_across_engines(self, tiny_dataset, trained_snapshot):
        a = InferenceEngine(trained_snapshot, tiny_dataset).predict(tiny_dataset.val_idx[:5])
        b = InferenceEngine(trained_snapshot, tiny_dataset).predict(tiny_dataset.val_idx[:5])
        np.testing.assert_array_equal(a, b)

    def test_cache_serves_repeats_and_rows_match(self, tiny_dataset, trained_snapshot):
        eng = InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=64)
        nodes = tiny_dataset.val_idx[:6]
        first = eng.predict(nodes)
        assert eng.cache.stats.misses == 6 and eng.cache.stats.hits == 0
        second = eng.predict(nodes)
        assert eng.cache.stats.hits == 6
        np.testing.assert_array_equal(first, second)

    def test_duplicates_in_one_batch_computed_once(self, tiny_dataset, trained_snapshot):
        eng = InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=64)
        node = int(tiny_dataset.val_idx[0])
        out = eng.predict([node, node, node])
        assert out.shape[0] == 3
        np.testing.assert_array_equal(out[0], out[1])
        # one lookup miss, one computation, no self-hits within the batch
        assert eng.cache.stats.lookups == 1

    def test_row_ordering_preserved(self, tiny_dataset, trained_snapshot):
        eng = InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=64)
        nodes = tiny_dataset.val_idx[:6]
        fwd = eng.predict(nodes)
        rev = eng.predict(nodes[::-1])
        np.testing.assert_array_equal(fwd[::-1], rev)

    def test_closed_engine_rejects_predict(self, tiny_dataset, trained_snapshot):
        eng = InferenceEngine(trained_snapshot, tiny_dataset)
        eng.close()
        with pytest.raises(ValueError, match="closed"):
            eng.predict([0])


class TestPoolEngine:
    def test_pool_matches_inline_bit_identical(self, tiny_dataset, trained_snapshot):
        nodes = tiny_dataset.val_idx[:10]
        inline = InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=0)
        expected = inline.predict(nodes)
        with InferenceEngine(
            trained_snapshot, tiny_dataset, mode="pool", workers=2,
            cache_entries=0, timeout=30.0,
        ) as pooled:
            got = pooled.predict(nodes)
            np.testing.assert_array_equal(got, expected)
            # results rode the shared-memory arena, not the queue
            assert pooled.transport.arena_hits > 0
            assert pooled.transport.pickle_fallbacks == 0

    def test_pool_single_worker_matches_inline(self, tiny_dataset, trained_snapshot):
        nodes = tiny_dataset.val_idx[:6]
        expected = InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=0).predict(nodes)
        with InferenceEngine(
            trained_snapshot, tiny_dataset, mode="pool", workers=1,
            cache_entries=0, timeout=30.0,
        ) as pooled:
            np.testing.assert_array_equal(pooled.predict(nodes), expected)

    def test_oversized_rows_fall_back_to_pickling(self, tiny_dataset, trained_snapshot):
        nodes = tiny_dataset.val_idx[:8]
        expected = InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=0).predict(nodes)
        with InferenceEngine(
            trained_snapshot, tiny_dataset, mode="pool", workers=2,
            cache_entries=0, timeout=30.0, arena_slot_bytes=16,
        ) as pooled:
            got = pooled.predict(nodes)
            np.testing.assert_array_equal(got, expected)
            assert pooled.transport.pickle_fallbacks > 0
            assert pooled.transport.arena_hits == 0

    def test_pool_reused_across_batches(self, tiny_dataset, trained_snapshot):
        with InferenceEngine(
            trained_snapshot, tiny_dataset, mode="pool", workers=2,
            cache_entries=0, timeout=30.0,
        ) as eng:
            eng.predict(tiny_dataset.val_idx[:4])
            pids = eng.pool.worker_pids()
            eng.predict(tiny_dataset.val_idx[4:8])
            assert eng.pool.worker_pids() == pids
            assert eng.pool.launches == 1

    def test_shared_pool_parks_on_worker_shrink(self, tiny_dataset, trained_snapshot):
        """The serving autotuner's workers axis: trials sharing one pool
        shrink by parking, not re-forking."""
        import multiprocessing as mp

        pool = WorkerPool(mp.get_context(), timeout=30.0)
        model = trained_snapshot.build_model()
        store = SharedGraphStore.from_dataset(tiny_dataset)
        nodes = tiny_dataset.val_idx[:6]
        try:
            def engine(workers):
                return InferenceEngine(
                    trained_snapshot, tiny_dataset, mode="pool", workers=workers,
                    cache_entries=0, pool=pool, model=model, store=store,
                )

            with engine(2) as e2:
                first = e2.predict(nodes)
                pids = pool.worker_pids()
            with engine(1) as e1:
                second = e1.predict(nodes)
                assert pool.launches == 1  # no re-fork
                assert pool.parked == 1
                assert pool.worker_pids() == pids
            np.testing.assert_array_equal(first, second)
        finally:
            pool.shutdown()
            if not store.closed:
                store.unlink()

    @needs_dev_shm
    def test_close_releases_segments(self, tiny_dataset, trained_snapshot):
        before = shm_segments()
        eng = InferenceEngine(
            trained_snapshot, tiny_dataset, mode="pool", workers=2,
            cache_entries=0, timeout=30.0,
        )
        eng.predict(tiny_dataset.val_idx[:4])
        assert shm_segments() != before
        eng.close()
        assert shm_segments() == before

    def test_bad_mode_rejected(self, tiny_dataset, trained_snapshot):
        with pytest.raises(ValueError, match="mode"):
            InferenceEngine(trained_snapshot, tiny_dataset, mode="remote")
