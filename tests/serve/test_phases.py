"""Per-phase service-time breakdown: engine counters and report fields.

PR 6's observability satellite: the engine accumulates
sample/merge/forward/cache seconds in a :class:`PhaseStats` and
``run_serving_workload`` reports the per-run deltas as
``sample_ms``/``merge_ms``/``forward_ms``/``cache_ms`` plus the derived
``sampling_share`` — the number the fused sampler is meant to push
below 50%.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.serve.engine import InferenceEngine
from repro.serve.workload import merge_reports, run_serving_workload
from repro.utils.phases import PhaseStats


class TestPhaseStats:
    def test_snapshot_and_add(self):
        p = PhaseStats()
        assert p.snapshot() == (0.0, 0.0, 0.0, 0.0)
        p.sample_s += 1.0
        p.forward_s += 2.0
        q = PhaseStats()
        q.add(p)
        q.add((0.5, 0.25, 0.0, 0.125))
        assert q.snapshot() == (1.5, 0.25, 2.0, 0.125)


class TestEngineCounters:
    @pytest.mark.parametrize("batch_mode", ["per_node", "frontier"])
    def test_predict_populates_phases(self, tiny_dataset, trained_snapshot, batch_mode):
        eng = InferenceEngine(
            trained_snapshot, tiny_dataset, batch_mode=batch_mode, cache_entries=64
        )
        before = eng.phases.snapshot()
        assert before == (0.0, 0.0, 0.0, 0.0)
        eng.predict(tiny_dataset.val_idx[:8])
        assert eng.phases.sample_s > 0
        assert eng.phases.forward_s > 0
        assert eng.phases.cache_s > 0  # lookup/insert time counts even on miss
        if batch_mode == "frontier":
            assert eng.phases.merge_s > 0
        # counters are cumulative across calls
        mid = eng.phases.snapshot()
        eng.predict(tiny_dataset.val_idx[8:16])
        after = eng.phases.snapshot()
        assert all(a >= m for a, m in zip(after, mid))

    @pytest.mark.parametrize("batch_mode", ["per_node", "frontier"])
    def test_pool_mode_aggregates_worker_phases(
        self, tiny_dataset, trained_snapshot, batch_mode
    ):
        # workers time their own sample/forward work and ship the
        # snapshot back with each result; the engine folds them in, so
        # pool counters are aggregate CPU seconds across ranks
        with InferenceEngine(
            trained_snapshot, tiny_dataset, mode="pool", workers=2,
            batch_mode=batch_mode, cache_entries=0, timeout=30.0,
        ) as eng:
            eng.predict(tiny_dataset.val_idx[:8])
            assert eng.phases.sample_s > 0
            assert eng.phases.forward_s > 0

    def test_cache_hits_skip_sampling(self, tiny_dataset, trained_snapshot):
        eng = InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=256)
        nodes = tiny_dataset.val_idx[:8]
        eng.predict(nodes)
        sampled = eng.phases.sample_s
        eng.predict(nodes)  # all hits: no new sampling work
        assert eng.phases.sample_s == sampled
        assert eng.phases.cache_s > 0


class TestReportBreakdown:
    @pytest.fixture(scope="class")
    def report(self, tiny_dataset, trained_snapshot):
        eng = InferenceEngine(
            trained_snapshot, tiny_dataset, batch_mode="frontier", cache_entries=0
        )
        return run_serving_workload(
            eng, num_requests=48, rate_rps=5000.0, max_batch=8,
            max_wait_ms=1.0, seed=0,
        )

    def test_phase_fields_populated(self, report):
        assert report.sample_ms > 0
        assert report.merge_ms > 0
        assert report.forward_ms > 0
        assert report.cache_ms >= 0

    def test_breakdown_bounded_by_service_time(self, report):
        total_ms = (
            report.sample_ms + report.merge_ms + report.forward_ms + report.cache_ms
        )
        assert total_ms <= report.service_s * 1e3 * 1.05

    def test_sampling_share_in_unit_interval(self, report):
        assert 0.0 < report.sampling_share < 1.0

    def test_sampling_share_empty_breakdown_is_zero(self, report):
        empty = dataclasses.replace(
            report, sample_ms=0.0, merge_ms=0.0, forward_ms=0.0, cache_ms=0.0
        )
        assert empty.sampling_share == 0.0

    def test_merge_reports_sums_phases(self, report):
        merged = merge_reports([report, report])
        assert merged.sample_ms == pytest.approx(2 * report.sample_ms)
        assert merged.merge_ms == pytest.approx(2 * report.merge_ms)
        assert merged.forward_ms == pytest.approx(2 * report.forward_ms)
        assert merged.cache_ms == pytest.approx(2 * report.cache_ms)

    def test_phase_deltas_are_per_run(self, tiny_dataset, trained_snapshot):
        # the engine counter is cumulative; the report must carry only
        # this run's delta, so two identical runs report similar numbers
        eng = InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=0)
        kw = dict(num_requests=16, rate_rps=5000.0, max_batch=4,
                  max_wait_ms=1.0, seed=0)
        first = run_serving_workload(eng, **kw)
        second = run_serving_workload(eng, **kw)
        assert second.sample_ms < first.sample_ms + second.sample_ms
        assert second.sample_ms > 0
