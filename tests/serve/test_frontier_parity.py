"""Frontier-batched inference must be bit-identical to per-node forwards.

The serving correctness battery for shared-frontier batching
(:mod:`repro.serve.frontier`): a property-style sweep over models
{GCN, SAGE, GAT} x samplers {neighbor, shadow} x batch sizes {1, 7, 64}
asserting merged predictions equal per-node inline forwards *bitwise*,
plus duplicate/overlapping request nodes, engine-level parity in inline
and pool modes, and structural validation of the merged layout itself.
"""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.gnn.models import build_model
from repro.sampling.base import make_sampler
from repro.serve.engine import InferenceEngine, predict_nodes
from repro.serve.frontier import merge_frontiers, predict_frontier, validate_merged
from repro.utils.rng import derive_rng

MODELS = ("gcn", "sage", "gat")
SAMPLERS = {
    "neighbor": {"fanouts": [5, 5]},
    "shadow": {"fanouts": (4, 3), "num_layers": 2},
}
BATCH_SIZES = (1, 7, 64)


def make_pair(name, sampler_name, dataset, seed=3):
    model = build_model(name, dataset.layer_dims(2), seed=seed)
    sampler = make_sampler(sampler_name, **SAMPLERS[sampler_name])
    return model, sampler


def request_nodes(dataset, n):
    nodes = dataset.val_idx
    if len(nodes) < n:
        nodes = np.arange(dataset.num_nodes, dtype=np.int64)
    return nodes[:n]


class TestFunctionParity:
    @pytest.mark.parametrize("model_name", MODELS)
    @pytest.mark.parametrize("sampler_name", sorted(SAMPLERS))
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_bit_identical_to_per_node(
        self, tiny_dataset, model_name, sampler_name, batch_size
    ):
        model, sampler = make_pair(model_name, sampler_name, tiny_dataset)
        nodes = request_nodes(tiny_dataset, batch_size)
        features = Tensor(tiny_dataset.features)
        solo = predict_nodes(model, tiny_dataset.graph, features, sampler, nodes, seed=0)
        merged = predict_frontier(
            model, tiny_dataset.graph, features, sampler, nodes, seed=0
        )
        np.testing.assert_array_equal(merged, solo)

    @pytest.mark.parametrize("model_name", MODELS)
    def test_random_request_subsets(self, tiny_dataset, model_name):
        """Property-style: arbitrary request subsets in arbitrary order
        never change a node's prediction."""
        model, sampler = make_pair(model_name, "neighbor", tiny_dataset)
        features = Tensor(tiny_dataset.features)
        catalog = request_nodes(tiny_dataset, 64)
        solo = predict_nodes(model, tiny_dataset.graph, features, sampler, catalog, seed=0)
        by_node = {int(n): solo[i] for i, n in enumerate(catalog)}
        rng = np.random.default_rng(7)
        for _ in range(5):
            subset = rng.permutation(catalog)[: int(rng.integers(1, len(catalog) + 1))]
            merged = predict_frontier(
                model, tiny_dataset.graph, features, sampler, subset, seed=0
            )
            for i, n in enumerate(subset):
                np.testing.assert_array_equal(merged[i], by_node[int(n)])

    def test_empty_request(self, tiny_dataset):
        """Empty input keeps the model's output width so results always
        stack/concatenate (regression: this used to be ``(0, 0)``)."""
        model, sampler = make_pair("sage", "neighbor", tiny_dataset)
        out = predict_frontier(
            model, tiny_dataset.graph, Tensor(tiny_dataset.features), sampler,
            np.array([], dtype=np.int64), seed=0,
        )
        assert out.shape == (0, model.dims[-1])
        assert out.dtype == np.float32
        from repro.serve.engine import predict_nodes

        per_node = predict_nodes(
            model, tiny_dataset.graph, Tensor(tiny_dataset.features), sampler,
            np.array([], dtype=np.int64), seed=0,
        )
        assert per_node.shape == (0, model.dims[-1])

    def test_training_flag_and_dropout_counter_untouched(self, tiny_dataset):
        model, sampler = make_pair("sage", "neighbor", tiny_dataset)
        assert model.training
        before = model.extra_state_dict()
        predict_frontier(
            model, tiny_dataset.graph, Tensor(tiny_dataset.features), sampler,
            request_nodes(tiny_dataset, 4), seed=0,
        )
        assert model.training
        assert model.extra_state_dict() == before


class TestMergedStructure:
    @pytest.mark.parametrize("sampler_name", sorted(SAMPLERS))
    def test_merge_round_trips_every_request(self, tiny_dataset, sampler_name):
        sampler = make_sampler(sampler_name, **SAMPLERS[sampler_name])
        nodes = request_nodes(tiny_dataset, 9)
        batches = [
            sampler.sample(
                tiny_dataset.graph,
                np.asarray([n], dtype=np.int64),
                rng=derive_rng(0, "serve", int(n)),
            )
            for n in nodes
        ]
        merged = merge_frontiers(batches)
        validate_merged(merged, batches)
        assert merged.num_requests == len(batches)
        np.testing.assert_array_equal(merged.seeds, nodes)
        np.testing.assert_array_equal(merged.blocks[-1].dst_ids, nodes)
        # no cross-request dedup: rows add up exactly
        for layer, blk in enumerate(merged.blocks):
            assert blk.num_src == sum(mb.blocks[layer].num_src for mb in batches)
            assert blk.num_edges == sum(mb.blocks[layer].num_edges for mb in batches)

    def test_merge_rejects_bad_input(self, tiny_dataset):
        sampler = make_sampler("neighbor", fanouts=[5, 5])
        short = make_sampler("neighbor", fanouts=[5])
        n = int(request_nodes(tiny_dataset, 1)[0])
        a = sampler.sample(tiny_dataset.graph, np.asarray([n]), rng=derive_rng(0, "s", n))
        b = short.sample(tiny_dataset.graph, np.asarray([n]), rng=derive_rng(0, "s", n))
        with pytest.raises(ValueError, match="at least one"):
            merge_frontiers([])
        with pytest.raises(ValueError, match="same number of layers"):
            merge_frontiers([a, b])

    def test_merged_block_split_validation(self, tiny_dataset):
        """Block rejects malformed segment offsets outright."""
        from repro.sampling.block import Block

        with pytest.raises(ValueError, match="set together"):
            Block(
                src_ids=np.arange(3), num_dst=1,
                edge_src=np.array([2]), edge_dst=np.array([0]),
                src_splits=np.array([0, 3]),
            )
        with pytest.raises(ValueError, match="monotone"):
            Block(
                src_ids=np.arange(3), num_dst=1,
                edge_src=np.array([2]), edge_dst=np.array([0]),
                src_splits=np.array([0, 2]), dst_splits=np.array([0, 1]),
            )


class TestEngineParity:
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_inline_frontier_engine_matches_per_node(
        self, tiny_dataset, trained_snapshot, batch_size
    ):
        nodes = request_nodes(tiny_dataset, batch_size)
        with InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=0) as solo:
            expected = solo.predict(nodes)
        with InferenceEngine(
            trained_snapshot, tiny_dataset, batch_mode="frontier", cache_entries=0
        ) as eng:
            np.testing.assert_array_equal(eng.predict(nodes), expected)

    def test_duplicate_and_overlapping_requests(self, tiny_dataset, trained_snapshot):
        """Duplicates inside one batch and across batches: one row each,
        all equal, computed once thanks to the engine's dedup."""
        nodes = request_nodes(tiny_dataset, 4)
        n0, n1 = int(nodes[0]), int(nodes[1])
        request = [n0, n1, n0, n0, n1]
        with InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=0) as solo:
            expected = solo.predict(request)
            expected_follow_up = solo.predict(nodes)
        with InferenceEngine(
            trained_snapshot, tiny_dataset, batch_mode="frontier", cache_entries=64
        ) as eng:
            got = eng.predict(request)
            np.testing.assert_array_equal(got, expected)
            np.testing.assert_array_equal(got[0], got[2])
            # overlapping follow-up batch: cache hits + fresh merges agree
            np.testing.assert_array_equal(eng.predict(nodes), expected_follow_up)

    def test_frontier_cache_interaction_exact(self, tiny_dataset, trained_snapshot):
        with InferenceEngine(
            trained_snapshot, tiny_dataset, batch_mode="frontier", cache_entries=64
        ) as eng:
            nodes = request_nodes(tiny_dataset, 6)
            first = eng.predict(nodes)
            second = eng.predict(nodes)
            np.testing.assert_array_equal(first, second)
            assert eng.cache.stats.hits == 6

    def test_bad_batch_mode_rejected(self, tiny_dataset, trained_snapshot):
        with pytest.raises(ValueError, match="batch_mode"):
            InferenceEngine(trained_snapshot, tiny_dataset, batch_mode="mega")


class TestPoolParity:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_pool_frontier_matches_inline_per_node(
        self, tiny_dataset, trained_snapshot, workers
    ):
        nodes = request_nodes(tiny_dataset, 10)
        with InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=0) as solo:
            expected = solo.predict(nodes)
        with InferenceEngine(
            trained_snapshot, tiny_dataset, mode="pool", batch_mode="frontier",
            workers=workers, cache_entries=0, timeout=30.0,
        ) as pooled:
            got = pooled.predict(nodes)
            np.testing.assert_array_equal(got, expected)
            assert pooled.transport.arena_hits > 0

    def test_pool_frontier_duplicates_and_shards(self, tiny_dataset, trained_snapshot):
        """Sharding across ranks + frontier merge per rank cannot change
        any prediction, whatever the request mix."""
        nodes = request_nodes(tiny_dataset, 7)
        request = list(nodes) + [int(nodes[0]), int(nodes[3])]
        with InferenceEngine(trained_snapshot, tiny_dataset, cache_entries=0) as solo:
            expected = solo.predict(request)
        with InferenceEngine(
            trained_snapshot, tiny_dataset, mode="pool", batch_mode="frontier",
            workers=2, cache_entries=0, timeout=30.0,
        ) as pooled:
            np.testing.assert_array_equal(pooled.predict(request), expected)
