"""Cluster-GCN sampler (extension)."""

import numpy as np
import pytest

from repro.sampling.cluster import ClusterSampler
from repro.utils.rng import derive_rng


class TestClusterSampler:
    def test_registered(self):
        from repro.sampling.base import make_sampler

        assert isinstance(make_sampler("cluster", num_clusters=4), ClusterSampler)

    def test_minibatch_valid(self, tiny_dataset):
        seeds = tiny_dataset.train_idx[:8]
        mb = ClusterSampler(num_clusters=16, num_layers=2).sample(
            tiny_dataset.graph, seeds, rng=derive_rng(0)
        )
        assert mb.num_layers == 2
        np.testing.assert_array_equal(mb.blocks[-1].dst_ids, seeds)
        for b in mb.blocks:
            b.validate_prefix()

    def test_subgraph_contains_seed_clusters(self, tiny_dataset):
        sampler = ClusterSampler(num_clusters=16, num_layers=2)
        seeds = tiny_dataset.train_idx[:4]
        mb = sampler.sample(tiny_dataset.graph, seeds, rng=derive_rng(0))
        owner = sampler._ensure_clusters(tiny_dataset.graph)
        clusters = np.unique(owner[seeds])
        members = np.where(np.isin(owner, clusters))[0]
        assert set(members) <= set(mb.blocks[0].src_ids)

    def test_clustering_cached_per_graph(self, tiny_dataset):
        sampler = ClusterSampler(num_clusters=8)
        a = sampler._ensure_clusters(tiny_dataset.graph)
        b = sampler._ensure_clusters(tiny_dataset.graph)
        assert a is b

    def test_more_clusters_smaller_batches(self, tiny_dataset):
        seeds = tiny_dataset.train_idx[:4]
        coarse = ClusterSampler(num_clusters=4, num_layers=2).sample(
            tiny_dataset.graph, seeds, rng=derive_rng(0)
        )
        fine = ClusterSampler(num_clusters=64, num_layers=2).sample(
            tiny_dataset.graph, seeds, rng=derive_rng(0)
        )
        assert fine.blocks[0].num_src <= coarse.blocks[0].num_src

    def test_trains_end_to_end(self, tiny_dataset):
        from repro.core.engine import MultiProcessEngine
        from repro.gnn.models import build_model

        model = build_model("gcn", tiny_dataset.layer_dims(2), seed=0)
        engine = MultiProcessEngine(
            tiny_dataset,
            ClusterSampler(num_clusters=16, num_layers=2),
            model,
            num_processes=2,
            global_batch_size=64,
            seed=0,
        )
        hist = engine.train(2)
        assert hist.losses[-1] > 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ClusterSampler(num_clusters=0)
        with pytest.raises(ValueError):
            ClusterSampler(num_layers=0)
