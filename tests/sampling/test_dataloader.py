"""NodeDataLoader: batching, shuffling, epochs."""

import numpy as np
import pytest

from repro.sampling.dataloader import NodeDataLoader
from repro.sampling.neighbor import NeighborSampler


@pytest.fixture
def loader_args(tiny_dataset):
    return dict(
        graph=tiny_dataset.graph,
        nodes=tiny_dataset.train_idx,
        labels=tiny_dataset.labels,
        sampler=NeighborSampler([5, 5]),
    )


class TestBatching:
    def test_len_without_drop(self, loader_args):
        n = len(loader_args["nodes"])
        loader = NodeDataLoader(**loader_args, batch_size=16)
        assert len(loader) == (n + 15) // 16

    def test_len_with_drop(self, loader_args):
        n = len(loader_args["nodes"])
        loader = NodeDataLoader(**loader_args, batch_size=16, drop_last=True)
        assert len(loader) == n // 16

    def test_covers_all_nodes(self, loader_args):
        loader = NodeDataLoader(**loader_args, batch_size=16, seed=0)
        seen = np.concatenate([b.seeds for b in loader])
        assert sorted(seen.tolist()) == sorted(loader_args["nodes"].tolist())

    def test_labels_attached(self, loader_args, tiny_dataset):
        loader = NodeDataLoader(**loader_args, batch_size=16, seed=0)
        batch = next(iter(loader))
        np.testing.assert_array_equal(batch.labels, tiny_dataset.labels[batch.seeds])

    def test_rejects_empty_nodes(self, loader_args):
        args = dict(loader_args, nodes=np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            NodeDataLoader(**args, batch_size=4)

    def test_rejects_bad_batch_size(self, loader_args):
        with pytest.raises(ValueError):
            NodeDataLoader(**loader_args, batch_size=0)


class TestShuffling:
    def test_same_epoch_same_order(self, loader_args):
        loader = NodeDataLoader(**loader_args, batch_size=16, seed=1)
        a = [b.seeds.copy() for b in loader]
        b = [b.seeds.copy() for b in loader]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_epochs_reshuffle(self, loader_args):
        loader = NodeDataLoader(**loader_args, batch_size=16, seed=1)
        first = next(iter(loader)).seeds.copy()
        loader.set_epoch(1)
        second = next(iter(loader)).seeds.copy()
        assert not np.array_equal(first, second)

    def test_no_shuffle_keeps_order(self, loader_args):
        loader = NodeDataLoader(**loader_args, batch_size=16, shuffle=False)
        batch = next(iter(loader))
        np.testing.assert_array_equal(batch.seeds, loader_args["nodes"][:16])

    def test_num_workers_metadata(self, loader_args):
        loader = NodeDataLoader(**loader_args, batch_size=16, num_workers=4)
        assert loader.num_workers == 4
