"""NodeDataLoader: batching, shuffling, epochs."""

import numpy as np
import pytest

from repro.sampling.dataloader import NodeDataLoader
from repro.sampling.neighbor import NeighborSampler


@pytest.fixture
def loader_args(tiny_dataset):
    return dict(
        graph=tiny_dataset.graph,
        nodes=tiny_dataset.train_idx,
        labels=tiny_dataset.labels,
        sampler=NeighborSampler([5, 5]),
    )


class TestBatching:
    def test_len_without_drop(self, loader_args):
        n = len(loader_args["nodes"])
        loader = NodeDataLoader(**loader_args, batch_size=16)
        assert len(loader) == (n + 15) // 16

    def test_len_with_drop(self, loader_args):
        n = len(loader_args["nodes"])
        loader = NodeDataLoader(**loader_args, batch_size=16, drop_last=True)
        assert len(loader) == n // 16

    def test_covers_all_nodes(self, loader_args):
        loader = NodeDataLoader(**loader_args, batch_size=16, seed=0)
        seen = np.concatenate([b.seeds for b in loader])
        assert sorted(seen.tolist()) == sorted(loader_args["nodes"].tolist())

    def test_labels_attached(self, loader_args, tiny_dataset):
        loader = NodeDataLoader(**loader_args, batch_size=16, seed=0)
        batch = next(iter(loader))
        np.testing.assert_array_equal(batch.labels, tiny_dataset.labels[batch.seeds])

    def test_rejects_empty_nodes(self, loader_args):
        args = dict(loader_args, nodes=np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            NodeDataLoader(**args, batch_size=4)

    def test_rejects_bad_batch_size(self, loader_args):
        with pytest.raises(ValueError):
            NodeDataLoader(**loader_args, batch_size=0)


class TestShuffling:
    def test_same_epoch_same_order(self, loader_args):
        loader = NodeDataLoader(**loader_args, batch_size=16, seed=1)
        a = [b.seeds.copy() for b in loader]
        b = [b.seeds.copy() for b in loader]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_epochs_reshuffle(self, loader_args):
        loader = NodeDataLoader(**loader_args, batch_size=16, seed=1)
        first = next(iter(loader)).seeds.copy()
        loader.set_epoch(1)
        second = next(iter(loader)).seeds.copy()
        assert not np.array_equal(first, second)

    def test_no_shuffle_keeps_order(self, loader_args):
        loader = NodeDataLoader(**loader_args, batch_size=16, shuffle=False)
        batch = next(iter(loader))
        np.testing.assert_array_equal(batch.seeds, loader_args["nodes"][:16])

    def test_num_workers_metadata(self, loader_args):
        loader = NodeDataLoader(**loader_args, batch_size=16, num_workers=4)
        assert loader.num_workers == 4


class TestRankSharding:
    """DDP-style rank/world_size sharding with backend-independent streams."""

    def test_default_is_unsharded(self, loader_args):
        loader = NodeDataLoader(**loader_args, batch_size=16, seed=0)
        assert loader.rank == 0 and loader.world_size == 1

    def test_world_size_one_stream_unchanged(self, loader_args):
        """Explicit (rank=0, world=1) must reproduce the historical stream."""
        a = NodeDataLoader(**loader_args, batch_size=16, seed=3)
        b = NodeDataLoader(**loader_args, batch_size=16, seed=3, rank=0, world_size=1)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.seeds, y.seeds)
            np.testing.assert_array_equal(x.input_ids, y.input_ids)

    def test_shards_partition_the_node_set(self, loader_args):
        world = 3
        seen = []
        for rank in range(world):
            loader = NodeDataLoader(
                **loader_args, batch_size=16, seed=0, rank=rank, world_size=world
            )
            for batch in loader:
                seen.extend(batch.seeds.tolist())
        assert sorted(seen) == sorted(loader_args["nodes"].tolist())

    def test_shard_lengths_near_equal(self, loader_args):
        world = 4
        sizes = [
            NodeDataLoader(
                **loader_args, batch_size=1, seed=0, rank=r, world_size=world
            )._shard_size()
            for r in range(world)
        ]
        assert sum(sizes) == len(loader_args["nodes"])
        assert max(sizes) - min(sizes) <= 1

    def test_rank_stream_is_deterministic(self, loader_args):
        """The per-rank sampling stream depends only on (seed, epoch, rank)."""
        a = NodeDataLoader(**loader_args, batch_size=16, seed=5, rank=1, world_size=2)
        b = NodeDataLoader(**loader_args, batch_size=16, seed=5, rank=1, world_size=2)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.seeds, y.seeds)
            np.testing.assert_array_equal(x.input_ids, y.input_ids)

    def test_ranks_use_independent_streams(self, loader_args):
        a = NodeDataLoader(**loader_args, batch_size=16, seed=5, rank=0, world_size=2)
        b = NodeDataLoader(**loader_args, batch_size=16, seed=5, rank=1, world_size=2)
        assert not np.array_equal(next(iter(a)).seeds, next(iter(b)).seeds)

    def test_len_reflects_shard(self, loader_args):
        full = NodeDataLoader(**loader_args, batch_size=16, seed=0)
        shard = NodeDataLoader(**loader_args, batch_size=16, seed=0, rank=0, world_size=4)
        assert len(shard) < len(full)
        assert len(shard) == len(list(shard))

    def test_invalid_rank_rejected(self, loader_args):
        with pytest.raises(ValueError, match="rank"):
            NodeDataLoader(**loader_args, batch_size=16, rank=2, world_size=2)

    def test_oversharding_rejected(self, loader_args):
        tiny = dict(loader_args, nodes=loader_args["nodes"][:2])
        with pytest.raises(ValueError, match="shard"):
            NodeDataLoader(**tiny, batch_size=1, world_size=4)

    def test_sharding_requires_seed(self, loader_args):
        # seed=None would give each rank its own shuffle entropy and break
        # the partition guarantee
        with pytest.raises(ValueError, match="requires a seed"):
            NodeDataLoader(**loader_args, batch_size=16, seed=None, world_size=2)


class TestEqualStepCounts:
    """Uneven shards must not yield unequal per-rank batch counts.

    A collective issued per batch deadlocks if any rank runs fewer steps;
    the loader pads (drop_last=False) or trims (drop_last=True) every
    rank to a common count.
    """

    def uneven_loaders(self, loader_args, *, drop_last):
        # batch_size=1 over 4 ranks and 10 nodes: shards (3, 3, 2, 2),
        # so raw per-rank step counts differ — the unequal-step trap
        nodes = loader_args["nodes"][:10]
        return [
            NodeDataLoader(
                **dict(loader_args, nodes=nodes),
                batch_size=1,
                seed=0,
                rank=r,
                world_size=4,
                drop_last=drop_last,
            )
            for r in range(4)
        ]

    def test_pad_equalises_without_drop(self, loader_args):
        loaders = self.uneven_loaders(loader_args, drop_last=False)
        lens = {len(l) for l in loaders}
        assert len(lens) == 1
        for l in loaders:
            assert len(list(l)) == len(l)

    def test_trim_equalises_with_drop(self, loader_args):
        loaders = self.uneven_loaders(loader_args, drop_last=True)
        lens = {len(l) for l in loaders}
        assert len(lens) == 1
        for l in loaders:
            assert len(list(l)) == len(l)

    def test_padding_covers_every_node(self, loader_args):
        loaders = self.uneven_loaders(loader_args, drop_last=False)
        nodes = set(loader_args["nodes"][:10].tolist())
        seen = set()
        for l in loaders:
            for b in l:
                seen.update(b.seeds.tolist())
        assert seen == nodes  # padding duplicates, never drops

    def test_padded_batch_wraps_shard_start(self, loader_args):
        # world=3 over 7 nodes with batch 3: shards (3, 2, 2) -> steps
        # (1, 1, 1); world=3 over 8 nodes: shards (3, 3, 2), batch 3 ->
        # raw steps (1, 1, 1); use batch 2: (2, 2, 1) -> pad rank 2
        nodes = loader_args["nodes"][:8]
        loaders = [
            NodeDataLoader(
                **dict(loader_args, nodes=nodes),
                batch_size=2,
                seed=0,
                rank=r,
                world_size=3,
                shuffle=False,
            )
            for r in range(3)
        ]
        assert {len(l) for l in loaders} == {2}
        short = [b.seeds for b in loaders[2]]
        # rank 2's shard has 2 nodes: batch 0 holds both, batch 1 wraps
        np.testing.assert_array_equal(short[1], short[0][: len(short[1])])

    def test_equal_shards_unchanged(self, loader_args):
        """When shards divide evenly no padding or trimming happens."""
        nodes = loader_args["nodes"][:96]
        loaders = [
            NodeDataLoader(
                **dict(loader_args, nodes=nodes),
                batch_size=16,
                seed=0,
                rank=r,
                world_size=2,
            )
            for r in range(2)
        ]
        for l in loaders:
            assert len(l) == 3
            batches = list(l)
            assert all(len(b.seeds) == 16 for b in batches)


class TestPerBatchStreams:
    """Batch sampling is a pure function of (seed, epoch, rank, step)."""

    def test_sample_batch_matches_iteration(self, loader_args):
        loader = NodeDataLoader(**loader_args, batch_size=16, seed=4)
        via_iter = [(b.seeds.copy(), b.input_ids.copy()) for b in loader]
        seeds_per_step = loader.batch_seeds()
        # sample out of order: results must not depend on call sequence
        for step in reversed(range(len(loader))):
            b = loader.sample_batch(step, seeds_per_step[step])
            np.testing.assert_array_equal(b.seeds, via_iter[step][0])
            np.testing.assert_array_equal(b.input_ids, via_iter[step][1])

    def test_batch_seeds_is_stable(self, loader_args):
        loader = NodeDataLoader(**loader_args, batch_size=16, seed=4)
        a = loader.batch_seeds()
        b = loader.batch_seeds()
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_labels_attached_by_sample_batch(self, loader_args, tiny_dataset):
        loader = NodeDataLoader(**loader_args, batch_size=16, seed=4)
        batch = loader.sample_batch(0, loader.batch_seeds()[0])
        np.testing.assert_array_equal(batch.labels, tiny_dataset.labels[batch.seeds])


class TestSpanSampling:
    """sample_batch_span: fused multi-step draws == per-step sample_batch."""

    def _assert_batches_equal(self, got, want):
        np.testing.assert_array_equal(got.seeds, want.seeds)
        np.testing.assert_array_equal(got.labels, want.labels)
        assert len(got.blocks) == len(want.blocks)
        for a, b in zip(got.blocks, want.blocks):
            np.testing.assert_array_equal(a.src_ids, b.src_ids)
            assert a.num_dst == b.num_dst
            np.testing.assert_array_equal(a.edge_src, b.edge_src)
            np.testing.assert_array_equal(a.edge_dst, b.edge_dst)

    @pytest.mark.parametrize("span", [1, 3, 100])
    def test_span_matches_per_step(self, loader_args, span):
        loader = NodeDataLoader(**loader_args, batch_size=16, seed=7)
        loader.set_epoch(2)
        seeds = loader.batch_seeds()
        for start in range(0, len(seeds), span):
            chunk = seeds[start : start + span]
            fused = loader.sample_batch_span(start, chunk)
            for i, got in enumerate(fused):
                self._assert_batches_equal(
                    got, loader.sample_batch(start + i, chunk[i])
                )

    def test_span_respects_rank_sharding(self, loader_args):
        loader = NodeDataLoader(
            **loader_args, batch_size=16, seed=7, rank=1, world_size=2
        )
        seeds = loader.batch_seeds()
        fused = loader.sample_batch_span(0, seeds[:3])
        for i, got in enumerate(fused):
            self._assert_batches_equal(got, loader.sample_batch(i, seeds[i]))
