"""Block / MiniBatch invariants."""

import numpy as np
import pytest

from repro.sampling.block import Block, MiniBatch


def make_block(num_dst=2, extra=1, edges=((2, 0), (1, 1))):
    src_ids = np.arange(10, 10 + num_dst + extra)
    e_src = np.array([e[0] for e in edges])
    e_dst = np.array([e[1] for e in edges])
    return Block(src_ids=src_ids, num_dst=num_dst, edge_src=e_src, edge_dst=e_dst)


class TestBlock:
    def test_counts(self):
        b = make_block()
        assert b.num_src == 3
        assert b.num_dst == 2
        assert b.num_edges == 2

    def test_dst_prefix(self):
        b = make_block()
        np.testing.assert_array_equal(b.dst_ids, b.src_ids[:2])
        b.validate_prefix()

    def test_rejects_num_dst_too_large(self):
        with pytest.raises(ValueError):
            Block(np.arange(2), 3, np.array([]), np.array([]))

    def test_rejects_edge_src_out_of_range(self):
        with pytest.raises(ValueError):
            Block(np.arange(3), 2, np.array([5]), np.array([0]))

    def test_rejects_edge_dst_beyond_prefix(self):
        with pytest.raises(ValueError):
            Block(np.arange(3), 2, np.array([0]), np.array([2]))

    def test_rejects_edge_length_mismatch(self):
        with pytest.raises(ValueError):
            Block(np.arange(3), 2, np.array([0, 1]), np.array([0]))

    def test_empty_edges_ok(self):
        b = Block(np.arange(3), 2, np.array([]), np.array([]))
        assert b.num_edges == 0


class TestMiniBatch:
    def test_requires_blocks(self):
        with pytest.raises(ValueError):
            MiniBatch(seeds=np.array([1]), blocks=[])

    def test_last_block_must_target_seeds(self):
        b = make_block()
        with pytest.raises(ValueError):
            MiniBatch(seeds=np.array([99]), blocks=[b])

    def test_counters(self):
        b = make_block()
        mb = MiniBatch(seeds=b.dst_ids, blocks=[b])
        assert mb.total_edges == 2
        assert mb.total_src_nodes == 3
        assert mb.num_layers == 1
        np.testing.assert_array_equal(mb.input_ids, b.src_ids)
