"""Fused multi-seed sampling: bit-for-bit parity with the looped path.

The PR 6 serving hot path replaces the per-request ``sampler.sample``
loop with one vectorised multi-segment pass
(:meth:`NeighborSampler.sample_merged` /
:meth:`ShadowSampler.sample_merged`).  The contract is *bit-identity*
to the looped reference ``Sampler.sample_merged`` — same RNG streams,
same draw order, same merged layout — which this suite checks across
samplers, fanouts, batch sizes and the edge cases that stress the
segmented kernels (zero-degree nodes, deg <= fanout, duplicate request
nodes across segments, single-node batches).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import from_edge_index
from repro.sampling.base import Sampler
from repro.sampling.batch import (
    check_seed_batches,
    draw_segment_keys,
    merge_frontiers,
    split_merged,
    validate_merged,
)
from repro.sampling.cluster import ClusterSampler
from repro.sampling.neighbor import NeighborSampler
from repro.sampling.saint import SaintRWSampler
from repro.sampling.shadow import ShadowSampler
from repro.utils.rng import derive_rng

# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def serve_rngs(nodes):
    """One per-request serving stream per (flattened) seed batch."""
    return [derive_rng(0, "serve", int(np.asarray(n).flat[0])) for n in nodes]


def looped_reference(sampler, graph, seed_batches, rngs):
    """The base-class looped sample-then-merge path, bypassing overrides."""
    return Sampler.sample_merged(sampler, graph, seed_batches, rngs)


def assert_merged_equal(fused, looped):
    """Field-by-field bit equality of two MergedFrontiers."""
    np.testing.assert_array_equal(fused.seeds, looped.seeds)
    np.testing.assert_array_equal(fused.request_rows, looped.request_rows)
    assert len(fused.blocks) == len(looped.blocks)
    for a, b in zip(fused.blocks, looped.blocks):
        np.testing.assert_array_equal(a.src_ids, b.src_ids)
        assert a.num_dst == b.num_dst
        np.testing.assert_array_equal(a.edge_src, b.edge_src)
        np.testing.assert_array_equal(a.edge_dst, b.edge_dst)
        np.testing.assert_array_equal(a.src_splits, b.src_splits)
        np.testing.assert_array_equal(a.dst_splits, b.dst_splits)


@pytest.fixture(scope="module")
def quirky_graph():
    """8-node graph with an isolated node (7) and low-degree nodes.

    Degrees: node 0 is a hub, nodes 5-6 have degree 1, node 7 has no
    in-edges at all — the zero-candidate case the RNG contract carves
    out (no draw happens for it).
    """
    src = [1, 2, 3, 4, 5, 6, 0, 0, 0, 1, 2, 0, 1]
    dst = [0, 0, 0, 0, 0, 0, 1, 2, 3, 3, 4, 5, 6]
    return from_edge_index(src, dst, num_nodes=8, self_loops=False)


# ----------------------------------------------------------------------
# parity: fused == looped, bit for bit
# ----------------------------------------------------------------------


class TestNeighborParity:
    @pytest.mark.parametrize("fanouts", [[5], [3, 3], [15, 10, 5]])
    @pytest.mark.parametrize("num_requests", [1, 2, 7, 16])
    def test_single_node_requests(self, tiny_dataset, fanouts, num_requests):
        sampler = NeighborSampler(fanouts)
        nodes = tiny_dataset.train_idx[:num_requests]
        batches = [nodes[i : i + 1] for i in range(num_requests)]
        fused = sampler.sample_merged(tiny_dataset.graph, batches, serve_rngs(nodes))
        looped = looped_reference(
            sampler, tiny_dataset.graph, batches, serve_rngs(nodes)
        )
        assert_merged_equal(fused, looped)

    @pytest.mark.parametrize("sizes", [[1], [3, 1, 2], [4, 4, 4, 4]])
    def test_multi_seed_segments(self, tiny_dataset, sizes):
        sampler = NeighborSampler([4, 4])
        nodes, off = tiny_dataset.train_idx, 0
        batches = []
        for s in sizes:
            batches.append(nodes[off : off + s])
            off += s
        fused = sampler.sample_merged(tiny_dataset.graph, batches, serve_rngs(batches))
        looped = looped_reference(
            sampler, tiny_dataset.graph, batches, serve_rngs(batches)
        )
        assert_merged_equal(fused, looped)

    def test_duplicate_request_nodes(self, tiny_dataset):
        # the same node requested by several segments: each draws its own
        # neighbour multiset from its own stream; no cross-request sharing
        node = tiny_dataset.train_idx[0]
        batches = [np.array([node])] * 4
        sampler = NeighborSampler([5, 5])
        rngs = [derive_rng(0, "serve", int(node)) for _ in batches]
        fused = sampler.sample_merged(tiny_dataset.graph, batches, rngs)
        rngs = [derive_rng(0, "serve", int(node)) for _ in batches]
        looped = looped_reference(sampler, tiny_dataset.graph, batches, rngs)
        assert_merged_equal(fused, looped)
        # identical streams => identical per-segment subgraphs
        blk = fused.blocks[0]
        first = blk.src_ids[blk.src_splits[0] : blk.src_splits[1]]
        for k in range(1, 4):
            np.testing.assert_array_equal(
                blk.src_ids[blk.src_splits[k] : blk.src_splits[k + 1]], first
            )

    @pytest.mark.parametrize("fanouts", [[2], [2, 2], [10, 10]])
    def test_zero_degree_and_tiny_degrees(self, quirky_graph, fanouts):
        # isolated node 7 alone, mixed with the hub, and deg <= fanout
        sampler = NeighborSampler(fanouts)
        for batches in (
            [np.array([7])],
            [np.array([7]), np.array([0])],
            [np.array([5]), np.array([7]), np.array([6])],
            [np.array([0, 7]), np.array([3, 4])],
        ):
            fused = sampler.sample_merged(quirky_graph, batches, serve_rngs(batches))
            looped = looped_reference(
                sampler, quirky_graph, batches, serve_rngs(batches)
            )
            assert_merged_equal(fused, looped)

    def test_zero_candidate_segment_draws_nothing(self, quirky_graph):
        # RNG contract: a segment whose frontier has no candidate edges
        # must leave its generator untouched (the looped path returns
        # before drawing) — the fused path must do the same
        sampler = NeighborSampler([3, 3])
        batches = [np.array([7]), np.array([0])]
        rng_iso = derive_rng(0, "serve", 7)
        rng_hub = derive_rng(0, "serve", 0)
        sampler.sample_merged(quirky_graph, batches, [rng_iso, rng_hub])
        fresh = derive_rng(0, "serve", 7)
        assert rng_iso.random() == fresh.random()


class TestShadowParity:
    @pytest.mark.parametrize("fanouts", [[3, 2], [10, 5]])
    @pytest.mark.parametrize("num_requests", [1, 2, 7, 16])
    def test_single_node_requests(self, tiny_dataset, fanouts, num_requests):
        sampler = ShadowSampler(fanouts=fanouts, num_layers=3)
        nodes = tiny_dataset.train_idx[:num_requests]
        batches = [nodes[i : i + 1] for i in range(num_requests)]
        fused = sampler.sample_merged(tiny_dataset.graph, batches, serve_rngs(nodes))
        looped = looped_reference(
            sampler, tiny_dataset.graph, batches, serve_rngs(nodes)
        )
        assert_merged_equal(fused, looped)

    def test_multi_seed_and_edge_cases(self, tiny_dataset, quirky_graph):
        sampler = ShadowSampler(fanouts=[3, 2], num_layers=2)
        nodes = tiny_dataset.train_idx
        batches = [nodes[:3], nodes[3:4], nodes[4:6]]
        fused = sampler.sample_merged(tiny_dataset.graph, batches, serve_rngs(batches))
        looped = looped_reference(
            sampler, tiny_dataset.graph, batches, serve_rngs(batches)
        )
        assert_merged_equal(fused, looped)
        # isolated node: its hop loop finds nothing, the request's
        # subgraph is the seed alone — mixed with a hub request
        for small in (
            [np.array([7])],
            [np.array([7]), np.array([0])],
            [np.array([0, 7]), np.array([5])],
        ):
            fused = sampler.sample_merged(quirky_graph, small, serve_rngs(small))
            looped = looped_reference(sampler, quirky_graph, small, serve_rngs(small))
            assert_merged_equal(fused, looped)


class TestSplitRoundTrip:
    @pytest.mark.parametrize(
        "make", [lambda: NeighborSampler([4, 4]), lambda: ShadowSampler([3, 2], 3)]
    )
    def test_split_recovers_solo_batches(self, tiny_dataset, make):
        sampler = make()
        nodes = tiny_dataset.train_idx[:6]
        batches = [nodes[:2], nodes[2:3], nodes[3:6]]
        merged = sampler.sample_merged(
            tiny_dataset.graph, batches, serve_rngs(batches)
        )
        validate_merged(merged, split_merged(merged))
        rngs = serve_rngs(batches)
        solos = [
            sampler.sample(tiny_dataset.graph, b, rng=r)
            for b, r in zip(batches, rngs)
        ]
        for got, want in zip(split_merged(merged), solos):
            np.testing.assert_array_equal(got.seeds, want.seeds)
            assert len(got.blocks) == len(want.blocks)
            for a, b in zip(got.blocks, want.blocks):
                np.testing.assert_array_equal(a.src_ids, b.src_ids)
                assert a.num_dst == b.num_dst
                np.testing.assert_array_equal(a.edge_src, b.edge_src)
                np.testing.assert_array_equal(a.edge_dst, b.edge_dst)

    def test_merge_then_split_is_identity(self, tiny_dataset):
        sampler = NeighborSampler([5, 5])
        nodes = tiny_dataset.train_idx[:4]
        solos = [
            sampler.sample(tiny_dataset.graph, nodes[i : i + 1], rng=r)
            for i, r in enumerate(serve_rngs(nodes))
        ]
        back = split_merged(merge_frontiers(solos))
        for got, want in zip(back, solos):
            np.testing.assert_array_equal(got.seeds, want.seeds)
            for a, b in zip(got.blocks, want.blocks):
                np.testing.assert_array_equal(a.src_ids, b.src_ids)
                np.testing.assert_array_equal(a.edge_src, b.edge_src)
                np.testing.assert_array_equal(a.edge_dst, b.edge_dst)


# ----------------------------------------------------------------------
# fallbacks: samplers without a fused kernel, and subclass overrides
# ----------------------------------------------------------------------


class TestLoopedFallbacks:
    def test_saint_and_cluster_use_looped_default(self, tiny_dataset):
        # no fused kernel for these: the base looped path must serve them
        for sampler in (SaintRWSampler(walk_length=2), ClusterSampler(seed=0)):
            assert type(sampler).sample_merged is Sampler.sample_merged
            nodes = tiny_dataset.train_idx[:3]
            batches = [nodes[i : i + 1] for i in range(3)]
            merged = sampler.sample_merged(
                tiny_dataset.graph, batches, serve_rngs(nodes)
            )
            rngs = serve_rngs(nodes)
            solos = [
                sampler.sample(tiny_dataset.graph, b, rng=r)
                for b, r in zip(batches, rngs)
            ]
            validate_merged(merged, solos)

    @pytest.mark.parametrize(
        "base,args", [(NeighborSampler, ([3, 3],)), (ShadowSampler, ([3, 2], 2))]
    )
    def test_subclass_sample_override_falls_back(self, tiny_dataset, base, args):
        # a subclass that customises `sample` must keep per-request
        # semantics: the fused kernel cannot promise bit-identity to an
        # arbitrary override, so sample_merged loops through it instead
        calls = []

        class Custom(base):
            def sample(self, graph, seeds, *, rng=None):
                calls.append(np.asarray(seeds))
                return super().sample(graph, seeds, rng=rng)

        sampler = Custom(*args)
        nodes = tiny_dataset.train_idx[:3]
        batches = [nodes[i : i + 1] for i in range(3)]
        merged = sampler.sample_merged(tiny_dataset.graph, batches, serve_rngs(nodes))
        assert len(calls) == 3  # the override really ran, once per request
        looped = looped_reference(
            base(*args), tiny_dataset.graph, batches, serve_rngs(nodes)
        )
        assert_merged_equal(merged, looped)


# ----------------------------------------------------------------------
# kernel units
# ----------------------------------------------------------------------


class TestKernelUnits:
    def test_draw_segment_keys_matches_per_stream_draws(self):
        counts = np.array([3, 0, 5, 0, 1])
        keys = draw_segment_keys(
            [derive_rng(0, "k", i) for i in range(5)], counts
        )
        want = np.concatenate(
            [
                derive_rng(0, "k", i).random(int(c))
                for i, c in enumerate(counts)
                if c
            ]
        )
        np.testing.assert_array_equal(keys, want)

    def test_draw_segment_keys_skips_zero_count_streams(self):
        rngs = [derive_rng(0, "k", i) for i in range(3)]
        draw_segment_keys(rngs, np.array([2, 0, 2]))
        # stream 1 drew nothing: its next value equals a fresh stream's
        assert rngs[1].random() == derive_rng(0, "k", 1).random()

    def test_check_seed_batches_rejections(self):
        rng = derive_rng(0)
        with pytest.raises(ValueError):
            check_seed_batches([], [])
        with pytest.raises(ValueError):
            check_seed_batches([np.array([1])], [rng, rng])
        with pytest.raises(ValueError):
            check_seed_batches([np.array([], dtype=np.int64)], [rng])
        with pytest.raises(ValueError):
            check_seed_batches([np.array([2, 2])], [rng])
