"""ShaDow sampler: subgraph locality, seed prefix, layer reuse."""

import numpy as np
import pytest

from repro.sampling.shadow import ShadowSampler
from repro.utils.rng import derive_rng


class TestShadowSampler:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ShadowSampler(fanouts=[])
        with pytest.raises(ValueError):
            ShadowSampler(num_layers=0)

    def test_block_count_is_model_depth(self, tiny_dataset):
        mb = ShadowSampler(fanouts=[5, 3], num_layers=3).sample(
            tiny_dataset.graph, tiny_dataset.train_idx[:8], rng=derive_rng(0)
        )
        assert mb.num_layers == 3

    def test_intermediate_blocks_shared_structure(self, tiny_dataset):
        """Paper: ShaDow runs all L layers on ONE localized subgraph."""
        mb = ShadowSampler(fanouts=[5, 3], num_layers=3).sample(
            tiny_dataset.graph, tiny_dataset.train_idx[:8], rng=derive_rng(0)
        )
        assert mb.blocks[0] is mb.blocks[1]

    def test_last_block_targets_seeds(self, tiny_dataset):
        seeds = tiny_dataset.train_idx[:8]
        mb = ShadowSampler(fanouts=[5, 3], num_layers=3).sample(
            tiny_dataset.graph, seeds, rng=derive_rng(0)
        )
        np.testing.assert_array_equal(mb.blocks[-1].dst_ids, seeds)
        assert mb.blocks[-1].num_dst == len(seeds)

    def test_seeds_first_in_node_set(self, tiny_dataset):
        seeds = tiny_dataset.train_idx[:8]
        mb = ShadowSampler(fanouts=[5, 3], num_layers=2).sample(
            tiny_dataset.graph, seeds, rng=derive_rng(0)
        )
        np.testing.assert_array_equal(mb.blocks[0].src_ids[: len(seeds)], seeds)

    def test_subgraph_edges_exist_in_graph(self, tiny_dataset):
        g = tiny_dataset.graph
        seeds = tiny_dataset.train_idx[:8]
        mb = ShadowSampler(fanouts=[5, 3], num_layers=2).sample(g, seeds, rng=derive_rng(0))
        blk = mb.blocks[0]
        full = set(zip(*g.to_edge_index()))
        for e_src, e_dst in zip(blk.src_ids[blk.edge_src], blk.src_ids[blk.edge_dst]):
            assert (e_src, e_dst) in full

    def test_subgraph_bounded_by_fanout_expansion(self, tiny_dataset):
        """Scope is bounded: |subgraph nodes| <= b * (1 + k1 + k1*k2)."""
        seeds = tiny_dataset.train_idx[:4]
        mb = ShadowSampler(fanouts=[5, 3], num_layers=2).sample(
            tiny_dataset.graph, seeds, rng=derive_rng(0)
        )
        assert mb.blocks[0].num_src <= len(seeds) * (1 + 5 + 15)

    def test_rejects_duplicate_seeds(self, tiny_dataset):
        with pytest.raises(ValueError):
            ShadowSampler().sample(tiny_dataset.graph, np.array([1, 1]))

    def test_rejects_empty_seeds(self, tiny_dataset):
        with pytest.raises(ValueError):
            ShadowSampler().sample(tiny_dataset.graph, np.array([], dtype=np.int64))

    def test_deterministic_given_rng(self, tiny_dataset):
        seeds = tiny_dataset.train_idx[:8]
        a = ShadowSampler().sample(tiny_dataset.graph, seeds, rng=derive_rng(5))
        b = ShadowSampler().sample(tiny_dataset.graph, seeds, rng=derive_rng(5))
        np.testing.assert_array_equal(a.blocks[0].src_ids, b.blocks[0].src_ids)

    def test_single_layer_model(self, tiny_dataset):
        mb = ShadowSampler(fanouts=[3], num_layers=1).sample(
            tiny_dataset.graph, tiny_dataset.train_idx[:4], rng=derive_rng(0)
        )
        assert mb.num_layers == 1
        np.testing.assert_array_equal(mb.blocks[0].dst_ids, tiny_dataset.train_idx[:4])
