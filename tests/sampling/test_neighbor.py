"""Neighbour sampler: fanout bounds, block chaining, uniformity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.build import from_edge_index
from repro.sampling.neighbor import NeighborSampler, sample_neighbors_uniform
from repro.utils.rng import derive_rng


def star_graph(leaves=20):
    """Node 0 has `leaves` in-neighbours 1..leaves."""
    src = np.arange(1, leaves + 1)
    dst = np.zeros(leaves, dtype=np.int64)
    return from_edge_index(src, dst, leaves + 1)


class TestSampleNeighborsUniform:
    def test_fanout_respected(self):
        g = star_graph(20)
        src, dst_pos = sample_neighbors_uniform(g, np.array([0]), 5, derive_rng(0))
        assert len(src) == 5
        assert np.all(dst_pos == 0)

    def test_without_replacement(self):
        g = star_graph(20)
        src, _ = sample_neighbors_uniform(g, np.array([0]), 10, derive_rng(0))
        assert len(np.unique(src)) == 10

    def test_low_degree_keeps_all(self):
        g = star_graph(3)
        src, _ = sample_neighbors_uniform(g, np.array([0]), 10, derive_rng(0))
        assert sorted(src.tolist()) == [1, 2, 3]

    def test_isolated_node(self):
        g = star_graph(3)
        src, dst_pos = sample_neighbors_uniform(g, np.array([1]), 5, derive_rng(0))
        assert len(src) == 0
        assert len(dst_pos) == 0

    def test_sampled_edges_are_real(self, tiny_dataset):
        g = tiny_dataset.graph
        nodes = tiny_dataset.train_idx[:50]
        src, dst_pos = sample_neighbors_uniform(g, nodes, 5, derive_rng(1))
        for s, dpos in zip(src, dst_pos):
            assert s in g.neighbors(nodes[dpos])

    def test_approximately_uniform(self):
        """Over many draws each of 10 neighbours appears ~equally often."""
        g = star_graph(10)
        counts = np.zeros(11)
        rng = derive_rng(7)
        for _ in range(400):
            src, _ = sample_neighbors_uniform(g, np.array([0]), 3, rng)
            counts[src] += 1
        picked = counts[1:]
        assert picked.min() > 0.6 * picked.mean()
        assert picked.max() < 1.4 * picked.mean()

    def test_rejects_bad_fanout(self):
        with pytest.raises(ValueError):
            sample_neighbors_uniform(star_graph(3), np.array([0]), 0, derive_rng(0))


class TestNeighborSampler:
    def test_rejects_empty_fanouts(self):
        with pytest.raises(ValueError):
            NeighborSampler([])

    def test_rejects_empty_seeds(self, tiny_dataset):
        with pytest.raises(ValueError):
            NeighborSampler([5]).sample(tiny_dataset.graph, np.array([], dtype=np.int64))

    def test_rejects_duplicate_seeds(self, tiny_dataset):
        with pytest.raises(ValueError):
            NeighborSampler([5]).sample(tiny_dataset.graph, np.array([1, 1]))

    def test_block_count_matches_layers(self, tiny_dataset):
        mb = NeighborSampler([5, 4, 3]).sample(
            tiny_dataset.graph, tiny_dataset.train_idx[:8], rng=derive_rng(0)
        )
        assert mb.num_layers == 3

    def test_last_block_targets_seeds(self, tiny_dataset):
        seeds = tiny_dataset.train_idx[:8]
        mb = NeighborSampler([5, 4, 3]).sample(tiny_dataset.graph, seeds, rng=derive_rng(0))
        np.testing.assert_array_equal(mb.blocks[-1].dst_ids, seeds)

    def test_blocks_chain(self, tiny_dataset):
        mb = NeighborSampler([5, 4, 3]).sample(
            tiny_dataset.graph, tiny_dataset.train_idx[:8], rng=derive_rng(0)
        )
        for inner, outer in zip(mb.blocks, mb.blocks[1:]):
            assert inner.num_dst == outer.num_src
            np.testing.assert_array_equal(inner.dst_ids, outer.src_ids)

    def test_prefix_convention_everywhere(self, tiny_dataset):
        mb = NeighborSampler([5, 4, 3]).sample(
            tiny_dataset.graph, tiny_dataset.train_idx[:8], rng=derive_rng(0)
        )
        for b in mb.blocks:
            b.validate_prefix()
            assert len(np.unique(b.src_ids)) == len(b.src_ids)

    def test_per_dst_fanout_bound(self, tiny_dataset):
        fanouts = [5, 4, 3]
        mb = NeighborSampler(fanouts).sample(
            tiny_dataset.graph, tiny_dataset.train_idx[:8], rng=derive_rng(0)
        )
        # model-order blocks consume fanouts in reverse walk order: the
        # block closest to the seeds used fanouts[0]
        for block, k in zip(mb.blocks, fanouts[::-1]):
            if block.num_edges == 0:
                continue
            per_dst = np.bincount(block.edge_dst, minlength=block.num_dst)
            assert per_dst.max() <= k

    def test_deterministic_given_rng(self, tiny_dataset):
        seeds = tiny_dataset.train_idx[:8]
        a = NeighborSampler([5, 5]).sample(tiny_dataset.graph, seeds, rng=derive_rng(3))
        b = NeighborSampler([5, 5]).sample(tiny_dataset.graph, seeds, rng=derive_rng(3))
        assert a.total_edges == b.total_edges
        for ba, bb in zip(a.blocks, b.blocks):
            np.testing.assert_array_equal(ba.src_ids, bb.src_ids)
            np.testing.assert_array_equal(ba.edge_src, bb.edge_src)

    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_property_valid_minibatch(self, batch, fanout):
        from repro.graph.generators import erdos_renyi_graph

        g = erdos_renyi_graph(64, 6.0, rng=derive_rng(batch * 31 + fanout))
        seeds = np.arange(min(batch, g.num_nodes), dtype=np.int64)
        mb = NeighborSampler([fanout, fanout]).sample(g, seeds, rng=derive_rng(0))
        for b in mb.blocks:
            b.validate_prefix()
        assert mb.blocks[0].num_dst == mb.blocks[1].num_src
