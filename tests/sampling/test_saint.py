"""GraphSAINT-RW sampler (extension)."""

import numpy as np
import pytest

from repro.graph.build import from_edge_index
from repro.sampling.saint import SaintRWSampler, random_walk
from repro.utils.rng import derive_rng


def chain_graph(n=10):
    """0 <- 1 <- 2 <- ... (each node's single in-neighbour is node+1)."""
    src = np.arange(1, n)
    dst = np.arange(0, n - 1)
    return from_edge_index(src, dst, n)


class TestRandomWalk:
    def test_shape(self, tiny_dataset):
        walks = random_walk(tiny_dataset.graph, np.array([0, 1, 2]), 4, derive_rng(0))
        assert walks.shape == (3, 5)

    def test_starts_preserved(self, tiny_dataset):
        starts = np.array([5, 9])
        walks = random_walk(tiny_dataset.graph, starts, 3, derive_rng(0))
        np.testing.assert_array_equal(walks[:, 0], starts)

    def test_deterministic_chain(self):
        g = chain_graph(6)
        walks = random_walk(g, np.array([0]), 3, derive_rng(0))
        np.testing.assert_array_equal(walks[0], [0, 1, 2, 3])

    def test_isolated_node_stays(self):
        g = chain_graph(4)  # node 3 has no in-neighbours
        walks = random_walk(g, np.array([3]), 3, derive_rng(0))
        np.testing.assert_array_equal(walks[0], [3, 3, 3, 3])

    def test_steps_follow_edges(self, tiny_dataset):
        g = tiny_dataset.graph
        walks = random_walk(g, np.arange(20), 3, derive_rng(1))
        for row in walks:
            for a, b in zip(row, row[1:]):
                assert b == a or b in g.neighbors(a)

    def test_rejects_negative_length(self, tiny_dataset):
        with pytest.raises(ValueError):
            random_walk(tiny_dataset.graph, np.array([0]), -1, derive_rng(0))


class TestSaintRWSampler:
    def test_registered(self):
        from repro.sampling.base import make_sampler

        s = make_sampler("saint-rw", walk_length=2, num_layers=2)
        assert isinstance(s, SaintRWSampler)

    def test_minibatch_valid(self, tiny_dataset):
        seeds = tiny_dataset.train_idx[:8]
        mb = SaintRWSampler(walk_length=3, num_layers=3).sample(
            tiny_dataset.graph, seeds, rng=derive_rng(0)
        )
        assert mb.num_layers == 3
        np.testing.assert_array_equal(mb.blocks[-1].dst_ids, seeds)
        for b in mb.blocks:
            b.validate_prefix()

    def test_subgraph_bounded_by_walks(self, tiny_dataset):
        seeds = tiny_dataset.train_idx[:8]
        mb = SaintRWSampler(walk_length=3, num_layers=2).sample(
            tiny_dataset.graph, seeds, rng=derive_rng(0)
        )
        # at most walk_length new nodes per seed
        assert mb.blocks[0].num_src <= len(seeds) * 4

    def test_trains_end_to_end(self, tiny_dataset):
        """The engine accepts any registered sampler (sampler-agnostic)."""
        from repro.core.engine import MultiProcessEngine
        from repro.gnn.models import build_model

        model = build_model("gcn", tiny_dataset.layer_dims(2), seed=0)
        engine = MultiProcessEngine(
            tiny_dataset,
            SaintRWSampler(walk_length=3, num_layers=2),
            model,
            num_processes=2,
            global_batch_size=64,
            seed=0,
        )
        hist = engine.train(3)
        assert hist.losses[-1] < hist.losses[0] * 1.2

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            SaintRWSampler(walk_length=0)
        with pytest.raises(ValueError):
            SaintRWSampler(num_layers=0)

    def test_rejects_duplicate_seeds(self, tiny_dataset):
        with pytest.raises(ValueError):
            SaintRWSampler().sample(tiny_dataset.graph, np.array([1, 1]))
