"""ASCII rendering helpers."""

import pytest

from repro.experiments.reporting import render_heatmap, render_series, render_table


class TestRenderTable:
    def test_basic_layout(self):
        out = render_table(["a", "bb"], [[1, 2.5], [3, 40.123]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert len(lines) == 5

    def test_number_formatting(self):
        out = render_table(["x"], [[0.00123], [12.3456], [1234.5]])
        assert "0.001" in out
        assert "12.35" in out
        assert "1234.5" in out

    def test_empty_rows(self):
        out = render_table(["col"], [])
        assert "col" in out

    def test_column_alignment(self):
        out = render_table(["name", "v"], [["long-setup-name", 1.0], ["x", 2.0]])
        lines = out.splitlines()
        # all data rows have the same separator position
        positions = {line.index("|") for line in lines if "|" in line}
        assert len(positions) == 1


class TestRenderSeries:
    def test_one_row_per_series_per_x(self):
        out = render_series([1, 2], {"a": [1.0, 2.0], "b": [2.0, 1.0]}, title="S")
        assert out.count("a |") + out.count("a  |") >= 0  # names present
        assert out.count("#") > 0
        assert "S" in out

    def test_bars_scale_with_values(self):
        out = render_series([1], {"big": [10.0], "small": [1.0]}, width=40)
        lines = [l for l in out.splitlines() if "#" in l]
        big = next(l for l in lines if "big" in l)
        small = next(l for l in lines if "small" in l)
        assert big.count("#") > small.count("#")


class TestRenderHeatmap:
    def test_empty(self):
        assert "empty" in render_heatmap({})

    def test_shades_cover_range(self):
        grid = {(x, y): float(x + y) for x in range(1, 5) for y in range(1, 4)}
        out = render_heatmap(grid, invert=False)
        assert "@" in out  # the max renders darkest glyph
        assert "x=1..4" in out

    def test_invert_marks_minimum_dark(self):
        grid = {(1, 1): 0.0, (2, 1): 100.0}
        out = render_heatmap(grid, invert=True)
        row = [l for l in out.splitlines() if l.strip().startswith("1 |")][0]
        # the low-value cell (good) should be the dark glyph
        assert "@" in row

    def test_constant_grid_no_crash(self):
        grid = {(1, 1): 5.0, (2, 1): 5.0}
        out = render_heatmap(grid)
        assert "|" in out
