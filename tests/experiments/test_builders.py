"""Figure/table series builders (on small cached setups)."""

import pytest

from repro.experiments.figures import (
    fig1_baseline_scalability,
    fig2_time_traces,
    fig6_workload_bandwidth,
    fig7_landscape,
    fig9_convergence,
)
from repro.experiments.setups import ExperimentSetup
from repro.experiments.tables import table4_5_row, table6_search_budgets


class TestFigureBuilders:
    def test_fig1_structure(self):
        data = fig1_baseline_scalability("flickr", "sapphire")
        assert data["cores"][0] == 4
        assert data["cores"][-1] == 64
        assert set(data["speedup"]) == {"DGL", "PYG"}
        for series in data["speedup"].values():
            assert series[0] == pytest.approx(1.0)

    def test_fig2_traces(self):
        traces = fig2_time_traces("flickr", "sapphire")
        assert traces["single"].makespan > 0
        assert len(traces["dual"].for_process(1)) > 0

    def test_fig6_rows(self):
        rows = fig6_workload_bandwidth("flickr", "sapphire")
        assert [r["processes"] for r in rows][:2] == [1, 2]
        assert all(r["epoch_time"] > 0 for r in rows)

    def test_fig7_landscape(self):
        res = fig7_landscape(ExperimentSetup("neighbor-sage", "flickr", "sapphire", "dgl"))
        assert res["best"] in res["grid"]
        assert res["grid"][res["best"]] == min(res["grid"].values())

    def test_fig9_runs_real_training(self):
        data = fig9_convergence(
            dataset="flickr",
            process_counts=(1, 2),
            epochs=2,
            scale_override=9,
            global_batch=32,
        )
        assert set(data["curves"]) == {"DGL", "ARGO:2"}
        for curve in data["curves"].values():
            assert len(curve) == 3  # initial + one per epoch
            assert all(0 <= acc <= 1 for _, acc in curve)


class TestTableBuilders:
    def test_table_row_fields(self):
        row = table4_5_row(
            ExperimentSetup("neighbor-sage", "flickr", "sapphire", "dgl"), sa_repeats=2
        )
        assert row["exhaustive"] <= row["default"]
        assert row["exhaustive"] <= row["auto_tuner"] * 1.001
        assert 0 < row["auto_tuner_ratio"] <= 1.001
        assert row["sim_anneal_std"] >= 0
        assert row["best_config"] is not None

    def test_table6_rows(self):
        rows = table6_search_budgets()
        assert len(rows) == 4
        for r in rows:
            assert r["space_size"] < r["paper_space_size"]
            assert 0.04 <= r["fraction"] <= 0.07
