"""Experiment setup plumbing."""

import pytest

from repro.experiments.setups import (
    DATASET_NAMES,
    PAPER_SETUPS,
    ExperimentSetup,
    build_runtime,
)
from repro.platform.simulator import SimulatedRuntime
from repro.tuning.space import ConfigSpace


class TestExperimentSetup:
    def test_full_matrix_size(self):
        assert len(PAPER_SETUPS) == 2 * 4 * 2 * 2

    def test_label(self):
        s = ExperimentSetup("neighbor-sage", "reddit", "icelake", "dgl")
        assert s.label == "DGL-neighbor-sage-reddit@icelake"

    @pytest.mark.parametrize(
        "bad",
        [
            dict(task="cluster", dataset="reddit", platform="icelake", library="dgl"),
            dict(task="neighbor-sage", dataset="reddit", platform="arm", library="dgl"),
            dict(task="neighbor-sage", dataset="reddit", platform="icelake", library="jax"),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ExperimentSetup(**bad)


class TestBuildRuntime:
    def test_returns_runtime_and_space(self):
        rt, space = build_runtime(
            ExperimentSetup("neighbor-sage", "flickr", "sapphire", "dgl")
        )
        assert isinstance(rt, SimulatedRuntime)
        assert isinstance(space, ConfigSpace)
        assert space.total_cores == 64

    def test_caching_shares_workload(self):
        a, _ = build_runtime(ExperimentSetup("neighbor-sage", "flickr", "icelake", "dgl"))
        b, _ = build_runtime(ExperimentSetup("neighbor-sage", "flickr", "sapphire", "pyg"))
        assert a.cost_model.workload is b.cost_model.workload

    def test_different_tasks_get_different_workloads(self):
        a, _ = build_runtime(ExperimentSetup("neighbor-sage", "flickr", "icelake", "dgl"))
        b, _ = build_runtime(ExperimentSetup("shadow-gcn", "flickr", "icelake", "dgl"))
        assert a.cost_model.workload is not b.cost_model.workload

    def test_dataset_names_cover_table3(self):
        assert DATASET_NAMES == ["flickr", "reddit", "ogbn-products", "ogbn-papers100M"]
