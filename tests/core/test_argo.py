"""The ARGO wrapper (Listing 1/3 usage)."""

import numpy as np
import pytest

from repro.core.argo import ARGO
from repro.core.config import RuntimeConfig
from repro.platform.simulator import SimulatedRuntime
from repro.tuning.space import ConfigSpace


@pytest.fixture
def space():
    return ConfigSpace(64)


def simulated_train_fn(runtime):
    """A Listing-3-style train function backed by the simulator."""

    def train(*, config: RuntimeConfig, epochs: int):
        return [runtime.measure_epoch(config.as_tuple()) for _ in range(epochs)]

    return train


class TestConstruction:
    def test_default_budget_is_5pct(self, space):
        runtime = ARGO(epoch=200, space=space)
        assert runtime.n_search == space.paper_budget()

    def test_rejects_search_budget_ge_epochs(self, space):
        with pytest.raises(ValueError):
            ARGO(n_search=10, epoch=10, space=space)

    def test_rejects_bad_epoch(self, space):
        with pytest.raises(ValueError):
            ARGO(n_search=1, epoch=0, space=space)


class TestRun:
    def test_full_run_structure(self, dgl_cost_model, space):
        rt = SimulatedRuntime(dgl_cost_model, seed=0)
        runtime = ARGO(n_search=6, epoch=20, space=space, seed=0)
        result = runtime.run(simulated_train_fn(rt))
        assert result.total_epochs == 20
        assert result.search_epochs == 6
        assert len(result.search_history) == 6
        assert len(result.exploit_epoch_times) == 14
        assert result.best_config.as_tuple() in space

    def test_total_time_includes_search_and_overhead(self, dgl_cost_model, space):
        """Fig. 10/11 end-to-end time counts the sub-optimal search epochs
        AND tuner overhead."""
        rt = SimulatedRuntime(dgl_cost_model, seed=0)
        runtime = ARGO(n_search=6, epoch=20, space=space, seed=0)
        result = runtime.run(simulated_train_fn(rt))
        parts = (
            sum(t for _, t in result.search_history)
            + sum(result.exploit_epoch_times)
            + result.tuner_overhead_seconds
        )
        assert result.total_time == pytest.approx(parts)

    def test_exploit_config_is_search_best(self, dgl_cost_model, space):
        rt = SimulatedRuntime(dgl_cost_model, seed=0)
        runtime = ARGO(n_search=6, epoch=10, space=space, seed=0)
        result = runtime.run(simulated_train_fn(rt))
        best_searched = min(result.search_history, key=lambda cv: cv[1])[0]
        assert result.best_config.as_tuple() == best_searched

    def test_train_fn_receives_config_and_epochs(self, dgl_cost_model, space):
        rt = SimulatedRuntime(dgl_cost_model, seed=0)
        calls = []

        def train(*, config, epochs):
            calls.append((config.as_tuple(), epochs))
            return [rt.measure_epoch(config.as_tuple()) for _ in range(epochs)]

        ARGO(n_search=4, epoch=10, space=space, seed=0).run(train)
        assert len(calls) == 5  # 4 single-epoch searches + 1 exploit call
        assert all(e == 1 for _, e in calls[:4])
        assert calls[-1][1] == 6

    def test_scalar_return_accepted_for_single_epoch(self, dgl_cost_model, space):
        rt = SimulatedRuntime(dgl_cost_model, seed=0)

        def train(*, config, epochs):
            if epochs == 1:
                return rt.measure_epoch(config.as_tuple())
            return [rt.measure_epoch(config.as_tuple()) for _ in range(epochs)]

        result = ARGO(n_search=3, epoch=6, space=space, seed=0).run(train)
        assert len(result.search_history) == 3

    def test_wrong_epoch_count_rejected(self, dgl_cost_model, space):
        def train(*, config, epochs):
            return [1.0]  # always one epoch time

        runtime = ARGO(n_search=3, epoch=10, space=space, seed=0)
        with pytest.raises(ValueError):
            runtime.run(train)

    def test_positional_args_forwarded(self, dgl_cost_model, space):
        rt = SimulatedRuntime(dgl_cost_model, seed=0)
        seen = []

        def train(tag, *, config, epochs):
            seen.append(tag)
            return [rt.measure_epoch(config.as_tuple())] * epochs

        ARGO(n_search=3, epoch=5, space=space, seed=0).run(train, args=("hello",))
        assert seen and all(s == "hello" for s in seen)
