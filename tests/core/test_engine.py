"""Multi-Process Engine: semantics preservation and backends."""

import numpy as np
import pytest

from repro.core.engine import MultiProcessEngine
from repro.gnn.models import make_task


def build_engine(ds, n=2, backend="inline", batch=64, seed=0, task="neighbor-sage"):
    sampler, model = make_task(task, ds.layer_dims(2), seed=seed, fanouts=[5, 5] if task == "neighbor-sage" else None)
    return MultiProcessEngine(
        ds,
        sampler,
        model,
        num_processes=n,
        global_batch_size=batch,
        backend=backend,
        seed=seed,
    )


class TestConstruction:
    def test_replica_count(self, tiny_dataset):
        eng = build_engine(tiny_dataset, n=3)
        assert len(eng.replicas) == 3
        assert eng.model is eng.replicas[0]

    def test_per_rank_batch(self, tiny_dataset):
        eng = build_engine(tiny_dataset, n=4, batch=64)
        assert eng.per_rank_batch == 16

    def test_rejects_batch_smaller_than_ranks(self, tiny_dataset):
        with pytest.raises(ValueError):
            build_engine(tiny_dataset, n=8, batch=4)

    def test_rejects_unknown_backend(self, tiny_dataset):
        with pytest.raises(ValueError):
            build_engine(tiny_dataset, backend="mpi")


class TestTraining:
    def test_epoch_stats(self, tiny_dataset):
        eng = build_engine(tiny_dataset, n=2)
        stats = eng.train_epoch()
        assert stats.epoch == 0
        assert stats.num_global_steps >= 1
        assert stats.num_minibatches == stats.num_global_steps * 2
        assert stats.mean_loss > 0
        assert stats.sampled_edges > 0
        assert stats.epoch_time > 0

    def test_loss_decreases_over_epochs(self, tiny_dataset):
        eng = build_engine(tiny_dataset, n=2, batch=128)
        hist = eng.train(6)
        assert hist.losses[-1] < hist.losses[0]

    def test_replicas_stay_synchronised(self, tiny_dataset):
        """After any number of steps all replicas hold identical weights —
        the DDP invariant."""
        eng = build_engine(tiny_dataset, n=3)
        eng.train(2)
        ref = eng.replicas[0].state_dict()
        for rep in eng.replicas[1:]:
            for k, v in rep.state_dict().items():
                np.testing.assert_allclose(v, ref[k], rtol=1e-5, atol=1e-6)

    def test_deterministic_in_seed(self, tiny_dataset):
        a = build_engine(tiny_dataset, n=2, seed=5)
        b = build_engine(tiny_dataset, n=2, seed=5)
        a.train(2)
        b.train(2)
        for k, v in a.model.state_dict().items():
            np.testing.assert_array_equal(v, b.model.state_dict()[k])

    def test_history_accumulates(self, tiny_dataset):
        eng = build_engine(tiny_dataset)
        eng.train(3)
        assert len(eng.history.epochs) == 3
        assert eng.history.total_time > 0
        assert eng.history.total_minibatches > 0


class TestEvaluation:
    def test_accuracy_in_unit_interval(self, tiny_dataset):
        eng = build_engine(tiny_dataset)
        acc = eng.evaluate()
        assert 0.0 <= acc <= 1.0

    def test_training_improves_accuracy(self, tiny_dataset):
        eng = build_engine(tiny_dataset, n=2, batch=128)
        before = eng.evaluate()
        eng.train(8)
        after = eng.evaluate()
        assert after > before

    def test_record_accuracy_builds_curve(self, tiny_dataset):
        eng = build_engine(tiny_dataset)
        eng.train(2, eval_every=1)
        curve = eng.history.accuracy_curve
        assert len(curve) == 2
        xs = [x for x, _ in curve]
        assert xs == sorted(xs)


class TestThreadBackend:
    def test_thread_epoch_runs(self, tiny_dataset):
        eng = build_engine(tiny_dataset, n=2, backend="thread")
        stats = eng.train_epoch()
        assert stats.num_global_steps >= 1
        assert stats.mean_loss > 0

    def test_thread_replicas_synchronised(self, tiny_dataset):
        eng = build_engine(tiny_dataset, n=3, backend="thread")
        eng.train(2)
        ref = eng.replicas[0].state_dict()
        for rep in eng.replicas[1:]:
            for k, v in rep.state_dict().items():
                np.testing.assert_allclose(v, ref[k], rtol=1e-4, atol=1e-5)

    def test_thread_matches_inline_loss_scale(self, tiny_dataset):
        """Thread and inline backends implement the same algorithm; their
        loss trajectories should track closely."""
        a = build_engine(tiny_dataset, n=2, backend="inline", seed=1)
        b = build_engine(tiny_dataset, n=2, backend="thread", seed=1)
        la = a.train(3).losses
        lb = b.train(3).losses
        np.testing.assert_allclose(la, lb, rtol=1e-3)


class TestShadowTask:
    def test_shadow_engine_trains(self, tiny_dataset):
        eng = build_engine(tiny_dataset, n=2, task="shadow-gcn")
        hist = eng.train(3)
        assert hist.losses[-1] < hist.losses[0] * 1.5
