"""Multi-Process Engine: semantics preservation and backends."""

import os

import numpy as np
import pytest

from repro.core.engine import MultiProcessEngine
from repro.gnn.models import make_task

ALL_BACKENDS = ("inline", "thread", "process")


class ExplodingSampler:
    """Module-level (hence picklable — the persistent runtime ships the
    sampler over the command queue) sampler that always fails."""

    num_layers = 2

    def sample(self, graph, seeds, *, rng=None):
        raise RuntimeError("boom")


def build_engine(ds, n=2, backend="inline", batch=64, seed=0, task="neighbor-sage", **kw):
    sampler, model = make_task(task, ds.layer_dims(2), seed=seed, fanouts=[5, 5] if task == "neighbor-sage" else None)
    return MultiProcessEngine(
        ds,
        sampler,
        model,
        num_processes=n,
        global_batch_size=batch,
        backend=backend,
        seed=seed,
        **kw,
    )


class TestConstruction:
    def test_replica_count(self, tiny_dataset):
        eng = build_engine(tiny_dataset, n=3)
        assert len(eng.replicas) == 3
        assert eng.model is eng.replicas[0]

    def test_per_rank_batch(self, tiny_dataset):
        eng = build_engine(tiny_dataset, n=4, batch=64)
        assert eng.per_rank_batch == 16

    def test_rejects_batch_smaller_than_ranks(self, tiny_dataset):
        with pytest.raises(ValueError):
            build_engine(tiny_dataset, n=8, batch=4)

    def test_rejects_unknown_backend(self, tiny_dataset):
        with pytest.raises(ValueError):
            build_engine(tiny_dataset, backend="mpi")


class TestTraining:
    def test_epoch_stats(self, tiny_dataset):
        eng = build_engine(tiny_dataset, n=2)
        stats = eng.train_epoch()
        assert stats.epoch == 0
        assert stats.num_global_steps >= 1
        assert stats.num_minibatches == stats.num_global_steps * 2
        assert stats.mean_loss > 0
        assert stats.sampled_edges > 0
        assert stats.epoch_time > 0

    def test_loss_decreases_over_epochs(self, tiny_dataset):
        eng = build_engine(tiny_dataset, n=2, batch=128)
        hist = eng.train(6)
        assert hist.losses[-1] < hist.losses[0]

    def test_replicas_stay_synchronised(self, tiny_dataset):
        """After any number of steps all replicas hold identical weights —
        the DDP invariant."""
        eng = build_engine(tiny_dataset, n=3)
        eng.train(2)
        ref = eng.replicas[0].state_dict()
        for rep in eng.replicas[1:]:
            for k, v in rep.state_dict().items():
                np.testing.assert_allclose(v, ref[k], rtol=1e-5, atol=1e-6)

    def test_deterministic_in_seed(self, tiny_dataset):
        a = build_engine(tiny_dataset, n=2, seed=5)
        b = build_engine(tiny_dataset, n=2, seed=5)
        a.train(2)
        b.train(2)
        for k, v in a.model.state_dict().items():
            np.testing.assert_array_equal(v, b.model.state_dict()[k])

    def test_history_accumulates(self, tiny_dataset):
        eng = build_engine(tiny_dataset)
        eng.train(3)
        assert len(eng.history.epochs) == 3
        assert eng.history.total_time > 0
        assert eng.history.total_minibatches > 0


class TestEvaluation:
    def test_accuracy_in_unit_interval(self, tiny_dataset):
        eng = build_engine(tiny_dataset)
        acc = eng.evaluate()
        assert 0.0 <= acc <= 1.0

    def test_training_improves_accuracy(self, tiny_dataset):
        eng = build_engine(tiny_dataset, n=2, batch=128)
        before = eng.evaluate()
        eng.train(8)
        after = eng.evaluate()
        assert after > before

    def test_record_accuracy_builds_curve(self, tiny_dataset):
        eng = build_engine(tiny_dataset)
        eng.train(2, eval_every=1)
        curve = eng.history.accuracy_curve
        assert len(curve) == 2
        xs = [x for x, _ in curve]
        assert xs == sorted(xs)


class TestThreadBackend:
    def test_thread_epoch_runs(self, tiny_dataset):
        eng = build_engine(tiny_dataset, n=2, backend="thread")
        stats = eng.train_epoch()
        assert stats.num_global_steps >= 1
        assert stats.mean_loss > 0

    def test_thread_replicas_synchronised(self, tiny_dataset):
        eng = build_engine(tiny_dataset, n=3, backend="thread")
        eng.train(2)
        ref = eng.replicas[0].state_dict()
        for rep in eng.replicas[1:]:
            for k, v in rep.state_dict().items():
                np.testing.assert_allclose(v, ref[k], rtol=1e-4, atol=1e-5)

    def test_thread_matches_inline_loss_scale(self, tiny_dataset):
        """Thread and inline backends implement the same algorithm; their
        loss trajectories should track closely."""
        a = build_engine(tiny_dataset, n=2, backend="inline", seed=1)
        b = build_engine(tiny_dataset, n=2, backend="thread", seed=1)
        la = a.train(3).losses
        lb = b.train(3).losses
        np.testing.assert_allclose(la, lb, rtol=1e-3)


class TestProcessBackend:
    def test_process_epoch_runs(self, tiny_dataset):
        with build_engine(tiny_dataset, n=2, backend="process") as eng:
            stats = eng.train_epoch()
        assert stats.num_global_steps >= 1
        assert stats.mean_loss > 0
        assert stats.sampled_edges > 0

    def test_process_replicas_synchronised(self, tiny_dataset):
        with build_engine(tiny_dataset, n=2, backend="process") as eng:
            eng.train(2)
            ref = eng.replicas[0].state_dict()
            for rep in eng.replicas[1:]:
                for k, v in rep.state_dict().items():
                    np.testing.assert_allclose(v, ref[k], rtol=1e-5, atol=1e-6)

    def test_shutdown_unlinks_all_segments(self, tiny_dataset):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm to inspect")
        eng = build_engine(tiny_dataset, n=2, backend="process")
        eng.train_epoch()
        store = eng._backend._store
        names = [spec.shm_name for spec in store.spec.values()]
        assert all(os.path.exists(f"/dev/shm/{n}") for n in names)
        eng.shutdown()
        assert not any(os.path.exists(f"/dev/shm/{n}") for n in names)

    def test_shutdown_is_idempotent_and_engine_reusable(self, tiny_dataset):
        eng = build_engine(tiny_dataset, n=2, backend="process")
        eng.train_epoch()
        eng.shutdown()
        eng.shutdown()
        eng.train_epoch()  # backend re-creates the store on demand
        eng.shutdown()
        assert len(eng.history.epochs) == 2

    @pytest.mark.parametrize("persistent", [True, False])
    def test_worker_failure_propagates(self, tiny_dataset, persistent):
        _, model = make_task("neighbor-sage", tiny_dataset.layer_dims(2), seed=0, fanouts=[5, 5])
        eng = MultiProcessEngine(
            tiny_dataset, ExplodingSampler(), model, num_processes=2, global_batch_size=64,
            backend="process", backend_options={"timeout": 30.0}, persistent=persistent,
        )
        with pytest.raises(RuntimeError, match="boom"):
            eng.train_epoch()
        eng.shutdown()


#: every execution mode the engine offers: backend x persistent (the
#: persistent flag only changes the process backend's worker lifecycle)
ALL_MODES = [
    ("thread", True),
    ("process", True),
    ("process", False),
]


class TestBackendParity:
    """Same seed => same trajectory on every backend and worker
    lifecycle (acceptance criterion: inline/thread/process x
    persistent on/off)."""

    @pytest.mark.parametrize("backend,persistent", ALL_MODES)
    def test_loss_trajectory_matches_inline(self, tiny_dataset, backend, persistent):
        a = build_engine(tiny_dataset, n=2, backend="inline", seed=3)
        b = build_engine(tiny_dataset, n=2, backend=backend, seed=3, persistent=persistent)
        try:
            la = a.train(3).losses
            lb = b.train(3).losses
        finally:
            b.shutdown()
        # acceptance: per-epoch loss within 1e-6 of the inline reference
        np.testing.assert_allclose(lb, la, atol=1e-6, rtol=0)

    @pytest.mark.parametrize("backend,persistent", ALL_MODES)
    def test_final_weights_match_inline(self, tiny_dataset, backend, persistent):
        a = build_engine(tiny_dataset, n=2, backend="inline", seed=3)
        b = build_engine(tiny_dataset, n=2, backend=backend, seed=3, persistent=persistent)
        try:
            a.train(2)
            b.train(2)
        finally:
            b.shutdown()
        for k, v in a.model.state_dict().items():
            np.testing.assert_allclose(b.model.state_dict()[k], v, rtol=1e-5, atol=1e-6)

    def test_persistent_pool_matches_respawn_bitwise(self, tiny_dataset):
        """The two process-backend lifecycles are the *same algorithm*:
        loss streams agree exactly, not merely to tolerance."""
        a = build_engine(tiny_dataset, n=2, backend="process", seed=3, persistent=False)
        b = build_engine(tiny_dataset, n=2, backend="process", seed=3, persistent=True)
        try:
            la = a.train(3).losses
            lb = b.train(3).losses
        finally:
            a.shutdown()
            b.shutdown()
        assert la == lb
        for k, v in a.model.state_dict().items():
            np.testing.assert_array_equal(b.model.state_dict()[k], v)

    def test_inline_reruns_are_bit_identical(self, tiny_dataset):
        a = build_engine(tiny_dataset, n=2, seed=9)
        b = build_engine(tiny_dataset, n=2, seed=9)
        a.train(2)
        b.train(2)
        assert a.history.losses == b.history.losses
        for k, v in a.model.state_dict().items():
            np.testing.assert_array_equal(v, b.model.state_dict()[k])

    def test_process_multi_epoch_optimizer_state_carries(self, tiny_dataset):
        """Adam moments must round-trip through the workers: a diverging
        second epoch would reveal lost optimizer state."""
        a = build_engine(tiny_dataset, n=2, backend="inline", seed=5)
        b = build_engine(tiny_dataset, n=2, backend="process", seed=5)
        try:
            la = a.train(4).losses
            lb = b.train(4).losses
        finally:
            b.shutdown()
        np.testing.assert_allclose(lb, la, atol=1e-6, rtol=0)


class TestShadowTask:
    def test_shadow_engine_trains(self, tiny_dataset):
        eng = build_engine(tiny_dataset, n=2, task="shadow-gcn")
        hist = eng.train(3)
        assert hist.losses[-1] < hist.losses[0] * 1.5

    def test_shadow_process_backend_parity(self, tiny_dataset):
        a = build_engine(tiny_dataset, n=2, task="shadow-gcn", backend="inline", seed=1)
        b = build_engine(tiny_dataset, n=2, task="shadow-gcn", backend="process", seed=1)
        try:
            la = a.train(2).losses
            lb = b.train(2).losses
        finally:
            b.shutdown()
        np.testing.assert_allclose(lb, la, atol=1e-6, rtol=0)
