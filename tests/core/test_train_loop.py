"""make_train_fn / evaluate_accuracy helpers."""

import numpy as np
import pytest

from repro.core.config import RuntimeConfig
from repro.core.train_loop import evaluate_accuracy, make_train_fn
from repro.gnn.models import make_task


@pytest.fixture
def task(tiny_dataset):
    return make_task("neighbor-sage", tiny_dataset.layer_dims(2), seed=0, fanouts=[5, 5])


class TestMakeTrainFn:
    def test_returns_epoch_times(self, tiny_dataset, task):
        sampler, model = task
        train = make_train_fn(tiny_dataset, sampler, model, global_batch_size=64)
        times = train(config=RuntimeConfig(2, 1, 1), epochs=2)
        assert len(times) == 2
        assert all(t > 0 for t in times)

    def test_weights_persist_across_calls(self, tiny_dataset, task):
        """Re-launching with a different process count must continue
        training the same model (paper: tuner re-launches the train fn)."""
        sampler, model = task
        train = make_train_fn(tiny_dataset, sampler, model, global_batch_size=64)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        train(config=RuntimeConfig(1, 1, 1), epochs=1)
        mid = {k: v.copy() for k, v in model.state_dict().items()}
        train(config=RuntimeConfig(4, 1, 1), epochs=1)
        after = model.state_dict()
        assert any(not np.array_equal(before[k], mid[k]) for k in before)
        assert any(not np.array_equal(mid[k], after[k]) for k in mid)

    def test_learning_progresses_across_relaunches(self, tiny_dataset, task):
        sampler, model = task
        train = make_train_fn(tiny_dataset, sampler, model, global_batch_size=128)
        acc0 = evaluate_accuracy(tiny_dataset, sampler, model, seed=0)
        for cfg in [(1, 1, 1), (2, 1, 1), (4, 1, 1), (2, 1, 1)]:
            train(config=RuntimeConfig(*cfg), epochs=2)
        acc1 = evaluate_accuracy(tiny_dataset, sampler, model, seed=0)
        assert acc1 > acc0

    def test_backend_taken_from_config(self, tiny_dataset, task):
        """backend=None defers to each config's own backend field."""
        sampler, model = task
        train = make_train_fn(tiny_dataset, sampler, model, global_batch_size=64)
        times = train(config=RuntimeConfig(2, 1, 1, backend="process"), epochs=1)
        assert len(times) == 1 and times[0] > 0

    def test_explicit_backend_overrides_config(self, tiny_dataset, task):
        sampler, model = task
        train = make_train_fn(
            tiny_dataset, sampler, model, global_batch_size=64, backend="inline"
        )
        # config asks for process, the fixed backend wins — still trains
        times = train(config=RuntimeConfig(2, 1, 1, backend="process"), epochs=1)
        assert len(times) == 1

    def test_platform_builds_process_bindings(self, tiny_dataset, task):
        from repro.platform.spec import ICE_LAKE_8380H

        sampler, model = task
        train = make_train_fn(
            tiny_dataset, sampler, model, global_batch_size=64,
            backend="process", platform=ICE_LAKE_8380H,
        )
        times = train(config=RuntimeConfig(2, 1, 1), epochs=1)
        assert len(times) == 1 and times[0] > 0


class TestEvaluateAccuracy:
    def test_unit_interval(self, tiny_dataset, task):
        sampler, model = task
        acc = evaluate_accuracy(tiny_dataset, sampler, model)
        assert 0.0 <= acc <= 1.0

    def test_respects_max_nodes(self, tiny_dataset, task):
        sampler, model = task
        acc = evaluate_accuracy(tiny_dataset, sampler, model, max_nodes=16)
        assert 0.0 <= acc <= 1.0

    def test_empty_nodes(self, tiny_dataset, task):
        sampler, model = task
        assert evaluate_accuracy(tiny_dataset, sampler, model, nodes=np.array([])) == 0.0

    def test_restores_training_mode(self, tiny_dataset, task):
        sampler, model = task
        model.train()
        evaluate_accuracy(tiny_dataset, sampler, model)
        assert model.training
