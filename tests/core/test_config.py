"""RuntimeConfig record."""

import pytest

from repro.core.config import RuntimeConfig


class TestRuntimeConfig:
    def test_fields_and_derived(self):
        cfg = RuntimeConfig(4, 2, 6)
        assert cfg.cores_per_process == 8
        assert cfg.total_cores == 32

    def test_tuple_roundtrip(self):
        cfg = RuntimeConfig.from_tuple((2, 3, 5))
        assert cfg.as_tuple() == (2, 3, 5)

    def test_frozen(self):
        cfg = RuntimeConfig(1, 1, 1)
        with pytest.raises(Exception):
            cfg.num_processes = 2

    @pytest.mark.parametrize("bad", [(0, 1, 1), (1, 0, 1), (1, 1, 0)])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            RuntimeConfig(*bad)

    def test_str(self):
        assert str(RuntimeConfig(2, 3, 5)) == "(n=2, samp=3, train=5)"


class TestBackendField:
    def test_defaults_to_inline(self):
        assert RuntimeConfig(1, 1, 1).backend == "inline"

    def test_accepts_registered_backends(self):
        for b in ("inline", "thread", "process"):
            assert RuntimeConfig(2, 1, 1, backend=b).backend == b

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            RuntimeConfig(1, 1, 1, backend="mpi")

    def test_from_tuple_four_wide(self):
        cfg = RuntimeConfig.from_tuple((2, 3, 5, "process"))
        assert cfg.backend == "process"
        assert cfg.as_tuple() == (2, 3, 5)  # numeric triple unchanged

    def test_str_shows_non_default_backend(self):
        assert "backend=process" in str(RuntimeConfig(2, 3, 5, backend="process"))
        assert "backend" not in str(RuntimeConfig(2, 3, 5))

    def test_backend_name_normalised_like_get_backend(self):
        assert RuntimeConfig(1, 1, 1, backend="Process").backend == "process"


class TestPrefetchFields:
    def test_defaults_off(self):
        cfg = RuntimeConfig(2, 2, 4)
        assert cfg.prefetch is False
        assert cfg.queue_depth == 2

    def test_prefetch_coerced_to_bool(self):
        assert RuntimeConfig(1, 1, 1, prefetch=1).prefetch is True

    def test_queue_depth_validated(self):
        with pytest.raises(ValueError):
            RuntimeConfig(1, 1, 1, queue_depth=0)

    def test_str_mentions_prefetch_only_when_on(self):
        assert "prefetch" not in str(RuntimeConfig(2, 3, 5))
        assert "prefetch=q4" in str(RuntimeConfig(2, 3, 5, prefetch=True, queue_depth=4))

    def test_tuple_roundtrip_ignores_prefetch(self):
        cfg = RuntimeConfig(2, 3, 5, prefetch=True)
        assert cfg.as_tuple() == (2, 3, 5)
