"""RuntimeConfig record."""

import pytest

from repro.core.config import RuntimeConfig


class TestRuntimeConfig:
    def test_fields_and_derived(self):
        cfg = RuntimeConfig(4, 2, 6)
        assert cfg.cores_per_process == 8
        assert cfg.total_cores == 32

    def test_tuple_roundtrip(self):
        cfg = RuntimeConfig.from_tuple((2, 3, 5))
        assert cfg.as_tuple() == (2, 3, 5)

    def test_frozen(self):
        cfg = RuntimeConfig(1, 1, 1)
        with pytest.raises(Exception):
            cfg.num_processes = 2

    @pytest.mark.parametrize("bad", [(0, 1, 1), (1, 0, 1), (1, 1, 0)])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            RuntimeConfig(*bad)

    def test_str(self):
        assert str(RuntimeConfig(2, 3, 5)) == "(n=2, samp=3, train=5)"
