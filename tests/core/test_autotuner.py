"""Online auto-tuner (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.autotuner import OnlineAutoTuner
from repro.core.config import RuntimeConfig
from repro.platform.simulator import SimulatedRuntime
from repro.tuning.search import RandomSearch
from repro.tuning.space import ConfigSpace


@pytest.fixture
def runtime(dgl_cost_model):
    return SimulatedRuntime(dgl_cost_model, noise=0.015, seed=0)


@pytest.fixture
def space():
    return ConfigSpace(112)


class TestAlgorithm1:
    def test_runs_exactly_num_searches(self, runtime, space):
        tuner = OnlineAutoTuner(space, num_searches=10, seed=0)
        res = tuner.tune(runtime.measure_epoch)
        assert res.num_searches == 10
        assert len(res.history) == 10

    def test_stepwise_interface(self, runtime, space):
        tuner = OnlineAutoTuner(space, num_searches=5, seed=0)
        while not tuner.done:
            cfg = tuner.propose()
            assert cfg in space
            tuner.observe(cfg, runtime.measure_epoch(cfg))
        assert tuner.get_opt() in space

    def test_get_opt_is_best_observed(self, runtime, space):
        tuner = OnlineAutoTuner(space, num_searches=8, seed=1)
        res = tuner.tune(runtime.measure_epoch)
        best_in_history = min(res.history, key=lambda cv: cv[1])[0]
        assert res.best_config == best_in_history

    def test_get_opt_before_observations_raises(self, space):
        with pytest.raises(RuntimeError):
            OnlineAutoTuner(space, num_searches=3).get_opt()

    def test_no_setup_specific_inputs(self, space):
        """Paper: the tuner takes only num_searches — no platform/model info."""
        tuner = OnlineAutoTuner(space, num_searches=5)
        assert tuner.num_searches == 5

    def test_rejects_bad_budget(self, space):
        with pytest.raises(ValueError):
            OnlineAutoTuner(space, num_searches=0)


class TestTunerQuality:
    def test_near_optimal_with_5pct_budget(self, runtime, space):
        """Headline claim: >= 90% of optimal exploring ~5% of the space."""
        best_true, _ = runtime.argo_best_epoch_time(112, space)
        tuner = OnlineAutoTuner(space, space.paper_budget(0.05), seed=2)
        res = tuner.tune(runtime.measure_epoch)
        found = runtime.true_epoch_time(res.best_config)
        assert best_true / found >= 0.90

    def test_beats_random_on_average(self, runtime, space):
        """Tables IV/V pattern: the auto-tuner outperforms an equal-budget
        random strategy on almost every task."""
        budget = space.paper_budget(0.05)
        tuner_scores, random_scores = [], []
        for seed in range(4):
            tuner = OnlineAutoTuner(space, budget, seed=seed)
            res = tuner.tune(runtime.measure_epoch)
            tuner_scores.append(runtime.true_epoch_time(res.best_config))
            rnd = RandomSearch().run(runtime.measure_epoch, space, budget, seed=seed)
            random_scores.append(runtime.true_epoch_time(rnd.best_config))
        assert np.mean(tuner_scores) <= np.mean(random_scores) * 1.02

    def test_deterministic_in_seed(self, dgl_cost_model, space):
        def run(seed):
            rt = SimulatedRuntime(dgl_cost_model, noise=0.015, seed=42)
            tuner = OnlineAutoTuner(space, 8, seed=seed)
            return tuner.tune(rt.measure_epoch).history

        assert run(3) == run(3)
        assert run(3) != run(4)


class TestOverheadAccounting:
    def test_overhead_measured_and_small(self, runtime, space):
        """Paper Sec. VI-D: tuner cost is seconds, not minutes."""
        tuner = OnlineAutoTuner(space, space.paper_budget(0.05), seed=0)
        res = tuner.tune(runtime.measure_epoch)
        assert 0 < res.overhead_seconds < 10.0

    def test_memory_estimate_tens_of_mb_max(self, runtime, space):
        """Paper reports 10-20 MB extra; our estimate must be of that
        order or smaller."""
        tuner = OnlineAutoTuner(space, space.paper_budget(0.05), seed=0)
        res = tuner.tune(runtime.measure_epoch)
        assert res.surrogate_memory_bytes < 30 * 1024 * 1024

    def test_best_runtime_config_type(self, runtime, space):
        tuner = OnlineAutoTuner(space, 5, seed=0)
        tuner.tune(runtime.measure_epoch)
        assert isinstance(tuner.best_runtime_config(), RuntimeConfig)
