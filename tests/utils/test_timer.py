"""Clock and timer behaviour."""

import pytest

from repro.utils.timer import Timer, VirtualClock, WallClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_advance(self):
        c = VirtualClock(10.0)
        c.advance(2.5)
        assert c.now() == 12.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)


class TestWallClock:
    def test_monotone(self):
        c = WallClock()
        a = c.now()
        b = c.now()
        assert b >= a


class TestTimer:
    def test_accumulates_virtual_time(self):
        clock = VirtualClock()
        timer = Timer(clock=clock)
        with timer:
            clock.advance(1.0)
        with timer:
            clock.advance(2.0)
        assert timer.total == pytest.approx(3.0)
        assert timer.count == 2
        assert timer.mean == pytest.approx(1.5)

    def test_reset(self):
        clock = VirtualClock()
        timer = Timer(clock=clock)
        with timer:
            clock.advance(1.0)
        timer.reset()
        assert timer.total == 0.0
        assert timer.count == 0
        assert timer.mean == 0.0

    def test_wall_timer_positive(self):
        timer = Timer()
        with timer:
            sum(range(1000))
        assert timer.total >= 0.0
