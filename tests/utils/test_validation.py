"""Argument validation helpers."""

import pytest

from repro.utils.validation import (
    check_in,
    check_nonneg_int,
    check_positive_int,
    check_probability,
)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_integral_float(self):
        assert check_positive_int(4.0, "x") == 4

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-2, "x")

    def test_rejects_fractional(self):
        with pytest.raises(TypeError):
            check_positive_int(2.5, "x")

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            check_positive_int("three", "x")


class TestCheckNonnegInt:
    def test_accepts_zero(self):
        assert check_nonneg_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonneg_int(-1, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_nonneg_int(True, "x")


class TestCheckProbability:
    @pytest.mark.parametrize("p", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, p):
        assert check_probability(p, "p") == p

    @pytest.mark.parametrize("p", [-0.1, 1.1])
    def test_rejects_outside(self, p):
        with pytest.raises(ValueError):
            check_probability(p, "p")


class TestCheckIn:
    def test_accepts_member(self):
        assert check_in("a", {"a", "b"}, "opt") == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ValueError, match="opt"):
            check_in("c", {"a", "b"}, "opt")
