"""Determinism guarantees of the RNG utilities."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import as_generator, derive_rng, spawn_seeds, RngMixin


class TestDeriveRng:
    def test_deterministic(self):
        a = derive_rng(42, "sampler", 3).integers(0, 1 << 30, 10)
        b = derive_rng(42, "sampler", 3).integers(0, 1 << 30, 10)
        assert np.array_equal(a, b)

    def test_streams_differ_by_name(self):
        a = derive_rng(42, "sampler").integers(0, 1 << 30, 10)
        b = derive_rng(42, "shuffle").integers(0, 1 << 30, 10)
        assert not np.array_equal(a, b)

    def test_streams_differ_by_rank(self):
        a = derive_rng(42, "sample", 0).integers(0, 1 << 30, 10)
        b = derive_rng(42, "sample", 1).integers(0, 1 << 30, 10)
        assert not np.array_equal(a, b)

    def test_streams_differ_by_seed(self):
        a = derive_rng(1, "x").integers(0, 1 << 30, 10)
        b = derive_rng(2, "x").integers(0, 1 << 30, 10)
        assert not np.array_equal(a, b)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_any_seed_valid(self, seed):
        rng = derive_rng(seed, "t", 7)
        assert 0 <= rng.random() < 1

    def test_string_and_int_parts_mix(self):
        rng = derive_rng(0, "a", 1, "b", 2)
        assert rng is not None


class TestSpawnSeeds:
    def test_count_and_range(self):
        seeds = spawn_seeds(7, 5)
        assert len(seeds) == 5
        assert all(0 <= s < 2**63 for s in seeds)

    def test_deterministic(self):
        assert spawn_seeds(7, 5) == spawn_seeds(7, 5)

    def test_distinct(self):
        seeds = spawn_seeds(7, 100)
        assert len(set(seeds)) == 100


class TestAsGenerator:
    def test_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_from_int(self):
        a = as_generator(5).random(3)
        b = as_generator(5).random(3)
        assert np.array_equal(a, b)

    def test_from_none(self):
        assert as_generator(None) is not None


class TestRngMixin:
    def test_lazy_and_reseed(self):
        class Thing(RngMixin):
            def __init__(self, seed):
                self._seed = seed

        t = Thing(3)
        first = t.rng.random(4)
        t.reseed(3)
        assert np.array_equal(t.rng.random(4), first)
        t.reseed(4)
        assert not np.array_equal(t.rng.random(4), first)
