"""Core binding and topology."""

import pytest

from repro.platform.corebind import CoreBinder
from repro.platform.spec import ICE_LAKE_8380H, SAPPHIRE_RAPIDS_6430L
from repro.platform.topology import CoreSet, socket_of_core


class TestTopology:
    def test_socket_of_core(self):
        assert socket_of_core(0, ICE_LAKE_8380H) == 0
        assert socket_of_core(27, ICE_LAKE_8380H) == 0
        assert socket_of_core(28, ICE_LAKE_8380H) == 1
        assert socket_of_core(111, ICE_LAKE_8380H) == 3

    def test_socket_of_core_range(self):
        with pytest.raises(ValueError):
            socket_of_core(112, ICE_LAKE_8380H)

    def test_coreset_rejects_duplicates(self):
        with pytest.raises(ValueError):
            CoreSet((1, 1), ICE_LAKE_8380H)

    def test_coreset_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            CoreSet((200,), ICE_LAKE_8380H)

    def test_sockets_spanned(self):
        cs = CoreSet((0, 1, 28), ICE_LAKE_8380H)
        assert cs.sockets_spanned == [0, 1]
        assert not cs.is_numa_local

    def test_remote_fraction(self):
        cs = CoreSet((0, 1, 28, 29), ICE_LAKE_8380H)
        assert cs.remote_fraction(home_socket=0) == pytest.approx(0.5)

    def test_remote_fraction_majority_home(self):
        cs = CoreSet((0, 1, 2, 28), ICE_LAKE_8380H)
        assert cs.remote_fraction() == pytest.approx(0.25)

    def test_remote_fraction_empty(self):
        assert CoreSet((), ICE_LAKE_8380H).remote_fraction() == 0.0


class TestCoreBinder:
    def test_bind_partitions_cores(self):
        binder = CoreBinder(SAPPHIRE_RAPIDS_6430L)
        bindings = binder.bind(4, 2, 6)
        all_cores = [c for b in bindings for c in b.all_cores.cores]
        assert len(all_cores) == len(set(all_cores)) == 32

    def test_split_sizes(self):
        binder = CoreBinder(SAPPHIRE_RAPIDS_6430L)
        bindings = binder.bind(2, 3, 5)
        for b in bindings:
            assert len(b.sampling_cores) == 3
            assert len(b.training_cores) == 5

    def test_compact_packing_is_numa_local(self):
        """With few processes each binding stays within one socket."""
        binder = CoreBinder(ICE_LAKE_8380H)
        bindings = binder.bind(4, 4, 24)  # 28 cores per process = 1 socket
        for b in bindings:
            assert b.all_cores.is_numa_local

    def test_oversubscription_rejected(self):
        binder = CoreBinder(SAPPHIRE_RAPIDS_6430L)
        with pytest.raises(ValueError):
            binder.bind(8, 5, 4)  # 72 > 64

    def test_taskset_command(self):
        binder = CoreBinder(SAPPHIRE_RAPIDS_6430L)
        b = binder.bind(1, 1, 2)[0]
        assert b.taskset_command() == "taskset -c 0,1,2"

    def test_rejects_nonpositive_counts(self):
        binder = CoreBinder(SAPPHIRE_RAPIDS_6430L)
        with pytest.raises(ValueError):
            binder.bind(0, 1, 1)
        with pytest.raises(ValueError):
            binder.bind(1, 0, 1)
