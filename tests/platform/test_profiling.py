"""Op-level step profiler."""

import numpy as np
import pytest

from repro.gnn.models import make_task
from repro.platform.profiling import StepProfile, profile_training_step


class TestStepProfile:
    def test_fractions_sum_to_one(self):
        prof = StepProfile()
        prof.seconds = {"gather": 1.0, "dense": 2.0, "sampling": 1.0, "other": 0.0}
        total = sum(prof.fraction(k) for k in prof.seconds)
        assert total == pytest.approx(1.0)

    def test_summary_renders(self):
        prof = StepProfile()
        prof.seconds["dense"] = 0.5
        prof.steps = 2
        assert "dense" in prof.summary()
        assert "2 steps" in prof.summary()

    def test_empty_profile_fraction_zero(self):
        assert StepProfile().fraction("gather") == 0.0


class TestProfileTrainingStep:
    @pytest.fixture(scope="class")
    def profile(self, request):
        ds = request.getfixturevalue("tiny_dataset")
        sampler, model = make_task("neighbor-sage", ds.layer_dims(3), seed=0)
        return profile_training_step(ds, sampler, model, batch_size=128, steps=2)

    def test_all_categories_observed(self, profile):
        """A real GNN step spends measurable time in sampling, gathers and
        GEMMs — the mixed workload of the paper's Fig. 2."""
        assert profile.steps == 2
        for cat in ("gather", "dense", "sampling"):
            assert profile.seconds[cat] > 0.0, cat

    def test_buckets_bounded_by_total(self, profile):
        assert profile.seconds["other"] >= 0.0
        assert profile.total > 0

    def test_patching_is_temporary(self, tiny_dataset):
        import repro.autograd.ops as ops_mod
        import repro.gnn.aggregate as agg_mod

        before = (ops_mod.gather_rows, agg_mod.gather_rows)
        sampler, model = make_task("neighbor-sage", tiny_dataset.layer_dims(2), seed=0, fanouts=[5, 5])
        profile_training_step(tiny_dataset, sampler, model, batch_size=32, steps=1)
        assert (ops_mod.gather_rows, agg_mod.gather_rows) == before

    def test_works_with_gat(self, tiny_dataset):
        from repro.gnn.models import build_model
        from repro.sampling.neighbor import NeighborSampler

        model = build_model("gat", tiny_dataset.layer_dims(2), seed=0)
        prof = profile_training_step(
            tiny_dataset, NeighborSampler([5, 5]), model, batch_size=32, steps=1
        )
        assert prof.seconds["dense"] > 0
