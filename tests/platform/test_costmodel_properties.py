"""Property-based tests of the cost model (hypothesis).

These pin down the *structural* soundness of the performance substitute:
whatever the configuration, epoch times are finite and positive, scale
sensibly with problem size, and respect the resource-allocation logic.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.platform.costmodel import CostModel
from repro.platform.library import DGL, PYG
from repro.platform.spec import ICE_LAKE_8380H, SAPPHIRE_RAPIDS_6430L


@st.composite
def valid_configs(draw, total=112, max_processes=8):
    n = draw(st.integers(min_value=1, max_value=max_processes))
    per_proc = total // n
    s = draw(st.integers(min_value=1, max_value=per_proc - 1))
    return (n, s, per_proc - s)


class TestCostModelProperties:
    @given(valid_configs())
    @settings(max_examples=60, deadline=None)
    def test_epoch_time_finite_positive(self, dgl_cost_model, cfg):
        bd = dgl_cost_model.epoch_time(*cfg)
        assert np.isfinite(bd.total)
        assert bd.total > 0
        for field in ("t_sample", "t_compute", "t_memory", "t_sync", "t_fixed"):
            assert getattr(bd, field) >= 0

    @given(valid_configs())
    @settings(max_examples=30, deadline=None)
    def test_bandwidth_never_exceeds_peak(self, dgl_cost_model, cfg):
        bd = dgl_cost_model.epoch_time(*cfg)
        assert bd.bandwidth_used_gbs <= ICE_LAKE_8380H.peak_bw_gbs + 1e-9

    @given(valid_configs())
    @settings(max_examples=30, deadline=None)
    def test_memoisation_consistent(self, dgl_cost_model, cfg):
        assert dgl_cost_model.epoch_time(*cfg) == dgl_cost_model.epoch_time(*cfg)

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_more_train_nodes_longer_epochs(
        self, tiny_dataset, neighbor_workload, n
    ):
        per_proc = 112 // n
        cfg = (n, max(1, per_proc // 4), per_proc - max(1, per_proc // 4))
        times = []
        for train_nodes in (50_000, 200_000):
            cm = CostModel(
                ICE_LAKE_8380H,
                DGL,
                neighbor_workload,
                sampler_name="neighbor",
                model_name="sage",
                dims=tiny_dataset.layer_dims(3),
                train_nodes=train_nodes,
            )
            times.append(cm.epoch_time(*cfg).total)
        assert times[1] > times[0]

    @given(valid_configs(total=64))
    @settings(max_examples=30, deadline=None)
    def test_platforms_differ(self, tiny_dataset, neighbor_workload, cfg):
        """The same config must not produce identical times on both
        machines (the tuner's per-platform retraining would be moot)."""
        kwargs = dict(
            workload=neighbor_workload,
            sampler_name="neighbor",
            model_name="sage",
            dims=tiny_dataset.layer_dims(3),
            train_nodes=tiny_dataset.spec.paper_train_nodes,
        )
        a = CostModel(ICE_LAKE_8380H, DGL, **kwargs).epoch_time(*cfg).total
        b = CostModel(SAPPHIRE_RAPIDS_6430L, DGL, **kwargs).epoch_time(*cfg).total
        assert a != b

    @given(valid_configs())
    @settings(max_examples=20, deadline=None)
    def test_pyg_never_faster_than_dgl(self, tiny_dataset, neighbor_workload, cfg):
        """Paper Tables IV/V: PyG's CPU path is slower everywhere."""
        kwargs = dict(
            workload=neighbor_workload,
            sampler_name="neighbor",
            model_name="sage",
            dims=tiny_dataset.layer_dims(3),
            train_nodes=tiny_dataset.spec.paper_train_nodes,
        )
        dgl_t = CostModel(ICE_LAKE_8380H, DGL, **kwargs).epoch_time(*cfg).total
        pyg_t = CostModel(ICE_LAKE_8380H, PYG, **kwargs).epoch_time(*cfg).total
        assert pyg_t > dgl_t
