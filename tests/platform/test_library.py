"""Library execution profiles."""

import pytest

from repro.platform.library import DGL, LIBRARIES, PYG, LibraryProfile
from repro.platform.spec import ICE_LAKE_8380H


class TestProfiles:
    def test_registry(self):
        assert LIBRARIES == {"dgl": DGL, "pyg": PYG}

    def test_dgl_kernels_faster_than_pyg(self):
        """Paper Tables IV/V: DGL's fused kernels outperform PyG on CPU."""
        assert DGL.kernel_efficiency > PYG.kernel_efficiency

    def test_shadow_poorly_parallelised(self):
        """Paper Sec. VI-E: ShaDow has limited intra-process parallelism."""
        for lib in (DGL, PYG):
            assert lib.sampler_parallelism("shadow") < lib.sampler_parallelism("neighbor")

    def test_pyg_neighbor_overhead_dominant(self):
        """Paper Table V: PyG-neighbor barely improves under ARGO because
        its per-iteration overhead dwarfs the tunable stages."""
        assert PYG.iteration_overhead("neighbor") > 10 * DGL.iteration_overhead("neighbor")

    def test_sampler_cost_lookup(self):
        assert DGL.sampler_cost("neighbor") > 0
        with pytest.raises(KeyError):
            DGL.sampler_cost("cluster")

    def test_parallelism_lookup_unknown(self):
        with pytest.raises(KeyError):
            PYG.sampler_parallelism("cluster")

    def test_iteration_overhead_default_zero(self):
        prof = LibraryProfile(
            name="bare",
            sample_cost_per_edge={"neighbor": 1e-6},
            sampler_parallel_fraction={"neighbor": 0.5},
            kernel_efficiency=1.0,
            train_parallel_fraction=0.5,
            pipeline_overlap=0.5,
            default_workers=1,
        )
        assert prof.iteration_overhead("neighbor") == 0.0


class TestDefaultConfig:
    def test_single_process(self):
        n, s, t = DGL.default_config(ICE_LAKE_8380H)
        assert n == 1
        assert s == DGL.default_workers
        assert s + t == ICE_LAKE_8380H.total_cores

    def test_core_budget(self):
        n, s, t = DGL.default_config(ICE_LAKE_8380H, cores=16)
        assert n == 1
        assert s + t == 16

    def test_small_budget_clamps_workers(self):
        n, s, t = DGL.default_config(ICE_LAKE_8380H, cores=3)
        assert s >= 1 and t >= 1

    def test_rejects_single_core(self):
        with pytest.raises(ValueError):
            DGL.default_config(ICE_LAKE_8380H, cores=1)


class TestValidation:
    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            LibraryProfile(
                name="x",
                sample_cost_per_edge={"neighbor": 1e-6},
                sampler_parallel_fraction={"neighbor": 1.0},
                kernel_efficiency=1.0,
                train_parallel_fraction=0.5,
                pipeline_overlap=0.5,
                default_workers=1,
            )

    def test_rejects_empty_dicts(self):
        with pytest.raises(ValueError):
            LibraryProfile(
                name="x",
                sample_cost_per_edge={},
                sampler_parallel_fraction={},
                kernel_efficiency=1.0,
                train_parallel_fraction=0.5,
                pipeline_overlap=0.5,
                default_workers=1,
            )
