"""Trace structure and rendering."""

import pytest

from repro.platform.trace import Trace, TraceEvent, render_ascii


class TestTraceEvent:
    def test_duration(self):
        ev = TraceEvent(0, "compute", 1.0, 3.0)
        assert ev.duration == 2.0

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError):
            TraceEvent(0, "nap", 0.0, 1.0)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            TraceEvent(0, "compute", 2.0, 1.0)


class TestTrace:
    def test_add_returns_end(self):
        tr = Trace()
        end = tr.add(0, "sample", 0.0, 1.5)
        assert end == 1.5
        assert tr.makespan == 1.5

    def test_busy_fraction_full_coverage(self):
        tr = Trace()
        tr.add(0, "memory", 0.0, 1.0)
        tr.add(1, "memory", 0.5, 1.5)  # overlapping, extends to 2.0
        assert tr.busy_fraction("memory") == pytest.approx(1.0)

    def test_busy_fraction_with_gap(self):
        tr = Trace()
        tr.add(0, "memory", 0.0, 1.0)
        tr.add(0, "compute", 1.0, 1.0)
        tr.add(0, "memory", 2.0, 1.0)
        assert tr.busy_fraction("memory") == pytest.approx(2.0 / 3.0)

    def test_busy_fraction_empty(self):
        assert Trace().busy_fraction("memory") == 0.0

    def test_for_process_filters(self):
        tr = Trace()
        tr.add(0, "compute", 0.0, 1.0)
        tr.add(1, "compute", 0.0, 1.0)
        assert len(tr.for_process(0)) == 1


class TestRender:
    def test_renders_rows_and_legend(self):
        tr = Trace()
        tr.add(0, "memory", 0.0, 1.0)
        tr.add(0, "compute", 1.0, 1.0)
        tr.add(1, "sample", 0.0, 2.0)
        out = render_ascii(tr, width=40)
        lines = out.splitlines()
        assert lines[0].startswith("P0 |")
        assert lines[1].startswith("P1 |")
        assert "legend" in lines[-1]
        assert "M" in lines[0] and "#" in lines[0]
        assert "s" in lines[1]

    def test_empty_trace(self):
        assert "empty" in render_ascii(Trace())
