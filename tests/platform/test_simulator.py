"""SimulatedRuntime: noise discipline and figure-level queries."""

import numpy as np
import pytest

from repro.platform.simulator import SimulatedRuntime
from repro.tuning.space import ConfigSpace


@pytest.fixture
def runtime(dgl_cost_model):
    return SimulatedRuntime(dgl_cost_model, noise=0.02, seed=0)


class TestNoise:
    def test_true_time_noise_free(self, runtime):
        a = runtime.true_epoch_time((4, 4, 20))
        b = runtime.true_epoch_time((4, 4, 20))
        assert a == b

    def test_measurements_vary_per_repetition(self, runtime):
        a = runtime.measure_epoch((4, 4, 20))
        b = runtime.measure_epoch((4, 4, 20))
        assert a != b

    def test_measurements_reproducible_across_runtimes(self, dgl_cost_model):
        r1 = SimulatedRuntime(dgl_cost_model, noise=0.02, seed=7)
        r2 = SimulatedRuntime(dgl_cost_model, noise=0.02, seed=7)
        assert r1.measure_epoch((2, 4, 8)) == r2.measure_epoch((2, 4, 8))

    def test_noise_centred_on_truth(self, runtime):
        truth = runtime.true_epoch_time((2, 4, 8))
        obs = [runtime.measure_epoch((2, 4, 8)) for _ in range(50)]
        assert abs(np.mean(obs) - truth) / truth < 0.02

    def test_zero_noise_exact(self, dgl_cost_model):
        rt = SimulatedRuntime(dgl_cost_model, noise=0.0)
        assert rt.measure_epoch((2, 4, 8)) == rt.true_epoch_time((2, 4, 8))

    def test_rejects_negative_noise(self, dgl_cost_model):
        with pytest.raises(ValueError):
            SimulatedRuntime(dgl_cost_model, noise=-0.1)

    def test_counts_evaluations(self, runtime):
        before = runtime.num_evaluations
        runtime.measure_epoch((2, 4, 8))
        assert runtime.num_evaluations == before + 1


class TestFigureQueries:
    def test_baseline_plateau(self, runtime):
        """Fig. 1: the library-default baseline stops scaling at ~16 cores."""
        t16 = runtime.baseline_epoch_time(16)
        t64 = runtime.baseline_epoch_time(64)
        t112 = runtime.baseline_epoch_time(112)
        assert t64 > 0.8 * t16  # little improvement past 16
        assert t112 > 0.8 * t16

    def test_baseline_improves_to_16(self, runtime):
        assert runtime.baseline_epoch_time(16) < runtime.baseline_epoch_time(4)

    def test_argo_scales_past_16(self, runtime):
        """Fig. 8: ARGO keeps improving beyond 16 cores."""
        t16, _ = runtime.argo_best_epoch_time(16, ConfigSpace(16))
        t64, _ = runtime.argo_best_epoch_time(64, ConfigSpace(64))
        assert t64 < 0.9 * t16

    def test_argo_best_respects_core_budget(self, runtime):
        _, cfg = runtime.argo_best_epoch_time(32)
        n, s, t = cfg
        assert n * (s + t) <= 32

    def test_argo_best_no_fit_raises(self, runtime):
        with pytest.raises(ValueError):
            runtime.argo_best_epoch_time(4, ConfigSpace(112))

    def test_workload_bandwidth_curve(self, runtime):
        rows = runtime.workload_and_bandwidth_curve([1, 2, 4, 8], 2, 8)
        assert [r["processes"] for r in rows] == [1, 2, 4, 8]
        edges = [r["epoch_edges"] for r in rows]
        assert edges == sorted(edges)

    def test_landscape_covers_space(self, runtime):
        space = ConfigSpace(16)
        grid = runtime.landscape(space)
        assert len(grid) == len(space)
        assert all(v > 0 for v in grid.values())


class TestTraces:
    def test_single_process_memory_gaps(self, runtime):
        """Fig. 2A: with one process the memory phase leaves idle gaps."""
        trace = runtime.make_trace((1, 4, 24), iterations=4)
        assert trace.busy_fraction("memory") < 0.9

    def test_multi_process_overlap(self, runtime):
        """Fig. 2B: staggered processes overlap memory with compute."""
        t1 = runtime.make_trace((1, 4, 24), iterations=4)
        t4 = runtime.make_trace((4, 4, 24), iterations=4)
        assert t4.busy_fraction("memory") > t1.busy_fraction("memory")

    def test_trace_events_per_process(self, runtime):
        trace = runtime.make_trace((2, 4, 8), iterations=3)
        for rank in (0, 1):
            assert len(trace.for_process(rank)) >= 9
