"""Cost-model behaviour: the trade-offs of paper Sec. V-A must emerge."""

import numpy as np
import pytest

from repro.platform.costmodel import CostModel, amdahl_speedup
from repro.platform.library import DGL, PYG
from repro.platform.spec import ICE_LAKE_8380H


class TestAmdahl:
    def test_one_core_is_unity(self):
        assert amdahl_speedup(1, 0.9) == pytest.approx(1.0)

    def test_monotone(self):
        vals = [amdahl_speedup(c, 0.9) for c in (1, 2, 4, 8, 16)]
        assert vals == sorted(vals)

    def test_bounded_by_serial_fraction(self):
        assert amdahl_speedup(10_000, 0.9) < 10.0

    def test_fully_serial_never_speeds_up(self):
        assert amdahl_speedup(64, 0.0) == pytest.approx(1.0)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            amdahl_speedup(0, 0.5)
        with pytest.raises(ValueError):
            amdahl_speedup(4, 1.0)


class TestEpochTime:
    def test_breakdown_positive(self, dgl_cost_model):
        bd = dgl_cost_model.epoch_time(4, 4, 20)
        assert bd.total > 0
        assert bd.t_sample > 0
        assert bd.t_compute > 0
        assert bd.t_memory > 0
        assert bd.t_train == pytest.approx(bd.t_compute + bd.t_memory)

    def test_deterministic(self, dgl_cost_model):
        a = dgl_cost_model.epoch_time(4, 4, 20)
        b = dgl_cost_model.epoch_time(4, 4, 20)
        assert a.total == b.total

    def test_oversubscription_rejected(self, dgl_cost_model):
        with pytest.raises(ValueError):
            dgl_cost_model.epoch_time(8, 10, 10)  # 160 > 112

    def test_sync_zero_for_single_process(self, dgl_cost_model):
        assert dgl_cost_model.epoch_time(1, 4, 20).t_sync == 0.0

    def test_sync_grows_with_processes(self, dgl_cost_model):
        """Paper Sec. V-A1: more processes, more synchronisation overhead."""
        s2 = dgl_cost_model.epoch_time(2, 4, 8).t_sync
        s8 = dgl_cost_model.epoch_time(8, 4, 8).t_sync
        assert s8 > s2 > 0

    def test_iters_match_paper_formula(self, dgl_cost_model, tiny_dataset):
        expected = int(np.ceil(tiny_dataset.spec.paper_train_nodes / 1024))
        assert dgl_cost_model.iters_per_epoch() == expected


class TestPaperTradeoffs:
    """The qualitative claims of Sec. V-A, checked on the model."""

    def test_more_sampling_cores_saturate(self, dgl_cost_model):
        """Beyond the sampler's parallel fraction, extra cores don't help."""
        t1 = dgl_cost_model.epoch_time(2, 1, 40).t_sample
        t8 = dgl_cost_model.epoch_time(2, 8, 40).t_sample
        t40 = dgl_cost_model.epoch_time(2, 40, 8).t_sample
        assert t8 < t1
        # diminishing returns: 8->40 gains far less than 1->8
        assert (t8 - t40) < 0.3 * (t1 - t8)

    def test_epoch_workload_grows_with_processes(self, dgl_cost_model):
        """Fig. 6: smaller per-process batches share fewer neighbours."""
        edges = [dgl_cost_model.epoch_time(n, 2, 4).epoch_edges for n in (1, 2, 4, 8)]
        assert edges == sorted(edges)
        assert edges[-1] > edges[0]

    def test_bandwidth_grows_then_flattens(self, dgl_cost_model):
        """Fig. 6: bandwidth utilisation rises with n and saturates."""
        bw = [dgl_cost_model.epoch_time(n, 2, 12).bandwidth_used_gbs for n in (1, 2, 4, 8)]
        assert bw[1] >= bw[0]
        assert bw[-1] <= ICE_LAKE_8380H.peak_bw_gbs

    def test_single_process_cannot_use_whole_machine(self, dgl_cost_model):
        """Fig. 1: 1 process on 112 cores is far from 8x1-socket procs."""
        one = dgl_cost_model.epoch_time(1, 4, 108).total
        eight = dgl_cost_model.epoch_time(8, 4, 10).total
        assert eight < one

    def test_launching_max_processes_not_always_best(self, tiny_dataset, neighbor_workload):
        """Sec. V-A1: too many processes can lose to a moderate count
        (extra workload + sync).  Check on the *shadow* profile where
        per-process parallelism is poor, both extremes exist in-space."""
        cm = CostModel(
            ICE_LAKE_8380H,
            DGL,
            neighbor_workload,
            sampler_name="neighbor",
            model_name="sage",
            dims=tiny_dataset.layer_dims(3),
            train_nodes=tiny_dataset.spec.paper_train_nodes,
        )
        # sweep the full space: the argmin must not be the max-core split of
        # a single process (i.e. multi-processing wins), and the optimum
        # must use >1 process but not necessarily 8
        from repro.tuning.space import ConfigSpace

        space = ConfigSpace(112)
        best = min(space, key=lambda cfg: cm.epoch_time(*cfg).total)
        assert best[0] > 1

    def test_pyg_slower_than_dgl(self, tiny_dataset, neighbor_workload):
        args = dict(
            workload=neighbor_workload,
            sampler_name="neighbor",
            model_name="sage",
            dims=tiny_dataset.layer_dims(3),
            train_nodes=tiny_dataset.spec.paper_train_nodes,
        )
        dgl_t = CostModel(ICE_LAKE_8380H, DGL, **args).epoch_time(4, 4, 20).total
        pyg_t = CostModel(ICE_LAKE_8380H, PYG, **args).epoch_time(4, 4, 20).total
        assert pyg_t > 2 * dgl_t


class TestValidation:
    def test_rejects_bad_train_nodes(self, tiny_dataset, neighbor_workload):
        with pytest.raises(ValueError):
            CostModel(
                ICE_LAKE_8380H,
                DGL,
                neighbor_workload,
                sampler_name="neighbor",
                model_name="sage",
                dims=tiny_dataset.layer_dims(3),
                train_nodes=0,
            )
