"""Platform specs: Table II fidelity and bandwidth model."""

import pytest

from repro.platform.spec import ICE_LAKE_8380H, PLATFORMS, SAPPHIRE_RAPIDS_6430L, PlatformSpec


class TestPaperTable2:
    def test_ice_lake(self):
        p = ICE_LAKE_8380H
        assert p.sockets == 4
        assert p.total_cores == 112
        assert p.freq_ghz == 2.90
        assert p.llc_mb == 154.0
        assert p.memory_gb == 384.0
        assert p.peak_bw_gbs == 275.0

    def test_sapphire_rapids(self):
        p = SAPPHIRE_RAPIDS_6430L
        assert p.sockets == 2
        assert p.total_cores == 64
        assert p.freq_ghz == 2.10
        assert p.llc_mb == 120.0
        assert p.memory_gb == 1024.0
        assert p.peak_bw_gbs == 563.0

    def test_registry(self):
        assert PLATFORMS["icelake"] is ICE_LAKE_8380H
        assert PLATFORMS["sapphire"] is SAPPHIRE_RAPIDS_6430L


class TestValidation:
    def test_rejects_bad_topology(self):
        with pytest.raises(ValueError):
            PlatformSpec("x", 0, 8, 2.0, 10, 10, 100)

    def test_rejects_nonpositive_bw(self):
        with pytest.raises(ValueError):
            PlatformSpec("x", 1, 8, 2.0, 10, 10, 0.0)

    def test_rejects_bad_upi(self):
        with pytest.raises(ValueError):
            PlatformSpec("x", 1, 8, 2.0, 10, 10, 100, upi_efficiency=1.5)


class TestBandwidthModel:
    def test_socket_bw(self):
        assert ICE_LAKE_8380H.socket_bw_gbs == pytest.approx(275.0 / 4)

    def test_few_cores_draw_limited(self):
        p = ICE_LAKE_8380H
        assert p.effective_bandwidth(2, 0.0) == pytest.approx(2 * p.core_bw_gbs)

    def test_many_cores_supply_limited(self):
        p = ICE_LAKE_8380H
        bw = p.effective_bandwidth(28, 0.0)
        assert bw == pytest.approx(p.socket_bw_gbs)

    def test_remote_fraction_penalises(self):
        p = ICE_LAKE_8380H
        local = p.effective_bandwidth(28, 0.0)
        mixed = p.effective_bandwidth(28, 0.5)
        assert mixed < local

    def test_monotone_in_cores(self):
        p = SAPPHIRE_RAPIDS_6430L
        vals = [p.effective_bandwidth(c, 0.0) for c in (1, 4, 16, 64)]
        assert vals == sorted(vals)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            ICE_LAKE_8380H.effective_bandwidth(4, 1.5)
