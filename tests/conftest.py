"""Shared fixtures: small cached datasets and workload/cost stacks.

Everything heavier than a unit graph is session-scoped so the few hundred
tests share one construction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import load_dataset, from_edge_index
from repro.gnn.models import make_task
from repro.platform import ICE_LAKE_8380H, DGL
from repro.platform.costmodel import CostModel
from repro.tuning import ConfigSpace
from repro.workload import WorkloadModel


@pytest.fixture(scope="session")
def tiny_dataset():
    """1024-node products stand-in: fast enough for every unit test."""
    return load_dataset("ogbn-products", seed=0, scale_override=10)


@pytest.fixture(scope="session")
def small_dataset():
    """4096-node instance for integration tests."""
    return load_dataset("ogbn-products", seed=0, scale_override=12)


@pytest.fixture(scope="session")
def neighbor_task(tiny_dataset):
    sampler, model = make_task("neighbor-sage", tiny_dataset.layer_dims(3), seed=0)
    return sampler, model


@pytest.fixture(scope="session")
def shadow_task(tiny_dataset):
    sampler, model = make_task("shadow-gcn", tiny_dataset.layer_dims(3), seed=0)
    return sampler, model


@pytest.fixture(scope="session")
def neighbor_workload(tiny_dataset, neighbor_task):
    sampler, _ = neighbor_task
    return WorkloadModel(tiny_dataset, sampler, num_batches=2, seed=0)


@pytest.fixture(scope="session")
def dgl_cost_model(tiny_dataset, neighbor_workload):
    return CostModel(
        ICE_LAKE_8380H,
        DGL,
        neighbor_workload,
        sampler_name="neighbor",
        model_name="sage",
        dims=tiny_dataset.layer_dims(3),
        train_nodes=tiny_dataset.spec.paper_train_nodes,
    )


@pytest.fixture(scope="session")
def icelake_space():
    return ConfigSpace(ICE_LAKE_8380H.total_cores)


@pytest.fixture
def diamond_graph():
    """The Fig. 5 toy graph: nodes 1..8 (0-indexed 0..7).

    Edges (directed into the aggregating node):
    2<-3, 2<-4, 1<-2, 5<-2 style diamond with two seeds sharing node 2.
    """
    src = np.array([2, 3, 0, 4, 5, 6])
    dst = np.array([1, 1, 1, 2, 2, 2])
    return from_edge_index(src, dst, 7)
