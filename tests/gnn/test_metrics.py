"""Classification metrics."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.gnn.metrics import accuracy, confusion_matrix, f1_scores, macro_f1, micro_f1


class TestConfusionMatrix:
    def test_known_values(self):
        pred = np.array([0, 1, 1, 2])
        true = np.array([0, 1, 2, 2])
        mat = confusion_matrix(pred, true, 3)
        expected = np.array([[1, 0, 0], [0, 1, 0], [0, 1, 1]])
        np.testing.assert_array_equal(mat, expected)

    def test_accepts_logits(self):
        logits = Tensor(np.array([[5.0, 0.0], [0.0, 5.0]]))
        mat = confusion_matrix(logits, np.array([0, 1]), 2)
        np.testing.assert_array_equal(mat, np.eye(2, dtype=int))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 3]), np.array([0, 1]), 2)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0]), np.array([0, 1]), 2)


class TestF1:
    def test_perfect_prediction(self):
        y = np.array([0, 1, 2, 1])
        np.testing.assert_allclose(f1_scores(y, y, 3), 1.0)
        assert micro_f1(y, y, 3) == 1.0
        assert macro_f1(y, y, 3) == 1.0

    def test_absent_class_scores_zero(self):
        pred = np.array([0, 0])
        true = np.array([0, 0])
        f1 = f1_scores(pred, true, 3)
        assert f1[0] == 1.0
        assert f1[1] == 0.0 and f1[2] == 0.0

    def test_micro_equals_accuracy_single_label(self):
        rng = np.random.default_rng(0)
        pred = rng.integers(0, 4, 100)
        true = rng.integers(0, 4, 100)
        acc = float((pred == true).mean())
        assert micro_f1(pred, true, 4) == pytest.approx(acc)

    def test_known_binary_f1(self):
        # tp=1 fp=1 fn=1 for class 1 -> F1 = 2/(2+1+1) = 0.5
        pred = np.array([1, 1, 0])
        true = np.array([1, 0, 1])
        f1 = f1_scores(pred, true, 2)
        assert f1[1] == pytest.approx(0.5)

    def test_empty_inputs(self):
        assert micro_f1(np.array([], dtype=int), np.array([], dtype=int), 3) == 0.0


class TestEmptyBatch:
    """Regression: empty batches must score 0.0, never divide by zero."""

    def empty(self):
        return np.empty((0, 3)), np.array([], dtype=int)

    def test_accuracy_empty_is_zero(self):
        logits, targets = self.empty()
        with np.errstate(all="raise"):
            assert accuracy(logits, targets) == 0.0

    def test_accuracy_nonempty_unchanged(self):
        pred = np.array([1, 0, 2])
        true = np.array([1, 0, 1])
        assert accuracy(pred, true) == pytest.approx(2 / 3)

    def test_micro_f1_empty_is_zero(self):
        logits, targets = self.empty()
        with np.errstate(all="raise"):
            assert micro_f1(logits, targets, 3) == 0.0

    def test_macro_f1_empty_is_zero(self):
        logits, targets = self.empty()
        with np.errstate(all="raise"):
            assert macro_f1(logits, targets, 3) == 0.0

    def test_macro_f1_zero_classes_is_zero(self):
        logits, targets = self.empty()
        with np.errstate(all="raise"):
            assert macro_f1(logits, targets, 0) == 0.0

    def test_accuracy_shape_mismatch_still_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            accuracy(np.array([1, 2]), np.array([1]))
