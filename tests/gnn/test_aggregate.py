"""Segment aggregation: values, edge cases, gradients."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.gnn.aggregate import aggregate_mean, aggregate_sum, gcn_norm_coefficients


class TestAggregateSum:
    def test_simple_sum(self):
        h = Tensor(np.array([[1.0], [2.0], [4.0]]))
        out = aggregate_sum(h, np.array([0, 1, 2]), np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0], [4.0]])

    def test_weighted(self):
        h = Tensor(np.array([[1.0], [2.0]]))
        out = aggregate_sum(
            h, np.array([0, 1]), np.array([0, 0]), 1, edge_weight=np.array([0.5, 2.0])
        )
        np.testing.assert_allclose(out.data, [[4.5]])

    def test_isolated_dst_zero(self):
        h = Tensor(np.ones((2, 3)))
        out = aggregate_sum(h, np.array([0]), np.array([0]), 3)
        np.testing.assert_allclose(out.data[1:], 0.0)

    def test_gradient_flows(self):
        h = Tensor(np.ones((3, 2)), requires_grad=True)
        out = aggregate_sum(h, np.array([0, 1, 1]), np.array([0, 0, 1]), 2)
        out.sum().backward()
        np.testing.assert_allclose(h.grad, [[1, 1], [2, 2], [0, 0]])

    def test_rejects_out_of_range(self):
        h = Tensor(np.ones((2, 1)))
        with pytest.raises(ValueError):
            aggregate_sum(h, np.array([5]), np.array([0]), 1)
        with pytest.raises(ValueError):
            aggregate_sum(h, np.array([0]), np.array([3]), 1)

    def test_rejects_bad_weight_shape(self):
        h = Tensor(np.ones((2, 1)))
        with pytest.raises(ValueError):
            aggregate_sum(h, np.array([0]), np.array([0]), 1, edge_weight=np.ones(2))


class TestAggregateMean:
    def test_simple_mean(self):
        h = Tensor(np.array([[2.0], [4.0]]))
        out = aggregate_mean(h, np.array([0, 1]), np.array([0, 0]), 1)
        np.testing.assert_allclose(out.data, [[3.0]])

    def test_isolated_dst_zero_not_nan(self):
        h = Tensor(np.ones((2, 2)))
        out = aggregate_mean(h, np.array([0]), np.array([0]), 2)
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data[1], 0.0)

    def test_gradient_scaled_by_degree(self):
        h = Tensor(np.ones((2, 1)), requires_grad=True)
        out = aggregate_mean(h, np.array([0, 1]), np.array([0, 0]), 1)
        out.sum().backward()
        np.testing.assert_allclose(h.grad, [[0.5], [0.5]])


class TestGcnNorm:
    def test_symmetric_values(self):
        # single edge u->v: d_out(u)=1, d_in(v)=1 -> coeff 1
        coeff = gcn_norm_coefficients(np.array([0]), np.array([0]), 1, 1)
        np.testing.assert_allclose(coeff, [1.0])

    def test_degree_two(self):
        # node 0 sends to both dst 0 and dst 1; each dst has in-degree 1
        coeff = gcn_norm_coefficients(np.array([0, 0]), np.array([0, 1]), 1, 2)
        np.testing.assert_allclose(coeff, [1 / np.sqrt(2), 1 / np.sqrt(2)])

    def test_matches_paper_eq1(self):
        """coeff(u,v) == 1/sqrt(D(u) D(v)) with block-local degrees."""
        src = np.array([0, 0, 1, 2])
        dst = np.array([0, 1, 1, 1])
        coeff = gcn_norm_coefficients(src, dst, 3, 2)
        d_out = np.array([2, 1, 1])
        d_in = np.array([1, 3])
        expected = 1 / np.sqrt(d_out[src] * d_in[dst])
        np.testing.assert_allclose(coeff, expected, rtol=1e-6)

    def test_empty_edges(self):
        coeff = gcn_norm_coefficients(np.array([], dtype=np.int64), np.array([], dtype=np.int64), 3, 3)
        assert coeff.size == 0
