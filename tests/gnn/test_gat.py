"""GAT layer + segment softmax (extension)."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.gnn.gat import GAT, GATConv, leaky_relu
from repro.gnn.segment import segment_softmax
from repro.sampling.block import Block
from repro.sampling.neighbor import NeighborSampler
from tests.autograd.test_gradcheck import check_op


class TestSegmentSoftmax:
    def test_sums_to_one_per_segment(self):
        rng = np.random.default_rng(0)
        logits = Tensor(rng.standard_normal(20))
        seg = rng.integers(0, 5, size=20)
        out = segment_softmax(logits, seg, 5)
        sums = np.zeros(5)
        np.add.at(sums, seg, out.data)
        present = np.unique(seg)
        np.testing.assert_allclose(sums[present], 1.0, rtol=1e-5)

    def test_single_edge_segment_is_one(self):
        out = segment_softmax(Tensor(np.array([3.7])), np.array([2]), 4)
        np.testing.assert_allclose(out.data, [1.0])

    def test_stable_for_huge_logits(self):
        out = segment_softmax(Tensor(np.array([1e4, 1e4])), np.array([0, 0]), 1)
        np.testing.assert_allclose(out.data, [0.5, 0.5])

    def test_matches_dense_softmax(self):
        logits = np.array([1.0, 2.0, 3.0])
        out = segment_softmax(Tensor(logits), np.zeros(3, dtype=np.int64), 1)
        dense = np.exp(logits) / np.exp(logits).sum()
        np.testing.assert_allclose(out.data, dense, rtol=1e-6)

    def test_gradient_matches_finite_difference(self):
        seg = np.array([0, 0, 1, 1, 1])
        check_op(
            lambda t: segment_softmax(t, seg, 2) * Tensor(np.arange(5.0)),
            np.random.default_rng(0).standard_normal(5),
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            segment_softmax(Tensor(np.ones((2, 2))), np.array([0, 0]), 1)
        with pytest.raises(ValueError):
            segment_softmax(Tensor(np.ones(2)), np.array([0]), 1)
        with pytest.raises(ValueError):
            segment_softmax(Tensor(np.ones(2)), np.array([0, 5]), 2)


class TestLeakyRelu:
    def test_values(self):
        out = leaky_relu(Tensor(np.array([-2.0, 0.0, 3.0])), 0.2)
        np.testing.assert_allclose(out.data, [-0.4, 0.0, 3.0], atol=1e-7)

    def test_gradient(self):
        x = np.random.default_rng(0).standard_normal(8)
        x[np.abs(x) < 0.1] = 0.7
        check_op(lambda t: leaky_relu(t, 0.2), x)


def toy_block():
    return Block(
        src_ids=np.array([10, 11, 12, 20, 21]),
        num_dst=3,
        edge_src=np.array([3, 4, 0, 1]),
        edge_dst=np.array([0, 0, 1, 2]),
    )


class TestGATConv:
    def test_output_shape(self):
        conv = GATConv(4, 8, rng=np.random.default_rng(0))
        out = conv(toy_block(), Tensor(np.ones((5, 4))))
        assert out.shape == (3, 8)

    def test_attention_gradient_flows(self):
        conv = GATConv(4, 8, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).standard_normal((5, 4)).astype(np.float32))
        out = conv(toy_block(), x)
        out.sum().backward()
        assert conv.attn_src.grad is not None
        assert np.any(conv.attn_src.grad != 0)

    def test_feature_mismatch_rejected(self):
        conv = GATConv(4, 8)
        with pytest.raises(ValueError):
            conv(toy_block(), Tensor(np.ones((2, 4))))


class TestGATModel:
    def test_registered(self, tiny_dataset):
        from repro.gnn.models import build_model

        model = build_model("gat", tiny_dataset.layer_dims(2), seed=0)
        assert isinstance(model, GAT)

    def test_trains_on_sampled_batches(self, tiny_dataset):
        from repro.autograd.functional import cross_entropy
        from repro.autograd.ops import gather_rows
        from repro.autograd.optim import Adam
        from repro.gnn.models import build_model

        ds = tiny_dataset
        sampler = NeighborSampler([5, 5])
        model = build_model("gat", ds.layer_dims(2), seed=0, dropout=0.0)
        opt = Adam(model.parameters(), lr=0.01)
        batch = sampler.sample(ds.graph, ds.train_idx[:64], rng=np.random.default_rng(0))
        x = gather_rows(Tensor(ds.features), batch.input_ids)
        first = last = None
        for _ in range(20):
            loss = cross_entropy(model(batch.blocks, x), ds.labels[batch.seeds])
            model.zero_grad()
            loss.backward()
            opt.step()
            first = first if first is not None else loss.item()
            last = loss.item()
        assert last < first * 0.8

    def test_engine_compatible(self, tiny_dataset):
        from repro.core.engine import MultiProcessEngine
        from repro.gnn.models import build_model

        model = build_model("gat", tiny_dataset.layer_dims(2), seed=0)
        engine = MultiProcessEngine(
            tiny_dataset,
            NeighborSampler([5, 5]),
            model,
            num_processes=2,
            global_batch_size=64,
            seed=0,
        )
        stats = engine.train_epoch()
        assert stats.mean_loss > 0
