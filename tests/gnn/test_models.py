"""GCN / GraphSAGE model behaviour on sampled blocks."""

import numpy as np
import pytest

from repro.autograd.functional import cross_entropy
from repro.autograd.ops import gather_rows
from repro.autograd.tensor import Tensor
from repro.gnn.gcn import GCN, GCNConv
from repro.gnn.sage import GraphSAGE, SAGEConv
from repro.gnn.models import MODEL_REGISTRY, TASKS, build_model, make_task
from repro.sampling.block import Block
from repro.sampling.neighbor import NeighborSampler


def toy_block():
    """3 dst nodes (prefix) + 2 extra sources, 4 edges."""
    return Block(
        src_ids=np.array([10, 11, 12, 20, 21]),
        num_dst=3,
        edge_src=np.array([3, 4, 0, 1]),
        edge_dst=np.array([0, 0, 1, 2]),
    )


class TestConvLayers:
    def test_gcn_conv_shape(self):
        conv = GCNConv(4, 8, rng=np.random.default_rng(0))
        out = conv(toy_block(), Tensor(np.ones((5, 4))))
        assert out.shape == (3, 8)

    def test_sage_conv_shape(self):
        conv = SAGEConv(4, 8, rng=np.random.default_rng(0))
        out = conv(toy_block(), Tensor(np.ones((5, 4))))
        assert out.shape == (3, 8)

    def test_sage_uses_self_features(self):
        """Isolated dst node output must depend on its own feature."""
        blk = Block(
            src_ids=np.array([0, 1]), num_dst=2, edge_src=np.array([1]), edge_dst=np.array([1])
        )
        conv = SAGEConv(2, 2, rng=np.random.default_rng(0))
        h1 = Tensor(np.array([[1.0, 0.0], [0.0, 0.0]]))
        h2 = Tensor(np.array([[2.0, 0.0], [0.0, 0.0]]))
        out1, out2 = conv(blk, h1), conv(blk, h2)
        assert not np.allclose(out1.data[0], out2.data[0])

    def test_rejects_feature_row_mismatch(self):
        conv = GCNConv(4, 8)
        with pytest.raises(ValueError):
            conv(toy_block(), Tensor(np.ones((3, 4))))


@pytest.mark.parametrize("model_name", ["gcn", "sage"])
class TestFullModels:
    def test_forward_on_sampled_batch(self, model_name, tiny_dataset):
        ds = tiny_dataset
        sampler = NeighborSampler([5, 5, 5])
        batch = sampler.sample(ds.graph, ds.train_idx[:16], rng=np.random.default_rng(0))
        model = build_model(model_name, ds.layer_dims(3), seed=0)
        x = gather_rows(Tensor(ds.features), batch.input_ids)
        out = model(batch.blocks, x)
        assert out.shape == (16, ds.spec.num_classes)

    def test_training_reduces_loss(self, model_name, tiny_dataset):
        from repro.autograd.optim import Adam

        ds = tiny_dataset
        sampler = NeighborSampler([5, 5, 5])
        model = build_model(model_name, ds.layer_dims(3), seed=0, dropout=0.0)
        opt = Adam(model.parameters(), lr=0.01)
        rng = np.random.default_rng(0)
        batch = sampler.sample(ds.graph, ds.train_idx[:64], rng=rng)
        x = gather_rows(Tensor(ds.features), batch.input_ids)
        first = last = None
        for step in range(30):
            out = model(batch.blocks, x)
            loss = cross_entropy(out, ds.labels[batch.seeds])
            model.zero_grad()
            loss.backward()
            opt.step()
            if first is None:
                first = loss.item()
            last = loss.item()
        assert last < first * 0.7

    def test_block_count_validated(self, model_name, tiny_dataset):
        model = build_model(model_name, tiny_dataset.layer_dims(3), seed=0)
        with pytest.raises(ValueError):
            model([toy_block()], Tensor(np.ones((5, 100))))

    def test_eval_mode_deterministic(self, model_name, tiny_dataset):
        ds = tiny_dataset
        sampler = NeighborSampler([5, 5, 5])
        batch = sampler.sample(ds.graph, ds.train_idx[:8], rng=np.random.default_rng(0))
        model = build_model(model_name, ds.layer_dims(3), seed=0, dropout=0.5)
        model.eval()
        x = gather_rows(Tensor(ds.features), batch.input_ids)
        a = model(batch.blocks, x).data
        b = model(batch.blocks, x).data
        np.testing.assert_array_equal(a, b)


class TestFactories:
    def test_registry_names(self):
        assert set(MODEL_REGISTRY) == {"gcn", "gat", "sage", "graphsage"}

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            build_model("transformer", [4, 2])

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            build_model("gcn", [4])

    def test_tasks_are_papers_pairings(self):
        assert TASKS == {
            "neighbor-sage": ("neighbor", "sage"),
            "shadow-gcn": ("shadow", "gcn"),
        }

    def test_make_task_neighbor_defaults(self, tiny_dataset):
        sampler, model = make_task("neighbor-sage", tiny_dataset.layer_dims(3))
        assert sampler.fanouts == [15, 10, 5]
        assert isinstance(model, GraphSAGE)

    def test_make_task_shadow_defaults(self, tiny_dataset):
        sampler, model = make_task("shadow-gcn", tiny_dataset.layer_dims(3))
        assert sampler.fanouts == [10, 5]
        assert sampler.num_layers == 3
        assert isinstance(model, GCN)

    def test_make_task_unknown(self):
        with pytest.raises(KeyError):
            make_task("cluster-gat", [4, 2])

    def test_make_task_fanout_mismatch(self):
        with pytest.raises(ValueError):
            make_task("neighbor-sage", [4, 8, 2], fanouts=[5, 5, 5])


class TestBuildLayerStack:
    def test_registers_conv_attributes(self, tiny_dataset):
        from repro.autograd.module import Linear, Module
        from repro.gnn.models import build_layer_stack

        class Host(Module):
            pass

        host = Host()
        layers = build_layer_stack(host, [8, 4, 2], Linear, stream="x", seed=0)
        assert len(layers) == 2
        assert host.conv0 is layers[0] and host.conv1 is layers[1]
        assert len(host.parameters()) == 4  # 2 layers x (weight, bias)

    def test_rejects_short_dims(self):
        from repro.autograd.module import Linear, Module
        from repro.gnn.models import build_layer_stack

        with pytest.raises(ValueError, match="dims"):
            build_layer_stack(Module(), [8], Linear, stream="x", seed=0)

    def test_models_share_stack_builder_determinism(self, tiny_dataset):
        """Same seed => same init through the shared helper (state_dict
        names and values unchanged by the refactor)."""
        dims = tiny_dataset.layer_dims(2)
        for name in ("gcn", "sage", "gat"):
            m1 = build_model(name, dims, seed=4)
            m2 = build_model(name, dims, seed=4)
            sd1, sd2 = m1.state_dict(), m2.state_dict()
            assert list(sd1) == list(sd2)
            assert all(k.startswith("conv") for k in sd1)
            for k in sd1:
                np.testing.assert_array_equal(sd1[k], sd2[k])
