"""ServingSpace: enumeration, features, neighbours, SLO objective, tuner."""

import numpy as np
import pytest

from repro.core.autotuner import OnlineAutoTuner
from repro.tuning.serving import (
    BATCH_MODES,
    ROUTE_POLICIES,
    SHARD_POLICIES,
    ServingSpace,
    slo_objective,
)


class FakeReport:
    def __init__(self, p99_ms, throughput_rps):
        self.p99_ms = p99_ms
        self.throughput_rps = throughput_rps


class TestSpace:
    def test_policy_axis_mirrors_the_planner(self):
        # tuning cannot import serve (it loads during exec package init),
        # so the canonical policy tuples are mirrored — keep them identical
        from repro.serve.frontier import SHARD_POLICIES as planner_policies

        assert SHARD_POLICIES == planner_policies

    def test_route_axis_mirrors_the_cluster(self):
        from repro.serve.cluster import ROUTE_POLICIES as cluster_policies

        assert ROUTE_POLICIES == cluster_policies

    def test_enumeration_is_the_cross_product(self):
        space = ServingSpace(
            workers=(1, 2), max_batches=(1, 4), max_waits_ms=(0.0, 2.0),
            cache_sizes=(0, 128),
        )
        # 2*2*2*2 numeric points x 2 batch modes x 3 shard policies
        # x 1 replica count x 1 route policy (the horizontal defaults)
        assert len(space) == 96
        assert (2, 4, 2.0, 128, "frontier", "chunk", 1, "round_robin") in space
        assert (2, 4, 2.0, 128, "per_node", "steal", 1, "round_robin") in space
        assert (3, 4, 2.0, 128, "frontier", "chunk", 1, "round_robin") not in space
        assert (2, 4, 2.0, 128, "frontier", "chunk", 2, "round_robin") not in space
        cfg = (1, 4, 0.0, 128, "per_node", "size_binned", 1, "round_robin")
        assert space.configs[space.index(cfg)] == cfg

    def test_replica_and_route_axes_enumerate(self):
        space = ServingSpace(
            workers=(1,), max_batches=(4,), max_waits_ms=(1.0,), cache_sizes=(256,),
            batch_modes=("per_node",), shard_policies=("chunk",),
            replicas=(1, 2, 4), route_policies=ROUTE_POLICIES,
        )
        assert len(space) == 9
        assert (1, 4, 1.0, 256, "per_node", "chunk", 4, "cache_affinity") in space
        assert (1, 4, 1.0, 256, "per_node", "chunk", 2, "consistent_hash") in space

    def test_axes_deduped_and_sorted(self):
        space = ServingSpace(
            workers=(2, 1, 2), max_batches=(8, 1),
            batch_modes=("frontier", "per_node", "frontier"),
            shard_policies=("steal", "chunk", "steal"),
            replicas=(2, 1, 2),
            route_policies=("cache_affinity", "round_robin", "cache_affinity"),
        )
        assert space.workers == (1, 2)
        assert space.max_batches == (1, 8)
        # canonical categorical order, deduped
        assert space.batch_modes == BATCH_MODES
        assert space.shard_policies == ("chunk", "steal")
        assert space.replicas == (1, 2)
        assert space.route_policies == ("round_robin", "cache_affinity")

    def test_single_categorical_axes(self):
        space = ServingSpace(
            workers=(1,), max_batches=(1,), max_waits_ms=(0.0,),
            cache_sizes=(0,), batch_modes=("frontier",), shard_policies=("chunk",),
        )
        assert space.configs == [(1, 1, 0.0, 0, "frontier", "chunk", 1, "round_robin")]

    def test_zero_only_allowed_where_meaningful(self):
        ServingSpace(max_waits_ms=(0.0,), cache_sizes=(0,))  # fine
        with pytest.raises(ValueError, match="workers"):
            ServingSpace(workers=(0, 1))
        with pytest.raises(ValueError, match="max_batches"):
            ServingSpace(max_batches=(0,))
        with pytest.raises(ValueError, match="replicas"):
            ServingSpace(replicas=(0,))
        with pytest.raises(ValueError, match="batch_modes"):
            ServingSpace(batch_modes=())
        with pytest.raises(ValueError, match="batch_modes"):
            ServingSpace(batch_modes=("per_node", "warp"))
        with pytest.raises(ValueError, match="shard_policies"):
            ServingSpace(shard_policies=())
        with pytest.raises(ValueError, match="shard_policies"):
            ServingSpace(shard_policies=("chunk", "round_robin"))
        with pytest.raises(ValueError, match="route_policies"):
            ServingSpace(route_policies=())
        with pytest.raises(ValueError, match="route_policies"):
            ServingSpace(route_policies=("round_robin", "random"))

    def test_features_normalised_unit_cube(self):
        space = ServingSpace(replicas=(1, 2, 4), route_policies=ROUTE_POLICIES)
        feats = space.features()
        assert feats.shape == (len(space), 8)
        assert feats.min() >= 0.0 and feats.max() <= 1.0
        # distinct configs map to distinct feature rows
        assert len({tuple(r) for r in np.round(feats, 12)}) == len(space)
        # the categorical axes span their grid when all values are present
        assert set(feats[:, 4]) == {0.0, 1.0}
        assert set(feats[:, 5]) == {0.0, 0.5, 1.0}
        assert set(feats[:, 7]) == {0.0, 0.5, 1.0}
        # the replica axis is log-normalised like the other counts
        assert sorted(set(feats[:, 6])) == pytest.approx(
            [0.0, (np.log2(3) - 1) / (np.log2(5) - 1), 1.0]
        )

    def test_neighbors_single_axis_steps(self):
        space = ServingSpace(
            workers=(1, 2), max_batches=(1, 2, 4), max_waits_ms=(1.0, 2.0),
            cache_sizes=(0, 64), replicas=(1, 2), route_policies=ROUTE_POLICIES,
        )
        cfg = (1, 2, 1.0, 0, "per_node", "chunk", 1, "round_robin")
        neigh = space.neighbors(cfg)
        assert (2, 2, 1.0, 0, "per_node", "chunk", 1, "round_robin") in neigh
        assert (1, 1, 1.0, 0, "per_node", "chunk", 1, "round_robin") in neigh
        assert (1, 4, 1.0, 0, "per_node", "chunk", 1, "round_robin") in neigh
        assert (1, 2, 2.0, 0, "per_node", "chunk", 1, "round_robin") in neigh
        assert (1, 2, 1.0, 64, "per_node", "chunk", 1, "round_robin") in neigh
        # the categorical axes are first-class annealing moves
        assert (1, 2, 1.0, 0, "frontier", "chunk", 1, "round_robin") in neigh
        assert (1, 2, 1.0, 0, "per_node", "size_binned", 1, "round_robin") in neigh
        assert (1, 2, 1.0, 0, "per_node", "chunk", 2, "round_robin") in neigh
        assert (1, 2, 1.0, 0, "per_node", "chunk", 1, "consistent_hash") in neigh
        # one-step only: chunk -> steal must pass through size_binned,
        # round_robin -> cache_affinity through consistent_hash
        assert (1, 2, 1.0, 0, "per_node", "steal", 1, "round_robin") not in neigh
        assert (1, 2, 1.0, 0, "per_node", "chunk", 1, "cache_affinity") not in neigh
        assert all(sum(a != b for a, b in zip(n, cfg)) == 1 for n in neigh)
        with pytest.raises(KeyError):
            space.neighbors((9, 9, 9.0, 9, "per_node", "chunk", 1, "round_robin"))

    def test_random_config_in_space(self):
        space = ServingSpace()
        rng = np.random.default_rng(0)
        assert all(space.random_config(rng) in space for _ in range(20))

    def test_paper_budget_floor(self):
        assert ServingSpace(
            workers=(1,), max_batches=(1,), max_waits_ms=(0.0,), cache_sizes=(0,),
            batch_modes=("per_node",), shard_policies=("chunk",),
        ).paper_budget() == 3


class TestSloObjective:
    def test_within_slo_is_inverse_throughput(self):
        r = FakeReport(p99_ms=10.0, throughput_rps=200.0)
        assert slo_objective(r, slo_ms=20.0) == pytest.approx(1 / 200.0)

    def test_overshoot_penalised(self):
        ok = FakeReport(p99_ms=20.0, throughput_rps=200.0)
        late = FakeReport(p99_ms=40.0, throughput_rps=200.0)
        assert slo_objective(late, slo_ms=20.0) > 5 * slo_objective(ok, slo_ms=20.0)

    def test_throughput_cannot_fully_buy_back_violations(self):
        """A config that doubles throughput by doubling p99 past the SLO
        must still rank worse than the compliant one."""
        ok = FakeReport(p99_ms=18.0, throughput_rps=100.0)
        fast = FakeReport(p99_ms=40.0, throughput_rps=200.0)
        assert slo_objective(fast, slo_ms=20.0) > slo_objective(ok, slo_ms=20.0)

    def test_validation(self):
        r = FakeReport(10.0, 10.0)
        with pytest.raises(ValueError, match="slo_ms"):
            slo_objective(r, slo_ms=0.0)
        with pytest.raises(ValueError, match="penalty"):
            slo_objective(r, slo_ms=1.0, penalty=0.0)


class TestTunerIntegration:
    def test_bo_autotuner_drives_serving_space(self):
        """The existing OnlineAutoTuner searches the serving space —
        batch-mode, shard-policy, replica and route axes included —
        unchanged and recovers a known-good region of a synthetic
        latency model."""
        space = ServingSpace(
            workers=(1, 2), max_batches=(1, 4, 16), max_waits_ms=(0.5, 8.0),
            cache_sizes=(0, 1024), shard_policies=("chunk", "size_binned"),
            replicas=(1, 2), route_policies=("round_robin", "cache_affinity"),
        )

        def objective(cfg):
            (
                workers, max_batch, wait_ms, cache, batch_mode, shard_policy,
                replicas, route_policy,
            ) = cfg
            # synthetic but shaped like serving: batching + cache raise
            # throughput — frontier batching more so (amortised forward)
            # but only once real batches form, size-binned placement pays
            # off only with multiple ranks to level, replicas scale
            # throughput sublinearly, and affinity routing only pays when
            # there are caches to keep warm
            frontier_gain = 1.5 if (batch_mode == "frontier" and max_batch > 1) else 1.0
            balance_gain = 1.2 if (shard_policy == "size_binned" and workers > 1) else 1.0
            replica_gain = replicas ** 0.8
            affinity_gain = (
                1.3 if (route_policy == "cache_affinity" and cache and replicas > 1)
                else 1.0
            )
            throughput = (
                50.0 * workers * np.log2(max_batch + 1)
                * (1.5 if cache else 1.0)
                * frontier_gain * balance_gain * replica_gain * affinity_gain
            )
            p99 = 2.0 + wait_ms + 0.3 * max_batch
            return slo_objective(
                FakeReport(p99_ms=p99, throughput_rps=throughput), slo_ms=10.0
            )

        tuner = OnlineAutoTuner(space, num_searches=len(space), seed=0)
        result = tuner.tune(objective)
        assert result.best_config in space
        scores = {cfg: objective(cfg) for cfg in space}
        assert result.best_observed == pytest.approx(min(scores.values()))
        # the exhaustive-budget search must find the optimum's score
        assert objective(result.best_config) == pytest.approx(min(scores.values()))
        # and the synthetic optimum indeed uses the new horizontal axes
        assert result.best_config[4] == "frontier"
        assert result.best_config[5] == "size_binned"
        assert result.best_config[6] == 2
        assert result.best_config[7] == "cache_affinity"
