"""Pruning searcher (Sec. VII-B extension)."""

import numpy as np
import pytest

from repro.tuning.pruning import PruningSearch
from repro.tuning.space import ConfigSpace


def bowl(space):
    target = space.configs[len(space) // 3]

    def f(cfg):
        n, s, t = cfg
        return 1.0 + abs(n - target[0]) + 0.05 * abs(s - target[1])

    return f


class TestPruningSearch:
    def test_budget_respected(self):
        space = ConfigSpace(64)
        res = PruningSearch().run(bowl(space), space, budget=20, seed=0)
        assert res.num_evaluations == 20

    def test_no_duplicate_evaluations(self):
        space = ConfigSpace(64)
        res = PruningSearch().run(bowl(space), space, budget=30, seed=0)
        cfgs = [c for c, _ in res.history]
        assert len(set(cfgs)) == len(cfgs)

    def test_deterministic(self):
        space = ConfigSpace(64)
        a = PruningSearch().run(bowl(space), space, budget=20, seed=1)
        b = PruningSearch().run(bowl(space), space, budget=20, seed=1)
        assert a.history == b.history

    def test_finds_good_region_in_2d(self):
        """On the canonical 2-D space pruning should be competitive."""
        space = ConfigSpace(112)
        f = bowl(space)
        best = min(f(c) for c in space)
        res = PruningSearch().run(f, space, budget=space.paper_budget(), seed=0)
        assert f(res.best_config) < best * 1.5

    def test_handles_tiny_budget(self):
        space = ConfigSpace(32)
        res = PruningSearch().run(bowl(space), space, budget=2, seed=0)
        assert res.num_evaluations == 2

    def test_budget_larger_than_space(self):
        space = ConfigSpace(8)
        res = PruningSearch().run(bowl(space), space, budget=1000, seed=0)
        assert res.num_evaluations <= len(space)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            PruningSearch(initial_fraction=0.0)
        with pytest.raises(ValueError):
            PruningSearch(keep_fraction=1.0)
        with pytest.raises(ValueError):
            PruningSearch().run(lambda c: 1.0, ConfigSpace(16), budget=0)


class TestFull3DSpace:
    def test_much_larger_than_canonical(self):
        flat = ConfigSpace(112)
        full = ConfigSpace.full3d(112)
        assert len(full) > 10 * len(flat)

    def test_configs_valid(self):
        full = ConfigSpace.full3d(32)
        for n, s, t in full.configs[::37]:
            assert n * (s + t) <= 32
            assert s >= 1 and t >= 1

    def test_features_three_dims(self):
        full = ConfigSpace.full3d(32)
        feats = full.features()
        assert feats.shape[1] == 3
        assert feats.min() >= 0.0 and feats.max() <= 1.0

    def test_features_distinct(self):
        full = ConfigSpace.full3d(24)
        feats = full.features()
        assert len(np.unique(feats, axis=0)) == len(feats)

    def test_neighbors_include_utilisation_moves(self):
        full = ConfigSpace.full3d(32)
        moves = full.neighbors((2, 4, 4))
        assert (2, 4, 5) in moves or (2, 4, 3) in moves

    def test_canonical_subset_of_full(self):
        flat = ConfigSpace(32)
        full = ConfigSpace.full3d(32)
        for cfg in flat:
            assert cfg in full
