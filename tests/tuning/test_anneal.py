"""Simulated annealing behaviour."""

import numpy as np
import pytest

from repro.tuning.anneal import SimulatedAnnealing
from repro.tuning.space import ConfigSpace


def bowl(space):
    target = space.configs[len(space) // 3]

    def f(cfg):
        n, s, t = cfg
        return 1.0 + abs(n - target[0]) + 0.05 * abs(s - target[1])

    return f


class TestSimulatedAnnealing:
    def test_budget_respected(self):
        space = ConfigSpace(64)
        res = SimulatedAnnealing().run(bowl(space), space, budget=20, seed=0)
        assert res.num_evaluations == 20

    def test_deterministic_in_seed(self):
        space = ConfigSpace(64)
        a = SimulatedAnnealing().run(bowl(space), space, budget=20, seed=3)
        b = SimulatedAnnealing().run(bowl(space), space, budget=20, seed=3)
        assert a.history == b.history

    def test_seeds_change_trajectory(self):
        space = ConfigSpace(64)
        a = SimulatedAnnealing().run(bowl(space), space, budget=20, seed=3)
        b = SimulatedAnnealing().run(bowl(space), space, budget=20, seed=4)
        assert a.history != b.history

    def test_beats_single_random_draw_on_average(self):
        """SA with 20 moves should land well below the space median."""
        space = ConfigSpace(64)
        f = bowl(space)
        all_vals = sorted(f(c) for c in space)
        median = all_vals[len(all_vals) // 2]
        finals = [
            SimulatedAnnealing().run(f, space, budget=20, seed=s).best_observed
            for s in range(5)
        ]
        assert np.mean(finals) < median

    def test_rejects_zero_budget(self):
        space = ConfigSpace(64)
        with pytest.raises(ValueError):
            SimulatedAnnealing().run(bowl(space), space, budget=0)

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            SimulatedAnnealing(t_initial=0.0)
        with pytest.raises(ValueError):
            SimulatedAnnealing(cooling=1.0)
        with pytest.raises(ValueError):
            SimulatedAnnealing(restart_prob=1.0)

    def test_moves_stay_in_space(self):
        space = ConfigSpace(48)
        res = SimulatedAnnealing().run(bowl(space), space, budget=30, seed=0)
        for cfg, _ in res.history:
            assert cfg in space
