"""ConfigSpace: enumeration, features, neighbourhood moves."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.platform.spec import ICE_LAKE_8380H, SAPPHIRE_RAPIDS_6430L
from repro.tuning.space import ConfigSpace


class TestEnumeration:
    def test_every_config_valid(self):
        space = ConfigSpace(112)
        for n, s, t in space:
            assert n >= 1 and s >= 1 and t >= 1
            assert n * (s + t) <= 112
            assert s + t == 112 // n

    def test_known_sizes(self):
        """Our natural grid: 295 on 112 cores, 164 on 64 (the paper's own
        enumeration rule — 726/408 — is unpublished; see EXPERIMENTS.md)."""
        assert len(ConfigSpace(112)) == 295
        assert len(ConfigSpace(64)) == 164

    def test_for_platform(self):
        assert len(ConfigSpace.for_platform(ICE_LAKE_8380H)) == 295
        assert len(ConfigSpace.for_platform(SAPPHIRE_RAPIDS_6430L)) == 164

    def test_contains_and_index(self):
        space = ConfigSpace(16)
        cfg = space.configs[5]
        assert cfg in space
        assert space.index(cfg) == 5
        assert (99, 1, 1) not in space

    def test_custom_process_counts(self):
        space = ConfigSpace(16, process_counts=[2, 4])
        assert {n for n, _, _ in space} == {2, 4}

    def test_rejects_tiny_machine(self):
        with pytest.raises(ValueError):
            ConfigSpace(1)

    def test_paper_budget_fraction(self):
        space = ConfigSpace(112)
        assert space.paper_budget(0.05) == round(0.05 * 295)
        with pytest.raises(ValueError):
            space.paper_budget(0.0)

    def test_budget_floor(self):
        assert ConfigSpace(4).paper_budget(0.05) >= 3


class TestFeatures:
    def test_unit_cube(self):
        feats = ConfigSpace(64).features()
        assert feats.shape == (164, 2)
        assert feats.min() >= 0.0
        assert feats.max() <= 1.0

    def test_features_distinct(self):
        feats = ConfigSpace(64).features()
        assert len(np.unique(feats, axis=0)) == len(feats)

    def test_feature_semantics(self):
        space = ConfigSpace(64, process_counts=[1, 8])
        i = space.index((1, 4, 60))
        j = space.index((8, 4, 4))
        feats = space.features()
        assert feats[i, 0] == 0.0  # log2(1) = 0
        assert feats[j, 0] == 1.0  # max process count
        assert feats[i, 1] == pytest.approx(4 / 64)
        assert feats[j, 1] == pytest.approx(4 / 8)


class TestNeighbors:
    def test_split_moves(self):
        space = ConfigSpace(16)
        moves = space.neighbors((2, 4, 4))
        assert (2, 3, 5) in moves
        assert (2, 5, 3) in moves

    def test_process_moves_preserve_fraction(self):
        space = ConfigSpace(64)
        moves = space.neighbors((4, 8, 8))  # 50% sampling split
        by_n = {n: (s, t) for n, s, t in moves}
        assert 3 in by_n or 5 in by_n
        for n, (s, t) in by_n.items():
            assert abs(s / (s + t) - 0.5) < 0.2

    def test_all_neighbors_in_space(self):
        space = ConfigSpace(48)
        for cfg in space.configs[::7]:
            for move in space.neighbors(cfg):
                assert move in space

    def test_unknown_config_rejected(self):
        with pytest.raises(KeyError):
            ConfigSpace(16).neighbors((99, 1, 1))

    @given(st.integers(min_value=8, max_value=128))
    @settings(max_examples=20, deadline=None)
    def test_property_space_is_connected_enough(self, cores):
        """Every config has at least one neighbour (SA can always move)."""
        space = ConfigSpace(cores)
        for cfg in space.configs[:: max(1, len(space) // 20)]:
            assert len(space.neighbors(cfg)) >= 1


class TestRandomConfig:
    def test_in_space(self):
        space = ConfigSpace(32)
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert space.random_config(rng) in space


class TestBackendSpace:
    def _space(self, backends=("inline", "thread", "process")):
        from repro.tuning.space import BackendSpace

        return BackendSpace(ConfigSpace(16), backends=backends)

    def test_cross_product_size(self):
        base = ConfigSpace(16)
        space = self._space()
        assert len(space) == 3 * len(base)

    def test_configs_are_four_tuples(self):
        space = self._space()
        for cfg in space.configs[:: max(1, len(space) // 10)]:
            n, s, t, b = cfg
            assert (n, s, t) in space.base
            assert b in space.backends

    def test_index_roundtrip(self):
        space = self._space()
        for i in (0, len(space) // 2, len(space) - 1):
            assert space.index(space.configs[i]) == i

    def test_features_add_backend_column(self):
        space = self._space()
        feats = space.features()
        base_feats = space.base.features()
        assert feats.shape == (len(space), base_feats.shape[1] + 1)
        # backend column is the normalised categorical index
        assert set(np.unique(feats[:, -1])) == {0.0, 0.5, 1.0}

    def test_neighbors_include_backend_flips(self):
        space = self._space()
        cfg = space.base.configs[0] + ("thread",)
        moves = space.neighbors(cfg)
        flips = {m[3] for m in moves if m[:3] == cfg[:3]}
        assert flips == {"inline", "process"}
        for m in moves:
            assert m in space

    def test_unknown_backend_rejected(self):
        from repro.tuning.space import BackendSpace

        with pytest.raises(ValueError, match="unknown backends"):
            BackendSpace(ConfigSpace(16), backends=("inline", "mpi"))

    def test_runtime_config_accepts_points(self):
        from repro.core.config import RuntimeConfig

        space = self._space()
        cfg = RuntimeConfig.from_tuple(space.configs[-1])
        assert cfg.backend == "process"

    def test_autotuner_searches_backends(self):
        """The tuner must be able to traverse the backend axis."""
        from repro.core.autotuner import OnlineAutoTuner

        space = self._space()
        tuner = OnlineAutoTuner(space, num_searches=6, seed=0)
        # fake objective: process is fastest, inline slowest
        cost = {"inline": 3.0, "thread": 2.0, "process": 1.0}
        result = tuner.tune(lambda cfg: cost[cfg[3]] + 0.01 * cfg[0])
        assert len(result.history) == 6
        tried = {cfg[3] for cfg, _ in result.history}
        assert len(tried) >= 2  # the tuner explored the backend axis
        assert result.best_config[3] == "process"  # ... and found the cheapest

    def test_random_config_in_space(self):
        space = self._space()
        rng = np.random.default_rng(0)
        for _ in range(10):
            assert space.random_config(rng) in space


class TestQueueDepthAxis:
    """BackendSpace with a searched queue_depth: 5-tuple points."""

    DEPTHS = (1, 2, 4)

    def _space(self):
        from repro.tuning.space import BackendSpace

        return BackendSpace(
            ConfigSpace(16), backends=("inline", "process"), queue_depths=self.DEPTHS
        )

    def test_cross_product_size(self):
        base = ConfigSpace(16)
        assert len(self._space()) == 2 * len(self.DEPTHS) * len(base)

    def test_configs_are_five_tuples(self):
        space = self._space()
        for cfg in space.configs[:: max(1, len(space) // 10)]:
            n, s, t, b, q = cfg
            assert (n, s, t) in space.base
            assert b in space.backends
            assert q in self.DEPTHS

    def test_runtime_config_roundtrip(self):
        from repro.core.config import RuntimeConfig

        space = self._space()
        cfg = RuntimeConfig.from_tuple(space.configs[-1])
        # a searched depth implies the overlap pipeline
        assert cfg.prefetch is True
        assert cfg.queue_depth == self.DEPTHS[-1]
        assert cfg.backend == "process"

    def test_features_add_depth_column(self):
        space = self._space()
        feats = space.features()
        base_cols = space.base.features().shape[1]
        assert feats.shape == (len(space), base_cols + 2)
        # log-scaled depth column: 1 -> 0, max -> 1
        assert set(np.round(np.unique(feats[:, -1]), 6)) == {0.0, 0.5, 1.0}

    def test_neighbors_move_one_depth_step(self):
        space = self._space()
        cfg = space.base.configs[0] + ("inline", 2)
        moves = space.neighbors(cfg)
        depth_moves = {m[4] for m in moves if m[:4] == cfg[:4]}
        assert depth_moves == {1, 4}
        for m in moves:
            assert m in space

    def test_index_roundtrip_and_random(self):
        space = self._space()
        rng = np.random.default_rng(0)
        for i in (0, len(space) // 2, len(space) - 1):
            assert space.index(space.configs[i]) == i
        for _ in range(10):
            assert space.random_config(rng) in space

    def test_rejects_bad_depths(self):
        from repro.tuning.space import BackendSpace

        with pytest.raises(ValueError):
            BackendSpace(ConfigSpace(16), queue_depths=(0, 2))
        with pytest.raises(ValueError, match="non-empty"):
            BackendSpace(ConfigSpace(16), queue_depths=())

    def test_autotuner_searches_depths(self):
        """The tuner traverses the queue-depth axis and finds the best."""
        from repro.core.autotuner import OnlineAutoTuner

        space = self._space()
        tuner = OnlineAutoTuner(space, num_searches=8, seed=0)
        # fake objective: deeper lookahead hides more sampling
        result = tuner.tune(lambda cfg: 3.0 / cfg[4] + 0.01 * cfg[0])
        tried = {cfg[4] for cfg, _ in result.history}
        assert len(tried) >= 2
        assert result.best_config[4] == max(self.DEPTHS)

    def test_default_backend_space_helper(self):
        from repro.platform import ICE_LAKE_8380H
        from repro.tuning.defaults import QUEUE_DEPTH_CHOICES, default_backend_space

        space = default_backend_space(ICE_LAKE_8380H)
        assert space.queue_depths == QUEUE_DEPTH_CHOICES
        n, s, t, b, q = space.configs[0]
        assert q in QUEUE_DEPTH_CHOICES
