"""Search baselines: exhaustive, random, and the shared result record."""

import numpy as np
import pytest

from repro.tuning.search import ExhaustiveSearch, RandomSearch, SearchResult
from repro.tuning.space import ConfigSpace


def quadratic_objective(space):
    """Deterministic bowl with minimum at a mid-space config."""
    target = space.configs[len(space) // 2]

    def f(cfg):
        n, s, t = cfg
        tn, ts, tt = target
        return 1.0 + (n - tn) ** 2 + 0.1 * (s - ts) ** 2

    return f, target


class TestExhaustive:
    def test_finds_global_optimum(self):
        space = ConfigSpace(32)
        f, target = quadratic_objective(space)
        res = ExhaustiveSearch().run(f, space, budget=0)
        assert f(res.best_config) == min(f(c) for c in space)

    def test_evaluates_everything(self):
        space = ConfigSpace(32)
        f, _ = quadratic_objective(space)
        res = ExhaustiveSearch().run(f, space)
        assert res.num_evaluations == len(space)


class TestRandom:
    def test_budget_respected(self):
        space = ConfigSpace(32)
        f, _ = quadratic_objective(space)
        res = RandomSearch().run(f, space, budget=10, seed=0)
        assert res.num_evaluations == 10

    def test_no_repeats(self):
        space = ConfigSpace(32)
        f, _ = quadratic_objective(space)
        res = RandomSearch().run(f, space, budget=20, seed=0)
        cfgs = [c for c, _ in res.history]
        assert len(set(cfgs)) == len(cfgs)

    def test_deterministic_in_seed(self):
        space = ConfigSpace(32)
        f, _ = quadratic_objective(space)
        a = RandomSearch().run(f, space, budget=10, seed=5)
        b = RandomSearch().run(f, space, budget=10, seed=5)
        assert a.history == b.history

    def test_rejects_zero_budget(self):
        space = ConfigSpace(32)
        with pytest.raises(ValueError):
            RandomSearch().run(lambda c: 1.0, space, budget=0)

    def test_budget_capped_at_space(self):
        space = ConfigSpace(8)
        res = RandomSearch().run(lambda c: 1.0, space, budget=10_000, seed=0)
        assert res.num_evaluations == len(space)


class TestSearchResult:
    def test_best_so_far_monotone(self):
        space = ConfigSpace(32)
        f, _ = quadratic_objective(space)
        res = RandomSearch().run(f, space, budget=15, seed=1)
        curve = res.best_so_far()
        assert all(a >= b for a, b in zip(curve, curve[1:]))
        assert curve[-1] == res.best_observed

    def test_best_matches_history(self):
        space = ConfigSpace(32)
        f, _ = quadratic_objective(space)
        res = RandomSearch().run(f, space, budget=15, seed=1)
        assert res.best_observed == min(res.observations)
