"""Export contract: Chrome trace-event JSON, metrics docs, summarize."""

import json

import pytest

from repro.obs.export import (
    TRACE_SCHEMA_VERSION,
    chrome_trace_document,
    metrics_document,
    summarize_trace,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.metrics import METRICS_SCHEMA_VERSION, MetricRegistry
from repro.obs.trace import NameTable, SPAN_FORWARD, SPAN_PREDICT, SPAN_SAMPLE, SpanRecord


def _records():
    # rank 0: a predict span [10.0, 10.010] containing sample + forward;
    # rank 1: one standalone forward
    return [
        SpanRecord(0, SPAN_PREDICT, 10.0, 10.010, 4),
        SpanRecord(0, SPAN_SAMPLE, 10.001, 10.004, 4),
        SpanRecord(0, SPAN_FORWARD, 10.004, 10.009, 4),
        SpanRecord(1, SPAN_FORWARD, 10.002, 10.006, 2),
    ]


class TestChromeTraceDocument:
    def test_events_rebased_to_microseconds(self):
        doc = chrome_trace_document(_records(), NameTable())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 4
        first = spans[0]
        assert first["name"] == "predict"
        assert first["ts"] == pytest.approx(0.0)  # rebased to earliest t0
        assert first["dur"] == pytest.approx(10_000.0, rel=1e-6)  # 10 ms in us
        assert first["pid"] == 0 and first["tid"] == 0
        assert first["args"]["arg"] == 4

    def test_thread_name_metadata_per_rank(self):
        doc = chrome_trace_document(
            _records(), NameTable(), rank_labels={0: "rank 0", 1: "engine"}
        )
        meta = {
            e["tid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert meta == {0: "rank 0", 1: "engine"}

    def test_other_data_carries_schema_and_drops(self):
        doc = chrome_trace_document(_records(), NameTable(), dropped=[3, 0])
        other = doc["otherData"]
        assert other["schema_version"] == TRACE_SCHEMA_VERSION
        assert other["span_count"] == 4
        assert other["dropped_spans"] == [3, 0]

    def test_write_round_trips_as_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), chrome_trace_document(_records(), NameTable()))
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert len([e for e in loaded["traceEvents"] if e["ph"] == "X"]) == 4


class TestMetricsDocument:
    def test_extra_sections_appended(self):
        reg = MetricRegistry()
        reg.counter("c").inc()
        doc = metrics_document(reg, extra={"transport": {"hits": 1}})
        assert doc["schema_version"] == METRICS_SCHEMA_VERSION
        assert doc["transport"] == {"hits": 1}

    def test_extra_cannot_clobber_schema(self):
        with pytest.raises(ValueError):
            metrics_document(MetricRegistry(), extra={"metrics": {}})

    def test_write_metrics_json(self, tmp_path):
        path = tmp_path / "metrics.json"
        reg = MetricRegistry()
        reg.histogram("h").observe(1.0)
        write_metrics_json(str(path), reg, extra={"report": {"requests": 3}})
        loaded = json.loads(path.read_text())
        assert loaded["metrics"]["h"]["count"] == 1
        assert loaded["report"]["requests"] == 3


class TestSummarizeTrace:
    def test_empty_trace(self):
        assert summarize_trace({"traceEvents": []}) == "(empty trace)"

    def test_sections_present(self):
        doc = chrome_trace_document(
            _records(), NameTable(), rank_labels={0: "rank 0", 1: "engine"}
        )
        text = summarize_trace(doc)
        assert text.startswith("trace: 4 spans on 2 tracks")
        assert "self_ms" in text
        assert "per-track utilisation" in text
        assert "rank 0" in text and "engine" in text
        assert "legend" in text.splitlines()[-1]

    def test_self_time_subtracts_nested_children(self):
        doc = chrome_trace_document(_records(), NameTable())
        text = summarize_trace(doc, top=5)
        row = next(line for line in text.splitlines() if line.startswith("predict"))
        cols = row.split()
        # predict total 10ms; sample (3ms) + forward (5ms) nest inside
        # on the same track, leaving 2ms of self time
        assert float(cols[2]) == pytest.approx(10.0, abs=1e-3)
        assert float(cols[3]) == pytest.approx(2.0, abs=1e-3)

    def test_dropped_spans_surface_in_header(self):
        doc = chrome_trace_document(_records(), NameTable(), dropped=[5])
        assert "dropped 5" in summarize_trace(doc).splitlines()[0]
