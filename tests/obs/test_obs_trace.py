"""TraceArena/SpanRecorder contract: rings, wraps, attach, lifecycle."""

import multiprocessing as mp
import os

import pytest

from repro.obs.trace import (
    CANONICAL_SPANS,
    NULL_RECORDER,
    NameTable,
    SPAN_FORWARD,
    SPAN_SAMPLE,
    TraceArena,
)

has_dev_shm = os.path.isdir("/dev/shm")
needs_dev_shm = pytest.mark.skipif(not has_dev_shm, reason="no /dev/shm to inspect")


def shm_segments() -> frozenset:
    return frozenset(n for n in os.listdir("/dev/shm") if n.startswith("psm_"))


class TestNameTable:
    def test_canonical_ids_are_fixed(self):
        table = NameTable()
        for i, name in enumerate(CANONICAL_SPANS):
            assert table.intern(name) == i
            assert table.name(i) == name

    def test_dynamic_intern_appends(self):
        table = NameTable()
        custom = table.intern("my_span")
        assert custom == len(CANONICAL_SPANS)
        assert table.intern("my_span") == custom  # idempotent
        assert table.name(custom) == "my_span"

    def test_unknown_id_renders_placeholder(self):
        assert NameTable().name(10_000) == "span#10000"


class TestNullRecorder:
    def test_disabled_and_inert(self):
        assert NULL_RECORDER.enabled is False
        NULL_RECORDER.record(SPAN_SAMPLE, 0.0, 1.0, 7)  # no-op, no error


class TestTraceArena:
    def test_record_and_drain_round_trip(self):
        arena = TraceArena.for_ranks(2, capacity=8)
        try:
            r0 = arena.recorder(0)
            r1 = arena.recorder(1)
            assert r0.enabled is True
            r1.record(SPAN_FORWARD, 2.0, 3.0, 42)
            r0.record(SPAN_SAMPLE, 1.0, 1.5, 5)
            records = arena.drain()
            assert [(r.rank, r.name_id, r.t0, r.t1, r.arg) for r in records] == [
                (0, SPAN_SAMPLE, 1.0, 1.5, 5),  # drained in t0 order
                (1, SPAN_FORWARD, 2.0, 3.0, 42),
            ]
            assert arena.dropped() == [0, 0]
        finally:
            arena.unlink()

    def test_ring_overwrites_oldest_and_counts_drops(self):
        arena = TraceArena.for_ranks(1, capacity=4)
        try:
            rec = arena.recorder(0)
            for i in range(10):
                rec.record(SPAN_SAMPLE, float(i), float(i) + 0.5, i)
            records = arena.drain()
            assert len(records) == 4
            assert [r.arg for r in records] == [6, 7, 8, 9]  # newest survive
            assert arena.dropped() == [6]
        finally:
            arena.unlink()

    def test_recorder_validates_rank_and_lifecycle(self):
        arena = TraceArena.for_ranks(1, capacity=4)
        with pytest.raises(ValueError):
            arena.recorder(1)
        arena.unlink()
        with pytest.raises(ValueError):
            arena.recorder(0)

    def test_for_ranks_validates_shape(self):
        with pytest.raises(ValueError):
            TraceArena.for_ranks(0)
        with pytest.raises(ValueError):
            TraceArena.for_ranks(1, capacity=0)

    def test_cross_process_attach(self):
        """A forked worker attaches by spec and its spans land in the
        parent's drain — the persistent-pool wiring in miniature."""
        arena = TraceArena.for_ranks(2, capacity=16)
        try:
            proc = mp.Process(target=_attached_writer, args=(arena.spec, 1))
            proc.start()
            proc.join(30.0)
            assert proc.exitcode == 0
            arena.recorder(0).record(SPAN_SAMPLE, 0.5, 0.6, 0)
            records = arena.drain()
            assert {r.rank for r in records} == {0, 1}
            worker = [r for r in records if r.rank == 1]
            assert [(r.name_id, r.arg) for r in worker] == [(SPAN_FORWARD, 99)]
        finally:
            arena.unlink()

    @needs_dev_shm
    def test_unlink_leaves_no_segments(self):
        before = shm_segments()
        arena = TraceArena.for_ranks(2, capacity=8)
        assert shm_segments() != before  # the rings really live in /dev/shm
        arena.unlink()
        assert shm_segments() == before
        arena.unlink()  # idempotent


def _attached_writer(spec: dict, rank: int) -> None:
    arena = TraceArena.attach(spec)
    try:
        arena.recorder(rank).record(SPAN_FORWARD, 1.0, 2.0, 99)
    finally:
        arena.close()
