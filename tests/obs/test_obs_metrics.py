"""Unit contract of the dependency-free metrics registry."""

import math
import pickle

import pytest

from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_merge_adds(self):
        a, b = Counter(), Counter()
        a.inc(3)
        b.inc(2)
        a.merge(b.snapshot())
        assert a.value == 5


class TestGauge:
    """Gauge merging has an explicit declared policy — keep-max by
    default (high-water marks like peak queue depth), keep-min on
    request.  The fold must be order-independent: merging registries
    A,B and B,A has to land on the same value, or cross-replica metric
    documents would depend on replica iteration order."""

    def test_default_policy_keeps_max(self):
        g = Gauge()
        g.set(1.5)
        other = Gauge()
        other.set(7.0)
        g.merge(other.snapshot())
        assert g.value == 7.0
        # the lower side arriving second must NOT win (no last-write)
        low = Gauge()
        low.set(2.0)
        g.merge(low.snapshot())
        assert g.value == 7.0

    def test_min_policy_keeps_min(self):
        g = Gauge(policy="min")
        g.set(5.0)
        other = Gauge(policy="min")
        other.set(9.0)
        g.merge(other.snapshot())
        assert g.value == 5.0

    def test_merge_is_order_independent(self):
        values = (3.0, 11.0, 7.0)
        for policy, expected in (("max", 11.0), ("min", 3.0)):
            folds = []
            for order in ((0, 1, 2), (2, 1, 0), (1, 2, 0)):
                acc = Gauge(policy=policy)
                for i in order:
                    g = Gauge(policy=policy)
                    g.set(values[i])
                    acc.merge(g.snapshot())
                folds.append(acc.value)
            assert folds == [expected] * 3

    def test_unset_side_is_neutral(self):
        # an unset gauge (value 0.0, never written) must not drag a
        # keep-min fold to zero or pollute a keep-max fold
        set_side = Gauge(policy="min")
        set_side.set(4.0)
        unset = Gauge(policy="min")
        set_side.merge(unset.snapshot())
        assert set_side.value == 4.0
        fresh = Gauge(policy="min")
        fresh.merge(set_side.snapshot())
        assert fresh.value == 4.0

    def test_policy_mismatch_refused(self):
        g = Gauge(policy="max")
        other = Gauge(policy="min")
        other.set(1.0)
        with pytest.raises(ValueError, match="policy"):
            g.merge(other.snapshot())
        with pytest.raises(ValueError, match="policy"):
            Gauge(policy="last")


class TestHistogram:
    def test_observe_tracks_count_sum_min_max(self):
        h = Histogram()
        for v in (0.5, 2.0, 8.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(10.5)
        assert h.min == 0.5 and h.max == 8.0

    def test_bucket_placement_is_log2(self):
        h = Histogram(lo_exp=0, hi_exp=4)
        # value in [2^e, 2^(e+1)) lands in bucket e - lo_exp + 1
        h.observe(1.0)
        h.observe(3.0)
        h.observe(8.0)
        assert h.counts[1] == 1  # [1, 2)
        assert h.counts[2] == 1  # [2, 4)
        assert h.counts[4] == 1  # [8, 16) = top regular bucket
        # underflow and overflow edges
        h.observe(0.25)
        h.observe(64.0)
        assert h.counts[0] == 1
        assert h.counts[-1] == 1

    def test_percentiles_are_bucket_upper_bounds(self):
        h = Histogram(lo_exp=-4, hi_exp=4)
        for _ in range(99):
            h.observe(1.5)  # bucket [1, 2)
        h.observe(12.0)  # bucket [8, 16)
        assert h.p50 == 2.0
        assert h.p95 == 2.0
        assert h.p99 == 2.0
        assert h.percentile(100) == 16.0

    def test_percentile_empty_and_overflow(self):
        h = Histogram(lo_exp=0, hi_exp=2)
        assert h.p50 == 0.0
        h.observe(1e9)  # overflow bucket: percentile answers the max
        assert h.p99 == 1e9

    def test_total_override_preserves_caller_sum(self):
        # the PhaseStats contract: the running total is stored verbatim
        h = Histogram()
        total = 0.0
        for dt in (0.1, 0.2, 0.3):
            total += dt
            h.observe(dt, total=total)
        assert h.sum == total  # bitwise: same float-add order as caller
        assert h.count == 3

    def test_merge_folds_buckets_and_extremes(self):
        a, b = Histogram(lo_exp=0, hi_exp=4), Histogram(lo_exp=0, hi_exp=4)
        a.observe(1.0)
        b.observe(8.0)
        b.observe(0.5)
        a.merge(b.snapshot())
        assert a.count == 3
        assert a.min == 0.5 and a.max == 8.0
        assert sum(a.counts) == 3

    def test_merge_rejects_mismatched_buckets(self):
        with pytest.raises(ValueError):
            Histogram(lo_exp=0, hi_exp=4).merge(Histogram(lo_exp=-2, hi_exp=4))

    def test_bucket_bounds_end_with_inf(self):
        bounds = Histogram(lo_exp=0, hi_exp=2).bucket_bounds()
        assert bounds[0] == 1.0
        assert math.isinf(bounds[-1])

    def test_picklable(self):
        h = Histogram()
        h.observe(1.0)
        clone = pickle.loads(pickle.dumps(h))
        assert clone.count == 1 and clone.sum == 1.0


class TestMetricRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_names_sorted_and_contains(self):
        reg = MetricRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ["a", "b"]
        assert "a" in reg and "zzz" not in reg

    def test_snapshot_schema(self):
        reg = MetricRegistry()
        reg.counter("c").inc(2)
        doc = reg.snapshot()
        assert doc["schema_version"] == METRICS_SCHEMA_VERSION
        assert doc["metrics"]["c"] == {"type": "counter", "value": 2}

    def test_merge_cross_rank_folding(self):
        # the pool use-case: fold a worker registry's snapshot into the
        # engine's, creating unseen instruments on the fly
        worker = MetricRegistry()
        worker.counter("reqs").inc(7)
        worker.histogram("lat", lo_exp=-10, hi_exp=2).observe(0.5)
        parent = MetricRegistry()
        parent.counter("reqs").inc(1)
        parent.merge(worker.snapshot())
        assert parent.counter("reqs").value == 8
        assert parent.histogram("lat", lo_exp=-10, hi_exp=2).count == 1

    def test_merge_rejects_unknown_schema(self):
        with pytest.raises(ValueError):
            MetricRegistry().merge({"schema_version": 999, "metrics": {}})

    def test_gauge_policy_conflict_raises(self):
        reg = MetricRegistry()
        reg.gauge("peak", policy="max")
        with pytest.raises(ValueError, match="policy"):
            reg.gauge("peak", policy="min")

    def test_gauge_merge_permutation_invariant_through_registry(self):
        # the cluster metrics fold: replica documents may arrive in any
        # order, yet the folded gauge must be identical
        docs = []
        for peak in (3.0, 9.0, 5.0):
            reg = MetricRegistry()
            reg.gauge("peak").set(peak)
            docs.append(reg.snapshot())
        folds = []
        for order in ((0, 1, 2), (2, 0, 1), (1, 2, 0)):
            acc = MetricRegistry()
            for i in order:
                acc.merge(docs[i])
            folds.append(acc.gauge("peak").value)
        assert folds == [9.0, 9.0, 9.0]
        # gauge policy survives the snapshot/merge round-trip
        merged_doc = MetricRegistry()
        merged_doc.merge(docs[0])
        assert merged_doc.snapshot()["metrics"]["peak"]["policy"] == "max"
