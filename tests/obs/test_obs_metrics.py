"""Unit contract of the dependency-free metrics registry."""

import math
import pickle

import pytest

from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_merge_adds(self):
        a, b = Counter(), Counter()
        a.inc(3)
        b.inc(2)
        a.merge(b.snapshot())
        assert a.value == 5


class TestGauge:
    def test_set_and_merge_last_write_wins(self):
        g = Gauge()
        g.set(1.5)
        other = Gauge()
        other.set(7.0)
        g.merge(other.snapshot())
        assert g.value == 7.0


class TestHistogram:
    def test_observe_tracks_count_sum_min_max(self):
        h = Histogram()
        for v in (0.5, 2.0, 8.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(10.5)
        assert h.min == 0.5 and h.max == 8.0

    def test_bucket_placement_is_log2(self):
        h = Histogram(lo_exp=0, hi_exp=4)
        # value in [2^e, 2^(e+1)) lands in bucket e - lo_exp + 1
        h.observe(1.0)
        h.observe(3.0)
        h.observe(8.0)
        assert h.counts[1] == 1  # [1, 2)
        assert h.counts[2] == 1  # [2, 4)
        assert h.counts[4] == 1  # [8, 16) = top regular bucket
        # underflow and overflow edges
        h.observe(0.25)
        h.observe(64.0)
        assert h.counts[0] == 1
        assert h.counts[-1] == 1

    def test_percentiles_are_bucket_upper_bounds(self):
        h = Histogram(lo_exp=-4, hi_exp=4)
        for _ in range(99):
            h.observe(1.5)  # bucket [1, 2)
        h.observe(12.0)  # bucket [8, 16)
        assert h.p50 == 2.0
        assert h.p95 == 2.0
        assert h.p99 == 2.0
        assert h.percentile(100) == 16.0

    def test_percentile_empty_and_overflow(self):
        h = Histogram(lo_exp=0, hi_exp=2)
        assert h.p50 == 0.0
        h.observe(1e9)  # overflow bucket: percentile answers the max
        assert h.p99 == 1e9

    def test_total_override_preserves_caller_sum(self):
        # the PhaseStats contract: the running total is stored verbatim
        h = Histogram()
        total = 0.0
        for dt in (0.1, 0.2, 0.3):
            total += dt
            h.observe(dt, total=total)
        assert h.sum == total  # bitwise: same float-add order as caller
        assert h.count == 3

    def test_merge_folds_buckets_and_extremes(self):
        a, b = Histogram(lo_exp=0, hi_exp=4), Histogram(lo_exp=0, hi_exp=4)
        a.observe(1.0)
        b.observe(8.0)
        b.observe(0.5)
        a.merge(b.snapshot())
        assert a.count == 3
        assert a.min == 0.5 and a.max == 8.0
        assert sum(a.counts) == 3

    def test_merge_rejects_mismatched_buckets(self):
        with pytest.raises(ValueError):
            Histogram(lo_exp=0, hi_exp=4).merge(Histogram(lo_exp=-2, hi_exp=4))

    def test_bucket_bounds_end_with_inf(self):
        bounds = Histogram(lo_exp=0, hi_exp=2).bucket_bounds()
        assert bounds[0] == 1.0
        assert math.isinf(bounds[-1])

    def test_picklable(self):
        h = Histogram()
        h.observe(1.0)
        clone = pickle.loads(pickle.dumps(h))
        assert clone.count == 1 and clone.sum == 1.0


class TestMetricRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_names_sorted_and_contains(self):
        reg = MetricRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ["a", "b"]
        assert "a" in reg and "zzz" not in reg

    def test_snapshot_schema(self):
        reg = MetricRegistry()
        reg.counter("c").inc(2)
        doc = reg.snapshot()
        assert doc["schema_version"] == METRICS_SCHEMA_VERSION
        assert doc["metrics"]["c"] == {"type": "counter", "value": 2}

    def test_merge_cross_rank_folding(self):
        # the pool use-case: fold a worker registry's snapshot into the
        # engine's, creating unseen instruments on the fly
        worker = MetricRegistry()
        worker.counter("reqs").inc(7)
        worker.histogram("lat", lo_exp=-10, hi_exp=2).observe(0.5)
        parent = MetricRegistry()
        parent.counter("reqs").inc(1)
        parent.merge(worker.snapshot())
        assert parent.counter("reqs").value == 8
        assert parent.histogram("lat", lo_exp=-10, hi_exp=2).count == 1

    def test_merge_rejects_unknown_schema(self):
        with pytest.raises(ValueError):
            MetricRegistry().merge({"schema_version": 999, "metrics": {}})
