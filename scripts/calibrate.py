"""Calibration probe: simulated vs paper numbers for Tables IV/V shapes.

Run after changing cost-model constants:

    python scripts/calibrate.py [--full]

Prints, for every (platform, library, task, dataset) cell: simulated
exhaustive-best and default epoch times, their ratio, and the paper's
values where published.  ``--full`` adds the auto-tuner quality check.
"""

import sys

from repro import (
    CostModel,
    ConfigSpace,
    ICE_LAKE_8380H,
    LIBRARIES,
    SAPPHIRE_RAPIDS_6430L,
    SimulatedRuntime,
    TASKS,
    WorkloadModel,
    load_dataset,
    make_task,
)
from repro.core.autotuner import OnlineAutoTuner

# paper Table IV/V entries: (exhaustive_best, default) seconds
PAPER = {
    # (platform, library, task, dataset): (best, default)
    ("icelake", "dgl", "neighbor-sage", "flickr"): (1.98, 2.13),
    ("icelake", "dgl", "neighbor-sage", "reddit"): (13.83, 17.02),
    ("icelake", "dgl", "neighbor-sage", "ogbn-products"): (11.19, 20.86),
    ("icelake", "dgl", "neighbor-sage", "ogbn-papers100M"): (115.4, 154.3),
    ("icelake", "dgl", "shadow-gcn", "flickr"): (1.34, 1.83),
    ("icelake", "dgl", "shadow-gcn", "reddit"): (32.68, 208.3),
    ("icelake", "dgl", "shadow-gcn", "ogbn-products"): (14.68, 50.32),
    ("icelake", "dgl", "shadow-gcn", "ogbn-papers100M"): (107.8, 173.2),
    ("sapphire", "dgl", "neighbor-sage", "flickr"): (1.81, 1.93),
    ("sapphire", "dgl", "neighbor-sage", "reddit"): (11.25, 14.28),
    ("sapphire", "dgl", "neighbor-sage", "ogbn-products"): (7.40, 15.33),
    ("sapphire", "dgl", "neighbor-sage", "ogbn-papers100M"): (41.48, 68.02),
    ("sapphire", "dgl", "shadow-gcn", "flickr"): (1.28, 1.75),
    ("sapphire", "dgl", "shadow-gcn", "reddit"): (32.12, 138.1),
    ("sapphire", "dgl", "shadow-gcn", "ogbn-products"): (11.42, 49.73),
    ("sapphire", "dgl", "shadow-gcn", "ogbn-papers100M"): (54.56, 111.2),
    ("icelake", "pyg", "neighbor-sage", "flickr"): (5.46, 5.46),
    ("icelake", "pyg", "neighbor-sage", "reddit"): (41.83, 53.78),
    ("icelake", "pyg", "neighbor-sage", "ogbn-products"): (161.4, 185.4),
    ("icelake", "pyg", "neighbor-sage", "ogbn-papers100M"): (None, 392.9),
    ("icelake", "pyg", "shadow-gcn", "flickr"): (9.48, 28.65),
    ("icelake", "pyg", "shadow-gcn", "reddit"): (40.75, 178.1),
    ("icelake", "pyg", "shadow-gcn", "ogbn-products"): (71.94, 372.6),
    ("icelake", "pyg", "shadow-gcn", "ogbn-papers100M"): (None, 336.0),
    ("sapphire", "pyg", "neighbor-sage", "flickr"): (5.67, 6.17),
    ("sapphire", "pyg", "neighbor-sage", "reddit"): (47.36, 54.49),
    ("sapphire", "pyg", "neighbor-sage", "ogbn-products"): (117.9, 155.7),
    ("sapphire", "pyg", "neighbor-sage", "ogbn-papers100M"): (None, 294.7),
    ("sapphire", "pyg", "shadow-gcn", "flickr"): (8.49, 28.61),
    ("sapphire", "pyg", "shadow-gcn", "reddit"): (36.41, 174.5),
    ("sapphire", "pyg", "shadow-gcn", "ogbn-products"): (64.52, 323.8),
    ("sapphire", "pyg", "shadow-gcn", "ogbn-papers100M"): (None, 237.0),
}

PLATS = {"icelake": ICE_LAKE_8380H, "sapphire": SAPPHIRE_RAPIDS_6430L}
DATASETS = ["flickr", "reddit", "ogbn-products", "ogbn-papers100M"]


def main(full: bool = False):
    for task, (samp_name, model_name) in TASKS.items():
        for dsname in DATASETS:
            ds = load_dataset(dsname, seed=0)
            sampler, _ = make_task(task, ds.layer_dims(3), seed=0)
            wm = WorkloadModel(ds, sampler, seed=0)
            for platkey, plat in PLATS.items():
                space = ConfigSpace(plat.total_cores)
                for libname, lib in LIBRARIES.items():
                    cm = CostModel(
                        plat,
                        lib,
                        wm,
                        sampler_name=samp_name,
                        model_name=model_name,
                        dims=ds.layer_dims(3),
                        train_nodes=ds.spec.paper_train_nodes,
                    )
                    rt = SimulatedRuntime(cm, seed=0)
                    best, bcfg = rt.argo_best_epoch_time(plat.total_cores, space)
                    dflt = rt.baseline_epoch_time(plat.total_cores)
                    pb, pd = PAPER.get((platkey, libname, task, dsname), (None, None))
                    line = (
                        f"{task:13s} {dsname:16s} {platkey:8s} {libname:4s} "
                        f"best={best:8.2f}s (paper {pb if pb else '  n/a'}) "
                        f"default={dflt:8.2f}s (paper {pd}) "
                        f"ratio={best / dflt:4.2f}"
                    )
                    if pb and pd:
                        line += f" (paper {pb / pd:4.2f}) cfg={bcfg}"
                    if full:
                        tuner = OnlineAutoTuner(space, space.paper_budget(), seed=1)
                        res = tuner.tune(rt.measure_epoch)
                        found = rt.true_epoch_time(res.best_config)
                        line += f" tuner_q={best / found:4.2f}"
                    print(line)


if __name__ == "__main__":
    main(full="--full" in sys.argv)
