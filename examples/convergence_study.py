"""Convergence study (paper Fig. 9): semantics preservation in practice.

Trains the same model as a single process and under ARGO with 2/4/8
processes (per-rank batch scaled to B/n, gradients averaged) and prints
the accuracy-vs-minibatches curves.  The curves overlap — multi-processing
changes *when* accuracy arrives in wall-clock, never *what* the algorithm
computes.

Run:  python examples/convergence_study.py
"""

from repro.experiments.figures import fig9_convergence
from repro.experiments.reporting import render_table


def main():
    data = fig9_convergence(
        dataset="ogbn-products",
        task="neighbor-sage",
        process_counts=(1, 2, 4, 8),
        epochs=6,
        scale_override=11,
        global_batch=256,
        seed=0,
    )
    curves = data["curves"]
    names = list(curves)
    n_points = min(len(c) for c in curves.values())
    rows = []
    for i in range(n_points):
        rows.append([i] + [f"{curves[k][i][1]:.3f}" for k in names])
    print(
        render_table(
            ["checkpoint"] + names,
            rows,
            title="validation accuracy per epoch checkpoint (columns must track each other)",
        )
    )
    finals = {k: v[-1][1] for k, v in curves.items()}
    spread = max(finals.values()) - min(finals.values())
    print(f"\nfinal accuracies: {finals}")
    print(f"spread: {spread:.3f}  (semantics preserved: curves overlap)")


if __name__ == "__main__":
    main()
