"""ARGO end to end: wrap a training function, let the auto-tuner pick the
configuration online, keep training with the best one (paper Listing 3).

This runs *real* training: the tuner's observations are actual wall-clock
epoch times of the Multi-Process Engine on this machine, so the chosen
configuration reflects your hardware (on a laptop that usually means few
processes; on a wide server, more).

Run:  python examples/products_autotune.py
"""

from repro import (
    ARGO,
    ConfigSpace,
    evaluate_accuracy,
    load_dataset,
    make_task,
    make_train_fn,
)


def main():
    dataset = load_dataset("ogbn-products", seed=0, scale_override=11)
    sampler, model = make_task(
        "neighbor-sage", dataset.layer_dims(2), seed=0, fanouts=[10, 5]
    )

    # The design space for a (pretend) 16-core box: (n, samp, train) with
    # n*(samp+train) <= 16.  On the paper's machines you would use
    # ConfigSpace.for_platform(ICE_LAKE_8380H).
    space = ConfigSpace(16, max_processes=8)
    print(f"design space: {len(space)} configurations, "
          f"search budget {space.paper_budget()} epochs (5%)")

    # Listing 3: the train function takes config + epochs and returns
    # measured epoch times; make_train_fn builds it around the engine.
    train = make_train_fn(dataset, sampler, model, global_batch_size=256, seed=0)

    runtime = ARGO(n_search=space.paper_budget(), epoch=30, space=space, seed=0)
    try:
        result = runtime.run(train)
    finally:
        # stop any cached execution backends (persistent worker pools,
        # shared-memory stores) the train fn kept warm between launches
        train.close()

    print("\nsearch history (config -> epoch seconds):")
    for cfg, t in result.search_history:
        print(f"  {cfg}  {t:6.3f}s")
    print(f"\nbest configuration: {result.best_config}")
    print(f"search epochs: {result.search_epochs}, exploit epochs: {len(result.exploit_epoch_times)}")
    print(f"tuner overhead: {result.tuner_overhead_seconds * 1e3:.1f} ms "
          f"({result.tuner_memory_bytes / 1e6:.2f} MB surrogate)")
    print(f"end-to-end time: {result.total_time:.2f}s")

    acc = evaluate_accuracy(dataset, sampler, model, seed=0)
    print(f"test accuracy after ARGO-managed training: {acc:.3f}")


if __name__ == "__main__":
    main()
