"""Train → snapshot → serve: the online inference path end to end.

The ARGO runtime trains the model; serving is a different animal — per-
node requests, tail-latency SLOs, skewed popularity.  This example walks
the whole hand-off: train briefly on the synthetic ogbn-products
instance, freeze an optimizer-free ``ModelSnapshot`` to disk, reload it
in a fresh ``InferenceEngine`` (inline *and* persistent-pool modes,
verified bit-identical), and drive a Zipf/Poisson workload through the
deadline-aware micro-batcher + LRU prediction cache.

Run:  python examples/products_serve.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import MultiProcessEngine, load_dataset, make_task
from repro.serve import InferenceEngine, ModelSnapshot, run_serving_workload


def main():
    dataset = load_dataset("ogbn-products", seed=0, scale_override=10)
    sampler, model = make_task(
        "neighbor-sage", dataset.layer_dims(2), seed=0, fanouts=[10, 5]
    )
    print(f"dataset: {dataset.name}  nodes={dataset.num_nodes}  edges={dataset.num_edges}")

    # 1) train briefly — the serving side only needs the weights
    engine = MultiProcessEngine(
        dataset, sampler, model, num_processes=2, global_batch_size=256,
        backend="inline", seed=0,
    )
    history = engine.train(2)
    print(f"trained 2 epochs: loss {history.losses[0]:.3f} -> {history.losses[-1]:.3f}")

    # 2) freeze the snapshot to disk: weights + model/sampler config,
    #    no optimizer state — the train -> serve hand-off artefact
    path = Path(tempfile.mkdtemp()) / "products-sage"
    saved = ModelSnapshot.from_engine(engine).save(path)
    snapshot = ModelSnapshot.load(saved)
    print(
        f"snapshot: {saved.name}  model={snapshot.model_name}{snapshot.dims}  "
        f"{snapshot.num_parameters:,} parameters"
    )

    # 3) serve it — inline first, then across the persistent worker pool;
    #    per-node sampling RNG makes the two bit-identical
    probe = dataset.val_idx[:16]
    with InferenceEngine(snapshot, dataset, mode="inline") as inline:
        inline_preds = inline.predict(probe)
    with InferenceEngine(snapshot, dataset, mode="pool", workers=2) as pooled:
        pool_preds = pooled.predict(probe)
    assert np.array_equal(inline_preds, pool_preds)
    print(f"pool == inline on {len(probe)} probe nodes: bit-identical")

    # 4) a synthetic open-loop workload: Poisson arrivals, Zipf-hot nodes,
    #    micro-batching under a deadline, LRU prediction cache
    serving = InferenceEngine(snapshot, dataset, mode="inline", cache_entries=2048)
    report = run_serving_workload(
        serving, num_requests=400, rate_rps=2000.0, zipf_alpha=1.2,
        max_batch=8, max_wait_ms=2.0, seed=0,
    )
    print(
        f"\nserve-bench: {report.requests} requests @ {report.throughput_rps:.0f} req/s\n"
        f"  latency ms: p50={report.p50_ms:.2f}  p95={report.p95_ms:.2f}  "
        f"p99={report.p99_ms:.2f}\n"
        f"  batching: mean={report.mean_batch:.2f} "
        f"(full/deadline flushes {report.full_flushes}/{report.deadline_flushes})\n"
        f"  cache hit rate: {report.cache.hit_rate:.3f} "
        f"({report.cache.hits} hits / {report.cache.misses} misses)"
    )
    print(f"  SLO 20 ms attainment: {report.slo_attainment(20.0):.3f}")


if __name__ == "__main__":
    main()
