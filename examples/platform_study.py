"""Platform study: explore the paper's evaluation on the simulated testbeds.

Reproduces the core of Tables IV/V for one cell interactively: sweep the
full design space of the 112-core Ice Lake model, render the Fig. 7/12
landscape, compare the library default against the oracle, and run the
online auto-tuner with a 5% budget.

Run:  python examples/platform_study.py [task] [dataset] [platform] [library]
e.g.  python examples/platform_study.py shadow-gcn reddit icelake dgl
"""

import sys

from repro.core.autotuner import OnlineAutoTuner
from repro.experiments.reporting import render_heatmap, render_table
from repro.experiments.setups import ExperimentSetup, build_runtime
from repro.platform.spec import PLATFORMS


def main(argv):
    task = argv[1] if len(argv) > 1 else "neighbor-sage"
    dataset = argv[2] if len(argv) > 2 else "ogbn-products"
    platform = argv[3] if len(argv) > 3 else "icelake"
    library = argv[4] if len(argv) > 4 else "dgl"
    setup = ExperimentSetup(task, dataset, platform, library)
    print(f"setup: {setup.label}\n")

    rt, space = build_runtime(setup)
    total = PLATFORMS[platform].total_cores

    # full design-space sweep (what the paper calls Exhaustive)
    best_time, best_cfg = rt.argo_best_epoch_time(total, space)
    default_time = rt.baseline_epoch_time(total)

    # Fig. 7-style landscape over (processes, sampling cores)
    grid = {(n, s): rt.true_epoch_time((n, s, t)) for n, s, t in space}
    print(render_heatmap(grid, title="epoch-time landscape (x=#processes, y=#sampling cores)"))

    # online auto-tuning with the paper's 5% budget
    budget = space.paper_budget()
    tuner = OnlineAutoTuner(space, budget, seed=0)
    result = tuner.tune(rt.measure_epoch)
    tuned_time = rt.true_epoch_time(result.best_config)

    print()
    print(
        render_table(
            ["strategy", "epoch time (s)", "vs optimal", "searches"],
            [
                ["Exhaustive (oracle)", best_time, 1.0, len(space)],
                ["Library default", default_time, best_time / default_time, 0],
                ["ARGO auto-tuner", tuned_time, best_time / tuned_time, budget],
            ],
            title="configuration quality",
        )
    )
    print(f"\noracle config: {best_cfg}   tuner config: {result.best_config}")
    bd = rt.breakdown(result.best_config)
    print(
        f"tuned per-iteration breakdown: sample={bd.t_sample * 1e3:.1f}ms "
        f"compute={bd.t_compute * 1e3:.1f}ms memory={bd.t_memory * 1e3:.1f}ms "
        f"sync={bd.t_sync * 1e3:.2f}ms  ({bd.iters} iters/epoch)"
    )


if __name__ == "__main__":
    main(sys.argv)
