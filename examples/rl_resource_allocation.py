"""Generalizability demo (paper Sec. VII-C): tuning beyond GNNs.

The paper argues ARGO's black-box auto-tuner generalises to other
resource-allocation problems, giving parallel Reinforcement Learning as
the example: split a CPU budget between *Actors* (environment rollouts)
and *Learners* (gradient updates).  This script builds a small analytical
model of such a pipeline — rollout throughput saturates with actor cores,
learner throughput follows Amdahl, and the pipeline rate is gated by the
slower side — and lets the same :class:`BayesianOptimizer` that powers
ARGO find the best split online.

Run:  python examples/rl_resource_allocation.py
"""

import numpy as np

from repro.bayesopt import BayesianOptimizer
from repro.platform.costmodel import amdahl_speedup
from repro.utils.rng import derive_rng

TOTAL_CORES = 32


def pipeline_time(actor_cores: int, learner_cores: int, *, rng=None) -> float:
    """Seconds per 1000 training samples for an (actors, learners) split.

    Actors produce ~120 samples/s/core with a 0.85 parallel fraction
    (simulator contention); learners consume 1000-sample batches in
    GPU-less gradient steps that parallelise at 0.7.  The pipeline runs at
    the slower of the two stages plus a handoff cost.
    """
    produce = 120.0 * amdahl_speedup(actor_cores, 0.85)
    t_actors = 1000.0 / produce
    t_learner = 2.8 / amdahl_speedup(learner_cores, 0.70)
    t = max(t_actors, t_learner) + 0.15 * min(t_actors, t_learner) + 0.05
    if rng is not None:
        t *= 1.0 + 0.02 * rng.standard_normal()
    return t


def main():
    splits = [(a, TOTAL_CORES - a) for a in range(1, TOTAL_CORES)]
    features = np.array([[a / TOTAL_CORES] for a, _ in splits])

    # ground truth for reference
    truth = [pipeline_time(a, l) for a, l in splits]
    oracle_idx = int(np.argmin(truth))
    print(f"oracle split: {splits[oracle_idx]}  ({truth[oracle_idx]:.3f}s / 1k samples)")

    rng = derive_rng(0, "rl-demo")
    bo = BayesianOptimizer(features, n_initial=4, rng=derive_rng(0, "bo"))
    budget = max(3, len(splits) // 10)  # the familiar ~10% budget
    for step in range(budget):
        idx = bo.ask()
        a, l = splits[idx]
        obs = pipeline_time(a, l, rng=rng)
        bo.tell(idx, obs)
        print(f"  search {step + 1:2d}: actors={a:2d} learners={l:2d} -> {obs:.3f}s")

    found = splits[bo.best_index]
    print(f"\ntuner split after {budget} probes: {found}")
    quality = truth[oracle_idx] / pipeline_time(*found)
    print(f"quality vs oracle: {quality:.2%}")


if __name__ == "__main__":
    main()
