"""Quickstart: train a GraphSAGE model with the Multi-Process Engine.

Mirrors the paper's Listing 2 (a vanilla DGL training program) on this
library's substrate: load the synthetic ogbn-products stand-in, build the
Neighbor-SAGE task, train a few epochs data-parallel across 4 logical
processes, and report accuracy.

Run:  python examples/quickstart.py
"""

from repro import MultiProcessEngine, evaluate_accuracy, load_dataset, make_task


def main():
    # a laptop-sized synthetic instance of ogbn-products (scale 2^12 nodes)
    dataset = load_dataset("ogbn-products", seed=0, scale_override=12)
    print(f"dataset: {dataset.name}  nodes={dataset.num_nodes}  edges={dataset.num_edges}")

    # the paper's Neighbor-SAGE pairing with a 3-layer model, dims from Table III
    sampler, model = make_task("neighbor-sage", dataset.layer_dims(3), seed=0)
    print(f"model: 3-layer GraphSAGE, dims={dataset.layer_dims(3)}, "
          f"{model.num_parameters():,} parameters")

    # 4 ranks, global batch 512 -> per-rank batch 128 (semantics preserved)
    engine = MultiProcessEngine(
        dataset,
        sampler,
        model,
        num_processes=4,
        global_batch_size=512,
        lr=3e-3,
        backend="inline",
        seed=0,
    )

    print(f"\ntraining: 8 epochs, {engine.n} processes, per-rank batch {engine.per_rank_batch}")
    for _ in range(8):
        stats = engine.train_epoch()
        acc = engine.evaluate()
        print(
            f"  epoch {stats.epoch:2d}  loss={stats.mean_loss:6.3f}  "
            f"val_acc={acc:5.3f}  sampled_edges={stats.sampled_edges:,}  "
            f"({stats.epoch_time:.2f}s)"
        )

    test_acc = evaluate_accuracy(dataset, sampler, model, seed=0)
    print(f"\nfinal test accuracy: {test_acc:.3f}")


if __name__ == "__main__":
    main()
