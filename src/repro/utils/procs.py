"""Child-process reaping shared by every multiprocessing owner."""

from __future__ import annotations

__all__ = ["reap_processes"]


def reap_processes(procs, *, grace: float = 5.0) -> None:
    """Terminate → join → kill every child still alive; idempotent.

    Used on teardown and on every failure path: after this returns no
    child in ``procs`` is running, whatever state it was stuck in
    (``kill`` covers a child ignoring SIGTERM inside a syscall).
    """
    for p in procs:
        if p.is_alive():
            p.terminate()
    for p in procs:
        p.join(grace)
        if p.is_alive():  # pragma: no cover - terminate() was ignored
            p.kill()
            p.join(grace)
