"""Wall-clock and virtual clocks.

The ARGO runtime needs two notions of time:

* ``WallClock`` — real ``perf_counter`` time, used when actually executing
  numpy training (correctness / convergence experiments).
* ``VirtualClock`` — an advanceable clock used by the platform simulator so
  that simulated epoch times are deterministic and independent of the host.

``Timer`` is a small context-manager accumulator usable with either clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["WallClock", "VirtualClock", "Timer"]


class WallClock:
    """Monotonic wall-clock based on :func:`time.perf_counter`."""

    def now(self) -> float:
        return time.perf_counter()

    def advance(self, dt: float) -> None:  # pragma: no cover - no-op by design
        """Wall clocks cannot be advanced; provided for interface parity."""


class VirtualClock:
    """A manually-advanced clock for deterministic simulation."""

    def __init__(self, start: float = 0.0):
        self._t = float(start)

    def now(self) -> float:
        return self._t

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        self._t += float(dt)


@dataclass
class Timer:
    """Accumulating timer; ``with timer: ...`` adds elapsed time to total."""

    clock: WallClock | VirtualClock = field(default_factory=WallClock)
    total: float = 0.0
    count: int = 0
    _start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = self.clock.now()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.total += self.clock.now() - self._start
        self.count += 1
        self._start = None

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.total = 0.0
        self.count = 0
        self._start = None
