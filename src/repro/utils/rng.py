"""Deterministic random-number management.

Every stochastic component in the library (graph generators, samplers,
tuners, the platform simulator's measurement noise) draws from a
``numpy.random.Generator`` derived from an explicit integer seed.  Nothing
reads global RNG state, so two runs with the same seeds are bit-identical —
a requirement for the search-algorithm comparisons in Tables IV/V where the
objective must be a deterministic function of (config, seed).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["derive_rng", "spawn_seeds", "RngMixin", "as_generator"]


def as_generator(seed_or_rng) -> np.random.Generator:
    """Coerce ``seed_or_rng`` into a ``numpy.random.Generator``.

    Accepts ``None`` (fresh non-deterministic generator), an integer seed,
    or an existing generator (returned unchanged).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def derive_rng(seed: int, *stream: int | str) -> np.random.Generator:
    """Return a generator for a named sub-stream of ``seed``.

    String stream components are hashed stably (FNV-1a) so that e.g.
    ``derive_rng(0, "sampler", rank)`` gives independent, reproducible
    streams per rank without the ranks' draws being correlated.
    """
    keys = [seed & 0xFFFFFFFF]
    for part in stream:
        if isinstance(part, str):
            h = 2166136261
            for ch in part.encode():
                h = ((h ^ ch) * 16777619) & 0xFFFFFFFF
            keys.append(h)
        else:
            keys.append(int(part) & 0xFFFFFFFF)
    return np.random.default_rng(keys)


def spawn_seeds(seed: int, n: int) -> list[int]:
    """Derive ``n`` independent 63-bit child seeds from ``seed``."""
    rng = np.random.default_rng(seed)
    return [int(s) for s in rng.integers(0, 2**63 - 1, size=n)]


class RngMixin:
    """Mixin giving a class a lazily-created private generator.

    Subclasses set ``self._seed`` (int or None); ``self.rng`` is then a
    cached generator.  ``reseed`` resets the stream.
    """

    _seed: int | None = None
    _rng: np.random.Generator | None = None

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = np.random.default_rng(self._seed)
        return self._rng

    def reseed(self, seed: int | None) -> None:
        self._seed = seed
        self._rng = np.random.default_rng(seed)
