"""Shared utilities: seeded RNG management, timers, validation helpers."""

from repro.utils.rng import RngMixin, derive_rng, spawn_seeds
from repro.utils.timer import Timer, WallClock, VirtualClock
from repro.utils.validation import (
    check_positive_int,
    check_nonneg_int,
    check_probability,
    check_in,
)

__all__ = [
    "RngMixin",
    "derive_rng",
    "spawn_seeds",
    "Timer",
    "WallClock",
    "VirtualClock",
    "check_positive_int",
    "check_nonneg_int",
    "check_probability",
    "check_in",
]
