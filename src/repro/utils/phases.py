"""Per-phase service-time accounting for the serving hot path.

One :class:`PhaseStats` instance rides through a serving forward and
accumulates where the wall time went: drawing frontiers (``sample_s``),
assembling the merged block-diagonal structure (``merge_s``), the model
forward itself (``forward_s``) and prediction-cache bookkeeping
(``cache_s``).  The inference engine owns one, the pool workers report
their own per-plan deltas back through the result queue, and
:func:`repro.serve.workload.run_serving_workload` snapshots the counters
around each run so :class:`~repro.serve.workload.ServingReport` can
break service time down per phase.

The module lives under ``utils`` because both :mod:`repro.sampling`
(which instruments ``sample_merged``) and :mod:`repro.serve` (which
instruments forwards and the cache) need it without importing each
other.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import Histogram

__all__ = ["PHASE_NAMES", "PhaseStats", "RankStats"]

#: the serving phases, in snapshot-tuple order
PHASE_NAMES = ("sample", "merge", "forward", "cache")


class PhaseStats:
    """Cumulative seconds spent per serving phase, histogram-backed.

    The mutation surface is unchanged from the original scalar fields —
    ``phases.sample_s += dt`` everywhere — but each ``+=`` now also
    lands the increment in a per-phase log2
    :class:`~repro.obs.metrics.Histogram`, so the same counters that
    feed :class:`~repro.serve.workload.ServingReport` totals expose
    exact bucket-derived p50/p95/p99 through the metrics registry.  The
    running totals use the identical float-add order the scalars did
    (the setter stores the caller-computed total verbatim), keeping
    every downstream number bitwise unchanged.

    In pool mode the sample/merge/forward counters are summed across
    rank workers that run concurrently, so they measure aggregate CPU
    time, not wall time — per-phase *shares* remain meaningful either
    way.

    Pass ``registry`` to register the four histograms in a
    :class:`~repro.obs.metrics.MetricRegistry` under
    ``<prefix>.<phase>_s`` (the engine does this); standalone instances
    (pool workers) own private histograms and ship them home with
    :meth:`hists_snapshot`.
    """

    __slots__ = ("_hists",)

    def __init__(self, *, registry=None, prefix: str = "serve.phase"):
        if registry is not None:
            self._hists = {
                name: registry.histogram(f"{prefix}.{name}_s") for name in PHASE_NAMES
            }
        else:
            self._hists = {name: Histogram() for name in PHASE_NAMES}

    # -- scalar facade (the historical mutation API) -------------------
    def _get(self, name: str) -> float:
        return self._hists[name].sum

    def _set(self, name: str, value: float) -> None:
        hist = self._hists[name]
        # callers write `phases.x_s += dt`: `value` is the new running
        # total they computed; the delta is what lands in the buckets
        hist.observe(value - hist.sum, total=value)

    sample_s = property(
        lambda self: self._get("sample"), lambda self, v: self._set("sample", v)
    )
    merge_s = property(
        lambda self: self._get("merge"), lambda self, v: self._set("merge", v)
    )
    forward_s = property(
        lambda self: self._get("forward"), lambda self, v: self._set("forward", v)
    )
    cache_s = property(
        lambda self: self._get("cache"), lambda self, v: self._set("cache", v)
    )

    def histogram(self, name: str) -> Histogram:
        """The backing histogram for one of :data:`PHASE_NAMES`."""
        return self._hists[name]

    def snapshot(self) -> tuple[float, float, float, float]:
        return (self.sample_s, self.merge_s, self.forward_s, self.cache_s)

    def add(self, other: "PhaseStats | tuple") -> None:
        """Fold another record (or a ``snapshot()`` tuple) into this one.

        Folding a full :class:`PhaseStats` (or :meth:`hists_snapshot`
        via :meth:`add_hists`) merges the distributions too; the tuple
        path only advances the totals (one synthetic sample per phase),
        exactly like the scalar implementation it replaced.
        """
        if isinstance(other, PhaseStats):
            for name in PHASE_NAMES:
                self._hists[name].merge(other._hists[name])
            return
        for name, value in zip(PHASE_NAMES, other):
            hist = self._hists[name]
            hist.observe(value, total=hist.sum + value)

    # -- cross-process folding -----------------------------------------
    def hists_snapshot(self) -> dict:
        """Picklable per-phase histogram snapshots (worker -> parent)."""
        return {name: self._hists[name].snapshot() for name in PHASE_NAMES}

    def add_hists(self, snaps: dict) -> None:
        """Fold a worker's :meth:`hists_snapshot` in, buckets included."""
        for name in PHASE_NAMES:
            self._hists[name].merge(snaps[name])


@dataclass
class RankStats:
    """Per-rank busy-time and steal accounting for pool inference.

    One instance rides on the inference engine;
    :meth:`repro.exec.pool.WorkerPool.run_infer` folds each micro-batch's
    per-rank wall-clock busy seconds and steal counts into it (inline
    mode books everything on rank 0).  ``imbalance`` — max over mean
    busy time — is the load-balance figure of merit: 1.0 is a perfectly
    level batch schedule, ``n`` is one rank doing all the work.  Kept
    separate from :class:`PhaseStats` (which sums phase CPU time across
    ranks) because balance needs the *per-rank* wall split, not the
    aggregate.
    """

    busy_s: list[float] = field(default_factory=list)
    steals: list[int] = field(default_factory=list)
    batches: int = 0

    @classmethod
    def for_ranks(cls, n: int) -> "RankStats":
        n = max(1, int(n))
        return cls(busy_s=[0.0] * n, steals=[0] * n)

    def _widen(self, n: int) -> None:
        # a pool resize mid-run can widen the rank set; keep old totals
        self.busy_s.extend([0.0] * (n - len(self.busy_s)))
        self.steals.extend([0] * (n - len(self.steals)))

    def add_batch(self, busy_s, steals) -> None:
        """Fold one micro-batch's per-rank counters into the totals."""
        self._widen(max(len(busy_s), len(steals)))
        for rank, b in enumerate(busy_s):
            self.busy_s[rank] += float(b)
        for rank, s in enumerate(steals):
            self.steals[rank] += int(s)
        self.batches += 1

    @property
    def steal_count(self) -> int:
        return int(sum(self.steals))

    @property
    def imbalance(self) -> float:
        """Max-over-mean busy time across ranks (1.0 = perfectly level)."""
        if not self.busy_s:
            return 1.0
        mean = sum(self.busy_s) / len(self.busy_s)
        return max(self.busy_s) / mean if mean > 0 else 1.0

    def snapshot(self) -> tuple:
        return (tuple(self.busy_s), tuple(self.steals), self.batches)

    @staticmethod
    def delta(before: tuple, after: tuple) -> "RankStats":
        """The counters accumulated between two :meth:`snapshot` calls."""
        busy_b, steals_b, batches_b = before
        busy_a, steals_a, batches_a = after
        width = max(len(busy_a), len(busy_b))
        busy = [
            (busy_a[i] if i < len(busy_a) else 0.0)
            - (busy_b[i] if i < len(busy_b) else 0.0)
            for i in range(width)
        ]
        steals = [
            (steals_a[i] if i < len(steals_a) else 0)
            - (steals_b[i] if i < len(steals_b) else 0)
            for i in range(width)
        ]
        return RankStats(busy_s=busy, steals=steals, batches=batches_a - batches_b)
