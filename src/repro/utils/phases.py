"""Per-phase service-time accounting for the serving hot path.

One :class:`PhaseStats` instance rides through a serving forward and
accumulates where the wall time went: drawing frontiers (``sample_s``),
assembling the merged block-diagonal structure (``merge_s``), the model
forward itself (``forward_s``) and prediction-cache bookkeeping
(``cache_s``).  The inference engine owns one, the pool workers report
their own per-plan deltas back through the result queue, and
:func:`repro.serve.workload.run_serving_workload` snapshots the counters
around each run so :class:`~repro.serve.workload.ServingReport` can
break service time down per phase.

The module lives under ``utils`` because both :mod:`repro.sampling`
(which instruments ``sample_merged``) and :mod:`repro.serve` (which
instruments forwards and the cache) need it without importing each
other.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PhaseStats"]


@dataclass
class PhaseStats:
    """Cumulative seconds spent per serving phase.

    In pool mode the sample/merge/forward counters are summed across
    rank workers that run concurrently, so they measure aggregate CPU
    time, not wall time — per-phase *shares* remain meaningful either
    way.
    """

    sample_s: float = 0.0
    merge_s: float = 0.0
    forward_s: float = 0.0
    cache_s: float = 0.0

    def snapshot(self) -> tuple[float, float, float, float]:
        return (self.sample_s, self.merge_s, self.forward_s, self.cache_s)

    def add(self, other: "PhaseStats | tuple") -> None:
        """Fold another record (or a ``snapshot()`` tuple) into this one."""
        if isinstance(other, PhaseStats):
            other = other.snapshot()
        self.sample_s += other[0]
        self.merge_s += other[1]
        self.forward_s += other[2]
        self.cache_s += other[3]
