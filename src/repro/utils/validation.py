"""Lightweight argument validation with consistent error messages."""

from __future__ import annotations

from typing import Any, Collection

__all__ = [
    "check_positive_int",
    "check_nonneg_int",
    "check_probability",
    "check_in",
]


def check_positive_int(value: Any, name: str) -> int:
    """Return ``value`` as int, raising ``ValueError`` unless it is >= 1."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        try:
            ivalue = int(value)
        except (TypeError, ValueError):
            raise TypeError(f"{name} must be an integer, got {value!r}") from None
        if ivalue != value:
            raise TypeError(f"{name} must be an integer, got {value!r}")
        value = ivalue
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_nonneg_int(value: Any, name: str) -> int:
    """Return ``value`` as int, raising ``ValueError`` unless it is >= 0."""
    if isinstance(value, bool) or (not isinstance(value, int) and int(value) != value):
        raise TypeError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(value: Any, name: str) -> float:
    """Return ``value`` as float in [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in(value: Any, options: Collection, name: str):
    """Raise ``ValueError`` unless ``value`` is one of ``options``."""
    if value not in options:
        raise ValueError(f"{name} must be one of {sorted(map(str, options))}, got {value!r}")
    return value
