"""Platform specifications (paper Table II) and bandwidth parameters.

The two presets correspond to the paper's testbeds:

================  ==============  ====================
field             Ice Lake 8380H  Sapphire Rapids 6430L
================  ==============  ====================
sockets           4               2
total CPUs        112             64
frequency         2.90 GHz        2.10 GHz
LLC               154 MB          120 MB
memory            384 GB          1 TB
peak bandwidth    275 GB/s        563 GB/s
================  ==============  ====================

Beyond Table II we add the micro-architectural constants the cost model
needs: per-core achievable DRAM bandwidth, effective dense-kernel GFLOP/s
per core, and the UPI inter-socket penalty the paper's Section IX
profiling highlights (more than half of accesses remote on Ice Lake).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PlatformSpec", "ICE_LAKE_8380H", "SAPPHIRE_RAPIDS_6430L", "PLATFORMS"]


@dataclass(frozen=True)
class PlatformSpec:
    """Static description of a multi-core machine."""

    name: str
    sockets: int
    cores_per_socket: int
    freq_ghz: float
    llc_mb: float
    memory_gb: float
    peak_bw_gbs: float  # aggregate DRAM bandwidth, all sockets
    #: single-core achievable DRAM stream bandwidth (GB/s); caps how much of
    #: the socket bandwidth a small core set can actually draw
    core_bw_gbs: float = 7.0
    #: effective dense-kernel throughput per core (GFLOP/s) for fp32 GEMMs of
    #: GNN size (far below peak FMA throughput — small irregular matrices)
    core_gflops: float = 30.0
    #: fraction of nominal bandwidth retained when the access is remote
    #: (served over UPI); Sec. IX: UPI throughput well below DDR
    upi_efficiency: float = 0.45

    def __post_init__(self):
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ValueError(f"invalid topology {self.sockets}x{self.cores_per_socket}")
        for field_name in ("freq_ghz", "llc_mb", "memory_gb", "peak_bw_gbs", "core_bw_gbs", "core_gflops"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be > 0")
        if not 0 < self.upi_efficiency <= 1:
            raise ValueError("upi_efficiency must be in (0, 1]")

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def socket_bw_gbs(self) -> float:
        """Local DRAM bandwidth of a single socket."""
        return self.peak_bw_gbs / self.sockets

    def effective_bandwidth(self, cores_used: int, remote_fraction: float) -> float:
        """Aggregate achievable bandwidth for a workload on ``cores_used``
        cores of which a ``remote_fraction`` of traffic crosses UPI.

        Bandwidth is the minimum of (a) what the cores can draw
        (``cores * core_bw``) and (b) what the memory system can serve
        given the remote-traffic mix.
        """
        if not 0 <= remote_fraction <= 1:
            raise ValueError(f"remote_fraction must be in [0,1], got {remote_fraction}")
        cores_used = max(0, min(cores_used, self.total_cores))
        draw = cores_used * self.core_bw_gbs
        sockets_spanned = min(self.sockets, max(1, -(-cores_used // self.cores_per_socket)))
        local_supply = sockets_spanned * self.socket_bw_gbs
        mix_efficiency = (1.0 - remote_fraction) + remote_fraction * self.upi_efficiency
        return min(draw, local_supply * mix_efficiency)


ICE_LAKE_8380H = PlatformSpec(
    name="Ice Lake 8380H",
    sockets=4,
    cores_per_socket=28,
    freq_ghz=2.90,
    llc_mb=154.0,
    memory_gb=384.0,
    peak_bw_gbs=275.0,
    core_bw_gbs=10.0,
    core_gflops=32.0,
    upi_efficiency=0.40,
)

SAPPHIRE_RAPIDS_6430L = PlatformSpec(
    name="Sapphire Rapids 6430L",
    sockets=2,
    cores_per_socket=32,
    freq_ghz=2.10,
    llc_mb=120.0,
    memory_gb=1024.0,
    peak_bw_gbs=563.0,
    core_bw_gbs=12.0,
    core_gflops=36.0,
    upi_efficiency=0.50,
)

PLATFORMS = {
    "icelake": ICE_LAKE_8380H,
    "sapphire": SAPPHIRE_RAPIDS_6430L,
}
