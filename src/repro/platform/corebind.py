"""Core binding: assign core ids to each GNN training process.

ARGO's Core-Binder (paper Sec. IV-B3) binds each process's sampling cores
and training cores via DGL's affinity API or ``taskset``.  The binding is
an explicit data structure consumed by the cost model, and — through
:func:`apply_binding` — an *actual* ``os.sched_setaffinity`` call issued
by the ``process`` execution backend's workers.  The packing policy is
socket-compact: processes are laid out left-to-right over the
socket-major core numbering, so few-process configurations stay
NUMA-local and many-core configurations progressively span sockets —
reproducing the remote-access (UPI) behaviour the paper profiles.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable

from repro.platform.spec import PlatformSpec
from repro.platform.topology import CoreSet
from repro.utils.validation import check_positive_int

__all__ = [
    "ProcessBinding",
    "CoreBinder",
    "apply_binding",
    "current_affinity",
    "sampling_affinity",
    "training_affinity",
]


@dataclass(frozen=True)
class ProcessBinding:
    """Core assignment for a single GNN training process."""

    rank: int
    sampling_cores: CoreSet
    training_cores: CoreSet

    @property
    def all_cores(self) -> CoreSet:
        return CoreSet(
            self.sampling_cores.cores + self.training_cores.cores,
            self.sampling_cores.platform,
        )

    def taskset_command(self) -> str:
        """The equivalent ``taskset`` invocation (what ARGO runs for PyG)."""
        ids = ",".join(str(c) for c in self.all_cores.cores)
        return f"taskset -c {ids}"


def current_affinity() -> tuple[int, ...] | None:
    """Core ids the calling process may run on; ``None`` if unsupported."""
    if not hasattr(os, "sched_getaffinity"):  # pragma: no cover - non-Linux
        return None
    return tuple(sorted(os.sched_getaffinity(0)))


def sampling_affinity(
    binding: "ProcessBinding | Iterable[int] | None",
) -> tuple[int, ...] | None:
    """The sampler-worker core set of a binding.

    ``ProcessBinding`` → its sampling cores; a bare core iterable is
    passed through unchanged (no sampler/trainer split to honour);
    ``None`` → ``None``.  Consumed by the prefetch pipeline to pin
    sampler workers with :func:`apply_binding` — on Linux,
    ``sched_setaffinity`` acts on the *calling thread*, so sampler
    threads can pin themselves to the sampler cores while the trainer
    thread keeps (or re-binds to) the training cores.
    """
    if binding is None:
        return None
    if isinstance(binding, ProcessBinding):
        return binding.sampling_cores.cores
    return tuple(binding)


def training_affinity(
    binding: "ProcessBinding | Iterable[int] | None",
) -> tuple[int, ...] | None:
    """The trainer core set of a binding (counterpart of :func:`sampling_affinity`)."""
    if binding is None:
        return None
    if isinstance(binding, ProcessBinding):
        return binding.training_cores.cores
    return tuple(binding)


def apply_binding(binding: "ProcessBinding | Iterable[int] | None") -> tuple[int, ...] | None:
    """Pin the calling process to a binding's cores (best effort).

    The paper's bindings target 112/64-core testbeds; on a smaller host
    the requested ids are intersected with the cores actually available
    to this process.  Returns the core set applied, or ``None`` when the
    binding was empty after intersection or the platform offers no
    ``sched_setaffinity`` (macOS/Windows) — in both cases training simply
    proceeds unpinned, as core binding changes speed, never semantics.
    """
    if binding is None or not hasattr(os, "sched_setaffinity"):
        return None
    cores = binding.all_cores.cores if isinstance(binding, ProcessBinding) else tuple(binding)
    allowed = os.sched_getaffinity(0)
    applicable = tuple(sorted(set(cores) & allowed))
    if not applicable:
        return None
    os.sched_setaffinity(0, applicable)
    return applicable


class CoreBinder:
    """Deterministic packing of process core allocations onto a platform.

    Two policies:

    ``compact`` (default, what ARGO does)
        Processes fill cores left to right over the socket-major
        numbering, so small configurations stay NUMA-local.
    ``spread``
        Processes are distributed round-robin over sockets *and* each
        process's cores are striped across sockets — the pathological
        placement an unbound scheduler can produce.  Used by the NUMA
        ablation (paper Sec. IX motivates UPI-aware placement as future
        work) to quantify what core binding is worth.
    """

    POLICIES = ("compact", "spread")

    def __init__(self, platform: PlatformSpec, *, policy: str = "compact"):
        if policy not in self.POLICIES:
            raise ValueError(f"policy must be one of {self.POLICIES}, got {policy!r}")
        self.platform = platform
        self.policy = policy

    def _core_order(self) -> list[int]:
        """Core visitation order for the active policy."""
        total = self.platform.total_cores
        if self.policy == "compact":
            return list(range(total))
        # spread: stripe across sockets (socket 0 core 0, socket 1 core 0, ...)
        cps = self.platform.cores_per_socket
        return [
            sock * cps + local
            for local in range(cps)
            for sock in range(self.platform.sockets)
        ]

    def bind(
        self, num_processes: int, sampling_cores: int, training_cores: int
    ) -> list[ProcessBinding]:
        """Bind ``num_processes`` processes, each with the given core split.

        Raises ``ValueError`` if the configuration oversubscribes the
        machine (``n * (s + t) > total_cores``).
        """
        n = check_positive_int(num_processes, "num_processes")
        s = check_positive_int(sampling_cores, "sampling_cores")
        t = check_positive_int(training_cores, "training_cores")
        per_proc = s + t
        if n * per_proc > self.platform.total_cores:
            raise ValueError(
                f"configuration ({n} procs x {per_proc} cores) oversubscribes "
                f"{self.platform.name} ({self.platform.total_cores} cores)"
            )
        order = self._core_order()
        bindings = []
        cursor = 0
        for rank in range(n):
            chunk = order[cursor : cursor + per_proc]
            cursor += per_proc
            bindings.append(
                ProcessBinding(
                    rank=rank,
                    sampling_cores=CoreSet(tuple(chunk[:s]), self.platform),
                    training_cores=CoreSet(tuple(chunk[s:]), self.platform),
                )
            )
        return bindings
