"""Core/socket topology helpers.

Cores are numbered socket-major: core ``c`` lives on socket
``c // cores_per_socket`` — matching the Linux enumeration on the paper's
machines (no hyper-threading; Table II counts physical cores).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.platform.spec import PlatformSpec

__all__ = ["socket_of_core", "CoreSet"]


def socket_of_core(core: int, platform: PlatformSpec) -> int:
    """Socket id owning ``core``."""
    if not 0 <= core < platform.total_cores:
        raise ValueError(f"core {core} out of range for {platform.name}")
    return core // platform.cores_per_socket


@dataclass(frozen=True)
class CoreSet:
    """An ordered, duplicate-free set of core ids on a platform."""

    cores: tuple[int, ...]
    platform: PlatformSpec

    def __post_init__(self):
        if len(set(self.cores)) != len(self.cores):
            raise ValueError("duplicate core ids in CoreSet")
        for c in self.cores:
            if not 0 <= c < self.platform.total_cores:
                raise ValueError(f"core {c} out of range for {self.platform.name}")

    def __len__(self) -> int:
        return len(self.cores)

    @property
    def sockets_spanned(self) -> list[int]:
        """Sorted list of distinct sockets these cores touch."""
        return sorted({socket_of_core(c, self.platform) for c in self.cores})

    @property
    def is_numa_local(self) -> bool:
        return len(self.sockets_spanned) <= 1

    def remote_fraction(self, home_socket: int | None = None) -> float:
        """Fraction of cores living off the home socket.

        The home socket defaults to the socket holding the most cores of
        this set (where the process's memory pages will mostly live).
        Used by the cost model as a proxy for the fraction of DRAM traffic
        crossing UPI.
        """
        if not self.cores:
            return 0.0
        socks = np.array([socket_of_core(c, self.platform) for c in self.cores])
        if home_socket is None:
            vals, counts = np.unique(socks, return_counts=True)
            home_socket = int(vals[counts.argmax()])
        return float(np.mean(socks != home_socket))
