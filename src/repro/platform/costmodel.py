"""Roofline/contention cost model: (workload, config) -> epoch time.

This module is the substitution for running on the paper's physical
machines.  It models the mechanisms the paper identifies, each of which
maps to a term below:

1. **Workload inflation** (Fig. 5/6): per-process batch ``B/n`` yields
   *measured* per-iteration edges from the real sampler via
   :class:`repro.workload.model.WorkloadModel`; total epoch work grows
   with ``n``.
2. **Sampler parallelism limits** (Sec. V-A2): sampling wall time follows
   Amdahl's law in the sampling cores with a per-(library, sampler)
   parallel fraction — ShaDow is poorly parallelised, so extra sampling
   cores saturate quickly, and multi-processing is the only way to scale
   it (the paper's headline 5.06x case).
3. **Intra-process parallelism limits**: model propagation follows
   Amdahl's law in the training cores — the fundamental reason a single
   process cannot use 112 cores (Fig. 1).
4. **Memory-bandwidth contention + NUMA** (Sec. IX): a process's DRAM
   draw is capped by its core count and its home socket's bandwidth, with
   remote (UPI) traffic served at reduced efficiency; concurrent
   processes share the machine capacity, de-rated by their memory duty
   cycle.  Multi-processing with per-socket bindings is what unlocks the
   full multi-socket bandwidth.
5. **Pipeline overlap**: sampling overlaps model propagation inside each
   process (both libraries prefetch); the iteration critical path is
   ``max`` of the two plus a small non-overlapped remainder.
6. **Synchronisation** (Sec. V-A1): ring all-reduce cost per iteration
   plus per-epoch process management that grows with ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.platform.corebind import CoreBinder, ProcessBinding
from repro.platform.library import LibraryProfile
from repro.platform.spec import PlatformSpec
from repro.workload.model import WorkloadModel

__all__ = ["CostModel", "EpochBreakdown", "amdahl_speedup"]


def amdahl_speedup(cores: int, parallel_fraction: float) -> float:
    """Amdahl's-law speedup of ``cores`` over one core."""
    if cores < 1:
        raise ValueError(f"cores must be >= 1, got {cores}")
    if not 0 <= parallel_fraction < 1:
        raise ValueError(f"parallel_fraction must be in [0, 1), got {parallel_fraction}")
    return 1.0 / ((1.0 - parallel_fraction) + parallel_fraction / cores)


@dataclass(frozen=True)
class EpochBreakdown:
    """Epoch time decomposition returned by :meth:`CostModel.epoch_time`."""

    total: float
    iters: int
    t_sample: float  # per-iteration sampling wall time
    t_compute: float  # per-iteration training compute wall time
    t_memory: float  # per-iteration training memory-stall wall time
    t_train: float  # compute + memory (per iteration)
    t_sync: float  # per-iteration gradient synchronisation
    t_fixed: float  # per-epoch launch/partition overhead
    bandwidth_used_gbs: float  # aggregate DRAM bandwidth drawn during training
    epoch_edges: float  # total sampled edges in the epoch (Fig. 6 workload)


class CostModel:
    """Deterministic epoch-time model for one experiment setup.

    Parameters
    ----------
    platform, library:
        Hardware spec and library execution profile.
    workload:
        Measured workload curves for the (dataset, sampler) pair.
    sampler_name:
        ``"neighbor"`` or ``"shadow"`` (selects library constants).
    model_name:
        ``"sage"`` or ``"gcn"`` (GEMM width accounting).
    dims:
        Layer dimensions ``[f0, ..., f_out]`` (paper Table III).
    train_nodes:
        Paper-scale training-set size (iterations per epoch = ceil(T/B)).
    global_batch:
        The semantic batch size ``B`` preserved across configurations.
    """

    #: per-iteration all-reduce latency (seconds) per log2(n) hop
    SYNC_LATENCY = 3.5e-4
    #: bandwidth for gradient all-reduce (GB/s) — shared-memory copies
    SYNC_BW_GBS = 8.0
    #: per-epoch fixed cost: engine bookkeeping + per-process launch
    EPOCH_FIXED = 0.05
    PROC_LAUNCH = 0.06

    def __init__(
        self,
        platform: PlatformSpec,
        library: LibraryProfile,
        workload: WorkloadModel,
        *,
        sampler_name: str,
        model_name: str,
        dims: list[int],
        train_nodes: int,
        global_batch: int = 1024,
        binder_policy: str = "compact",
    ):
        if train_nodes < 1:
            raise ValueError("train_nodes must be >= 1")
        if global_batch < 1:
            raise ValueError("global_batch must be >= 1")
        self.platform = platform
        self.library = library
        self.workload = workload
        self.sampler_name = sampler_name.lower()
        self.model_name = model_name.lower()
        self.dims = list(dims)
        self.train_nodes = int(train_nodes)
        self.global_batch = int(global_batch)
        self.binder = CoreBinder(platform, policy=binder_policy)
        # model parameter bytes for the all-reduce term
        widths = self.dims
        mult = 2 if self.model_name in ("sage", "graphsage") else 1
        n_params = sum(mult * widths[i] * widths[i + 1] + widths[i + 1] for i in range(len(widths) - 1))
        self.model_bytes = 4.0 * n_params
        # epoch_time is deterministic per config and gets re-queried
        # constantly by searchers and sweeps — memoise it.
        self._cache: dict[tuple[int, int, int], EpochBreakdown] = {}

    # ------------------------------------------------------------------
    def iters_per_epoch(self) -> int:
        return max(1, int(np.ceil(self.train_nodes / self.global_batch)))

    @staticmethod
    def _home_socket(binding: ProcessBinding) -> int:
        """Socket where the process's pages live (first-touch plurality)."""
        socks = [
            c // binding.all_cores.platform.cores_per_socket
            for c in binding.all_cores.cores
        ]
        vals, counts = np.unique(socks, return_counts=True)
        return int(vals[counts.argmax()])

    def _capacity(self, bindings: list[ProcessBinding]) -> float:
        """Aggregate achievable DRAM bandwidth (GB/s) for this binding set.

        First-touch allocation puts each process's pages on its *home*
        socket, so only the union of home sockets supplies bandwidth — a
        single process, however many cores it sprawls over, is fed by one
        socket's DRAM.  The shared graph/features interleave across those
        home sockets, so with ``S`` of them a fraction ``1 - 1/S`` of
        accesses is remote and served at UPI efficiency — the Sec. IX
        profiling result ("more than half of the data is accessed from the
        remote socket").  Capacity therefore grows *sublinearly* in the
        sockets multi-processing brings online, which is both why ARGO's
        bandwidth utilisation rises with the process count (Fig. 6) and
        why its scaling flattens past 64 cores on Ice Lake (Fig. 8).
        """
        p = self.platform
        homes = {self._home_socket(b) for b in bindings}
        n_sock = max(1, len(homes))
        rf = 1.0 - 1.0 / n_sock
        mix = (1.0 - rf) + rf * p.upi_efficiency
        return n_sock * p.socket_bw_gbs * mix

    # ------------------------------------------------------------------
    def epoch_time(self, num_processes: int, sampling_cores: int, training_cores: int) -> EpochBreakdown:
        """Deterministic epoch time for configuration ``(n, s, t)`` (memoised)."""
        n, s, t = int(num_processes), int(sampling_cores), int(training_cores)
        cached = self._cache.get((n, s, t))
        if cached is not None:
            return cached
        bd = self._epoch_time_uncached(n, s, t)
        self._cache[(n, s, t)] = bd
        return bd

    def _epoch_time_uncached(self, n: int, s: int, t: int) -> EpochBreakdown:
        bindings = self.binder.bind(n, s, t)  # validates the config
        lib, p = self.library, self.platform

        iters = self.iters_per_epoch()
        b = self.global_batch / n  # per-process batch (semantics-preserving)

        # -------- workload at this batch size (measured curves) --------
        sampling_edges = self.workload.sampling_edges_per_iter(b)
        flops = self.workload.flops_per_iter(b, self.dims, self.model_name)
        bytes_ = self.workload.bytes_per_iter(b, self.dims)

        # -------- sampling stage --------
        p_samp = lib.sampler_parallelism(self.sampler_name)
        t_sample = (
            sampling_edges * lib.sampler_cost(self.sampler_name) / amdahl_speedup(s, p_samp)
        )

        # -------- training stage: compute term --------
        core_rate = lib.kernel_efficiency * p.core_gflops * 1e9
        t_compute = flops / (core_rate * amdahl_speedup(t, lib.train_parallel_fraction))

        # -------- training stage: memory term with contention --------
        # A process's solo draw is capped by how much traffic its training
        # cores can generate and by the machine's achievable capacity.
        # Cores sitting off the process's home socket reach its hot pages
        # over UPI, cutting both their draw and (mildly) their compute
        # efficiency — this is what makes the spread binding policy lose
        # (paper Sec. IX: remote accesses limit bandwidth utilisation).
        rf_proc = bindings[0].all_cores.remote_fraction()
        mix_proc = (1.0 - rf_proc) + rf_proc * p.upi_efficiency
        capacity = self._capacity(bindings)
        bw_solo = min(t * p.core_bw_gbs * mix_proc, capacity)
        t_compute = t_compute / (0.7 + 0.3 * mix_proc)
        # Duty-cycle contention: a process occupies the memory system only
        # during its memory phases, so expected concurrent demand is
        # n * bw_solo * duty.  Two fixed-point passes stabilise duty.
        t_memory = bytes_ / (bw_solo * 1e9)
        for _ in range(2):
            duty = t_memory / max(t_memory + t_compute, 1e-12)
            demand = n * bw_solo * duty
            contention = min(1.0, capacity / max(demand, 1e-9))
            t_memory = bytes_ / (bw_solo * contention * 1e9)
        bw_eff = bw_solo * contention

        # the library alternates memory and compute phases within a
        # process (paper Fig. 2A), so they serialise per process
        t_train = t_compute + t_memory

        # -------- per-iteration framework overhead --------
        t_overhead = lib.iteration_overhead(self.sampler_name)

        # -------- sampling/training pipeline overlap --------
        overlap = lib.pipeline_overlap
        t_iter = (
            max(t_sample, t_train)
            + (1.0 - overlap) * min(t_sample, t_train)
            + t_overhead
        )

        # -------- synchronisation --------
        if n > 1:
            ring = 2.0 * (n - 1) / n * self.model_bytes / (self.SYNC_BW_GBS * 1e9)
            t_sync = self.SYNC_LATENCY * np.log2(n) + ring
        else:
            t_sync = 0.0

        t_fixed = self.EPOCH_FIXED + self.PROC_LAUNCH * n
        total = iters * (t_iter + t_sync) + t_fixed

        bandwidth_used = min(demand, capacity)
        epoch_edges = self.workload.epoch_edges(n, self.global_batch, self.train_nodes)
        return EpochBreakdown(
            total=float(total),
            iters=iters,
            t_sample=float(t_sample),
            t_compute=float(t_compute),
            t_memory=float(t_memory),
            t_train=float(t_train),
            t_sync=float(t_sync),
            t_fixed=float(t_fixed),
            bandwidth_used_gbs=float(bandwidth_used),
            epoch_edges=float(epoch_edges),
        )
