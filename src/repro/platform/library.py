"""Execution profiles of the baseline GNN libraries (DGL-like, PyG-like).

The paper's measurements differ strongly between DGL v1.1 and PyG v2.0.3:
DGL's fused SpMM kernels make its model propagation ~5-14x faster on CPU,
while PyG's Python-level neighbour sampler is much slower per edge; the
ShaDow sampler is poorly parallelised in *both* libraries (paper
Sec. VI-E: "the implementation of ShaDow Sampler is sub-optimal with a
limited degree of parallelism"), which is why ARGO's multi-processing
helps ShaDow most (up to 5.06x).

A :class:`LibraryProfile` captures these constants per (library, sampler):

* ``sample_cost_per_edge`` — single-core seconds to sample one edge;
* ``sampler_parallel_fraction`` — Amdahl parallel fraction of the
  sampling stage *within one process*;
* ``kernel_efficiency`` — multiplier on achievable dense throughput;
* ``train_parallel_fraction`` — Amdahl fraction of model propagation;
* ``pipeline_overlap`` — how well the library overlaps sampling with
  training inside one process (both libraries prefetch batches);
* ``default_config`` — the library's official CPU-guideline setup used as
  the "Default" baseline of Tables IV/V (single process; a fixed small
  number of dataloader workers; remaining cores for training).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.platform.spec import PlatformSpec

__all__ = ["LibraryProfile", "DGL", "PYG", "LIBRARIES"]


@dataclass(frozen=True)
class LibraryProfile:
    name: str
    #: seconds per sampled edge on one core, per sampler
    sample_cost_per_edge: Dict[str, float]
    #: Amdahl parallel fraction of sampling, per sampler
    sampler_parallel_fraction: Dict[str, float]
    #: fraction of platform core_gflops the library's kernels achieve
    kernel_efficiency: float
    #: Amdahl parallel fraction of model propagation — deliberately modest:
    #: sparse GNN kernels have limited intra-op parallelism (paper Sec. V-A2)
    train_parallel_fraction: float
    #: sampling/training pipeline overlap efficiency inside one process
    pipeline_overlap: float
    #: default number of dataloader (sampling) workers in the CPU guides
    default_workers: int
    #: fixed per-iteration framework overhead (seconds), per sampler —
    #: Python dispatch, batch collation, dataloader wakeups.  Independent of
    #: batch size and core count, so neither more cores nor more processes
    #: reduce it (each rank still runs train/B iterations).  Dominant for
    #: PyG's neighbour path (paper Table V: ARGO barely improves it).
    periter_overhead: Dict[str, float] | None = None

    def __post_init__(self):
        for d in (self.sample_cost_per_edge, self.sampler_parallel_fraction):
            if not d:
                raise ValueError("per-sampler dicts must not be empty")
        for v in self.sampler_parallel_fraction.values():
            if not 0 <= v < 1:
                raise ValueError("parallel fractions must be in [0, 1)")
        if not 0 < self.kernel_efficiency <= 1:
            raise ValueError("kernel_efficiency must be in (0, 1]")
        if not 0 <= self.train_parallel_fraction < 1:
            raise ValueError("train_parallel_fraction must be in [0, 1)")
        if not 0 <= self.pipeline_overlap <= 1:
            raise ValueError("pipeline_overlap must be in [0, 1]")

    def sampler_cost(self, sampler: str) -> float:
        key = sampler.lower()
        if key not in self.sample_cost_per_edge:
            raise KeyError(f"{self.name} has no cost profile for sampler {sampler!r}")
        return self.sample_cost_per_edge[key]

    def sampler_parallelism(self, sampler: str) -> float:
        key = sampler.lower()
        if key not in self.sampler_parallel_fraction:
            raise KeyError(f"{self.name} has no parallelism profile for sampler {sampler!r}")
        return self.sampler_parallel_fraction[key]

    def iteration_overhead(self, sampler: str) -> float:
        if not self.periter_overhead:
            return 0.0
        return self.periter_overhead.get(sampler.lower(), 0.0)

    def default_config(self, platform: PlatformSpec, cores: int | None = None) -> tuple[int, int, int]:
        """The official-guideline baseline: ``(1, workers, cores - workers)``.

        ``cores`` defaults to the whole machine (the guides say "use all
        cores"); the Default baseline never multi-processes — that is
        precisely the gap ARGO exploits.
        """
        total = platform.total_cores if cores is None else int(cores)
        if total < 2:
            raise ValueError("default config needs at least 2 cores")
        workers = min(self.default_workers, total - 1)
        return (1, workers, total - workers)


# Sampling-cost constants are calibrated so that simulated epoch times land
# in the range of paper Tables IV/V (see benchmarks/bench_table4_dgl.py);
# ratios between libraries/samplers follow the paper's qualitative findings.
DGL = LibraryProfile(
    name="DGL",
    sample_cost_per_edge={"neighbor": 2.0e-6, "shadow": 2.4e-7},
    sampler_parallel_fraction={"neighbor": 0.93, "shadow": 0.40},
    kernel_efficiency=0.45,
    train_parallel_fraction=0.75,
    pipeline_overlap=0.90,
    default_workers=4,
    periter_overhead={"neighbor": 3.5e-2, "shadow": 3.5e-2},
)

PYG = LibraryProfile(
    name="PyG",
    sample_cost_per_edge={"neighbor": 2.0e-6, "shadow": 2.15e-6},
    sampler_parallel_fraction={"neighbor": 0.80, "shadow": 0.30},
    kernel_efficiency=0.13,
    train_parallel_fraction=0.75,
    pipeline_overlap=0.85,
    default_workers=2,
    periter_overhead={"neighbor": 0.75, "shadow": 0.10},
)

LIBRARIES = {"dgl": DGL, "pyg": PYG}
