"""Op-level profiling of real training steps (Fig. 2's evidence base).

The paper motivates multi-processing with a scheduler trace showing the
memory-intensive ``aten::index_select`` interleaved with compute-intensive
GEMMs.  This module instruments a real training step of this library and
reports where the time goes, so the claim can be checked on actual
execution rather than only on the simulator:

* ``gather``   — feature/row gathers and their backward scatter-adds
  (the irregular, bandwidth-bound phase);
* ``dense``    — GEMMs of the feature-update layers (compute-bound);
* ``sampling`` — mini-batch construction;
* ``other``    — losses, optimizer, bookkeeping.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.autograd import ops as ops_mod
from repro.autograd.functional import cross_entropy
from repro.autograd.ops import gather_rows, matmul, scatter_add_rows
from repro.autograd.tensor import Tensor
from repro.graph.datasets import GNNDataset
from repro.sampling.base import Sampler
from repro.utils.rng import derive_rng

__all__ = ["StepProfile", "profile_training_step"]


@dataclass
class StepProfile:
    """Aggregated wall time per op category for profiled steps."""

    seconds: dict = field(default_factory=lambda: {"gather": 0.0, "dense": 0.0, "sampling": 0.0, "other": 0.0})
    steps: int = 0

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def fraction(self, category: str) -> float:
        return self.seconds[category] / self.total if self.total else 0.0

    def summary(self) -> str:
        parts = ", ".join(
            f"{k}={v * 1e3:.1f}ms ({self.fraction(k):.0%})" for k, v in self.seconds.items()
        )
        return f"StepProfile[{self.steps} steps]: {parts}"


@contextmanager
def _patched(profile: StepProfile):
    """Temporarily wrap the hot ops with timers (single-threaded use).

    Ops are patched at every module that imported them by name (the model
    and aggregation modules bind ``gather_rows`` etc. at import time), so
    all dispatch paths are covered.
    """
    import repro.autograd.module as module_mod
    import repro.gnn.aggregate as agg_mod
    import repro.gnn.gat as gat_mod
    import repro.gnn.sage as sage_mod

    categories = {"gather_rows": "gather", "scatter_add_rows": "gather", "matmul": "dense"}
    # (module, attribute, ops-function it aliases): every import-time
    # binding of a hot op must be patched — Linear binds matmul as
    # ``ops_matmul`` and GAT imports it by name for the attention scores
    sites = [
        (ops_mod, "gather_rows", "gather_rows"),
        (ops_mod, "scatter_add_rows", "scatter_add_rows"),
        (ops_mod, "matmul", "matmul"),
        (module_mod, "ops_matmul", "matmul"),
        (agg_mod, "gather_rows", "gather_rows"),
        (agg_mod, "scatter_add_rows", "scatter_add_rows"),
        (sage_mod, "gather_rows", "gather_rows"),
        (gat_mod, "gather_rows", "gather_rows"),
        (gat_mod, "scatter_add_rows", "scatter_add_rows"),
        (gat_mod, "matmul", "matmul"),
    ]
    originals = [(mod, attr, getattr(mod, attr)) for mod, attr, _ in sites]
    base_fns = {name: getattr(ops_mod, name) for name in categories}

    def timed(name: str):
        orig, category = base_fns[name], categories[name]

        def wrapper(*args, **kwargs):
            t0 = time.perf_counter()
            out = orig(*args, **kwargs)
            profile.seconds[category] += time.perf_counter() - t0
            return out

        return wrapper

    wrappers = {name: timed(name) for name in categories}
    for mod, attr, name in sites:
        setattr(mod, attr, wrappers[name])
    try:
        yield
    finally:
        for mod, attr, orig in originals:
            setattr(mod, attr, orig)


def profile_training_step(
    dataset: GNNDataset,
    sampler: Sampler,
    model,
    *,
    batch_size: int = 256,
    steps: int = 3,
    seed: int = 0,
) -> StepProfile:
    """Profile ``steps`` real forward+backward steps of ``model``.

    Note: the timing wrappers only catch ops dispatched through
    :mod:`repro.autograd.ops` module attributes; model classes that
    imported the functions directly at module load still go through the
    module each call for ``matmul`` (via the ``@`` operator) and for the
    aggregation path (which calls ``ops.gather_rows`` lazily), so
    coverage of the hot path is complete for the built-in models.
    """
    profile = StepProfile()
    feats = Tensor(dataset.features)
    rng = derive_rng(seed, "profile")
    total_wall = 0.0
    with _patched(profile):
        for _ in range(steps):
            t_start = time.perf_counter()
            seeds = rng.choice(
                dataset.num_nodes, size=min(batch_size, dataset.num_nodes), replace=False
            )
            t0 = time.perf_counter()
            batch = sampler.sample(dataset.graph, seeds, rng=rng)
            profile.seconds["sampling"] += time.perf_counter() - t0
            x = ops_mod.gather_rows(feats, batch.input_ids)
            out = model(batch.blocks, x)
            loss = cross_entropy(out, dataset.labels[batch.seeds])
            model.zero_grad()
            loss.backward()
            total_wall += time.perf_counter() - t_start
            profile.steps += 1
    categorised = (
        profile.seconds["gather"] + profile.seconds["dense"] + profile.seconds["sampling"]
    )
    profile.seconds["other"] = max(0.0, total_wall - categorised)
    return profile
