"""Simulated runtime: the noisy objective the auto-tuner optimises.

:class:`SimulatedRuntime` wraps a deterministic :class:`CostModel` with

* seeded measurement noise (epoch times on real machines vary run to run;
  Tables IV/V report means +/- std over five runs),
* convenience queries used by the benchmark harness: full design-space
  grids (Fig. 7/12), baseline-library scalability curves (Fig. 1/8),
  workload/bandwidth-vs-processes curves (Fig. 6) and execution traces
  (Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.platform.costmodel import CostModel, EpochBreakdown
from repro.platform.trace import Trace
from repro.utils.rng import derive_rng

__all__ = ["SimulatedRuntime"]


class SimulatedRuntime:
    """Noisy measurement interface over a :class:`CostModel`.

    Parameters
    ----------
    cost_model:
        The deterministic model.
    noise:
        Relative std-dev of multiplicative measurement noise (1.5% default,
        in line with run-to-run variation on a busy NUMA machine).
    seed:
        Noise stream seed.  Each (config, repetition) pair has its own
        deterministic draw, so repeated experiments are reproducible.
    """

    def __init__(self, cost_model: CostModel, *, noise: float = 0.015, seed: int = 0):
        if noise < 0:
            raise ValueError(f"noise must be >= 0, got {noise}")
        self.cost_model = cost_model
        self.noise = float(noise)
        self.seed = int(seed)
        self._eval_counts: dict[tuple[int, int, int], int] = {}
        self.num_evaluations = 0

    # ------------------------------------------------------------------
    # objective-function interface (what the auto-tuner calls)
    # ------------------------------------------------------------------
    def measure_epoch(self, config: tuple[int, int, int]) -> float:
        """One noisy epoch-time observation for ``(n, s, t)`` seconds."""
        n, s, t = config
        base = self.cost_model.epoch_time(n, s, t).total
        rep = self._eval_counts.get((n, s, t), 0)
        self._eval_counts[(n, s, t)] = rep + 1
        self.num_evaluations += 1
        if self.noise == 0:
            return base
        rng = derive_rng(self.seed, "noise", n, s, t, rep)
        return float(base * (1.0 + self.noise * rng.standard_normal()))

    def true_epoch_time(self, config: tuple[int, int, int]) -> float:
        """Noise-free epoch time (ground truth for evaluating tuners)."""
        n, s, t = config
        return self.cost_model.epoch_time(n, s, t).total

    def breakdown(self, config: tuple[int, int, int]) -> EpochBreakdown:
        n, s, t = config
        return self.cost_model.epoch_time(n, s, t)

    # ------------------------------------------------------------------
    # figure-level queries
    # ------------------------------------------------------------------
    def baseline_epoch_time(self, cores: int) -> float:
        """Library-default single-process epoch time on a core budget.

        This is the paper's "DGL"/"PyG" baseline line in Fig. 1/8: one
        process configured per the library's CPU guide, given ``cores``.
        """
        n, s, t = self.cost_model.library.default_config(self.cost_model.platform, cores)
        return self.cost_model.epoch_time(n, s, t).total

    def argo_best_epoch_time(
        self, cores: int, configs=None
    ) -> tuple[float, tuple[int, int, int]]:
        """Best (noise-free) epoch time over configs fitting in ``cores``.

        ``configs`` is an iterable of ``(n, s, t)``; configurations using
        more than ``cores`` cores are skipped.  When omitted, the natural
        :class:`~repro.tuning.space.ConfigSpace` for the core budget is
        used (the Fig. 8 per-budget sweep).
        """
        if configs is None:
            from repro.tuning.space import ConfigSpace

            configs = ConfigSpace(cores)
        best_t, best_cfg = np.inf, None
        for n, s, t in configs:
            if n * (s + t) > cores:
                continue
            val = self.cost_model.epoch_time(n, s, t).total
            if val < best_t:
                best_t, best_cfg = val, (n, s, t)
        if best_cfg is None:
            raise ValueError(f"no configuration fits within {cores} cores")
        return best_t, best_cfg

    def workload_and_bandwidth_curve(
        self, process_counts, sampling_cores: int, training_cores: int
    ) -> list[dict]:
        """Fig. 6 series: epoch workload (edges) and bandwidth vs ``n``."""
        rows = []
        for n in process_counts:
            bd = self.cost_model.epoch_time(n, sampling_cores, training_cores)
            rows.append(
                {
                    "processes": int(n),
                    "epoch_edges": bd.epoch_edges,
                    "bandwidth_gbs": bd.bandwidth_used_gbs,
                    "epoch_time": bd.total,
                }
            )
        return rows

    def landscape(self, configs) -> dict[tuple[int, int, int], float]:
        """Noise-free epoch time over a config collection (Fig. 7/12 grids)."""
        return {cfg: self.true_epoch_time(cfg) for cfg in configs}

    # ------------------------------------------------------------------
    # Fig. 2 traces
    # ------------------------------------------------------------------
    def make_trace(self, config: tuple[int, int, int], iterations: int = 4) -> Trace:
        """Synthesise a Gantt trace of ``iterations`` training iterations.

        Processes are staggered by ``t_iter / n`` (the natural steady
        state of unsynchronised pipelines), demonstrating memory/compute
        overlap across processes (paper Fig. 2B).
        """
        n, s, t = config
        bd = self.cost_model.epoch_time(n, s, t)
        t_iter = bd.t_train + bd.t_sync
        trace = Trace()
        for rank in range(n):
            clock = rank * t_iter / max(n, 1)
            for _ in range(iterations):
                # sampling runs on its own cores, pipelined with training —
                # drawn in parallel with the training phases of the same slot
                trace.add(rank, "sample", clock, min(bd.t_sample, t_iter))
                end_mem = trace.add(rank, "memory", clock, bd.t_memory)
                end_cmp = trace.add(rank, "compute", end_mem, bd.t_compute)
                if bd.t_sync > 0:
                    clock = trace.add(rank, "sync", end_cmp, bd.t_sync)
                else:
                    clock = end_cmp
        return trace
