"""Multi-core platform model: specs, topology, core binding, cost model.

This subpackage is the substitution for the paper's physical testbeds
(4-socket Ice Lake 8380H, 2-socket Sapphire Rapids 6430L).  It provides:

* :class:`PlatformSpec` — socket/core/bandwidth description with presets
  for both paper machines (paper Table II);
* :class:`CoreBinder` — deterministic core-id allocation for a
  configuration's processes (the ``taskset`` equivalent);
* :class:`repro.platform.library.LibraryProfile` — DGL-like and PyG-like
  execution profiles (kernel efficiency, sampler parallelism, official
  default CPU configs);
* :class:`repro.platform.costmodel.CostModel` — a roofline/contention
  model turning (workload, config) into an epoch time;
* :class:`repro.platform.simulator.SimulatedRuntime` — the noisy objective
  the auto-tuner optimises, plus execution-trace generation (Fig. 2).
"""

from repro.platform.spec import PlatformSpec, ICE_LAKE_8380H, SAPPHIRE_RAPIDS_6430L, PLATFORMS
from repro.platform.topology import CoreSet, socket_of_core
from repro.platform.corebind import CoreBinder, ProcessBinding
from repro.platform.library import LibraryProfile, DGL, PYG, LIBRARIES
from repro.platform.costmodel import CostModel, EpochBreakdown
from repro.platform.simulator import SimulatedRuntime
from repro.platform.trace import TraceEvent, Trace
from repro.platform.profiling import StepProfile, profile_training_step

__all__ = [
    "PlatformSpec",
    "ICE_LAKE_8380H",
    "SAPPHIRE_RAPIDS_6430L",
    "PLATFORMS",
    "CoreSet",
    "socket_of_core",
    "CoreBinder",
    "ProcessBinding",
    "LibraryProfile",
    "DGL",
    "PYG",
    "LIBRARIES",
    "CostModel",
    "EpochBreakdown",
    "SimulatedRuntime",
    "TraceEvent",
    "Trace",
    "StepProfile",
    "profile_training_step",
]
