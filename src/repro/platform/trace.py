"""Execution traces (the paper's Figure 2 time-trace).

A :class:`Trace` is a list of ``(process, phase, start, end)`` events.
:func:`render_ascii` draws the Gantt-style view the paper uses to show
that a single process alternates memory-intensive and compute-intensive
phases (leaving one resource idle at all times) while two staggered
processes overlap them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["TraceEvent", "Trace", "render_ascii"]

#: canonical phase names
PHASES = ("sample", "memory", "compute", "sync")


@dataclass(frozen=True)
class TraceEvent:
    process: int
    phase: str
    start: float
    end: float

    def __post_init__(self):
        if self.phase not in PHASES:
            raise ValueError(f"unknown phase {self.phase!r}; expected one of {PHASES}")
        if self.end < self.start:
            raise ValueError(f"event ends ({self.end}) before it starts ({self.start})")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Trace:
    events: list[TraceEvent] = field(default_factory=list)

    def add(self, process: int, phase: str, start: float, duration: float) -> float:
        """Append an event; returns its end time."""
        ev = TraceEvent(process, phase, start, start + duration)
        self.events.append(ev)
        return ev.end

    @property
    def makespan(self) -> float:
        return max((e.end for e in self.events), default=0.0)

    def busy_fraction(self, phase: str) -> float:
        """Fraction of the makespan during which >=1 process runs ``phase``.

        The paper's point: with one process the memory phase covers only
        part of the timeline (bandwidth idles in the gaps); with several
        staggered processes the union approaches 1.
        """
        span = self.makespan
        if span <= 0:
            return 0.0
        intervals = sorted(
            (e.start, e.end) for e in self.events if e.phase == phase and e.end > e.start
        )
        covered = 0.0
        cur_start, cur_end = None, None
        for s, e in intervals:
            if cur_end is None or s > cur_end:
                if cur_end is not None:
                    covered += cur_end - cur_start
                cur_start, cur_end = s, e
            else:
                cur_end = max(cur_end, e)
        if cur_end is not None:
            covered += cur_end - cur_start
        return covered / span

    def for_process(self, process: int) -> list[TraceEvent]:
        return [e for e in self.events if e.process == process]


_GLYPH = {"sample": "s", "memory": "M", "compute": "#", "sync": "|"}


def render_ascii(trace: Trace, width: int = 78) -> str:
    """Gantt rendering: one row per process, columns are time buckets."""
    span = trace.makespan
    if span <= 0:
        return "(empty trace)"
    procs = sorted({e.process for e in trace.events})
    lines = []
    for p in procs:
        row = [" "] * width
        for e in trace.for_process(p):
            lo = int(e.start / span * (width - 1))
            hi = max(lo, int(e.end / span * (width - 1)))
            for i in range(lo, hi + 1):
                row[i] = _GLYPH[e.phase]
        lines.append(f"P{p} |" + "".join(row))
    legend = "  legend: s=sampling  M=memory-bound  #=compute-bound  |=sync"
    return "\n".join(lines) + "\n" + legend
