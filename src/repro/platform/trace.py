"""Execution traces (the paper's Figure 2 time-trace).

A :class:`Trace` is a list of ``(process, phase, start, end)`` events.
:func:`render_ascii` draws the Gantt-style view the paper uses to show
that a single process alternates memory-intensive and compute-intensive
phases (leaving one resource idle at all times) while two staggered
processes overlap them.

This module is also the one Gantt renderer in the repo: ``repro trace
summarize`` (``repro.obs.export``) feeds measured serving spans through
the same :class:`TraceEvent`/:func:`render_ascii` path by passing
``phases=None`` (accept any span name), explicit ``glyphs`` and row
``labels`` — the defaults keep the paper-figure behaviour byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["TraceEvent", "Trace", "render_ascii"]

#: canonical phase names (the paper figure's vocabulary)
PHASES = ("sample", "memory", "compute", "sync")


@dataclass(frozen=True)
class TraceEvent:
    process: int
    phase: str
    start: float
    end: float
    #: allowed phase names; ``None`` accepts any (measured traces carry
    #: their own vocabulary).  Not part of identity/repr.
    phases: tuple[str, ...] | None = field(default=PHASES, repr=False, compare=False)

    def __post_init__(self):
        if self.phases is not None and self.phase not in self.phases:
            raise ValueError(
                f"unknown phase {self.phase!r}; expected one of {self.phases}"
            )
        if self.end < self.start:
            raise ValueError(f"event ends ({self.end}) before it starts ({self.start})")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Trace:
    events: list[TraceEvent] = field(default_factory=list)
    #: phase vocabulary enforced on :meth:`add`; ``None`` accepts any
    phases: tuple[str, ...] | None = PHASES

    def add(self, process: int, phase: str, start: float, duration: float) -> float:
        """Append an event; returns its end time."""
        ev = TraceEvent(process, phase, start, start + duration, self.phases)
        self.events.append(ev)
        return ev.end

    @property
    def makespan(self) -> float:
        return max((e.end for e in self.events), default=0.0)

    def busy_fraction(self, phase: str) -> float:
        """Fraction of the makespan during which >=1 process runs ``phase``.

        The paper's point: with one process the memory phase covers only
        part of the timeline (bandwidth idles in the gaps); with several
        staggered processes the union approaches 1.
        """
        span = self.makespan
        if span <= 0:
            return 0.0
        intervals = sorted(
            (e.start, e.end) for e in self.events if e.phase == phase and e.end > e.start
        )
        covered = 0.0
        cur_start, cur_end = None, None
        for s, e in intervals:
            if cur_end is None or s > cur_end:
                if cur_end is not None:
                    covered += cur_end - cur_start
                cur_start, cur_end = s, e
            else:
                cur_end = max(cur_end, e)
        if cur_end is not None:
            covered += cur_end - cur_start
        return covered / span

    def for_process(self, process: int) -> list[TraceEvent]:
        return [e for e in self.events if e.process == process]


_GLYPH = {"sample": "s", "memory": "M", "compute": "#", "sync": "|"}
_LEGEND = "  legend: s=sampling  M=memory-bound  #=compute-bound  |=sync"

#: fallback glyph pool for phases without an explicit mapping
_FALLBACK_GLYPHS = "abcdefghijklmnopqrstuvwxyz0123456789"


def _glyph_map(trace: Trace, glyphs: Mapping[str, str] | None) -> dict[str, str]:
    mapping = dict(_GLYPH if glyphs is None else glyphs)
    used = set(mapping.values())
    for phase in sorted({e.phase for e in trace.events}):
        if phase in mapping:
            continue
        # prefer the phase's own first character, then the pool
        for candidate in (phase[:1] or "?") + _FALLBACK_GLYPHS:
            if candidate not in used:
                break
        mapping[phase] = candidate
        used.add(candidate)
    return mapping


def render_ascii(
    trace: Trace,
    width: int = 78,
    *,
    glyphs: Mapping[str, str] | None = None,
    labels: Mapping[int, str] | None = None,
) -> str:
    """Gantt rendering: one row per process, columns are time buckets.

    ``glyphs`` maps phase name -> single display character (unmapped
    phases get deterministic fallbacks); ``labels`` maps process id ->
    row label.  With both omitted and only canonical phases present the
    output matches the original paper-figure rendering exactly.
    """
    span = trace.makespan
    if span <= 0:
        return "(empty trace)"
    mapping = _glyph_map(trace, glyphs)
    procs = sorted({e.process for e in trace.events})
    lines = []
    for p in procs:
        row = [" "] * width
        for e in trace.for_process(p):
            lo = int(e.start / span * (width - 1))
            hi = max(lo, int(e.end / span * (width - 1)))
            for i in range(lo, hi + 1):
                row[i] = mapping[e.phase]
        label = f"P{p}" if labels is None else labels.get(p, f"P{p}")
        lines.append(f"{label} |" + "".join(row))
    if glyphs is None and all(e.phase in _GLYPH for e in trace.events):
        legend = _LEGEND
    else:
        pairs = "  ".join(f"{mapping[ph]}={ph}" for ph in sorted(mapping) if any(e.phase == ph for e in trace.events))
        legend = f"  legend: {pairs}"
    return "\n".join(lines) + "\n" + legend
