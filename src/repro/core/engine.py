"""The Multi-Process Engine: semantics-preserving data-parallel training.

Paper Sec. IV-B2: with ``n`` processes the engine

1. splits each global mini-batch of size ``B`` into ``n`` chunks of
   ``B/n`` (so the *effective* batch size never changes),
2. lets every rank sample and propagate its chunk independently,
3. averages gradients across ranks (synchronous SGD via DDP) and applies
   the identical optimizer step on every replica.

Backends
--------
``inline``
    Ranks execute sequentially inside the calling thread.  Bit-for-bit
    deterministic; the union of rank chunks equals the single-process
    batch, so the convergence experiment (Fig. 9) compares identical
    sample streams.
``thread``
    One OS thread per rank with barrier-based all-reduce
    (:class:`repro.distributed.comm.ThreadWorld`).  numpy kernels release
    the GIL, giving real overlap — the closest offline analogue of the
    paper's process-level parallelism.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.autograd.functional import accuracy, cross_entropy
from repro.autograd.module import Module
from repro.autograd.ops import gather_rows
from repro.autograd.optim import Adam, SGD
from repro.autograd.tensor import Tensor, no_grad
from repro.distributed.comm import ThreadWorld
from repro.distributed.ddp import DistributedDataParallel, average_gradients, replicate_module
from repro.graph.datasets import GNNDataset
from repro.sampling.base import Sampler
from repro.utils.rng import derive_rng
from repro.utils.validation import check_in, check_positive_int

__all__ = ["MultiProcessEngine", "EpochStats", "TrainHistory"]


@dataclass
class EpochStats:
    """Per-epoch record."""

    epoch: int
    mean_loss: float
    epoch_time: float
    num_global_steps: int
    num_minibatches: int  # n per global step
    sampled_edges: int


@dataclass
class TrainHistory:
    """Accumulated training records plus optional accuracy checkpoints."""

    epochs: list[EpochStats] = field(default_factory=list)
    #: (cumulative minibatch count, validation accuracy) pairs — Fig. 9
    accuracy_curve: list[tuple[int, float]] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return sum(e.epoch_time for e in self.epochs)

    @property
    def total_minibatches(self) -> int:
        return sum(e.num_minibatches for e in self.epochs)

    @property
    def losses(self) -> list[float]:
        return [e.mean_loss for e in self.epochs]


def _make_optimizer(name: str, params, lr: float):
    name = name.lower()
    if name == "adam":
        return Adam(params, lr=lr)
    if name == "sgd":
        return SGD(params, lr=lr)
    raise ValueError(f"unknown optimizer {name!r}; options: adam, sgd")


class MultiProcessEngine:
    """Data-parallel trainer over a fixed number of ranks.

    Parameters
    ----------
    dataset, sampler, model:
        Training substrate.  The model instance becomes rank 0's replica;
        other ranks get deep copies (DDP weight broadcast).
    num_processes:
        ``n`` — ranks instantiated.
    global_batch_size:
        ``B``; every rank trains on chunks of ``B/n`` (rounded down, min
        1).  ``B`` must be >= ``n``.
    lr, optimizer:
        Optimiser settings (paper examples use Adam).
    backend:
        ``"inline"`` (deterministic, default) or ``"thread"``.
    eval_nodes:
        Optional cap on validation nodes scored per accuracy checkpoint.
    seed:
        Controls the epoch shuffles and per-rank sampling streams.
    """

    def __init__(
        self,
        dataset: GNNDataset,
        sampler: Sampler,
        model: Module,
        *,
        num_processes: int = 1,
        global_batch_size: int = 1024,
        lr: float = 3e-3,
        optimizer: str = "adam",
        backend: str = "inline",
        eval_nodes: int = 512,
        seed: int = 0,
    ):
        self.dataset = dataset
        self.sampler = sampler
        self.n = check_positive_int(num_processes, "num_processes")
        self.global_batch = check_positive_int(global_batch_size, "global_batch_size")
        if self.global_batch < self.n:
            raise ValueError(
                f"global batch ({self.global_batch}) must be >= num_processes ({self.n})"
            )
        self.backend = check_in(backend, ("inline", "thread"), "backend")
        self.lr = float(lr)
        self.seed = int(seed)
        self.eval_nodes = int(eval_nodes)
        self.replicas = replicate_module(model, self.n)
        self.optimizers = [_make_optimizer(optimizer, m.parameters(), lr) for m in self.replicas]
        self.features = Tensor(dataset.features)
        self.history = TrainHistory()
        self._epoch = 0
        self._minibatches_done = 0

    # ------------------------------------------------------------------
    @property
    def model(self) -> Module:
        """Rank-0 replica (all replicas hold identical weights)."""
        return self.replicas[0]

    @property
    def per_rank_batch(self) -> int:
        return max(1, self.global_batch // self.n)

    def _epoch_plan(self, epoch: int) -> list[np.ndarray]:
        """Shuffled global batches for this epoch (shared by all ranks)."""
        rng = derive_rng(self.seed, "shuffle", epoch)
        perm = rng.permutation(self.dataset.train_idx)
        n_steps = max(1, len(perm) // self.global_batch)
        return [
            perm[i * self.global_batch : (i + 1) * self.global_batch]
            for i in range(n_steps)
        ]

    def _rank_chunks(self, global_batch: np.ndarray) -> list[np.ndarray]:
        """Split one global batch into ``n`` near-equal rank chunks."""
        return list(np.array_split(global_batch, self.n))

    def _forward_loss(self, rank: int, model: Module, seeds: np.ndarray, rng):
        batch = self.sampler.sample(self.dataset.graph, seeds, rng=rng)
        x = gather_rows(self.features, batch.input_ids)
        out = model(batch.blocks, x)
        loss = cross_entropy(out, self.dataset.labels[batch.seeds])
        return loss, batch.total_edges

    # ------------------------------------------------------------------
    def train_epoch(self) -> EpochStats:
        """Run one epoch; returns its stats and appends to history."""
        epoch = self._epoch
        start = time.perf_counter()
        plan = self._epoch_plan(epoch)
        if self.backend == "inline":
            stats = self._train_epoch_inline(epoch, plan)
        else:
            stats = self._train_epoch_threads(epoch, plan)
        stats.epoch_time = time.perf_counter() - start
        self.history.epochs.append(stats)
        self._epoch += 1
        return stats

    def _train_epoch_inline(self, epoch: int, plan) -> EpochStats:
        losses, edges = [], 0
        for step, global_batch in enumerate(plan):
            chunks = self._rank_chunks(global_batch)
            for rank, (model, seeds) in enumerate(zip(self.replicas, chunks)):
                if len(seeds) == 0:
                    model.zero_grad()
                    continue
                rng = derive_rng(self.seed, "sample", epoch, step, rank)
                model.zero_grad()
                loss, e = self._forward_loss(rank, model, seeds, rng)
                loss.backward()
                losses.append(loss.item())
                edges += e
            average_gradients(self.replicas)
            for opt in self.optimizers:
                opt.step()
            self._minibatches_done += self.n
        return EpochStats(
            epoch=epoch,
            mean_loss=float(np.mean(losses)) if losses else 0.0,
            epoch_time=0.0,
            num_global_steps=len(plan),
            num_minibatches=len(plan) * self.n,
            sampled_edges=edges,
        )

    def _train_epoch_threads(self, epoch: int, plan) -> EpochStats:
        world = ThreadWorld(self.n)
        losses_per_rank: list[list[float]] = [[] for _ in range(self.n)]
        edges_per_rank = [0] * self.n
        errors: list[BaseException] = []

        def worker(rank: int):
            try:
                # DDP construction is itself a collective (weight
                # broadcast), so it must happen inside the rank thread.
                model = DistributedDataParallel(
                    self.replicas[rank], world.communicator(rank)
                )
                for step, global_batch in enumerate(plan):
                    seeds = self._rank_chunks(global_batch)[rank]
                    model.zero_grad()
                    if len(seeds) > 0:
                        rng = derive_rng(self.seed, "sample", epoch, step, rank)
                        loss, e = self._forward_loss(rank, model.module, seeds, rng)
                        loss.backward()
                        losses_per_rank[rank].append(loss.item())
                        edges_per_rank[rank] += e
                    model.sync_gradients()
                    self.optimizers[rank].step()
            except BaseException as exc:  # surface thread failures
                errors.append(exc)
                world.abort()  # unblock peers waiting on collectives
                raise

        threads = [threading.Thread(target=worker, args=(r,)) for r in range(self.n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise RuntimeError(f"rank thread failed: {errors[0]!r}") from errors[0]
        self._minibatches_done += len(plan) * self.n
        all_losses = [v for per in losses_per_rank for v in per]
        return EpochStats(
            epoch=epoch,
            mean_loss=float(np.mean(all_losses)) if all_losses else 0.0,
            epoch_time=0.0,
            num_global_steps=len(plan),
            num_minibatches=len(plan) * self.n,
            sampled_edges=int(sum(edges_per_rank)),
        )

    # ------------------------------------------------------------------
    def evaluate(self, nodes: np.ndarray | None = None) -> float:
        """Validation accuracy of the current model (rank-0 replica)."""
        ds = self.dataset
        if nodes is None:
            nodes = ds.val_idx[: self.eval_nodes]
        if len(nodes) == 0:
            return 0.0
        model = self.model
        was_training = model.training
        model.eval()
        rng = derive_rng(self.seed, "eval", self._epoch)
        batch = self.sampler.sample(ds.graph, np.asarray(nodes, dtype=np.int64), rng=rng)
        with no_grad():
            x = gather_rows(self.features, batch.input_ids)
            out = model(batch.blocks, x)
            acc = accuracy(out, ds.labels[batch.seeds])
        model.train(was_training)
        return acc

    def record_accuracy(self) -> float:
        """Evaluate and append to the Fig.-9 curve (x = minibatch count)."""
        acc = self.evaluate()
        self.history.accuracy_curve.append((self._minibatches_done, acc))
        return acc

    def train(self, num_epochs: int, *, eval_every: int | None = None) -> TrainHistory:
        """Train ``num_epochs`` epochs, optionally recording accuracy."""
        check_positive_int(num_epochs, "num_epochs")
        for _ in range(num_epochs):
            self.train_epoch()
            if eval_every and self._epoch % eval_every == 0:
                self.record_accuracy()
        return self.history
