"""The Multi-Process Engine: semantics-preserving data-parallel training.

Paper Sec. IV-B2: with ``n`` processes the engine

1. splits each global mini-batch of size ``B`` into ``n`` chunks of
   ``B/n`` (so the *effective* batch size never changes),
2. lets every rank sample and propagate its chunk independently,
3. averages gradients across ranks (synchronous SGD via DDP) and applies
   the identical optimizer step on every replica.

Execution backends
------------------
*How* the ranks run is delegated to a pluggable
:class:`repro.exec.ExecutionBackend` selected by name:

``inline``
    Ranks execute sequentially inside the calling thread.  Bit-for-bit
    deterministic; the union of rank chunks equals the single-process
    batch, so the convergence experiment (Fig. 9) compares identical
    sample streams.
``thread``
    One OS thread per rank with barrier-based all-reduce
    (:class:`repro.distributed.comm.ThreadWorld`).  numpy kernels release
    the GIL, giving real overlap inside kernels.
``process``
    One OS *process* per rank — the paper's actual mechanism.  The CSR
    graph, features and labels live in shared memory
    (:class:`repro.graph.shm.SharedGraphStore`), gradients all-reduce
    through :class:`repro.distributed.comm.ProcessWorld`, and workers
    pin themselves to their :class:`ProcessBinding` cores.  Pass
    ``bindings`` (from :class:`repro.platform.corebind.CoreBinder`) to
    enable real core binding.

All backends implement the same algorithm; loss trajectories agree to
float tolerance (exactly, for ``inline`` re-runs).  Engines using the
``process`` backend hold shared-memory segments across epochs — call
:meth:`MultiProcessEngine.shutdown` (or use the engine as a context
manager) to release them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.autograd.functional import accuracy
from repro.autograd.module import Module
from repro.autograd.ops import gather_rows
from repro.autograd.optim import make_optimizer
from repro.autograd.tensor import Tensor, no_grad
from repro.distributed.ddp import replicate_module
from repro.exec import ExecutionBackend, get_backend
from repro.graph.datasets import GNNDataset
from repro.sampling.base import Sampler
from repro.tuning.defaults import DEFAULT_QUEUE_DEPTH
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive_int

__all__ = ["MultiProcessEngine", "EpochStats", "TrainHistory"]


@dataclass
class EpochStats:
    """Per-epoch record.

    ``sample_wait`` / ``compute_time`` break the epoch into the paper's
    two pipeline stages, summed over ranks: seconds the trainers spent
    blocked acquiring batches (the full sampling cost when synchronous,
    the residual queue wait when prefetching hides it) and seconds in
    the train stage — forward/backward/optimizer work plus gradient
    synchronisation (a rank's barrier wait on stragglers is booked
    here, not as sample wait).

    ``launch_time`` is the epoch's worker-launch tax (forking rank
    processes + shipping weights into them): zero for the in-process
    backends, paid every epoch when the process backend respawns
    workers, and ≈0 after the first epoch under the persistent pool —
    the difference is exactly the relaunch overhead the online tuner
    used to measure inside every trial.

    ``pool_launches`` / ``pool_parked`` surface the persistent pool's
    lifecycle diagnostics (cumulative worker forks; workers parked idle
    after a shrink) for tuner debugging; zero outside the persistent
    process backend.
    """

    epoch: int
    mean_loss: float
    epoch_time: float
    num_global_steps: int
    num_minibatches: int  # n per global step
    sampled_edges: int
    sample_wait: float = 0.0
    compute_time: float = 0.0
    launch_time: float = 0.0
    pool_launches: int = 0
    pool_parked: int = 0


@dataclass
class TrainHistory:
    """Accumulated training records plus optional accuracy checkpoints."""

    epochs: list[EpochStats] = field(default_factory=list)
    #: (cumulative minibatch count, validation accuracy) pairs — Fig. 9
    accuracy_curve: list[tuple[int, float]] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return sum(e.epoch_time for e in self.epochs)

    @property
    def total_minibatches(self) -> int:
        return sum(e.num_minibatches for e in self.epochs)

    @property
    def losses(self) -> list[float]:
        return [e.mean_loss for e in self.epochs]


class MultiProcessEngine:
    """Data-parallel trainer over a fixed number of ranks.

    Parameters
    ----------
    dataset, sampler, model:
        Training substrate.  The model instance becomes rank 0's replica;
        other ranks get deep copies (DDP weight broadcast).
    num_processes:
        ``n`` — ranks instantiated.
    global_batch_size:
        ``B``; every rank trains on chunks of ``B/n`` (rounded down, min
        1).  ``B`` must be >= ``n``.
    lr, optimizer:
        Optimiser settings (paper examples use Adam).
    backend:
        Execution backend name — ``"inline"`` (deterministic, default),
        ``"thread"`` or ``"process"`` (see :mod:`repro.exec`) — or an
        already-constructed :class:`~repro.exec.ExecutionBackend`
        instance.  Passing an instance lets callers share one backend —
        and its persistent worker pool / shared-memory store — across
        several engines (the tuner's re-launches); the engine then does
        *not* own it: :meth:`shutdown` leaves shared backends running,
        and whoever created the instance must shut it down.
    backend_options:
        Extra keyword arguments for the backend constructor (e.g.
        ``{"start_method": "spawn"}`` for the process backend); invalid
        with a backend instance.
    bindings:
        Optional per-rank core assignments
        (:class:`repro.platform.corebind.ProcessBinding` list, one per
        rank); the process backend applies them with
        ``os.sched_setaffinity`` inside each worker.
    eval_nodes:
        Optional cap on validation nodes scored per accuracy checkpoint.
    seed:
        Controls the epoch shuffles and per-rank sampling streams.
    prefetch, queue_depth, sampler_workers:
        The sampling/compute overlap pipeline (paper Sec. IV-B1).  With
        ``prefetch`` on, every rank runs ``sampler_workers`` sampler
        workers feeding a bounded queue at most ``queue_depth`` batches
        ahead of compute, with strict in-order delivery
        (:mod:`repro.pipeline`).  Loss trajectories are bit-identical to
        the synchronous path — every step's sampling RNG is a pure
        function of ``(seed, epoch, step, rank)`` — so the knobs change
        wall clock, never numerics.  ``sampler_workers`` is what the
        auto-tuner's ``s`` (sampling cores) axis plugs into.
    persistent:
        Process-backend execution mode (ignored by the in-process
        backends): ``True`` (default) keeps a pool of long-lived rank
        workers alive across epochs, driven by shared-memory
        plan/param channels, so only the first epoch pays the
        fork-and-ship launch tax; ``False`` restores the original
        respawn-workers-every-epoch behaviour.  Loss trajectories are
        bit-identical either way.
    """

    def __init__(
        self,
        dataset: GNNDataset,
        sampler: Sampler,
        model: Module,
        *,
        num_processes: int = 1,
        global_batch_size: int = 1024,
        lr: float = 3e-3,
        optimizer: str = "adam",
        backend: str = "inline",
        backend_options: dict | None = None,
        bindings: list | None = None,
        eval_nodes: int = 512,
        seed: int = 0,
        prefetch: bool = False,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        sampler_workers: int = 1,
        persistent: bool = True,
    ):
        self.dataset = dataset
        self.sampler = sampler
        self.n = check_positive_int(num_processes, "num_processes")
        self.global_batch = check_positive_int(global_batch_size, "global_batch_size")
        if self.global_batch < self.n:
            raise ValueError(
                f"global batch ({self.global_batch}) must be >= num_processes ({self.n})"
            )
        if isinstance(backend, ExecutionBackend):
            if backend_options:
                raise ValueError(
                    "backend_options are invalid with an already-constructed "
                    "backend instance"
                )
            self._backend = backend
            self._owns_backend = False
        else:
            self._backend = get_backend(backend, **(backend_options or {}))
            self._owns_backend = True
        self.backend = self._backend.name
        self.persistent = bool(persistent)
        if bindings is not None and len(bindings) < self.n:
            raise ValueError(
                f"got {len(bindings)} core bindings for {self.n} ranks"
            )
        self.bindings = bindings
        self.prefetch = bool(prefetch)
        self.queue_depth = check_positive_int(queue_depth, "queue_depth")
        self.sampler_workers = check_positive_int(sampler_workers, "sampler_workers")
        self.lr = float(lr)
        self.optimizer_name = str(optimizer).lower()
        self.seed = int(seed)
        self.eval_nodes = int(eval_nodes)
        self.replicas = replicate_module(model, self.n)
        self.optimizers = [
            make_optimizer(self.optimizer_name, m.parameters(), lr) for m in self.replicas
        ]
        self.features = Tensor(dataset.features)
        self.history = TrainHistory()
        self._epoch = 0
        self._minibatches_done = 0

    # ------------------------------------------------------------------
    @property
    def model(self) -> Module:
        """Rank-0 replica (all replicas hold identical weights)."""
        return self.replicas[0]

    @property
    def per_rank_batch(self) -> int:
        return max(1, self.global_batch // self.n)

    def _epoch_plan(self, epoch: int) -> list[np.ndarray]:
        """Shuffled global batches for this epoch (shared by all ranks)."""
        rng = derive_rng(self.seed, "shuffle", epoch)
        perm = rng.permutation(self.dataset.train_idx)
        n_steps = max(1, len(perm) // self.global_batch)
        return [
            perm[i * self.global_batch : (i + 1) * self.global_batch]
            for i in range(n_steps)
        ]

    # ------------------------------------------------------------------
    def train_epoch(self) -> EpochStats:
        """Run one epoch; returns its stats and appends to history."""
        epoch = self._epoch
        start = time.perf_counter()
        plan = self._epoch_plan(epoch)
        result = self._backend.run_epoch(self, epoch, plan)
        stats = EpochStats(
            epoch=epoch,
            mean_loss=float(np.mean(result.losses)) if result.losses else 0.0,
            epoch_time=time.perf_counter() - start,
            num_global_steps=len(plan),
            num_minibatches=len(plan) * self.n,
            sampled_edges=int(result.sampled_edges),
            sample_wait=float(result.sample_wait),
            compute_time=float(result.compute_time),
            launch_time=float(result.launch_time),
            pool_launches=int(result.pool_launches),
            pool_parked=int(result.pool_parked),
        )
        self._minibatches_done += len(plan) * self.n
        self.history.epochs.append(stats)
        self._epoch += 1
        return stats

    # ------------------------------------------------------------------
    def evaluate(self, nodes: np.ndarray | None = None) -> float:
        """Validation accuracy of the current model (rank-0 replica)."""
        ds = self.dataset
        if nodes is None:
            nodes = ds.val_idx[: self.eval_nodes]
        if len(nodes) == 0:
            return 0.0
        model = self.model
        was_training = model.training
        model.eval()
        rng = derive_rng(self.seed, "eval", self._epoch)
        batch = self.sampler.sample(ds.graph, np.asarray(nodes, dtype=np.int64), rng=rng)
        with no_grad():
            x = gather_rows(self.features, batch.input_ids)
            out = model(batch.blocks, x)
            acc = accuracy(out, ds.labels[batch.seeds])
        model.train(was_training)
        return acc

    def record_accuracy(self) -> float:
        """Evaluate and append to the Fig.-9 curve (x = minibatch count)."""
        acc = self.evaluate()
        self.history.accuracy_curve.append((self._minibatches_done, acc))
        return acc

    def train(self, num_epochs: int, *, eval_every: int | None = None) -> TrainHistory:
        """Train ``num_epochs`` epochs, optionally recording accuracy."""
        check_positive_int(num_epochs, "num_epochs")
        for _ in range(num_epochs):
            self.train_epoch()
            if eval_every and self._epoch % eval_every == 0:
                self.record_accuracy()
        return self.history

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Release backend resources (worker pools, shared-memory segments).

        Idempotent; the engine remains usable — the backend re-creates
        what it needs on the next epoch.  Backends *shared* into the
        engine (constructed by the caller and passed as an instance) are
        left running: their owner shuts them down.
        """
        if self._owns_backend:
            self._backend.shutdown()

    def __enter__(self) -> "MultiProcessEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.shutdown()
        except Exception:
            pass
