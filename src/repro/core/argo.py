"""The user-facing ARGO runtime (paper Listing 1/3 API).

Usage mirrors the paper::

    def train(dataset, sampler, model, *, config, epochs):
        ...          # one call trains `epochs` epochs under `config`
        return seconds_per_epoch_list

    runtime = ARGO(n_search=20, epoch=200, space=space)
    result = runtime.run(train, args=(dataset, sampler, model))

During the first ``n_search`` epochs the runtime re-launches the training
function once per epoch (``epochs=1``) with the tuner's proposal — this
is why Listing 3 turns the epoch count into a variable.  Afterwards it
launches the remaining ``epoch - n_search`` epochs in one call with the
best configuration found.

The training function receives ``config`` (a :class:`RuntimeConfig`) and
``epochs`` as keyword arguments and must return the measured epoch time
in seconds — either a scalar (one epoch) or a sequence (one per epoch).
:func:`repro.core.train_loop.make_train_fn` builds such a function around
the Multi-Process Engine; the performance benchmarks instead pass a
closure over :class:`repro.platform.simulator.SimulatedRuntime`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.autotuner import OnlineAutoTuner
from repro.core.config import RuntimeConfig
from repro.tuning.space import ConfigSpace
from repro.utils.validation import check_positive_int

__all__ = ["ARGO", "ArgoRunResult"]


@dataclass
class ArgoRunResult:
    """End-to-end record of an ARGO-managed training run."""

    best_config: RuntimeConfig
    total_epochs: int
    search_epochs: int
    #: observed epoch times during the search phase, (config, seconds)
    search_history: list[tuple[tuple[int, int, int], float]]
    #: epoch times of the post-search phase under the best config
    exploit_epoch_times: list[float]
    tuner_overhead_seconds: float
    tuner_memory_bytes: int

    @property
    def total_time(self) -> float:
        """End-to-end training time incl. auto-tuning overhead (Fig. 10/11)."""
        search = sum(t for _, t in self.search_history)
        return search + sum(self.exploit_epoch_times) + self.tuner_overhead_seconds


class ARGO:
    """The runtime wrapper users enable with a few lines (Listing 1).

    Parameters
    ----------
    n_search:
        Online-learning epochs (paper Table VI; defaults to 5% of the
        space when omitted).
    epoch:
        Total training epochs (paper uses 200).
    space:
        The platform's :class:`ConfigSpace`.
    seed:
        Tuner determinism.
    """

    def __init__(
        self,
        n_search: int | None = None,
        epoch: int = 200,
        *,
        space: ConfigSpace,
        seed: int = 0,
        acquisition: str = "ei",
    ):
        self.epoch = check_positive_int(epoch, "epoch")
        if n_search is None:
            n_search = space.paper_budget()
        self.n_search = check_positive_int(n_search, "n_search")
        if self.n_search >= self.epoch:
            raise ValueError(
                f"n_search ({self.n_search}) must be smaller than epoch ({self.epoch})"
            )
        self.space = space
        self.seed = int(seed)
        self.tuner = OnlineAutoTuner(space, self.n_search, seed=seed, acquisition=acquisition)

    # ------------------------------------------------------------------
    @staticmethod
    def _as_times(ret, epochs: int) -> list[float]:
        if isinstance(ret, (int, float)):
            if epochs != 1:
                raise ValueError(
                    "training function returned a scalar for a multi-epoch call; "
                    "return one time per epoch"
                )
            return [float(ret)]
        times = [float(v) for v in ret]
        if len(times) != epochs:
            raise ValueError(
                f"training function returned {len(times)} epoch times for {epochs} epochs"
            )
        return times

    def run(self, train_fn: Callable, args: tuple = (), kwargs: dict | None = None) -> ArgoRunResult:
        """Train ``epoch`` epochs with online auto-tuning (Listing 3)."""
        kwargs = dict(kwargs or {})

        # Phase 1 — Online Learning: one epoch per proposal (Algorithm 1)
        while not self.tuner.done:
            cfg = self.tuner.propose()
            ret = train_fn(*args, config=RuntimeConfig.from_tuple(cfg), epochs=1, **kwargs)
            (epoch_time,) = self._as_times(ret, 1)
            self.tuner.observe(cfg, epoch_time)

        # Phase 2 — exploit the best configuration for the rest
        best = self.tuner.get_opt()
        remaining = self.epoch - self.n_search
        exploit_times: list[float] = []
        if remaining > 0:
            ret = train_fn(
                *args, config=RuntimeConfig.from_tuple(best), epochs=remaining, **kwargs
            )
            exploit_times = self._as_times(ret, remaining)

        return ArgoRunResult(
            best_config=RuntimeConfig.from_tuple(best),
            total_epochs=self.epoch,
            search_epochs=self.n_search,
            search_history=list(self.tuner.history),
            exploit_epoch_times=exploit_times,
            tuner_overhead_seconds=self.tuner.overhead_seconds,
            tuner_memory_bytes=self.tuner.surrogate_memory_bytes,
        )
