"""ARGO core: the runtime system of the paper.

* :class:`RuntimeConfig` — one point of the design space;
* :class:`MultiProcessEngine` — instantiates ``n`` training ranks with
  per-rank batch ``B/n`` and synchronous gradient averaging (Sec. IV-B2);
* :class:`OnlineAutoTuner` — Algorithm 1: BayesOpt-driven online search;
* :class:`ARGO` — the user-facing wrapper of Listing 1/3.
"""

from repro.core.config import RuntimeConfig
from repro.core.engine import MultiProcessEngine, EpochStats, TrainHistory
from repro.core.autotuner import OnlineAutoTuner, TuneResult
from repro.core.argo import ARGO
from repro.core.train_loop import evaluate_accuracy, make_train_fn

__all__ = [
    "RuntimeConfig",
    "MultiProcessEngine",
    "EpochStats",
    "TrainHistory",
    "OnlineAutoTuner",
    "TuneResult",
    "ARGO",
    "evaluate_accuracy",
    "make_train_fn",
]
