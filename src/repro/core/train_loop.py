"""Ready-made training functions for the ARGO wrapper.

:func:`make_train_fn` turns a (dataset, sampler-factory, model) triple
into the ``train(config=..., epochs=...)`` callable the :class:`ARGO`
runtime expects — the equivalent of the user's Listing 2 program after
the Listing 3 modifications.  Each call rebuilds the Multi-Process Engine
for the requested process count (ARGO re-launches training to reallocate
processes) while *reusing the same model object*, so learning progresses
across the tuner's re-launches exactly as in the paper.
"""

from __future__ import annotations

import weakref
from typing import Callable

import numpy as np

from repro.autograd.functional import accuracy
from repro.autograd.module import Module
from repro.autograd.ops import gather_rows
from repro.autograd.tensor import Tensor, no_grad
from repro.core.config import RuntimeConfig
from repro.core.engine import MultiProcessEngine
from repro.graph.datasets import GNNDataset
from repro.platform.corebind import CoreBinder
from repro.platform.spec import PlatformSpec
from repro.sampling.base import Sampler
from repro.utils.rng import derive_rng

__all__ = ["make_train_fn", "evaluate_accuracy"]


def evaluate_accuracy(
    dataset: GNNDataset,
    sampler: Sampler,
    model: Module,
    nodes: np.ndarray | None = None,
    *,
    max_nodes: int = 1024,
    seed: int = 0,
) -> float:
    """Sampled-subgraph accuracy of ``model`` on ``nodes`` (default: test split)."""
    if nodes is None:
        nodes = dataset.test_idx[:max_nodes]
    nodes = np.asarray(nodes, dtype=np.int64)[:max_nodes]
    if len(nodes) == 0:
        return 0.0
    was_training = model.training
    model.eval()
    batch = sampler.sample(dataset.graph, nodes, rng=derive_rng(seed, "acc-eval"))
    with no_grad():
        x = gather_rows(Tensor(dataset.features), batch.input_ids)
        out = model(batch.blocks, x)
        acc = accuracy(out, dataset.labels[batch.seeds])
    model.train(was_training)
    return acc


def make_train_fn(
    dataset: GNNDataset,
    sampler: Sampler,
    model: Module,
    *,
    global_batch_size: int = 1024,
    lr: float = 3e-3,
    optimizer: str = "adam",
    backend: str | None = None,
    backend_options: dict | None = None,
    platform: PlatformSpec | None = None,
    seed: int = 0,
) -> Callable:
    """Build the ``train(config=..., epochs=...)`` callable for ARGO.

    The returned function trains the *shared* ``model`` for the requested
    epochs under the given :class:`RuntimeConfig` and returns the list of
    measured epoch times.  A fresh engine is constructed per call (the
    process count may change between calls), seeded by a monotone counter
    so every epoch uses a distinct shuffle.

    Backend *instances*, however, are cached across calls: the process
    backend's persistent worker pool and shared-memory graph store
    survive the tuner's engine reconstructions, so a re-launch that
    keeps ``n`` costs a weight memcpy instead of ``n`` forks — trials
    measure steady-state throughput, not launch tax.  (The pool rebinds
    itself whenever the configuration's ``n`` changes.)  Call
    ``train.close()`` when done with the function to stop cached pools
    and unlink their segments; dropping the last reference does the same
    via a finalizer.

    ``backend`` fixes the execution backend for every call; the default
    ``None`` defers to each config's own :attr:`RuntimeConfig.backend`,
    which lets the autotuner search over backends
    (:class:`repro.tuning.space.BackendSpace`).  ``backend_options``
    (e.g. ``{"timeout": 600}`` for slow hosts) is forwarded to every
    engine's backend constructor — leave it ``None`` when configs mix
    backends with incompatible options.  When a ``platform`` is given
    and the resolved backend is ``process``, the config's ``(n, s, t)``
    is turned into real core bindings via
    :class:`repro.platform.corebind.CoreBinder` — worker processes then
    pin themselves with ``sched_setaffinity``.

    With ``config.prefetch`` on, each engine runs the sampling/compute
    overlap pipeline with ``config.sampling_cores`` sampler workers per
    rank and lookahead ``config.queue_depth`` — the tuner's ``s`` knob
    then changes measured epoch time, not just the cost model, while the
    loss trajectory stays bit-identical to the synchronous path.
    """
    state = {"epoch_offset": 0}
    #: backend instances shared across the tuner's engine re-launches —
    #: the persistent pool / shm store live here, not in any one engine
    shared_backends: dict[str, object] = {}

    def _close_backends(backends: dict) -> None:
        # best effort per backend: this also runs from a finalizer at
        # interpreter exit, where one backend's half-torn-down mp state
        # must not stop the others from releasing pools and segments
        for b in backends.values():
            try:
                b.shutdown()
            except Exception:
                pass
        backends.clear()

    def train(*, config: RuntimeConfig, epochs: int) -> list[float]:
        from repro.exec import get_backend

        resolved = backend if backend is not None else config.backend
        bindings = None
        if platform is not None and resolved == "process":
            binder = CoreBinder(platform)
            bindings = binder.bind(
                config.num_processes, config.sampling_cores, config.training_cores
            )
        if resolved not in shared_backends:
            shared_backends[resolved] = get_backend(resolved, **(backend_options or {}))
        engine = MultiProcessEngine(
            dataset,
            sampler,
            model,
            num_processes=config.num_processes,
            global_batch_size=global_batch_size,
            lr=lr,
            optimizer=optimizer,
            backend=shared_backends[resolved],
            bindings=bindings,
            seed=seed,
            prefetch=config.prefetch,
            queue_depth=config.queue_depth,
            sampler_workers=config.sampling_cores,
            persistent=config.persistent,
        )
        # continue the epoch-shuffle sequence across re-launches
        engine._epoch = state["epoch_offset"]
        times = []
        for _ in range(epochs):
            stats = engine.train_epoch()
            times.append(stats.epoch_time)
        state["epoch_offset"] = engine._epoch
        # propagate the trained weights back into the shared model object;
        # the engine is discarded but the shared backend (worker pool,
        # shm store) stays warm for the tuner's next launch
        model.load_state_dict(engine.model.state_dict())
        return times

    train.close = lambda: _close_backends(shared_backends)
    #: the cached backend instances (diagnostics: inspect live pools)
    train.backends = shared_backends
    # GC safety net: whoever drops the train fn without close() still
    # releases pools and segments
    weakref.finalize(train, _close_backends, shared_backends)
    return train
