"""Ready-made training functions for the ARGO wrapper.

:func:`make_train_fn` turns a (dataset, sampler-factory, model) triple
into the ``train(config=..., epochs=...)`` callable the :class:`ARGO`
runtime expects — the equivalent of the user's Listing 2 program after
the Listing 3 modifications.  Each call rebuilds the Multi-Process Engine
for the requested process count (ARGO re-launches training to reallocate
processes) while *reusing the same model object*, so learning progresses
across the tuner's re-launches exactly as in the paper.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.autograd.functional import accuracy
from repro.autograd.module import Module
from repro.autograd.ops import gather_rows
from repro.autograd.tensor import Tensor, no_grad
from repro.core.config import RuntimeConfig
from repro.core.engine import MultiProcessEngine
from repro.graph.datasets import GNNDataset
from repro.sampling.base import Sampler
from repro.utils.rng import derive_rng

__all__ = ["make_train_fn", "evaluate_accuracy"]


def evaluate_accuracy(
    dataset: GNNDataset,
    sampler: Sampler,
    model: Module,
    nodes: np.ndarray | None = None,
    *,
    max_nodes: int = 1024,
    seed: int = 0,
) -> float:
    """Sampled-subgraph accuracy of ``model`` on ``nodes`` (default: test split)."""
    if nodes is None:
        nodes = dataset.test_idx[:max_nodes]
    nodes = np.asarray(nodes, dtype=np.int64)[:max_nodes]
    if len(nodes) == 0:
        return 0.0
    was_training = model.training
    model.eval()
    batch = sampler.sample(dataset.graph, nodes, rng=derive_rng(seed, "acc-eval"))
    with no_grad():
        x = gather_rows(Tensor(dataset.features), batch.input_ids)
        out = model(batch.blocks, x)
        acc = accuracy(out, dataset.labels[batch.seeds])
    model.train(was_training)
    return acc


def make_train_fn(
    dataset: GNNDataset,
    sampler: Sampler,
    model: Module,
    *,
    global_batch_size: int = 1024,
    lr: float = 3e-3,
    optimizer: str = "adam",
    backend: str = "inline",
    seed: int = 0,
) -> Callable:
    """Build the ``train(config=..., epochs=...)`` callable for ARGO.

    The returned function trains the *shared* ``model`` for the requested
    epochs under the given :class:`RuntimeConfig` and returns the list of
    measured epoch times.  A fresh engine is constructed per call (the
    process count may change between calls), seeded by a monotone counter
    so every epoch uses a distinct shuffle.
    """
    state = {"epoch_offset": 0}

    def train(*, config: RuntimeConfig, epochs: int) -> list[float]:
        engine = MultiProcessEngine(
            dataset,
            sampler,
            model,
            num_processes=config.num_processes,
            global_batch_size=global_batch_size,
            lr=lr,
            optimizer=optimizer,
            backend=backend,
            seed=seed,
        )
        # continue the epoch-shuffle sequence across re-launches
        engine._epoch = state["epoch_offset"]
        times = []
        for _ in range(epochs):
            stats = engine.train_epoch()
            times.append(stats.epoch_time)
        state["epoch_offset"] = engine._epoch
        # propagate the trained weights back into the shared model object
        model.load_state_dict(engine.model.state_dict())
        return times

    return train
