"""Runtime configuration record."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive_int

__all__ = ["RuntimeConfig"]


@dataclass(frozen=True)
class RuntimeConfig:
    """One point of ARGO's design space (paper Sec. V).

    Attributes
    ----------
    num_processes:
        GNN training processes instantiated by the Multi-Process Engine.
    sampling_cores:
        CPU cores bound to mini-batch sampling, per process.
    training_cores:
        CPU cores bound to model propagation, per process.
    """

    num_processes: int
    sampling_cores: int
    training_cores: int

    def __post_init__(self):
        check_positive_int(self.num_processes, "num_processes")
        check_positive_int(self.sampling_cores, "sampling_cores")
        check_positive_int(self.training_cores, "training_cores")

    @property
    def cores_per_process(self) -> int:
        return self.sampling_cores + self.training_cores

    @property
    def total_cores(self) -> int:
        return self.num_processes * self.cores_per_process

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.num_processes, self.sampling_cores, self.training_cores)

    @classmethod
    def from_tuple(cls, cfg) -> "RuntimeConfig":
        n, s, t = cfg
        return cls(num_processes=int(n), sampling_cores=int(s), training_cores=int(t))

    def __str__(self) -> str:
        return (
            f"(n={self.num_processes}, samp={self.sampling_cores}, "
            f"train={self.training_cores})"
        )
