"""Runtime configuration record."""

from __future__ import annotations

from dataclasses import dataclass

from repro.tuning.defaults import DEFAULT_QUEUE_DEPTH
from repro.utils.validation import check_positive_int

__all__ = ["RuntimeConfig"]


@dataclass(frozen=True)
class RuntimeConfig:
    """One point of ARGO's design space (paper Sec. V).

    Attributes
    ----------
    num_processes:
        GNN training processes instantiated by the Multi-Process Engine.
    sampling_cores:
        CPU cores bound to mini-batch sampling, per process.
    training_cores:
        CPU cores bound to model propagation, per process.
    backend:
        Execution backend the engine should run the ranks on
        (``inline``/``thread``/``process``); searchable by the autotuner
        via :class:`repro.tuning.space.BackendSpace`.
    prefetch:
        Run the sampling/compute overlap pipeline (:mod:`repro.pipeline`):
        each rank gets ``sampling_cores`` sampler workers feeding a
        bounded batch queue.  Off, ``sampling_cores`` only informs the
        cost model and core binding; on, it also sets the worker count —
        the ``s`` axis changes measured wall clock.
    queue_depth:
        Prefetch lookahead bound (batches sampled ahead of compute per
        rank); ignored when ``prefetch`` is off.  Searchable by the
        autotuner via ``BackendSpace(..., queue_depths=...)``.
    persistent:
        Process-backend execution mode: ``True`` (default) drives a pool
        of long-lived rank workers over shared-memory plan/param
        channels (launch tax paid once); ``False`` respawns workers
        every epoch (the paper's re-launch behaviour).  Ignored by the
        in-process backends.
    """

    num_processes: int
    sampling_cores: int
    training_cores: int
    backend: str = "inline"
    prefetch: bool = False
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    persistent: bool = True

    def __post_init__(self):
        check_positive_int(self.num_processes, "num_processes")
        check_positive_int(self.sampling_cores, "sampling_cores")
        check_positive_int(self.training_cores, "training_cores")
        check_positive_int(self.queue_depth, "queue_depth")
        object.__setattr__(self, "prefetch", bool(self.prefetch))
        object.__setattr__(self, "persistent", bool(self.persistent))
        # normalize like get_backend so the same string is accepted by
        # both the engine and the config path
        object.__setattr__(self, "backend", str(self.backend).lower())
        # validate lazily against the live registry (avoids import cycles
        # and keeps third-party registered backends selectable)
        from repro.exec import available_backends

        if self.backend not in available_backends():
            raise ValueError(
                f"backend must be one of {sorted(available_backends())}, "
                f"got {self.backend!r}"
            )

    @property
    def cores_per_process(self) -> int:
        return self.sampling_cores + self.training_cores

    @property
    def total_cores(self) -> int:
        return self.num_processes * self.cores_per_process

    def as_tuple(self) -> tuple[int, int, int]:
        """The numeric ``(n, s, t)`` triple (backend carried separately)."""
        return (self.num_processes, self.sampling_cores, self.training_cores)

    @classmethod
    def from_tuple(cls, cfg) -> "RuntimeConfig":
        """Build from ``(n, s, t)``, ``(n, s, t, backend)`` or
        ``(n, s, t, backend, queue_depth)``.

        The 5-tuple form is what ``BackendSpace(..., queue_depths=...)``
        emits: a searched queue depth implies the overlap pipeline, so
        ``prefetch`` switches on.
        """
        if len(cfg) == 5:
            n, s, t, backend, q = cfg
            return cls(
                num_processes=int(n),
                sampling_cores=int(s),
                training_cores=int(t),
                backend=str(backend),
                prefetch=True,
                queue_depth=int(q),
            )
        if len(cfg) == 4:
            n, s, t, backend = cfg
            return cls(
                num_processes=int(n),
                sampling_cores=int(s),
                training_cores=int(t),
                backend=str(backend),
            )
        n, s, t = cfg
        return cls(num_processes=int(n), sampling_cores=int(s), training_cores=int(t))

    def __str__(self) -> str:
        base = (
            f"(n={self.num_processes}, samp={self.sampling_cores}, "
            f"train={self.training_cores}"
        )
        if self.backend != "inline":
            base = f"{base}, backend={self.backend}"
        if self.prefetch:
            base = f"{base}, prefetch=q{self.queue_depth}"
        if not self.persistent:
            base = f"{base}, respawn"
        return f"{base})"
