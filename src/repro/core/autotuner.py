"""Online auto-tuning (paper Algorithm 1).

The tuner takes only ``num_searches`` as input — no information about the
model, dataset or platform (paper Sec. V-C).  For the first
``num_searches`` epochs it proposes a configuration, observes that
epoch's training time, and updates the BayesOpt surrogate; afterwards it
locks in the best configuration found.

The tuner also accounts for its own cost (paper Sec. VI-D profiles 1.5 to
9.6 seconds total overhead and ~10-20 MB of memory): ``overhead_seconds``
measures pure tuner computation (GP fits + acquisition scans), and
``surrogate_memory_bytes`` estimates the surrogate's footprint.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.bayesopt.optimizer import BayesianOptimizer
from repro.core.config import RuntimeConfig
from repro.tuning.space import Config, ConfigSpace
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive_int

__all__ = ["OnlineAutoTuner", "TuneResult"]


@dataclass
class TuneResult:
    """Outcome of an online tuning run."""

    best_config: Config
    best_observed: float
    history: list[tuple[Config, float]]
    num_searches: int
    overhead_seconds: float
    surrogate_memory_bytes: int

    def best_so_far(self) -> list[float]:
        out, cur = [], np.inf
        for _, v in self.history:
            cur = min(cur, v)
            out.append(cur)
        return out


class OnlineAutoTuner:
    """Algorithm 1: BayesOpt-driven online configuration search.

    Parameters
    ----------
    space:
        The configuration design space for the target platform.
    num_searches:
        Online-learning epochs before locking the best configuration
        (paper Table VI: 35/45 on Ice Lake, 20/25 on Sapphire Rapids —
        5-6% of their space; use ``space.paper_budget()`` for ours).
    seed:
        Controls the random initial design.
    acquisition:
        BayesOpt acquisition (default EI).
    """

    def __init__(
        self,
        space: ConfigSpace,
        num_searches: int,
        *,
        seed: int = 0,
        acquisition: str = "ei",
        n_initial: int | None = None,
    ):
        self.space = space
        self.num_searches = check_positive_int(num_searches, "num_searches")
        self.seed = int(seed)
        if n_initial is None:
            n_initial = max(3, min(8, self.num_searches // 3))
        self.bo = BayesianOptimizer(
            space.features(),
            n_initial=n_initial,
            acquisition=acquisition,
            rng=derive_rng(seed, "autotuner"),
        )
        self.history: list[tuple[Config, float]] = []
        self.overhead_seconds = 0.0

    # ------------------------------------------------------------------
    # step-wise interface (mirrors Algorithm 1's loop body)
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return len(self.history) >= self.num_searches

    def propose(self) -> Config:
        """Next configuration to train one epoch with."""
        t0 = time.perf_counter()
        idx = self.bo.ask()
        self.overhead_seconds += time.perf_counter() - t0
        return self.space.configs[idx]

    def observe(self, config: Config, epoch_time: float) -> None:
        """Feed one (configuration, epoch time) observation back."""
        t0 = time.perf_counter()
        self.bo.tell(self.space.index(tuple(config)), float(epoch_time))
        self.history.append((tuple(config), float(epoch_time)))
        self.overhead_seconds += time.perf_counter() - t0

    def get_opt(self) -> Config:
        """Best configuration found so far (Algorithm 1's ``Tuner.get_opt``)."""
        if not self.history:
            raise RuntimeError("no observations yet")
        return self.space.configs[self.bo.best_index]

    # ------------------------------------------------------------------
    def tune(self, objective: Callable[[Config], float]) -> TuneResult:
        """Run the full online-learning phase against ``objective``.

        ``objective(config)`` must train one epoch under ``config`` and
        return the measured epoch time (seconds).
        """
        while not self.done:
            cfg = self.propose()
            self.observe(cfg, objective(cfg))
        best = self.get_opt()
        return TuneResult(
            best_config=best,
            best_observed=self.bo.best_value,
            history=list(self.history),
            num_searches=self.num_searches,
            overhead_seconds=self.overhead_seconds,
            surrogate_memory_bytes=self.surrogate_memory_bytes,
        )

    # ------------------------------------------------------------------
    @property
    def surrogate_memory_bytes(self) -> int:
        """Memory held by the surrogate: kernel matrix + observations."""
        m = len(self.history)
        n_cand = len(self.space)
        # K (m x m), candidate features (n x 2), bookkeeping
        return 8 * (m * m + 2 * n_cand + 4 * m)

    def best_runtime_config(self) -> RuntimeConfig:
        return RuntimeConfig.from_tuple(self.get_opt())
