"""Execution-backend abstraction for the Multi-Process Engine.

The engine owns *what* one epoch of semantics-preserving data-parallel
training means (paper Sec. IV-B2: split each global batch into ``n``
rank chunks, sample + propagate independently, average gradients, step
every replica identically); an :class:`ExecutionBackend` owns *how* the
``n`` ranks execute — sequentially, as threads, or as real OS processes
over shared memory.  Backends register themselves by name so the engine,
CLI and autotuner can select them with a string
(``get_backend("process")``).

The helpers :func:`rank_chunk` and :func:`forward_loss` are the single
source of truth for batch splitting and the per-rank training step; the
inline/thread backends and the process backend's workers all call them,
which is what makes loss trajectories comparable across backends.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict

import numpy as np

from repro.autograd.functional import cross_entropy
from repro.autograd.module import Module
from repro.autograd.ops import gather_rows
from repro.autograd.tensor import Tensor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import MultiProcessEngine

__all__ = [
    "EpochResult",
    "ExecutionBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "rank_chunk",
    "forward_loss",
    "sample_step",
    "compute_loss",
    "acquire_batch",
]


@dataclass
class EpochResult:
    """What a backend hands back from one epoch: losses and sampled work.

    ``sample_wait`` / ``compute_time`` are the per-stage breakdown summed
    over ranks: seconds the trainer spent acquiring batches (blocked on
    the sampler — the whole sampling cost when running synchronously, the
    residual queue wait when prefetching) and seconds in the train stage
    — forward/backward/optimizer work *plus* gradient synchronisation,
    so a rank stalled in the all-reduce barrier books that straggler
    wait as train-stage time, not sample wait.

    ``launch_time`` is the epoch's worker-launch tax: forking rank
    processes and shipping weights into them.  Zero for the in-process
    backends; paid every epoch by the respawning process backend; ≈0
    after the first epoch under the persistent worker pool.

    ``pool_launches`` / ``pool_parked`` are the persistent pool's
    lifecycle diagnostics as of this epoch: cumulative worker (re)fork
    count and workers currently parked idle after a shrink.  Zero for
    every other execution mode.
    """

    losses: list[float]
    sampled_edges: int
    sample_wait: float = 0.0
    compute_time: float = 0.0
    launch_time: float = 0.0
    pool_launches: int = 0
    pool_parked: int = 0


def rank_chunk(global_batch: np.ndarray, world_size: int, rank: int) -> np.ndarray:
    """Rank ``rank``'s near-equal chunk of one global batch.

    Every backend (and every worker process) must split identically for
    the union-of-chunks semantics contract to hold; this function is the
    one place the split is defined.
    """
    return np.array_split(global_batch, world_size)[rank]


def sample_step(sampler, graph, seeds, rng):
    """The sampling stage of one rank step (runs on sampler workers)."""
    return sampler.sample(graph, seeds, rng=rng)


def acquire_batch(
    prefetcher, sampler, graph, global_batch, *, world_size, rank, seed, epoch, step
):
    """The batch-acquisition stage of one rank step, prefetched or not.

    The single definition of the acquisition protocol all three backends
    share: take the next in-order batch from ``prefetcher`` when the
    pipeline is on, otherwise split + sample synchronously with the
    identical per-step RNG (``derive_rng(seed, "sample", epoch, step,
    rank)``).  Returns ``None`` for an empty rank chunk in both modes.
    """
    from repro.utils.rng import derive_rng

    if prefetcher is not None:
        return next(prefetcher)
    seeds = rank_chunk(global_batch, world_size, rank)
    if len(seeds) == 0:
        return None
    return sample_step(sampler, graph, seeds, derive_rng(seed, "sample", epoch, step, rank))


def compute_loss(batch, features: Tensor, labels: np.ndarray, model: Module):
    """The compute stage: gather + forward + loss on an already-sampled batch."""
    x = gather_rows(features, batch.input_ids)
    out = model(batch.blocks, x)
    loss = cross_entropy(out, labels[batch.seeds])
    return loss, batch.total_edges


def forward_loss(sampler, graph, features: Tensor, labels: np.ndarray, model: Module, seeds, rng):
    """One rank's sample + forward + loss; returns ``(loss, sampled_edges)``.

    Composition of :func:`sample_step` and :func:`compute_loss` — the
    synchronous path; the prefetching backends run the two stages on
    different threads but with identical arguments, so the numerics
    cannot differ.
    """
    batch = sample_step(sampler, graph, seeds, rng)
    return compute_loss(batch, features, labels, model)


class ExecutionBackend(ABC):
    """Strategy object executing the engine's ``n`` ranks for one epoch.

    Contract
    --------
    * ``run_epoch`` trains every rank through every step of ``plan`` and
      leaves all of ``engine.replicas`` holding identical post-epoch
      weights (and ``engine.optimizers`` identical states) — exactly as
      if the inline backend had run.
    * ``shutdown`` releases any cross-epoch resources (worker pools,
      shared-memory segments); it must be idempotent and safe to call on
      a backend that never ran.
    """

    #: registry key; set by subclasses
    name: str = ""

    @abstractmethod
    def run_epoch(
        self, engine: "MultiProcessEngine", epoch: int, plan: list[np.ndarray]
    ) -> EpochResult:
        """Execute one epoch's plan across all ranks."""

    def shutdown(self) -> None:
        """Release backend-held resources (default: nothing to release)."""


_REGISTRY: Dict[str, Callable[..., ExecutionBackend]] = {}


def register_backend(name: str):
    """Class decorator adding an execution backend to the registry."""

    def deco(cls):
        if not issubclass(cls, ExecutionBackend):
            raise TypeError(f"{cls!r} is not an ExecutionBackend")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return deco


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str, **options) -> ExecutionBackend:
    """Instantiate a registered backend by name.

    ``options`` are forwarded to the backend constructor (e.g.
    ``get_backend("process", start_method="spawn")``).
    """
    key = str(name).lower()
    if key not in _REGISTRY:
        raise ValueError(
            f"backend must be one of {sorted(_REGISTRY)}, got {name!r}"
        )
    return _REGISTRY[key](**options)
