"""Persistent-runtime protocol: plan messages and the rank-worker loop.

The persistent execution runtime inverts the original process backend's
shape: instead of forking ``n`` fresh rank processes per epoch (each
swallowing a pickled copy of the model), the :class:`repro.exec.pool.WorkerPool`
forks :func:`persistent_worker_main` processes **once** and then drives
them with small :class:`EpochPlan` messages over per-rank command queues.
Everything heavy travels through shared memory:

* the graph/feature/label substrate via
  :class:`repro.graph.shm.SharedGraphStore` (unchanged),
* model weights and optimizer state via a
  :class:`repro.shm.arena.ParamStore` — published by the parent before
  each epoch command, republished by rank 0 after the epoch,
* gradients via :class:`repro.distributed.comm.ProcessWorld` collectives
  (the world is created once per pool and reused across epochs).

An :class:`EpochPlan` therefore only carries the epoch id, the global
batch split (node-id arrays — the one per-epoch payload that genuinely
changes), the rank's core binding, the prefetch knobs, the sampler object
(small; it may be swapped between epochs) and the rank's mutable
non-parameter model state.

Numerics are bit-identical to the respawn path by construction: the
worker reloads the parent-published parameters and optimizer state at
the top of every epoch and then executes exactly the same per-step
protocol (:func:`repro.exec.base.acquire_batch` + :func:`compute_loss`,
per-step derived RNG, synchronous gradient averaging) as the
single-epoch worker.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import queue as queue_mod
import sys
import time
import traceback
from dataclasses import dataclass, field

import numpy as np

from repro.autograd.optim import make_optimizer
from repro.autograd.tensor import Tensor
from repro.distributed.comm import ProcessWorld
from repro.distributed.ddp import DistributedDataParallel
from repro.exec.base import acquire_batch, compute_loss
from repro.graph.shm import SharedGraphStore
from repro.obs.trace import (
    NULL_RECORDER,
    SPAN_DELTA_SYNC,
    SPAN_PLAN,
    SPAN_RELOAD,
    SPAN_STEAL,
)
from repro.pipeline.prefetch import rank_step_prefetcher
from repro.platform.corebind import apply_binding, sampling_affinity, training_affinity
from repro.shm.arena import ParamStore
from repro.tuning.defaults import DEFAULT_QUEUE_DEPTH

__all__ = [
    "EpochPlan",
    "GraphDeltaPlan",
    "InferPlan",
    "Rebind",
    "WorkerInit",
    "persistent_worker_main",
    "collect_results",
    "fold_rank_state",
    "epoch_plan_for_rank",
    "encode_epoch_commands",
    "decode_epoch_command",
]


@dataclass
class EpochPlan:
    """One epoch's marching orders for one persistent rank worker.

    Weights are *not* in here — the parent publishes them to the shared
    :class:`~repro.shm.arena.ParamStore` before sending the plan, and the
    worker loads them on receipt.  ``extra_state`` is the rank's mutable
    non-parameter model state (dropout-stream counters, ...), tiny and
    rank-specific, so it rides the command queue.
    """

    epoch: int
    plan: list  # global batch node-id arrays, shared by all ranks
    sampler: object
    binding: object = None  # ProcessBinding | tuple[int, ...] | None
    prefetch: bool = False
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    sampler_workers: int = 1
    extra_state: dict = field(default_factory=dict)


@dataclass
class InferPlan:
    """One forward-only serving batch for one persistent rank worker.

    The online-inference counterpart of :class:`EpochPlan`: no optimizer,
    no collectives — the worker's model template holds the served
    weights (pickled at fork) until a hot snapshot swap bumps
    ``generation``, at which point the worker reloads them from the
    shared :class:`~repro.shm.arena.ParamStore` (one memcpy; the pool is
    never relaunched).  ``node_ids`` is this *rank's* chunk of the
    micro-batch; each node is sampled with an RNG derived purely from
    ``(seed, node)``, so pool predictions are bit-identical to inline
    single-request inference regardless of how requests were batched or
    sharded.  ``batch_mode`` picks the forward: ``"per_node"``
    (:func:`repro.serve.engine.predict_nodes`) or ``"frontier"``
    (:func:`repro.serve.frontier.predict_frontier`, one vectorised
    forward over the merged frontiers — same bits, amortised overhead).

    Results return through a :class:`~repro.shm.arena.BatchArena` slot
    (``slot``; one per rank) when ``arena_spec`` is given and the rows
    fit, else pickled through the result queue.
    """

    seq: int
    node_ids: np.ndarray
    sampler: object
    seed: int
    slot: int = 0
    arena_spec: dict | None = None
    batch_mode: str = "per_node"
    #: served-weight generation; mismatch with the worker's loaded
    #: generation triggers a ParamStore reload before the forward
    generation: int = 0
    #: graph generation this batch was planned against.  A worker whose
    #: synced topology is older raises instead of serving silently-stale
    #: predictions — the parent always broadcasts a GraphDeltaPlan on the
    #: same FIFO queue *before* any InferPlan at the new generation, so a
    #: mismatch means a protocol bug, not a race
    graph_generation: int = 0
    #: how this batch was assigned to ranks.  ``"chunk"``/``"size_binned"``
    #: plans are fully described by ``node_ids`` (the parent already
    #: applied the bin-packing); ``"steal"`` plans ship an *empty*
    #: ``node_ids`` and the worker instead claims whole request segments
    #: from the shared task ring (``ring_spec`` +
    #: :class:`~repro.distributed.comm.ClaimBoard`) — own bin first, then
    #: the heaviest peer's tail.  Any policy is bit-identical to any
    #: other: each request's prediction is a pure function of
    #: ``(weights, seed, node)``
    shard_policy: str = "chunk"
    #: :class:`~repro.shm.arena.TaskRing` spec for steal plans (attached
    #: lazily and cached by segment name, like the result arena)
    ring_spec: dict | None = None
    #: :class:`~repro.obs.trace.TraceArena` spec when the engine traces —
    #: the worker attaches once (cached by segment name) and records
    #: spans into its own ring; ``None`` keeps the no-op recorder
    trace_spec: dict | None = None


@dataclass
class GraphDeltaPlan:
    """Streaming-update announcement: new graph fragments are published.

    Fire-and-forget — sent by
    :meth:`repro.exec.pool.WorkerPool.broadcast_delta` to **every**
    forked worker (parked ranks included, so a later grow-rebind serves
    current topology) on the per-rank FIFO command queues.  The worker
    attaches the listed fragments it has not mapped yet
    (:meth:`~repro.graph.shm.SharedGraphStore.sync_deltas` — fragments
    are immutable once published, so lazy attach is race-free), rebuilds
    its graph view/feature matrix, and keeps serving; no ack, no
    relaunch, ``pool.launches`` stays flat.  Ordering with respect to
    :class:`InferPlan` is guaranteed by queue FIFO: any plan at
    ``graph_generation >= g`` is enqueued after the delta that created
    generation ``g``.
    """

    #: graph generation after applying every fragment in ``fragment_specs``
    graph_generation: int
    #: the store's full published fragment spec list (cumulative)
    fragment_specs: list


@dataclass
class Rebind:
    """Resize command: switch a persistent worker to another world size.

    Sent by :meth:`repro.exec.pool.WorkerPool.ensure` when the engine's
    ``n`` shrinks (or grows back) within the pool's forked worker count:
    the recipient adopts the new size on the pool's single
    :class:`ProcessWorld` (whose shared resizable barrier the parent
    already re-counted) and keeps serving — no re-fork, no re-pickle.
    Ranks beyond ``world_size`` are simply never commanded again until
    a later rebind: they park in the idle loop.
    """

    world_size: int


@dataclass
class WorkerInit:
    """One-time launch payload for a persistent rank worker.

    ``model`` is the rank's replica pickled exactly once per pool launch
    — the template whose parameters are thereafter overwritten from the
    :class:`~repro.shm.arena.ParamStore` every epoch.
    """

    rank: int
    world_size: int
    store_spec: dict
    param_spec: dict
    model: object
    optimizer: str
    lr: float
    seed: int
    #: served-weight generation baked into the pickled model — lets a
    #: relaunched pool skip the first InferPlan's redundant reload
    generation: int = 0
    #: the forking process's pid, captured at the fork site: the orphan
    #: watchdog compares against it, and reading getppid() in the child
    #: instead would record the *reaper's* pid if the parent died during
    #: the fork window — masking the orphaning forever
    parent_pid: int = 0


def _run_epoch_steps(
    plan: EpochPlan,
    *,
    rank: int,
    world_size: int,
    seed: int,
    graph,
    features: Tensor,
    labels,
    model: DistributedDataParallel,
    optimizer,
) -> dict:
    """Execute one epoch's steps for one rank; returns the report dict.

    The single definition of the per-epoch rank protocol, shared by the
    respawn worker (:mod:`repro.exec.process`) and the persistent worker
    below — which is what keeps the two modes bit-identical.
    """
    prefetcher = None
    if plan.prefetch:
        # sampler threads pin to the sampling cores; the trainer thread
        # (this one) re-pins to the training cores so the two stages own
        # the binding's core split
        prefetcher = rank_step_prefetcher(
            plan.sampler,
            graph,
            plan.plan,
            world_size=world_size,
            rank=rank,
            seed=seed,
            epoch=plan.epoch,
            num_workers=plan.sampler_workers,
            queue_depth=plan.queue_depth,
            sampling_cores=sampling_affinity(plan.binding),
        )
        apply_binding(training_affinity(plan.binding))
    try:
        losses: list[float] = []
        edges = 0
        sample_wait = 0.0
        compute_time = 0.0
        for step, global_batch in enumerate(plan.plan):
            model.zero_grad()
            start = time.perf_counter()
            batch = acquire_batch(
                prefetcher,
                plan.sampler,
                graph,
                global_batch,
                world_size=world_size,
                rank=rank,
                seed=seed,
                epoch=plan.epoch,
                step=step,
            )
            sample_wait += time.perf_counter() - start
            start = time.perf_counter()
            if batch is not None:
                loss, e = compute_loss(batch, features, labels, model.module)
                loss.backward()
                losses.append(loss.item())
                edges += e
            model.sync_gradients()
            optimizer.step()
            compute_time += time.perf_counter() - start
        return {
            "rank": rank,
            "status": "ok",
            "losses": losses,
            "edges": edges,
            "sample_wait": sample_wait,
            "compute_time": compute_time,
            # mutable non-parameter model state: the parent must advance
            # its replicas identically or the next epoch diverges
            "extra_state": model.module.extra_state_dict(),
        }
    finally:
        if prefetcher is not None:
            prefetcher.close()


def _run_infer_plan(
    plan: InferPlan, *, rank: int, graph, features: Tensor, model, arena,
    ring=None, claims=None, recorder=NULL_RECORDER,
) -> dict:
    """Serve one rank's share of a forward-only inference batch.

    For ``chunk``/``size_binned`` plans the share is exactly
    ``plan.node_ids``.  For ``steal`` plans the worker walks its
    claim-priority order over the shared task ring's segments (own bin
    in plan order, then each peer's tail, heaviest peer first), claiming
    each through the :class:`~repro.distributed.comm.ClaimBoard` —
    exactly-once per segment whatever the interleaving — and forwards
    every segment it wins; claims outside its own bin count as steals.
    Each segment is one forward call, so the per-request BLAS call
    geometry (and therefore every bit of every prediction) is identical
    to any other assignment.

    The result carries this rank's phase timing split as a plain tuple
    (``result["phases"]``), its busy time (``busy_s``), its steal
    count, and — for steal plans — the claimed segment ids in claim
    order so the parent can scatter rows back.  ``busy_s`` is measured
    in **CPU seconds** (:func:`time.process_time`), not wall: on an
    oversubscribed host the OS time-slices ranks over shared cores and
    every rank's wall clock would read the whole batch, hiding exactly
    the per-rank load imbalance this counter exists to expose.  On a
    dedicated core the two are the same for compute-bound work.
    """
    # lazy import: repro.serve imports this module's package at load time
    if plan.batch_mode == "frontier":
        from repro.serve.frontier import predict_frontier as forward
    else:
        from repro.serve.engine import predict_nodes as forward
    from repro.utils.phases import PhaseStats

    phases = PhaseStats()
    steals = 0
    segments: list[int] | None = None
    wall0 = time.perf_counter() if recorder.enabled else 0.0
    start = time.process_time()
    if plan.shard_policy == "steal":
        from repro.serve.frontier import empty_predictions, steal_order

        node_full, seg_splits, rank_splits, bin_weights = ring.load()
        own_lo, own_hi = int(rank_splits[rank]), int(rank_splits[rank + 1])
        segments = []
        parts = []
        for seg in steal_order(rank, rank_splits, bin_weights):
            seg = int(seg)
            if not claims.try_claim(seg):
                continue
            stolen = not own_lo <= seg < own_hi
            seg_t0 = time.perf_counter() if recorder.enabled and stolen else 0.0
            ids = node_full[seg_splits[seg] : seg_splits[seg + 1]]
            parts.append(
                forward(
                    model, graph, features, plan.sampler, ids,
                    seed=plan.seed, phases=phases, recorder=recorder,
                )
            )
            segments.append(seg)
            if stolen:
                steals += 1
                if recorder.enabled:
                    recorder.record(SPAN_STEAL, seg_t0, time.perf_counter(), seg)
        preds = (
            np.concatenate(parts, axis=0) if parts else empty_predictions(model)
        )
    else:
        preds = forward(
            model, graph, features, plan.sampler, plan.node_ids,
            seed=plan.seed, phases=phases, recorder=recorder,
        )
    result = {
        "rank": rank, "status": "ok", "seq": plan.seq,
        "phases": phases.snapshot(),
        "phase_hists": phases.hists_snapshot(),
        "busy_s": time.process_time() - start,
        "steals": steals,
    }
    if recorder.enabled:
        recorder.record(SPAN_PLAN, wall0, time.perf_counter(), plan.seq)
    if segments is not None:
        result["segments"] = segments
    if arena is not None and preds.size:
        layouts = arena.write(plan.slot, [preds])
        if layouts is not None:
            result["layouts"] = layouts
            return result
    result["preds"] = preds
    return result


def persistent_worker_main(
    init: WorkerInit, world: ProcessWorld, cmd_q, result_q, claims=None
) -> None:
    """Entry point of one long-lived rank process.

    Blocks on its command queue between epochs; a ``None`` sentinel shuts
    it down cleanly.  Any epoch failure aborts the world (so peers stuck
    in collectives fail fast), reports the error, and exits — the pool
    treats a failed epoch as fatal and relaunches on the next one, which
    matches the respawn backend's fresh-processes-per-epoch semantics.

    ``world`` is the pool's **single** :class:`ProcessWorld`, shared by
    every forked worker at every active size: its
    :class:`~repro.distributed.comm.ResizableBarrier` lets the parent
    resize the shared party count, and a :class:`Rebind` command makes
    this worker adopt the new size locally
    (:meth:`~repro.distributed.comm.ProcessWorld.rebind`) — that is what
    lets the pool shrink/grow within its forked worker count without
    re-forking anyone or pre-creating one world per candidate size.
    Ranks beyond the active size are simply never commanded: they park
    in the idle loop.  :class:`InferPlan` commands run a forward-only
    serving batch: no collectives, no optimizer, results via arena slot
    or queue.  ``claims`` is the pool's
    :class:`~repro.distributed.comm.ClaimBoard` (inherited at fork —
    the lock/RawArray pair cannot travel the queues), consulted only
    while a steal-mode plan of this worker's own batch is in flight.

    Orphan watchdog: a SIGKILL'd parent can never send the stop
    sentinel, and a long-lived worker parked in ``get()`` would outlive
    it holding every shared segment open.  The idle loop therefore polls
    its parent pid — re-parenting means the pool's owner is gone, so the
    worker exits and the (inherited) resource tracker reclaims the
    leaked segments once the last holder is gone.
    """
    store = None
    params = None
    arena = None
    arena_name = None
    ring = None
    ring_name = None
    trace = None
    trace_name = None
    recorder = NULL_RECORDER
    generation = init.generation  # weights currently held by the template
    parent_pid = init.parent_pid or os.getppid()
    world.rebind(init.world_size)
    try:
        store = SharedGraphStore.attach(init.store_spec)
        params = ParamStore.attach(init.param_spec)
        # zero-copy views over the shared segments; rebuilt only when a
        # GraphDeltaPlan announces new fragments (graph_generation bump)
        graph = store.graph
        features = Tensor(store.full_features())
        labels = store.full_labels()
        graph_generation = store.graph_generation
        model_template = init.model
        optimizer = make_optimizer(init.optimizer, model_template.parameters(), init.lr)
        while True:
            try:
                cmd = cmd_q.get(timeout=1.0)
            except queue_mod.Empty:
                if os.getppid() != parent_pid:
                    return  # orphaned: the pool's owner died ungracefully
                continue
            if cmd is None:
                return
            if isinstance(cmd, Rebind):
                world.rebind(cmd.world_size)
                continue
            if isinstance(cmd, GraphDeltaPlan):
                t0 = time.perf_counter() if recorder.enabled else 0.0
                store.sync_deltas(cmd.fragment_specs)
                graph = store.graph
                features = Tensor(store.full_features())
                labels = store.full_labels()
                graph_generation = store.graph_generation
                if recorder.enabled:
                    recorder.record(
                        SPAN_DELTA_SYNC, t0, time.perf_counter(), graph_generation
                    )
                continue
            if isinstance(cmd, InferPlan):
                if cmd.graph_generation != graph_generation:
                    raise RuntimeError(
                        f"InferPlan at graph generation {cmd.graph_generation} "
                        f"but worker topology is at {graph_generation} — "
                        f"GraphDeltaPlan ordering violated"
                    )
                if cmd.trace_spec is not None:
                    spec_name = cmd.trace_spec["cursor"].shm_name
                    if trace_name != spec_name:
                        if trace is not None:
                            trace.close()
                        from repro.obs.trace import TraceArena

                        trace = TraceArena.attach(cmd.trace_spec)
                        trace_name = spec_name
                        recorder = trace.recorder(init.rank)
                if cmd.generation != generation:
                    # hot snapshot swap: the parent republished weights
                    # through the ParamStore before bumping the counter
                    t0 = time.perf_counter() if recorder.enabled else 0.0
                    model_template.load_state_dict(params.load()["model"])
                    if recorder.enabled:
                        recorder.record(
                            SPAN_RELOAD, t0, time.perf_counter(), cmd.generation
                        )
                    generation = cmd.generation
                if cmd.arena_spec is not None and arena_name != cmd.arena_spec["shm_name"]:
                    if arena is not None:
                        arena.close()
                    from repro.shm.arena import BatchArena

                    arena = BatchArena.attach(cmd.arena_spec)
                    arena_name = cmd.arena_spec["shm_name"]
                if cmd.ring_spec is not None and ring_name != cmd.ring_spec["shm_name"]:
                    if ring is not None:
                        ring.close()
                    from repro.shm.arena import TaskRing

                    ring = TaskRing.attach(cmd.ring_spec)
                    ring_name = cmd.ring_spec["shm_name"]
                result_q.put(
                    _run_infer_plan(
                        cmd,
                        rank=init.rank,
                        graph=graph,
                        features=features,
                        model=model_template,
                        arena=arena if cmd.arena_spec is not None else None,
                        ring=ring if cmd.ring_spec is not None else None,
                        claims=claims,
                        recorder=recorder if cmd.trace_spec is not None else NULL_RECORDER,
                    )
                )
                continue
            # commands arrive pre-encoded (see encode_epoch_commands)
            plan = decode_epoch_command(cmd)
            applied_cores = apply_binding(plan.binding)
            # load the parent-published state: the authoritative weights
            # for this epoch (bit-identical to the respawn path's pickles)
            state = params.load()
            model_template.load_state_dict(state["model"])
            model_template.load_extra_state_dict(plan.extra_state)
            optimizer.load_state_dict(state["optimizer"])
            comm = world.communicator(init.rank)
            model = DistributedDataParallel(model_template, comm)
            result = _run_epoch_steps(
                plan,
                rank=init.rank,
                world_size=world.world_size,
                seed=init.seed,
                graph=graph,
                features=features,
                labels=labels,
                model=model,
                optimizer=optimizer,
            )
            result["applied_cores"] = applied_cores
            if init.rank == 0:
                # weights return through shared memory, not the queue
                params.publish(
                    {
                        "model": model.module.state_dict(),
                        "optimizer": optimizer.state_dict(),
                    }
                )
            result_q.put(result)
    except BaseException as exc:
        world.abort()  # unblock peers stuck in collectives
        result_q.put(
            {
                "rank": init.rank,
                "status": "error",
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
            }
        )
        sys.exit(1)  # quiet exit: the parent reports the queued error
    finally:
        if trace is not None:
            trace.close()
        if ring is not None:
            ring.close()
        if arena is not None:
            arena.close()
        if params is not None:
            params.close()
        if store is not None:
            store.close()


def fold_rank_state(engine, model_state, optimizer_state, results: dict) -> None:
    """Fold one epoch's evolved worker state back into the engine.

    The single definition of the post-epoch fold (weights + optimizer
    into every replica, per-rank extra state from the reports), shared
    by the persistent pool and the respawn backend so the two modes'
    bit-identical invariant cannot drift.
    """
    for replica in engine.replicas:
        replica.load_state_dict(model_state)
    for opt in engine.optimizers:
        opt.load_state_dict(optimizer_state)
    for rank, replica in enumerate(engine.replicas):
        replica.load_extra_state_dict(results[rank]["extra_state"])


def collect_results(
    procs, result_q, world: ProcessWorld, n: int, num_steps: int, timeout: float,
    *, what: str = "process backend epoch",
) -> dict:
    """Drain one result per rank, failing fast on worker death.

    ``timeout`` bounds a single collective (a deadlocked barrier breaks
    within it inside the workers); the whole-epoch budget here scales
    with the number of steps so long, healthy epochs are never killed by
    the per-collective deadline.  Shared by the respawn backend and the
    persistent pool — the failure semantics must not differ between them.
    """
    results: dict[int, dict] = {}
    deadline = time.monotonic() + timeout * (1 + num_steps)
    while len(results) < n:
        try:
            item = result_q.get(timeout=0.2)
        except queue_mod.Empty:
            dead = [p for p in procs if not p.is_alive() and p.exitcode not in (0, None)]
            if dead:
                world.abort()
                raise RuntimeError(
                    f"rank process died with exit code {dead[0].exitcode} "
                    f"(killed mid-epoch?)"
                ) from None
            if time.monotonic() > deadline:
                world.abort()
                raise TimeoutError(
                    f"{what} exceeded its {timeout * (1 + num_steps):.0f}s budget "
                    f"({len(results)}/{n} ranks reported)"
                )
            continue
        if item["status"] != "ok":
            world.abort()
            # a failing rank breaks its peers' collectives; drain briefly
            # so the *root* error is reported, not a secondary break
            errors = [item]
            deadline_drain = time.monotonic() + 1.0
            while time.monotonic() < deadline_drain:
                try:
                    extra = result_q.get(timeout=0.1)
                except queue_mod.Empty:
                    continue
                if extra["status"] != "ok":
                    errors.append(extra)
            root = next(
                (e for e in errors if "collective broken" not in e["error"]), errors[0]
            )
            raise RuntimeError(
                f"rank {root['rank']} failed: {root['error']}\n{root.get('traceback', '')}"
            )
        results[item["rank"]] = item
    return results


def epoch_plan_for_rank(engine, epoch: int, plan: list[np.ndarray], rank: int) -> EpochPlan:
    """Build rank ``rank``'s :class:`EpochPlan` from the engine's state."""
    bindings = engine.bindings
    return EpochPlan(
        epoch=epoch,
        plan=plan,
        sampler=engine.sampler,
        binding=bindings[rank] if bindings is not None else None,
        prefetch=engine.prefetch,
        queue_depth=engine.queue_depth,
        sampler_workers=engine.sampler_workers,
        extra_state=engine.replicas[rank].extra_state_dict(),
    )


#: the EpochPlan fields that differ between ranks; everything else is
#: rank-invariant and ships in the shared pickle (the dataclass is the
#: schema — encode/decode split along this one list, so a new knob
#: added to EpochPlan + epoch_plan_for_rank transports automatically)
_RANK_FIELDS = ("binding", "extra_state")


def encode_epoch_commands(engine, epoch: int, plan: list[np.ndarray]) -> list[tuple]:
    """Serialise one epoch's per-rank command-queue payloads.

    The heavy, rank-invariant part — the batch split's node-id arrays
    and the sampler — is pickled **once** and shared by every rank's
    payload (a pickled ``bytes`` ships as a cheap memcpy); only the tiny
    rank-specific remainder (:data:`_RANK_FIELDS`) is pickled per rank.
    Pre-pickling here, not in the queue's feeder thread, also turns an
    unpicklable sampler into an immediate, attributable error instead of
    an opaque epoch timeout.
    """
    rank_plans = [epoch_plan_for_rank(engine, epoch, plan, rank) for rank in range(engine.n)]
    common = pickle.dumps(dataclasses.replace(rank_plans[0], binding=None, extra_state={}))
    return [
        (common, pickle.dumps({f: getattr(p, f) for f in _RANK_FIELDS}))
        for p in rank_plans
    ]


def decode_epoch_command(cmd) -> EpochPlan:
    """Inverse of :func:`encode_epoch_commands` (worker side)."""
    if isinstance(cmd, EpochPlan):  # direct (un-encoded) delivery
        return cmd
    common, rank_part = cmd
    return dataclasses.replace(pickle.loads(common), **pickle.loads(rank_part))
