"""Persistent worker pool: long-lived rank processes, launched once.

The original process backend re-forks its ``n`` rank workers — and
re-pickles every model replica — on **every** epoch, so the online
auto-tuner pays a fixed launch tax inside each measured trial.  The
:class:`WorkerPool` is the persistent alternative: rank processes are
forked once and then driven with small :class:`~repro.exec.runtime.EpochPlan`
messages over per-rank command queues, with weights moving through a
shared-memory :class:`~repro.shm.arena.ParamStore` and gradients through
one :class:`~repro.distributed.comm.ProcessWorld` reused across epochs.

The pool survives not only epochs but *engine reconstructions*: the
tuner re-launches training with a new configuration every search epoch
(paper Listing 3), and as long as the new engine's :meth:`signature`
matches (same ``n``, dataset, parameter topology, optimizer, seed), the
existing workers keep serving.  A change in ``n`` — or any signature
field — triggers a clean relaunch: the old world/params/workers are
reaped and fresh ones bound (``rebind on n change``).

Failure contract: any failed epoch (worker crash, broken collective,
timeout, killed child) reaps every worker and unlinks the pool's
world + param-store segments before the error propagates; the pool
relaunches lazily on the next epoch.  The graph store is owned by the
backend, not the pool.
"""

from __future__ import annotations

import os

import numpy as np

from repro.distributed.comm import ProcessWorld
from repro.exec.runtime import (
    WorkerInit,
    collect_results,
    encode_epoch_commands,
    fold_rank_state,
    persistent_worker_main,
)
from repro.shm.arena import ParamStore
from repro.utils.procs import reap_processes

__all__ = ["WorkerPool", "pool_signature"]


def pool_signature(engine) -> tuple:
    """What must stay constant for a live pool to keep serving an engine.

    The world size, parameter topology, optimizer choice and seed;
    anything else (sampler, bindings, prefetch knobs, the weights
    themselves) travels per epoch and may change freely.  The dataset is
    tracked separately by the pool as a strong *identity* reference —
    not an ``id()`` in the tuple, which a recycled address could forge.

    Runs on every epoch's reuse check, so it must not touch weight
    *values* — ``named_parameters`` reads shapes/dtypes without the
    array copies ``state_dict`` makes.
    """
    model = engine.replicas[0]
    return (
        engine.n,
        tuple((k, p.data.shape, p.data.dtype.str) for k, p in model.named_parameters()),
        engine.optimizer_name,
        float(engine.lr),
        int(engine.seed),
    )


class WorkerPool:
    """``n`` long-lived rank processes plus their shared channels.

    Parameters
    ----------
    ctx:
        ``multiprocessing`` context (``fork`` and ``spawn`` both work —
        all launch state is picklable and segments re-attach by name).
    timeout:
        Seconds any single collective / queue wait may block before the
        pool is declared broken; whole-epoch budgets scale with the step
        count on top of this.
    """

    def __init__(self, ctx, *, timeout: float = 120.0):
        self._ctx = ctx
        self.timeout = float(timeout)
        self.world: ProcessWorld | None = None
        self.params: ParamStore | None = None
        self.procs: list = []
        self._cmd_qs: list = []
        self._result_q = None
        self.signature: tuple | None = None
        #: strong references to the served dataset, rank-0 model and
        #: graph store (identity-checked on reuse: parameter topology
        #: alone cannot distinguish two models differing only in
        #: non-parameter config such as dropout rate; a recreated store
        #: means the workers map retired segments; and pinning the
        #: references means their ids can never be recycled mid-pool)
        self.dataset = None
        self.model = None
        self.store = None
        self.launches = 0  # diagnostic: how often workers were (re)forked

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether every worker is running and the world is usable."""
        return (
            bool(self.procs)
            and all(p.is_alive() for p in self.procs)
            and self.world is not None
            and not self.world.broken
        )

    def worker_pids(self) -> list[int]:
        """PIDs of the live rank workers (stable across epochs)."""
        return [p.pid for p in self.procs]

    # ------------------------------------------------------------------
    def ensure(self, engine, store) -> bool:
        """Make the pool serve ``engine``; returns True when it (re)launched.

        A live pool with a matching :func:`pool_signature` is reused
        as-is — this is the steady-state path whose cost is approximately
        zero.  Anything else tears the old pool down and forks afresh.
        """
        sig = pool_signature(engine)
        if (
            self.alive
            and sig == self.signature
            and self.dataset is engine.dataset
            and self.model is engine.replicas[0]
            and self.store is store
        ):
            return False
        self.shutdown()
        self._launch(engine, store, sig)
        return True

    def _launch(self, engine, store, sig: tuple) -> None:
        n = engine.n
        capacity = max(1, sum(p.size for p in engine.replicas[0].parameters()))
        self.world = ProcessWorld(n, capacity, ctx=self._ctx, timeout=self.timeout)
        self.params = ParamStore.create(
            {
                "model": engine.replicas[0].state_dict(),
                "optimizer": engine.optimizers[0].state_dict(),
            }
        )
        self._cmd_qs = [self._ctx.Queue() for _ in range(n)]
        self._result_q = self._ctx.Queue()
        procs = []
        try:
            for rank in range(n):
                init = WorkerInit(
                    rank=rank,
                    world_size=n,
                    store_spec=store.spec,
                    param_spec=self.params.spec,
                    model=engine.replicas[rank],
                    optimizer=engine.optimizer_name,
                    lr=engine.lr,
                    seed=engine.seed,
                    parent_pid=os.getpid(),
                )
                p = self._ctx.Process(
                    target=persistent_worker_main,
                    args=(init, self.world, self._cmd_qs[rank], self._result_q),
                    daemon=True,
                )
                p.start()
                procs.append(p)
        except BaseException:
            reap_processes(procs)
            self._release_channels()
            raise
        self.procs = procs
        self.signature = sig
        self.dataset = engine.dataset
        self.model = engine.replicas[0]
        self.store = store
        self.launches += 1

    # ------------------------------------------------------------------
    def publish(self, engine) -> None:
        """Ship the engine's current weights + optimizer state to the
        workers (one fixed-layout memcpy into the shared param store).

        Part of an epoch's launch cost — the backend times it as such —
        so it is a separate step from :meth:`run_epoch`.
        """
        if not self.alive:
            raise RuntimeError("worker pool is not running (call ensure first)")
        self.params.publish(
            {
                "model": engine.replicas[0].state_dict(),
                "optimizer": engine.optimizers[0].state_dict(),
            }
        )

    def run_epoch(self, engine, epoch: int, plan: list[np.ndarray]) -> dict:
        """Dispatch one (already-published) epoch, collect per-rank reports.

        On any failure the pool is torn down (workers reaped, segments
        unlinked) before the error propagates — no exception path may
        leak kernel resources.
        """
        if not self.alive:
            raise RuntimeError("worker pool is not running (call ensure first)")
        n = engine.n
        try:
            # the heavy plan/sampler payload is pickled once and shared
            # by all ranks; pre-encoding (not the queue feeder thread)
            # also surfaces an unpicklable sampler as an immediate error
            # instead of an opaque epoch timeout
            payloads = encode_epoch_commands(engine, epoch, plan)
            for rank in range(n):
                self._cmd_qs[rank].put(payloads[rank])
            results = collect_results(
                self.procs,
                self._result_q,
                self.world,
                n,
                len(plan),
                self.timeout,
                what="persistent pool epoch",
            )
            # fold the evolved state back into the engine's replicas:
            # weights/optimizer via shared memory, per-rank extra state
            # via the reports
            state = self.params.load()
            fold_rank_state(engine, state["model"], state["optimizer"], results)
            return results
        except BaseException:
            self.shutdown(graceful=False)
            raise

    # ------------------------------------------------------------------
    def _release_channels(self) -> None:
        for q in (*self._cmd_qs, self._result_q):
            if q is not None:
                try:
                    q.cancel_join_thread()
                    q.close()
                except Exception:  # pragma: no cover - already closed
                    pass
        self._cmd_qs = []
        self._result_q = None
        if self.world is not None:
            self.world.unlink()
            self.world = None
        if self.params is not None:
            self.params.unlink()
            self.params = None

    def shutdown(self, *, graceful: bool = True) -> None:
        """Stop the workers and unlink every pool-owned segment; idempotent.

        ``graceful`` sends the stop sentinel and joins briefly before
        reaping; failure paths skip that (the workers are wedged or dead).
        """
        if graceful:
            for p, q in zip(self.procs, self._cmd_qs):
                if p.is_alive():
                    try:
                        q.put_nowait(None)
                    except Exception:  # pragma: no cover - queue broken
                        pass
            for p in self.procs:
                p.join(5.0)
        reap_processes(self.procs)
        self.procs = []
        self.signature = None
        self.dataset = None
        self.model = None
        self.store = None
        self._release_channels()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.shutdown(graceful=False)
        except Exception:
            pass
