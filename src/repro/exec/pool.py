"""Persistent worker pool: long-lived rank processes, launched once.

The original process backend re-forks its ``n`` rank workers — and
re-pickles every model replica — on **every** epoch, so the online
auto-tuner pays a fixed launch tax inside each measured trial.  The
:class:`WorkerPool` is the persistent alternative: rank processes are
forked once and then driven with small :class:`~repro.exec.runtime.EpochPlan`
messages over per-rank command queues, with weights moving through a
shared-memory :class:`~repro.shm.arena.ParamStore` and gradients through
one :class:`~repro.distributed.comm.ProcessWorld` reused across epochs.

The pool survives not only epochs but *engine reconstructions*: the
tuner re-launches training with a new configuration every search epoch
(paper Listing 3), and as long as the new engine's :meth:`signature`
matches (same ``n``, dataset, parameter topology, optimizer, seed), the
existing workers keep serving.  A *smaller* ``n`` (same everything else)
does not relaunch either: the pool's single
:class:`~repro.distributed.comm.ProcessWorld` rides a
:class:`~repro.distributed.comm.ResizableBarrier` (created before the
fork — mp locks/condvars only travel by inheritance), so the parent
re-counts the shared barrier, sends the active ranks a
:class:`~repro.exec.runtime.Rebind` and **parks** the surplus workers
idle — they keep their fork image and rejoin instantly when ``n`` grows
back.  Only growing beyond the forked worker count — or any other
signature change — triggers a clean relaunch: the old
world/params/workers are reaped and fresh ones bound.

Beyond training epochs the pool also serves forward-only inference
batches (:meth:`WorkerPool.run_infer`): the serving runtime
(:mod:`repro.serve`) shards a micro-batch's node ids across the active
ranks, each long-lived worker computes its chunk's predictions without
collectives or optimizer state, and rows return through a shared-memory
:class:`~repro.shm.arena.BatchArena` slot (pickle fallback for oversized
rows).

Failure contract: any failed epoch (worker crash, broken collective,
timeout, killed child) reaps every worker and unlinks the pool's
world + param-store segments before the error propagates; the pool
relaunches lazily on the next epoch.  The graph store is owned by the
backend, not the pool.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.distributed.comm import ClaimBoard, ProcessWorld
from repro.obs.trace import (
    NULL_RECORDER,
    SPAN_BARRIER,
    SPAN_LAUNCH,
    SPAN_PUBLISH,
    SPAN_REBIND,
)
from repro.exec.runtime import (
    GraphDeltaPlan,
    InferPlan,
    Rebind,
    WorkerInit,
    collect_results,
    encode_epoch_commands,
    fold_rank_state,
    persistent_worker_main,
)
from repro.shm.arena import ParamStore, TaskRing
from repro.utils.procs import reap_processes

__all__ = ["WorkerPool", "pool_signature"]


def pool_signature(engine) -> tuple:
    """What must stay constant for a live pool to keep serving an engine.

    The world size, parameter topology, optimizer choice and seed;
    anything else (sampler, bindings, prefetch knobs, the weights
    themselves) travels per epoch and may change freely.  The dataset is
    tracked separately by the pool as a strong *identity* reference —
    not an ``id()`` in the tuple, which a recycled address could forge.

    Runs on every epoch's reuse check, so it must not touch weight
    *values* — ``named_parameters`` reads shapes/dtypes without the
    array copies ``state_dict`` makes.
    """
    model = engine.replicas[0]
    return (
        engine.n,
        tuple((k, p.data.shape, p.data.dtype.str) for k, p in model.named_parameters()),
        engine.optimizer_name,
        float(engine.lr),
        int(engine.seed),
    )


class WorkerPool:
    """``n`` long-lived rank processes plus their shared channels.

    Parameters
    ----------
    ctx:
        ``multiprocessing`` context (``fork`` and ``spawn`` both work —
        all launch state is picklable and segments re-attach by name).
    timeout:
        Seconds any single collective / queue wait may block before the
        pool is declared broken; whole-epoch budgets scale with the step
        count on top of this.
    """

    def __init__(self, ctx, *, timeout: float = 120.0):
        self._ctx = ctx
        self.timeout = float(timeout)
        #: the pool's single world, created before the fork (mp locks /
        #: condvars only travel by inheritance) and sized for the full
        #: forked worker count; its resizable barrier is re-counted on
        #: every shrink/grow instead of pre-creating one world per size.
        self.world: ProcessWorld | None = None
        self.active_n = 0
        self.params: ParamStore | None = None
        self.procs: list = []
        self._cmd_qs: list = []
        self._result_q = None
        self.signature: tuple | None = None
        #: strong references to the served dataset, rank-0 model and
        #: graph store (identity-checked on reuse: parameter topology
        #: alone cannot distinguish two models differing only in
        #: non-parameter config such as dropout rate; a recreated store
        #: means the workers map retired segments; and pinning the
        #: references means their ids can never be recycled mid-pool)
        self.dataset = None
        self.model = None
        self.store = None
        self.launches = 0  # diagnostic: how often workers were (re)forked
        self._infer_seq = 0
        #: steal-protocol channels, created per launch: the shared-memory
        #: task ring (assignment tables) and the fork-inherited claim
        #: board (exactly-once segment grants)
        self._ring: TaskRing | None = None
        self._claims: ClaimBoard | None = None
        #: diagnostic: steal batches that fell back to size_binned plans
        #: because the assignment table outgrew the ring
        self.steal_fallbacks = 0

    # ------------------------------------------------------------------
    @property
    def parked(self) -> int:
        """Diagnostic: forked workers currently idle beyond ``active_n``."""
        return max(0, len(self.procs) - self.active_n)

    @property
    def alive(self) -> bool:
        """Whether every worker is running and the active world is usable."""
        return (
            bool(self.procs)
            and all(p.is_alive() for p in self.procs)
            and self.world is not None
            and not self.world.broken
        )

    def worker_pids(self) -> list[int]:
        """PIDs of the live rank workers (stable across epochs)."""
        return [p.pid for p in self.procs]

    def health(self) -> dict:
        """One supervision snapshot: what a replica supervisor polls.

        Plain scalars only (no live objects), so a cluster router can
        log or compare snapshots across replicas without touching pool
        internals.  ``alive`` is the liveness verdict; ``launches`` is
        the fork high-water mark a rolling hot-swap must keep flat.
        """
        return {
            "alive": self.alive,
            "launches": self.launches,
            "active_n": self.active_n,
            "parked": self.parked,
            "pids": self.worker_pids(),
            "steal_fallbacks": self.steal_fallbacks,
        }

    # ------------------------------------------------------------------
    def ensure(self, engine, store) -> bool:
        """Make the pool serve ``engine``; returns True when it (re)launched.

        A live pool with a matching :func:`pool_signature` is reused
        as-is — this is the steady-state path whose cost is approximately
        zero.  A pool that matches in everything *but* ``n`` resizes
        without re-forking as long as ``n`` fits the forked worker count:
        surplus workers park idle (shrink) or rejoin (grow back), and the
        active ranks are rebound to the pre-created world of the new
        size.  Anything else tears the old pool down and forks afresh.
        """
        sig = pool_signature(engine)
        compatible = (
            self.alive
            and self.dataset is engine.dataset
            and self.model is engine.replicas[0]
            and self.store is store
        )
        if compatible and sig == self.signature:
            return False
        # serving engines carry a span recorder; training engines do not
        recorder = getattr(engine, "recorder", None) or NULL_RECORDER
        if (
            compatible
            and self.signature is not None
            and sig[1:] == self.signature[1:]
            and engine.n <= len(self.procs)
        ):
            t0 = time.perf_counter() if recorder.enabled else 0.0
            self._resize(engine.n, sig)
            if recorder.enabled:
                recorder.record(SPAN_REBIND, t0, time.perf_counter(), engine.n)
            return False
        t0 = time.perf_counter() if recorder.enabled else 0.0
        self.shutdown()
        self._launch(engine, store, sig)
        if recorder.enabled:
            recorder.record(SPAN_LAUNCH, t0, time.perf_counter(), engine.n)
        return True

    def _resize(self, n: int, sig: tuple) -> None:
        """Repoint the pool at ``n`` active ranks without re-forking.

        The shared barrier is re-counted first
        (:meth:`~repro.distributed.comm.ProcessWorld.resize` — legal
        because no rank is inside a collective between synchronous
        calls), then every newly-active rank gets a :class:`Rebind`
        (command queues are FIFO, so the rebind lands before any
        subsequent epoch/inference command); ranks beyond ``n`` simply
        stop receiving commands — parked, not reaped, keeping their
        fork image warm for a later grow.
        """
        self.world.resize(n)
        for rank in range(n):
            self._cmd_qs[rank].put(Rebind(world_size=n))
        self.active_n = n
        self.signature = sig

    def _launch(self, engine, store, sig: tuple) -> None:
        n = engine.n
        capacity = max(1, sum(p.size for p in engine.replicas[0].parameters()))
        # one world, created *before* the fork so every worker inherits
        # it; its resizable barrier is the substrate a later shrink's
        # Rebind re-counts without re-forking anyone.  One segment, one
        # barrier — not a per-size ladder.
        self.world = ProcessWorld(n, capacity, ctx=self._ctx, timeout=self.timeout)
        self.active_n = n
        self.params = ParamStore.create(
            {
                "model": engine.replicas[0].state_dict(),
                "optimizer": engine.optimizers[0].state_dict(),
            }
        )
        self._cmd_qs = [self._ctx.Queue() for _ in range(n)]
        self._result_q = self._ctx.Queue()
        # steal-mode channels: both must exist before the fork — the
        # claim board's lock/RawArray travel only by inheritance, and a
        # per-launch ring keeps the worker's attach-by-name cache warm
        self._ring = TaskRing.create(rank_capacity=max(n, 1))
        self._claims = ClaimBoard(self._ring.node_capacity, ctx=self._ctx)
        procs = []
        try:
            for rank in range(n):
                init = WorkerInit(
                    rank=rank,
                    world_size=n,
                    store_spec=store.spec,
                    param_spec=self.params.spec,
                    model=engine.replicas[rank],
                    optimizer=engine.optimizer_name,
                    lr=engine.lr,
                    seed=engine.seed,
                    # serving engines carry a weight-generation counter
                    # (hot snapshot swap); training engines do not
                    generation=getattr(engine, "generation", 0),
                    parent_pid=os.getpid(),
                )
                p = self._ctx.Process(
                    target=persistent_worker_main,
                    args=(
                        init, self.world, self._cmd_qs[rank], self._result_q,
                        self._claims,
                    ),
                    daemon=True,
                )
                p.start()
                procs.append(p)
        except BaseException:
            reap_processes(procs)
            self._release_channels()
            raise
        self.procs = procs
        self.signature = sig
        self.dataset = engine.dataset
        self.model = engine.replicas[0]
        self.store = store
        self.launches += 1

    # ------------------------------------------------------------------
    def publish(self, engine) -> None:
        """Ship the engine's current weights + optimizer state to the
        workers (one fixed-layout memcpy into the shared param store).

        Part of an epoch's launch cost — the backend times it as such —
        so it is a separate step from :meth:`run_epoch`.
        """
        if not self.alive:
            raise RuntimeError("worker pool is not running (call ensure first)")
        recorder = getattr(engine, "recorder", None) or NULL_RECORDER
        t0 = time.perf_counter() if recorder.enabled else 0.0
        self.params.publish(
            {
                "model": engine.replicas[0].state_dict(),
                "optimizer": engine.optimizers[0].state_dict(),
            }
        )
        if recorder.enabled:
            recorder.record(SPAN_PUBLISH, t0, time.perf_counter())

    def run_epoch(self, engine, epoch: int, plan: list[np.ndarray]) -> dict:
        """Dispatch one (already-published) epoch, collect per-rank reports.

        On any failure the pool is torn down (workers reaped, segments
        unlinked) before the error propagates — no exception path may
        leak kernel resources.
        """
        if not self.alive:
            raise RuntimeError("worker pool is not running (call ensure first)")
        n = engine.n
        try:
            # the heavy plan/sampler payload is pickled once and shared
            # by all ranks; pre-encoding (not the queue feeder thread)
            # also surfaces an unpicklable sampler as an immediate error
            # instead of an opaque epoch timeout
            payloads = encode_epoch_commands(engine, epoch, plan)
            for rank in range(n):
                self._cmd_qs[rank].put(payloads[rank])
            results = collect_results(
                self.procs,
                self._result_q,
                self.world,
                n,
                len(plan),
                self.timeout,
                what="persistent pool epoch",
            )
            # fold the evolved state back into the engine's replicas:
            # weights/optimizer via shared memory, per-rank extra state
            # via the reports
            state = self.params.load()
            fold_rank_state(engine, state["model"], state["optimizer"], results)
            return results
        except BaseException:
            self.shutdown(graceful=False)
            raise

    # ------------------------------------------------------------------
    def run_infer(
        self,
        node_ids: np.ndarray,
        sampler,
        *,
        seed: int,
        arena=None,
        transport=None,
        batch_mode: str = "per_node",
        generation: int = 0,
        graph_generation: int = 0,
        phases=None,
        shard_policy: str = "chunk",
        costs=None,
        rank_stats=None,
        trace_spec=None,
        recorder=NULL_RECORDER,
    ) -> np.ndarray:
        """Forward-only predictions for ``node_ids`` over the active ranks.

        ``shard_policy`` picks the request→rank assignment
        (:func:`repro.serve.frontier.plan_shards`): ``"chunk"`` splits by
        request index (``np.array_split``, the historical layout),
        ``"size_binned"`` LPT-packs by the per-request ``costs`` (sampled
        frontier-cost estimates), and ``"steal"`` starts from the
        size-binned plan, cuts each bin into whole-request segments
        published through the pool's shared-memory
        :class:`~repro.shm.arena.TaskRing`, and lets a drained rank claim
        the heaviest peer's tail segments through the fork-inherited
        :class:`~repro.distributed.comm.ClaimBoard` (exactly-once per
        segment).  Per-node determinism (the RNG is a pure function of
        ``(seed, node)``) makes the result independent of the assignment
        — bit-identical to inline inference under every policy; that
        holds for both batch modes (``"frontier"`` merges each rank's
        share into one union forward without touching sampling or
        per-request numerics).  Non-contiguous assignments are scattered
        back into request order through the plan's own index arrays, and
        the parent verifies every request was covered exactly once.  A
        steal batch whose table outgrows the ring falls back to
        size-binned plans (``steal_fallbacks`` counts those).

        ``generation`` is the served-weight generation: workers that
        loaded an older one reload from the shared ParamStore before
        forwarding (hot snapshot swap).  ``arena`` (a
        :class:`~repro.shm.arena.BatchArena` with one slot per rank,
        owned by the caller) carries each rank's prediction rows as a
        raw shared-memory copy; oversized rows fall back to queue
        pickling.  ``transport`` (a
        :class:`~repro.shm.arena.TransportStats`) records which path was
        taken.  ``phases`` (a :class:`~repro.utils.phases.PhaseStats`)
        accumulates every rank's sample/merge/forward counters — the
        ranks run concurrently, so the sums are aggregate CPU time, not
        wall clock.  ``rank_stats`` (a
        :class:`~repro.utils.phases.RankStats`) receives each rank's
        wall-clock busy time and steal count for imbalance accounting.
        ``trace_spec`` (a :class:`~repro.obs.trace.TraceArena` spec)
        rides each plan so workers record spans into their own shared
        rings, and an enabled parent ``recorder`` books the drain wait
        for all ranks' results as a ``barrier`` span.  Failure semantics
        match :meth:`run_epoch`: any broken batch tears the pool down
        before the error propagates.
        """
        if not self.alive:
            raise RuntimeError("worker pool is not running (call ensure first)")
        # lazy import: repro.serve.engine imports this module at load time
        from repro.serve.frontier import plan_shards, segment_bins

        n = self.active_n
        node_ids = np.asarray(node_ids, dtype=np.int64)
        self._infer_seq += 1
        policy = shard_policy
        if policy not in ("chunk", "size_binned", "steal"):
            raise ValueError(f"unknown shard policy {policy!r}")
        if n == 1:
            policy = "chunk"  # one rank: nothing to balance or steal
        if policy == "steal" and not self._ring.fits(len(node_ids), n):
            policy = "size_binned"
            self.steal_fallbacks += 1
        steal = policy == "steal"
        bins = plan_shards(
            len(node_ids), n,
            policy="size_binned" if steal else policy,
            costs=costs,
        )
        order = seg_splits = None
        if steal:
            # ~4 stealable segments per rank: coarse enough that a
            # segment's forward amortises the claim, fine enough that
            # the tail of a heavy bin is actually stealable
            grain = max(1, -(-len(node_ids) // (4 * n)))
            order, seg_splits, rank_splits, weights = segment_bins(
                bins, costs, grain=grain
            )
            self._ring.publish(node_ids[order], seg_splits, rank_splits, weights)
            self._claims.reset(len(seg_splits) - 1)
        try:
            for rank in range(n):
                self._cmd_qs[rank].put(
                    InferPlan(
                        seq=self._infer_seq,
                        node_ids=(
                            np.zeros(0, dtype=np.int64)
                            if steal
                            else node_ids[bins[rank]]
                        ),
                        sampler=sampler,
                        seed=seed,
                        slot=rank,
                        arena_spec=arena.spec if arena is not None else None,
                        batch_mode=batch_mode,
                        generation=generation,
                        graph_generation=graph_generation,
                        shard_policy=policy,
                        ring_spec=self._ring.spec if steal else None,
                        trace_spec=trace_spec,
                    )
                )
            t0 = time.perf_counter() if recorder.enabled else 0.0
            results = collect_results(
                self.procs,
                self._result_q,
                self.world,
                n,
                1,
                self.timeout,
                what="pool inference batch",
            )
            if recorder.enabled:
                recorder.record(SPAN_BARRIER, t0, time.perf_counter(), self._infer_seq)
            out = None
            covered = 0
            busy = [0.0] * n
            steals = [0] * n
            for rank in range(n):
                item = results[rank]
                if phases is not None:
                    if "phase_hists" in item:
                        # full distributions fold in, buckets included
                        phases.add_hists(item["phase_hists"])
                    elif "phases" in item:
                        phases.add(item["phases"])
                busy[rank] = float(item.get("busy_s", 0.0))
                steals[rank] = int(item.get("steals", 0))
                if "layouts" in item:
                    (preds,) = arena.read(rank, item["layouts"])
                    if transport is not None:
                        transport.arena_hits += 1
                else:
                    preds = item["preds"]
                if steal:
                    segs = item.get("segments", [])
                    positions = (
                        np.concatenate(
                            [order[seg_splits[s] : seg_splits[s + 1]] for s in segs]
                        )
                        if segs
                        else np.zeros(0, dtype=np.int64)
                    )
                else:
                    positions = bins[rank]
                if transport is not None and "layouts" not in item and len(positions):
                    transport.pickle_fallbacks += 1
                if len(positions) != len(preds):
                    raise RuntimeError(
                        f"rank {rank} returned {len(preds)} prediction rows "
                        f"for {len(positions)} assigned requests"
                    )
                if out is None:
                    out = np.empty(
                        (len(node_ids), preds.shape[1]), dtype=preds.dtype
                    )
                if len(positions):
                    out[positions] = preds
                    covered += len(positions)
            if out is None or covered != len(node_ids):
                raise RuntimeError(
                    f"pool inference batch covered {covered}/{len(node_ids)} "
                    f"requests (segments lost or double-claimed)"
                )
            if rank_stats is not None:
                rank_stats.add_batch(busy, steals)
            return out
        except BaseException:
            self.shutdown(graceful=False)
            raise

    def broadcast_delta(self, graph_generation: int, fragment_specs: list) -> None:
        """Announce newly published graph fragments to every forked worker.

        Fire-and-forget: one :class:`~repro.exec.runtime.GraphDeltaPlan`
        per command queue — **all** forked workers, parked ranks
        included, so a later grow-rebind resumes at current topology.
        FIFO queue order guarantees the announcement lands before any
        :class:`~repro.exec.runtime.InferPlan` issued at the new
        generation; no ack is needed and ``launches`` does not move.
        """
        if not self.alive:
            raise RuntimeError("worker pool is not running (call ensure first)")
        plan = GraphDeltaPlan(
            graph_generation=graph_generation, fragment_specs=fragment_specs
        )
        for q in self._cmd_qs:
            q.put(plan)

    # ------------------------------------------------------------------
    def _release_channels(self) -> None:
        for q in (*self._cmd_qs, self._result_q):
            if q is not None:
                try:
                    q.cancel_join_thread()
                    q.close()
                except Exception:  # pragma: no cover - already closed
                    pass
        self._cmd_qs = []
        self._result_q = None
        if self.world is not None:
            self.world.unlink()
            self.world = None
        self.active_n = 0
        if self.params is not None:
            self.params.unlink()
            self.params = None
        if self._ring is not None:
            self._ring.unlink()
            self._ring = None
        self._claims = None  # RawArray/lock die with the processes

    def shutdown(self, *, graceful: bool = True) -> None:
        """Stop the workers and unlink every pool-owned segment; idempotent.

        ``graceful`` sends the stop sentinel and joins briefly before
        reaping; failure paths skip that (the workers are wedged or dead).
        """
        if graceful:
            for p, q in zip(self.procs, self._cmd_qs):
                if p.is_alive():
                    try:
                        q.put_nowait(None)
                    except Exception:  # pragma: no cover - queue broken
                        pass
            for p in self.procs:
                p.join(5.0)
        reap_processes(self.procs)
        self.procs = []
        self.signature = None
        self.dataset = None
        self.model = None
        self.store = None
        self._release_channels()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.shutdown(graceful=False)
        except Exception:
            pass
