"""Process backend: one OS process per rank over shared memory.

This is the paper's actual mechanism (Sec. IV-B): ``n`` training
processes escape the GIL entirely, the graph and feature matrices live
in shared memory (:class:`repro.graph.shm.SharedGraphStore` — created
once per engine and mapped zero-copy by every worker), gradients are
synchronised through :class:`repro.distributed.comm.ProcessWorld`
collectives over a shared float64 region, and each worker pins itself to
its :class:`repro.platform.corebind.ProcessBinding` cores with
``os.sched_setaffinity`` before touching any data.

With prefetching on, each rank process additionally runs
``sampler_workers`` sampler threads
(:func:`repro.pipeline.prefetch.rank_step_prefetcher`) pinned to the
binding's *sampling* cores, while the trainer thread re-pins to the
*training* cores — the paper's sampler/trainer core split, inside every
rank.

Semantics are identical to the inline backend: the same per-rank RNG
streams (``derive_rng(seed, "sample", epoch, step, rank)``), the same
batch split (:func:`repro.exec.base.rank_chunk`) and synchronous
gradient averaging.  Because all ranks finish an epoch with identical
weights and optimizer state, only rank 0 ships its model/optimizer state
back; the parent loads it into every replica.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import sys
import time
import traceback
from dataclasses import dataclass

import numpy as np

from repro.autograd.optim import make_optimizer
from repro.autograd.tensor import Tensor
from repro.distributed.comm import ProcessWorld
from repro.distributed.ddp import DistributedDataParallel
from repro.exec.base import (
    EpochResult,
    ExecutionBackend,
    acquire_batch,
    compute_loss,
    register_backend,
)
from repro.graph.shm import SharedGraphStore
from repro.pipeline.prefetch import rank_step_prefetcher
from repro.platform.corebind import apply_binding, sampling_affinity, training_affinity
from repro.utils.procs import reap_processes

__all__ = ["ProcessBackend"]


@dataclass
class _WorkerPayload:
    """Everything one rank worker needs (picklable; arrays travel by shm)."""

    rank: int
    world_size: int
    store_spec: dict
    sampler: object
    model: object  # the rank's replica (weights only; data stays in shm)
    optimizer: str
    optimizer_state: dict
    lr: float
    seed: int
    epoch: int
    plan: list
    binding: object  # ProcessBinding | tuple[int, ...] | None
    prefetch: bool = False
    queue_depth: int = 2
    sampler_workers: int = 1


def _worker_main(payload: _WorkerPayload, world: ProcessWorld, result_q) -> None:
    """Entry point of one rank process."""
    try:
        applied_cores = apply_binding(payload.binding)
        store = SharedGraphStore.attach(payload.store_spec)
        prefetcher = None
        try:
            graph = store.graph  # zero-copy CSR over the shared segments
            features = Tensor(store.features)
            labels = store.labels
            comm = world.communicator(payload.rank)
            model = DistributedDataParallel(payload.model, comm)
            optimizer = make_optimizer(payload.optimizer, model.parameters(), payload.lr)
            optimizer.load_state_dict(payload.optimizer_state)
            if payload.prefetch:
                # sampler threads pin to the sampling cores; the trainer
                # thread (this one) re-pins to the training cores so the
                # two stages own the binding's core split
                prefetcher = rank_step_prefetcher(
                    payload.sampler,
                    graph,
                    payload.plan,
                    world_size=payload.world_size,
                    rank=payload.rank,
                    seed=payload.seed,
                    epoch=payload.epoch,
                    num_workers=payload.sampler_workers,
                    queue_depth=payload.queue_depth,
                    sampling_cores=sampling_affinity(payload.binding),
                )
                apply_binding(training_affinity(payload.binding))
            losses: list[float] = []
            edges = 0
            sample_wait = 0.0
            compute_time = 0.0
            for step, global_batch in enumerate(payload.plan):
                model.zero_grad()
                start = time.perf_counter()
                batch = acquire_batch(
                    prefetcher,
                    payload.sampler,
                    graph,
                    global_batch,
                    world_size=payload.world_size,
                    rank=payload.rank,
                    seed=payload.seed,
                    epoch=payload.epoch,
                    step=step,
                )
                sample_wait += time.perf_counter() - start
                start = time.perf_counter()
                if batch is not None:
                    loss, e = compute_loss(batch, features, labels, model.module)
                    loss.backward()
                    losses.append(loss.item())
                    edges += e
                model.sync_gradients()
                optimizer.step()
                compute_time += time.perf_counter() - start
            result = {
                "rank": payload.rank,
                "status": "ok",
                "losses": losses,
                "edges": edges,
                "sample_wait": sample_wait,
                "compute_time": compute_time,
                "applied_cores": applied_cores,
                # mutable non-parameter model state (dropout-stream
                # counters, ...): the parent must advance its replicas
                # identically or the next epoch diverges from inline
                "extra_state": payload.model.extra_state_dict(),
            }
            if payload.rank == 0:
                result["model_state"] = model.module.state_dict()
                result["optimizer_state"] = optimizer.state_dict()
            result_q.put(result)
        finally:
            if prefetcher is not None:
                prefetcher.close()
            store.close()
    except BaseException as exc:
        world.abort()  # unblock peers stuck in collectives
        result_q.put(
            {
                "rank": payload.rank,
                "status": "error",
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
            }
        )
        sys.exit(1)  # quiet exit: the parent reports the queued error


@register_backend("process")
class ProcessBackend(ExecutionBackend):
    """True multi-process execution with shared-memory data plane.

    Parameters
    ----------
    start_method:
        ``multiprocessing`` start method (``None`` → platform default;
        ``fork`` on Linux).  ``spawn`` also works — all worker state is
        picklable and the shared segments re-attach by name.
    timeout:
        Seconds any single collective may block before the world is
        declared broken; the whole-epoch budget scales with the step
        count on top of this.

    The shared-memory store persists across epochs (workers re-attach
    each epoch; the data never moves); call :meth:`shutdown` — or use the
    owning engine as a context manager — to unlink the segments.  When an
    epoch *fails* (a worker crash, a broken collective, a timeout), the
    backend reaps every child and unlinks the store immediately: no
    exception path may leak shared-memory segments or zombie processes.

    Workers themselves are re-launched per epoch.  This mirrors ARGO's
    own behaviour — the online tuner re-launches training every search
    epoch to reallocate processes (paper Listing 3) — at the cost of
    fork + weight-pickling overhead in each measured epoch time; a
    persistent worker pool that ships plans over a queue would amortise
    it and is the natural next optimisation.
    """

    def __init__(self, *, start_method: str | None = None, timeout: float = 120.0):
        self._ctx = mp.get_context(start_method)
        self.timeout = float(timeout)
        self._store: SharedGraphStore | None = None
        self._store_dataset_id: int | None = None

    # ------------------------------------------------------------------
    def _ensure_store(self, dataset) -> SharedGraphStore:
        if self._store is not None and not self._store.closed:
            if self._store_dataset_id == id(dataset):
                return self._store
            self._store.unlink()
        self._store = SharedGraphStore.from_dataset(dataset)
        self._store_dataset_id = id(dataset)
        return self._store

    def shutdown(self) -> None:
        if self._store is not None and not self._store.closed:
            self._store.unlink()
        self._store = None
        self._store_dataset_id = None

    # ------------------------------------------------------------------
    def run_epoch(self, engine, epoch: int, plan: list[np.ndarray]) -> EpochResult:
        n = engine.n
        store = self._ensure_store(engine.dataset)
        capacity = max(1, sum(p.size for p in engine.replicas[0].parameters()))
        world = ProcessWorld(n, capacity, ctx=self._ctx, timeout=self.timeout)
        result_q = self._ctx.Queue()
        procs: list = []
        try:
            bindings = engine.bindings
            for rank in range(n):
                payload = _WorkerPayload(
                    rank=rank,
                    world_size=n,
                    store_spec=store.spec,
                    sampler=engine.sampler,
                    model=engine.replicas[rank],
                    optimizer=engine.optimizer_name,
                    optimizer_state=engine.optimizers[rank].state_dict(),
                    lr=engine.lr,
                    seed=engine.seed,
                    epoch=epoch,
                    plan=plan,
                    binding=bindings[rank] if bindings is not None else None,
                    prefetch=engine.prefetch,
                    queue_depth=engine.queue_depth,
                    sampler_workers=engine.sampler_workers,
                )
                p = self._ctx.Process(
                    target=_worker_main, args=(payload, world, result_q), daemon=True
                )
                p.start()
                procs.append(p)
            results = self._collect(procs, result_q, world, n, len(plan))
            for p in procs:
                p.join(self.timeout)
        except BaseException:
            # failed epoch: reap every child *and* release the graph
            # store — no exception path may leak segments or children
            reap_processes(procs)
            self.shutdown()
            raise
        finally:
            reap_processes(procs)
            world.unlink()

        # fold worker outcomes back into the engine's replicas
        rank0 = results[0]
        for replica in engine.replicas:
            replica.load_state_dict(rank0["model_state"])
        for opt in engine.optimizers:
            opt.load_state_dict(rank0["optimizer_state"])
        for rank, replica in enumerate(engine.replicas):
            replica.load_extra_state_dict(results[rank]["extra_state"])
        losses = [v for rank in range(n) for v in results[rank]["losses"]]
        edges = int(sum(results[rank]["edges"] for rank in range(n)))
        return EpochResult(
            losses=losses,
            sampled_edges=edges,
            sample_wait=float(sum(results[r]["sample_wait"] for r in range(n))),
            compute_time=float(sum(results[r]["compute_time"] for r in range(n))),
        )

    # ------------------------------------------------------------------
    def _collect(self, procs, result_q, world: ProcessWorld, n: int, num_steps: int) -> dict:
        """Drain one result per rank, failing fast on worker death.

        ``self.timeout`` bounds a single collective (a deadlocked barrier
        breaks within it inside the workers); the whole-epoch budget here
        scales with the number of steps so long, healthy epochs are never
        killed by the per-collective deadline.
        """
        results: dict[int, dict] = {}
        deadline = time.monotonic() + self.timeout * (1 + num_steps)
        while len(results) < n:
            try:
                item = result_q.get(timeout=0.2)
            except queue_mod.Empty:
                dead = [p for p in procs if not p.is_alive() and p.exitcode not in (0, None)]
                if dead:
                    world.abort()
                    raise RuntimeError(
                        f"rank process died with exit code {dead[0].exitcode}"
                    ) from None
                if time.monotonic() > deadline:
                    world.abort()
                    raise TimeoutError(
                        f"process backend epoch exceeded its "
                        f"{self.timeout * (1 + num_steps):.0f}s budget "
                        f"({len(results)}/{n} ranks reported)"
                    )
                continue
            if item["status"] != "ok":
                world.abort()
                # a failing rank breaks its peers' collectives; drain briefly
                # so the *root* error is reported, not a secondary break
                errors = [item]
                deadline_drain = time.monotonic() + 1.0
                while time.monotonic() < deadline_drain:
                    try:
                        extra = result_q.get(timeout=0.1)
                    except queue_mod.Empty:
                        continue
                    if extra["status"] != "ok":
                        errors.append(extra)
                root = next(
                    (e for e in errors if "collective broken" not in e["error"]), errors[0]
                )
                raise RuntimeError(
                    f"rank {root['rank']} failed: {root['error']}\n{root.get('traceback', '')}"
                )
            results[item["rank"]] = item
        return results
