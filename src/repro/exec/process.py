"""Process backend: one OS process per rank over shared memory.

This is the paper's actual mechanism (Sec. IV-B): ``n`` training
processes escape the GIL entirely, the graph and feature matrices live
in shared memory (:class:`repro.graph.shm.SharedGraphStore` — created
once per engine and mapped zero-copy by every worker), gradients are
synchronised through :class:`repro.distributed.comm.ProcessWorld`
collectives over a shared float64 region, and each worker pins itself to
its :class:`repro.platform.corebind.ProcessBinding` cores with
``os.sched_setaffinity`` before touching any data.

Two execution modes, selected by the engine's ``persistent`` flag:

**persistent** (default)
    A :class:`repro.exec.pool.WorkerPool` forks the rank processes once
    and keeps them alive across epochs *and* engine reconstructions;
    each epoch ships a small :class:`~repro.exec.runtime.EpochPlan` over
    a command queue while weights travel through a shared-memory
    :class:`~repro.shm.arena.ParamStore`.  After the first epoch the
    measured ``launch_time`` collapses to the cost of a weight memcpy —
    the relaunch tax the online tuner used to pay in every trial is gone.
**respawn**
    The original mode — fresh workers forked per epoch, model replicas
    pickled into them.  This mirrors ARGO's own behaviour (the online
    tuner re-launches training every search epoch to reallocate
    processes, paper Listing 3) and is kept as the baseline the
    ``fig8_persistent_overhead`` benchmark measures the pool against.

With prefetching on, each rank process additionally runs
``sampler_workers`` sampler threads
(:func:`repro.pipeline.prefetch.rank_step_prefetcher`) pinned to the
binding's *sampling* cores, while the trainer thread re-pins to the
*training* cores — the paper's sampler/trainer core split, inside every
rank.

Semantics are identical to the inline backend in both modes: the same
per-rank RNG streams (``derive_rng(seed, "sample", epoch, step, rank)``),
the same batch split (:func:`repro.exec.base.rank_chunk`) and synchronous
gradient averaging.  Because all ranks finish an epoch with identical
weights and optimizer state, only rank 0 ships its model/optimizer state
back; the parent loads it into every replica.
"""

from __future__ import annotations

import multiprocessing as mp
import sys
import time
import traceback
from dataclasses import dataclass

import numpy as np

from repro.autograd.optim import make_optimizer
from repro.autograd.tensor import Tensor
from repro.distributed.comm import ProcessWorld
from repro.distributed.ddp import DistributedDataParallel
from repro.exec.base import EpochResult, ExecutionBackend, register_backend
from repro.exec.pool import WorkerPool
from repro.exec.runtime import (
    EpochPlan,
    _run_epoch_steps,
    collect_results,
    epoch_plan_for_rank,
    fold_rank_state,
)
from repro.graph.shm import SharedGraphStore
from repro.platform.corebind import apply_binding
from repro.utils.procs import reap_processes

__all__ = ["ProcessBackend"]


@dataclass
class _WorkerPayload:
    """Everything one respawned rank worker needs (picklable; arrays travel by shm)."""

    rank: int
    world_size: int
    store_spec: dict
    model: object  # the rank's replica (weights only; data stays in shm)
    optimizer: str
    optimizer_state: dict
    lr: float
    seed: int
    plan: EpochPlan


def _worker_main(payload: _WorkerPayload, world: ProcessWorld, result_q) -> None:
    """Entry point of one respawned (single-epoch) rank process."""
    store = None
    try:
        applied_cores = apply_binding(payload.plan.binding)
        store = SharedGraphStore.attach(payload.store_spec)
        graph = store.graph  # zero-copy CSR over the shared segments
        features = Tensor(store.features)
        labels = store.labels
        comm = world.communicator(payload.rank)
        # the plan's extra_state is the single source of truth for the
        # rank's mutable non-parameter state in both execution modes
        # (the pickled replica carries a copy, but only this one is read)
        payload.model.load_extra_state_dict(payload.plan.extra_state)
        model = DistributedDataParallel(payload.model, comm)
        optimizer = make_optimizer(payload.optimizer, model.parameters(), payload.lr)
        optimizer.load_state_dict(payload.optimizer_state)
        result = _run_epoch_steps(
            payload.plan,
            rank=payload.rank,
            world_size=payload.world_size,
            seed=payload.seed,
            graph=graph,
            features=features,
            labels=labels,
            model=model,
            optimizer=optimizer,
        )
        result["applied_cores"] = applied_cores
        if payload.rank == 0:
            result["model_state"] = model.module.state_dict()
            result["optimizer_state"] = optimizer.state_dict()
        result_q.put(result)
    except BaseException as exc:
        world.abort()  # unblock peers stuck in collectives
        result_q.put(
            {
                "rank": payload.rank,
                "status": "error",
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
            }
        )
        sys.exit(1)  # quiet exit: the parent reports the queued error
    finally:
        if store is not None:
            store.close()


@register_backend("process")
class ProcessBackend(ExecutionBackend):
    """True multi-process execution with shared-memory data plane.

    Parameters
    ----------
    start_method:
        ``multiprocessing`` start method (``None`` → platform default;
        ``fork`` on Linux).  ``spawn`` also works — all worker state is
        picklable and the shared segments re-attach by name.
    timeout:
        Seconds any single collective may block before the world is
        declared broken; the whole-epoch budget scales with the step
        count on top of this.

    The engine's ``persistent`` flag selects per-epoch worker respawn
    (the original behaviour) or the long-lived :class:`WorkerPool` (see
    the module docstring).  The shared-memory graph store persists across
    epochs in both modes (workers attach; the data never moves); call
    :meth:`shutdown` — or use the owning engine as a context manager —
    to stop any pool and unlink the segments.  When an epoch *fails* (a
    worker crash, a broken collective, a timeout, a killed child), the
    backend reaps every child — pool included — and unlinks every
    segment immediately: no exception path may leak shared-memory
    segments or zombie processes.
    """

    def __init__(self, *, start_method: str | None = None, timeout: float = 120.0):
        self._ctx = mp.get_context(start_method)
        self.timeout = float(timeout)
        self._store: SharedGraphStore | None = None
        # strong reference, compared by identity: backends outlive
        # engines by design, and a freed dataset's id() can be recycled
        # — an id-keyed cache could silently serve the wrong graph
        self._store_dataset = None
        self._pool: WorkerPool | None = None

    # ------------------------------------------------------------------
    def _ensure_store(self, dataset) -> SharedGraphStore:
        if self._store is not None and not self._store.closed:
            if self._store_dataset is dataset:
                return self._store
            self._store.unlink()
        self._store = SharedGraphStore.from_dataset(dataset)
        self._store_dataset = dataset
        return self._store

    @property
    def pool(self) -> WorkerPool | None:
        """The live persistent pool, if any (diagnostics/tests)."""
        return self._pool

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._store is not None and not self._store.closed:
            self._store.unlink()
        self._store = None
        self._store_dataset = None

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.shutdown()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def run_epoch(self, engine, epoch: int, plan: list[np.ndarray]) -> EpochResult:
        if getattr(engine, "persistent", False):
            return self._run_epoch_persistent(engine, epoch, plan)
        return self._run_epoch_respawn(engine, epoch, plan)

    # ------------------------------------------------------------------
    def _run_epoch_persistent(self, engine, epoch: int, plan) -> EpochResult:
        store = self._ensure_store(engine.dataset)
        if self._pool is None:
            self._pool = WorkerPool(self._ctx, timeout=self.timeout)
        try:
            # launch tax: (re)forking workers when needed plus shipping
            # this epoch's weights into them — a shm memcpy once the
            # pool is warm (respawn mode's equivalent is fork + pickle).
            # A fresh launch already published the current state as the
            # ParamStore template, so only warm epochs publish here.
            start = time.perf_counter()
            if not self._pool.ensure(engine, store):
                self._pool.publish(engine)
            launch_time = time.perf_counter() - start
            results = self._pool.run_epoch(engine, epoch, plan)
            pool_launches = self._pool.launches
            pool_parked = self._pool.parked
        except BaseException:
            # failed epoch: the pool already reaped its workers and
            # unlinked its segments; release the graph store too — no
            # exception path may leak segments or children
            self.shutdown()
            raise
        result = self._fold_results(engine, results, launch_time)
        result.pool_launches = pool_launches
        result.pool_parked = pool_parked
        return result

    # ------------------------------------------------------------------
    def _run_epoch_respawn(self, engine, epoch: int, plan) -> EpochResult:
        n = engine.n
        store = self._ensure_store(engine.dataset)
        procs: list = []
        world = None
        try:
            # the per-epoch launch tax this mode pays by design: a fresh
            # world, pickled replicas and n forks on every epoch
            start = time.perf_counter()
            capacity = max(1, sum(p.size for p in engine.replicas[0].parameters()))
            world = ProcessWorld(n, capacity, ctx=self._ctx, timeout=self.timeout)
            result_q = self._ctx.Queue()
            for rank in range(n):
                payload = _WorkerPayload(
                    rank=rank,
                    world_size=n,
                    store_spec=store.spec,
                    model=engine.replicas[rank],
                    optimizer=engine.optimizer_name,
                    optimizer_state=engine.optimizers[rank].state_dict(),
                    lr=engine.lr,
                    seed=engine.seed,
                    plan=epoch_plan_for_rank(engine, epoch, plan, rank),
                )
                p = self._ctx.Process(
                    target=_worker_main, args=(payload, world, result_q), daemon=True
                )
                p.start()
                procs.append(p)
            launch_time = time.perf_counter() - start
            results = collect_results(
                procs, result_q, world, n, len(plan), self.timeout
            )
            for p in procs:
                p.join(self.timeout)
        except BaseException:
            # failed epoch: reap every child *and* release the graph
            # store — no exception path may leak segments or children
            reap_processes(procs)
            self.shutdown()
            raise
        finally:
            reap_processes(procs)
            if world is not None:
                world.unlink()

        # fold worker outcomes back into the engine's replicas
        rank0 = results[0]
        fold_rank_state(engine, rank0["model_state"], rank0["optimizer_state"], results)
        return self._fold_results(engine, results, launch_time)

    # ------------------------------------------------------------------
    @staticmethod
    def _fold_results(engine, results: dict, launch_time: float) -> EpochResult:
        n = engine.n
        losses = [v for rank in range(n) for v in results[rank]["losses"]]
        edges = int(sum(results[rank]["edges"] for rank in range(n)))
        return EpochResult(
            losses=losses,
            sampled_edges=edges,
            sample_wait=float(sum(results[r]["sample_wait"] for r in range(n))),
            compute_time=float(sum(results[r]["compute_time"] for r in range(n))),
            launch_time=float(launch_time),
        )
