"""Pluggable execution backends for the Multi-Process Engine.

``inline``
    Ranks execute sequentially in the caller's thread — bit-for-bit
    deterministic reference semantics.
``thread``
    One OS thread per rank; numpy releases the GIL inside kernels.
``process``
    One OS process per rank — the paper's real mechanism: shared-memory
    graph/feature store, cross-process collectives, core binding via
    ``sched_setaffinity``.  Runs either as a **persistent runtime** (a
    :class:`~repro.exec.pool.WorkerPool` of long-lived rank workers
    driven by :class:`~repro.exec.runtime.EpochPlan` messages, weights
    over a shared-memory param store) or in the original
    respawn-per-epoch mode — the engine's ``persistent`` flag selects.

Select with :func:`get_backend`; importing this package registers all
built-in backends.
"""

from repro.exec.base import (
    EpochResult,
    ExecutionBackend,
    available_backends,
    forward_loss,
    get_backend,
    rank_chunk,
    register_backend,
)
from repro.exec.inline import InlineBackend
from repro.exec.pool import WorkerPool
from repro.exec.process import ProcessBackend
from repro.exec.runtime import EpochPlan, WorkerInit
from repro.exec.thread import ThreadBackend

__all__ = [
    "EpochResult",
    "ExecutionBackend",
    "available_backends",
    "forward_loss",
    "get_backend",
    "rank_chunk",
    "register_backend",
    "EpochPlan",
    "WorkerInit",
    "WorkerPool",
    "InlineBackend",
    "ProcessBackend",
    "ThreadBackend",
]
