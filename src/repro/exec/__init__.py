"""Pluggable execution backends for the Multi-Process Engine.

``inline``
    Ranks execute sequentially in the caller's thread — bit-for-bit
    deterministic reference semantics.
``thread``
    One OS thread per rank; numpy releases the GIL inside kernels.
``process``
    One OS process per rank — the paper's real mechanism: shared-memory
    graph/feature store, cross-process collectives, core binding via
    ``sched_setaffinity``.

Select with :func:`get_backend`; importing this package registers all
built-in backends.
"""

from repro.exec.base import (
    EpochResult,
    ExecutionBackend,
    available_backends,
    forward_loss,
    get_backend,
    rank_chunk,
    register_backend,
)
from repro.exec.inline import InlineBackend
from repro.exec.process import ProcessBackend
from repro.exec.thread import ThreadBackend

__all__ = [
    "EpochResult",
    "ExecutionBackend",
    "available_backends",
    "forward_loss",
    "get_backend",
    "rank_chunk",
    "register_backend",
    "InlineBackend",
    "ProcessBackend",
    "ThreadBackend",
]
