"""Thread backend: one OS thread per rank, barrier-based collectives.

numpy kernels release the GIL, so ranks genuinely overlap inside the
dense/segment operations — the closest single-process analogue of the
paper's process-level parallelism.  Collectives run over
:class:`repro.distributed.comm.ThreadWorld`.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.distributed.comm import ThreadWorld
from repro.distributed.ddp import DistributedDataParallel
from repro.exec.base import EpochResult, ExecutionBackend, forward_loss, rank_chunk, register_backend
from repro.utils.rng import derive_rng

__all__ = ["ThreadBackend"]


@register_backend("thread")
class ThreadBackend(ExecutionBackend):
    """One thread per rank with lock/barrier gradient synchronisation."""

    def run_epoch(self, engine, epoch: int, plan: list[np.ndarray]) -> EpochResult:
        world = ThreadWorld(engine.n)
        losses_per_rank: list[list[float]] = [[] for _ in range(engine.n)]
        edges_per_rank = [0] * engine.n
        errors: list[BaseException] = []

        def worker(rank: int):
            try:
                # DDP construction is itself a collective (weight
                # broadcast), so it must happen inside the rank thread.
                model = DistributedDataParallel(
                    engine.replicas[rank], world.communicator(rank)
                )
                for step, global_batch in enumerate(plan):
                    seeds = rank_chunk(global_batch, engine.n, rank)
                    model.zero_grad()
                    if len(seeds) > 0:
                        rng = derive_rng(engine.seed, "sample", epoch, step, rank)
                        loss, e = forward_loss(
                            engine.sampler,
                            engine.dataset.graph,
                            engine.features,
                            engine.dataset.labels,
                            model.module,
                            seeds,
                            rng,
                        )
                        loss.backward()
                        losses_per_rank[rank].append(loss.item())
                        edges_per_rank[rank] += e
                    model.sync_gradients()
                    engine.optimizers[rank].step()
            except BaseException as exc:  # surface thread failures
                errors.append(exc)
                world.abort()  # unblock peers waiting on collectives
                raise

        threads = [threading.Thread(target=worker, args=(r,)) for r in range(engine.n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise RuntimeError(f"rank thread failed: {errors[0]!r}") from errors[0]
        return EpochResult(
            losses=[v for per in losses_per_rank for v in per],
            sampled_edges=int(sum(edges_per_rank)),
        )
