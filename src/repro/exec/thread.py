"""Thread backend: one OS thread per rank, barrier-based collectives.

numpy kernels release the GIL, so ranks genuinely overlap inside the
dense/segment operations — the closest single-process analogue of the
paper's process-level parallelism.  Collectives run over
:class:`repro.distributed.comm.ThreadWorld`.

With ``engine.prefetch`` on, each rank thread owns a
:func:`repro.pipeline.prefetch.rank_step_prefetcher` running
``engine.sampler_workers`` sampler threads, so future steps' sampling
overlaps both the rank's own compute and its peers' — the numerics stay
bit-identical (per-step derived RNG, strict in-order delivery).
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.distributed.comm import ThreadWorld
from repro.distributed.ddp import DistributedDataParallel
from repro.exec.base import (
    EpochResult,
    ExecutionBackend,
    acquire_batch,
    compute_loss,
    register_backend,
)
from repro.pipeline.prefetch import rank_step_prefetcher
from repro.platform.corebind import sampling_affinity

__all__ = ["ThreadBackend"]


@register_backend("thread")
class ThreadBackend(ExecutionBackend):
    """One thread per rank with lock/barrier gradient synchronisation."""

    def run_epoch(self, engine, epoch: int, plan: list[np.ndarray]) -> EpochResult:
        world = ThreadWorld(engine.n)
        losses_per_rank: list[list[float]] = [[] for _ in range(engine.n)]
        edges_per_rank = [0] * engine.n
        wait_per_rank = [0.0] * engine.n
        compute_per_rank = [0.0] * engine.n
        errors: list[BaseException] = []

        def worker(rank: int):
            prefetcher = None
            try:
                # everything — prefetcher construction included — stays
                # inside the try: any failure must abort the world or the
                # sibling ranks deadlock in their barriers
                if engine.prefetch:
                    prefetcher = rank_step_prefetcher(
                        engine.sampler,
                        engine.dataset.graph,
                        plan,
                        world_size=engine.n,
                        rank=rank,
                        seed=engine.seed,
                        epoch=epoch,
                        num_workers=engine.sampler_workers,
                        queue_depth=engine.queue_depth,
                        sampling_cores=sampling_affinity(
                            engine.bindings[rank] if engine.bindings else None
                        ),
                    )
                # DDP construction is itself a collective (weight
                # broadcast), so it must happen inside the rank thread.
                model = DistributedDataParallel(
                    engine.replicas[rank], world.communicator(rank)
                )
                for step, global_batch in enumerate(plan):
                    model.zero_grad()
                    start = time.perf_counter()
                    batch = acquire_batch(
                        prefetcher,
                        engine.sampler,
                        engine.dataset.graph,
                        global_batch,
                        world_size=engine.n,
                        rank=rank,
                        seed=engine.seed,
                        epoch=epoch,
                        step=step,
                    )
                    wait_per_rank[rank] += time.perf_counter() - start
                    start = time.perf_counter()
                    if batch is not None:
                        loss, e = compute_loss(
                            batch, engine.features, engine.dataset.labels, model.module
                        )
                        loss.backward()
                        losses_per_rank[rank].append(loss.item())
                        edges_per_rank[rank] += e
                    model.sync_gradients()
                    engine.optimizers[rank].step()
                    compute_per_rank[rank] += time.perf_counter() - start
            except BaseException as exc:  # surface thread failures
                errors.append(exc)
                world.abort()  # unblock peers waiting on collectives
                raise
            finally:
                if prefetcher is not None:
                    prefetcher.close()

        threads = [threading.Thread(target=worker, args=(r,)) for r in range(engine.n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise RuntimeError(f"rank thread failed: {errors[0]!r}") from errors[0]
        return EpochResult(
            losses=[v for per in losses_per_rank for v in per],
            sampled_edges=int(sum(edges_per_rank)),
            sample_wait=float(sum(wait_per_rank)),
            compute_time=float(sum(compute_per_rank)),
        )
