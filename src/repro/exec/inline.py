"""Inline backend: ranks execute sequentially in the calling thread.

Bit-for-bit deterministic — the reference semantics every other backend
is measured against.  Gradient averaging happens directly over the
replicas (:func:`repro.distributed.ddp.average_gradients`); no
communicator is needed because nothing runs concurrently.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.ddp import average_gradients
from repro.exec.base import EpochResult, ExecutionBackend, forward_loss, rank_chunk, register_backend
from repro.utils.rng import derive_rng

__all__ = ["InlineBackend"]


@register_backend("inline")
class InlineBackend(ExecutionBackend):
    """Sequential rank execution (deterministic reference backend)."""

    def run_epoch(self, engine, epoch: int, plan: list[np.ndarray]) -> EpochResult:
        losses: list[float] = []
        edges = 0
        for step, global_batch in enumerate(plan):
            for rank, model in enumerate(engine.replicas):
                seeds = rank_chunk(global_batch, engine.n, rank)
                model.zero_grad()
                if len(seeds) == 0:
                    continue
                rng = derive_rng(engine.seed, "sample", epoch, step, rank)
                loss, e = forward_loss(
                    engine.sampler,
                    engine.dataset.graph,
                    engine.features,
                    engine.dataset.labels,
                    model,
                    seeds,
                    rng,
                )
                loss.backward()
                losses.append(loss.item())
                edges += e
            average_gradients(engine.replicas)
            for opt in engine.optimizers:
                opt.step()
        return EpochResult(losses=losses, sampled_edges=edges)
