"""Inline backend: ranks execute sequentially in the calling thread.

Bit-for-bit deterministic — the reference semantics every other backend
is measured against.  Gradient averaging happens directly over the
replicas (:func:`repro.distributed.ddp.average_gradients`); no
communicator is needed because nothing runs concurrently.

With ``engine.prefetch`` on, each rank's sample stream is produced ahead
of time by a :func:`repro.pipeline.prefetch.rank_step_prefetcher` —
compute still runs sequentially in this thread, but sampling for future
steps overlaps it.  Because each step's RNG is derived from
``(seed, epoch, step, rank)`` either way, the loss trajectory is
bit-identical with prefetching on or off.
"""

from __future__ import annotations

import time

import numpy as np

from repro.distributed.ddp import average_gradients
from repro.exec.base import (
    EpochResult,
    ExecutionBackend,
    acquire_batch,
    compute_loss,
    register_backend,
)
from repro.pipeline.prefetch import rank_step_prefetcher
from repro.platform.corebind import sampling_affinity

__all__ = ["InlineBackend"]


@register_backend("inline")
class InlineBackend(ExecutionBackend):
    """Sequential rank execution (deterministic reference backend)."""

    def run_epoch(self, engine, epoch: int, plan: list[np.ndarray]) -> EpochResult:
        losses: list[float] = []
        edges = 0
        sample_wait = 0.0
        compute_time = 0.0
        prefetchers = None
        if engine.prefetch:
            prefetchers = [
                rank_step_prefetcher(
                    engine.sampler,
                    engine.dataset.graph,
                    plan,
                    world_size=engine.n,
                    rank=rank,
                    seed=engine.seed,
                    epoch=epoch,
                    num_workers=engine.sampler_workers,
                    queue_depth=engine.queue_depth,
                    sampling_cores=sampling_affinity(
                        engine.bindings[rank] if engine.bindings else None
                    ),
                )
                for rank in range(engine.n)
            ]
        try:
            for step, global_batch in enumerate(plan):
                for rank, model in enumerate(engine.replicas):
                    model.zero_grad()
                    start = time.perf_counter()
                    batch = acquire_batch(
                        prefetchers[rank] if prefetchers is not None else None,
                        engine.sampler,
                        engine.dataset.graph,
                        global_batch,
                        world_size=engine.n,
                        rank=rank,
                        seed=engine.seed,
                        epoch=epoch,
                        step=step,
                    )
                    sample_wait += time.perf_counter() - start
                    if batch is None:
                        continue
                    start = time.perf_counter()
                    loss, e = compute_loss(
                        batch, engine.features, engine.dataset.labels, model
                    )
                    loss.backward()
                    compute_time += time.perf_counter() - start
                    losses.append(loss.item())
                    edges += e
                start = time.perf_counter()
                average_gradients(engine.replicas)
                for opt in engine.optimizers:
                    opt.step()
                compute_time += time.perf_counter() - start
        finally:
            if prefetchers is not None:
                for p in prefetchers:
                    p.close()
        return EpochResult(
            losses=losses,
            sampled_edges=edges,
            sample_wait=sample_wait,
            compute_time=compute_time,
        )
