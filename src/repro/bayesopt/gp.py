"""Gaussian-process regression with Cholesky algebra and MLE fitting.

The standard GP toolbox (Rasmussen & Williams ch. 2): given training data
``(X, y)`` and a kernel ``k``,

* posterior mean   ``m(x*) = k*^T (K + s_n I)^-1 y``
* posterior var    ``v(x*) = k(x*,x*) - k*^T (K + s_n I)^-1 k*``
* log marginal likelihood for hyperparameter selection.

Targets are standardised internally (zero mean, unit variance) so kernel
hyperparameter defaults are scale-free — epoch times ranging from 1 to
400 seconds across experiments would otherwise need per-task priors.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

from repro.bayesopt.kernels import Kernel, Matern52

__all__ = ["GaussianProcessRegressor"]


class GaussianProcessRegressor:
    """Exact GP regression.

    Parameters
    ----------
    kernel:
        Covariance function (default Matérn-5/2).
    noise:
        Observation noise variance (in *standardised* target units).
    optimize_hypers:
        If True, ``fit`` maximises the log marginal likelihood over
        (sigma2, ell) on a small log-grid with local refinement — robust,
        derivative-free, and fast for the few dozen points the online
        auto-tuner collects.
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        *,
        noise: float = 1e-4,
        optimize_hypers: bool = True,
    ):
        if noise <= 0:
            raise ValueError(f"noise must be > 0, got {noise}")
        self.kernel = kernel if kernel is not None else Matern52()
        self.noise = float(noise)
        self.optimize_hypers = bool(optimize_hypers)
        self._X: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._L: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0

    # ------------------------------------------------------------------
    def _standardise(self, y: np.ndarray) -> np.ndarray:
        self._y_mean = float(y.mean())
        self._y_std = float(y.std())
        if self._y_std < 1e-12:
            self._y_std = 1.0
        return (y - self._y_mean) / self._y_std

    def log_marginal_likelihood(self, X: np.ndarray, y_std: np.ndarray, kernel: Kernel) -> float:
        """LML of standardised targets under ``kernel`` (jittered Cholesky)."""
        n = len(X)
        K = kernel(X, X) + (self.noise + 1e-10) * np.eye(n)
        try:
            L = linalg.cholesky(K, lower=True)
        except linalg.LinAlgError:
            return -np.inf
        alpha = linalg.cho_solve((L, True), y_std)
        return float(
            -0.5 * y_std @ alpha - np.log(np.diag(L)).sum() - 0.5 * n * np.log(2 * np.pi)
        )

    def _fit_hypers(self, X: np.ndarray, y_std: np.ndarray) -> Kernel:
        """Grid + refinement search over (sigma2, ell) maximising the LML."""
        best_lml, best_kernel = -np.inf, self.kernel
        sigma2s = [0.25, 1.0, 4.0]
        ells = np.geomspace(0.05, 2.0, 8)
        for s2 in sigma2s:
            for ell in ells:
                k = self.kernel.with_params(s2, float(ell))
                lml = self.log_marginal_likelihood(X, y_std, k)
                if lml > best_lml:
                    best_lml, best_kernel = lml, k
        # one refinement pass around the winner
        for ell in best_kernel.ell * np.array([0.7, 0.85, 1.18, 1.43]):
            k = best_kernel.with_params(best_kernel.sigma2, float(ell))
            lml = self.log_marginal_likelihood(X, y_std, k)
            if lml > best_lml:
                best_lml, best_kernel = lml, k
        return best_kernel

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if len(X) != len(y):
            raise ValueError(f"X ({len(X)}) and y ({len(y)}) length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit a GP on zero observations")
        y_std = self._standardise(y)
        if self.optimize_hypers and len(X) >= 3:
            self.kernel = self._fit_hypers(X, y_std)
        n = len(X)
        K = self.kernel(X, X) + (self.noise + 1e-10) * np.eye(n)
        self._L = linalg.cholesky(K, lower=True)
        self._alpha = linalg.cho_solve((self._L, True), y_std)
        self._X = X
        return self

    def predict(self, Xq: np.ndarray, return_std: bool = True):
        """Posterior mean (and std) at query points, in original units."""
        if self._X is None:
            raise RuntimeError("predict() called before fit()")
        Xq = np.atleast_2d(np.asarray(Xq, dtype=np.float64))
        Ks = self.kernel(Xq, self._X)
        mean_std_units = Ks @ self._alpha
        mean = mean_std_units * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = linalg.solve_triangular(self._L, Ks.T, lower=True)
        var = np.clip(self.kernel.diag(Xq) - (v * v).sum(axis=0), 0.0, None)
        std = np.sqrt(var + self.noise) * self._y_std
        return mean, std
