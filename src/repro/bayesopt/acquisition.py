"""Acquisition functions for minimisation.

All functions take posterior ``(mean, std)`` arrays and the incumbent
best observation, returning scores where *larger is better* (the
optimizer picks the argmax).  Expected Improvement is the paper
auto-tuner's default: it balances exploring high-variance regions with
exploiting low-mean ones (paper Sec. V-C).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = [
    "expected_improvement",
    "probability_of_improvement",
    "upper_confidence_bound",
    "ACQUISITIONS",
]


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.01
) -> np.ndarray:
    """EI for minimisation: ``E[max(best - xi - Y, 0)]``."""
    mean = np.asarray(mean, dtype=np.float64)
    std = np.asarray(std, dtype=np.float64)
    improvement = best - xi - mean
    with np.errstate(divide="ignore", invalid="ignore"):
        z = np.where(std > 0, improvement / std, 0.0)
    ei = improvement * stats.norm.cdf(z) + std * stats.norm.pdf(z)
    # deterministic points (std == 0) improve only if strictly better
    return np.where(std > 0, ei, np.maximum(improvement, 0.0))


def probability_of_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.01
) -> np.ndarray:
    """PI for minimisation: ``P(Y < best - xi)``."""
    mean = np.asarray(mean, dtype=np.float64)
    std = np.asarray(std, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        z = np.where(std > 0, (best - xi - mean) / std, np.where(mean < best - xi, np.inf, -np.inf))
    return stats.norm.cdf(z)


def upper_confidence_bound(
    mean: np.ndarray, std: np.ndarray, best: float | None = None, kappa: float = 1.8
) -> np.ndarray:
    """Negated lower confidence bound (for minimisation): ``-(mean - kappa std)``."""
    mean = np.asarray(mean, dtype=np.float64)
    std = np.asarray(std, dtype=np.float64)
    return -(mean - kappa * std)


ACQUISITIONS = {
    "ei": expected_improvement,
    "pi": probability_of_improvement,
    "ucb": upper_confidence_bound,
}
