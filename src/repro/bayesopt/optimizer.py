"""Ask/tell Bayesian optimizer over a finite candidate set.

The runtime-configuration space is small and discrete (a few hundred
``(n, s, t)`` triples), so the acquisition function is maximised exactly
by scoring every candidate not yet evaluated — no inner optimisation loop
needed, and the whole ``tell -> refit -> ask`` cycle costs milliseconds
(the paper reports <1% tuning overhead; Sec. VI-D).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.bayesopt.acquisition import ACQUISITIONS
from repro.bayesopt.gp import GaussianProcessRegressor
from repro.bayesopt.kernels import Matern52
from repro.utils.rng import as_generator

__all__ = ["BayesianOptimizer"]


class BayesianOptimizer:
    """Minimise a black-box function over a finite set of feature points.

    Parameters
    ----------
    candidates:
        ``(N, d)`` array of feature vectors, ideally normalised to
        ``[0, 1]^d`` (see :meth:`repro.tuning.space.ConfigSpace.features`).
    n_initial:
        Number of random evaluations before the surrogate is trusted.
    acquisition:
        ``"ei"`` (default), ``"pi"`` or ``"ucb"``.
    rng:
        Seed or generator for the initial design and tie-breaking.
    """

    def __init__(
        self,
        candidates: np.ndarray,
        *,
        n_initial: int = 5,
        acquisition: str = "ei",
        noise: float = 1e-3,
        rng=None,
    ):
        self.candidates = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
        if len(self.candidates) == 0:
            raise ValueError("candidate set must not be empty")
        if acquisition not in ACQUISITIONS:
            raise ValueError(f"unknown acquisition {acquisition!r}; options: {sorted(ACQUISITIONS)}")
        self.acquisition = ACQUISITIONS[acquisition]
        self.n_initial = max(1, int(n_initial))
        self.rng = as_generator(rng)
        self.gp = GaussianProcessRegressor(kernel=Matern52(), noise=noise)
        self.X_observed: list[int] = []  # candidate indices
        self.y_observed: list[float] = []
        # pre-shuffled initial design (without replacement)
        self._init_order = list(
            self.rng.permutation(len(self.candidates))[: min(self.n_initial, len(self.candidates))]
        )

    # ------------------------------------------------------------------
    @property
    def num_observations(self) -> int:
        return len(self.y_observed)

    @property
    def best_index(self) -> int:
        """Candidate index of the best (lowest) observation so far."""
        if not self.y_observed:
            raise RuntimeError("no observations yet")
        return self.X_observed[int(np.argmin(self.y_observed))]

    @property
    def best_value(self) -> float:
        if not self.y_observed:
            raise RuntimeError("no observations yet")
        return float(np.min(self.y_observed))

    # ------------------------------------------------------------------
    def ask(self) -> int:
        """Index of the next candidate to evaluate."""
        unseen = [i for i in range(len(self.candidates)) if i not in set(self.X_observed)]
        if not unseen:
            return self.best_index  # space exhausted: re-use the best
        # initial random design
        for idx in self._init_order:
            if idx not in set(self.X_observed):
                if self.num_observations < self.n_initial:
                    return int(idx)
                break
        if self.num_observations < self.n_initial:
            return int(unseen[0])
        # surrogate-guided choice
        self.gp.fit(self.candidates[self.X_observed], np.asarray(self.y_observed))
        mean, std = self.gp.predict(self.candidates[unseen])
        scores = self.acquisition(mean, std, self.best_value)
        order = np.argsort(scores)[::-1]
        return int(unseen[int(order[0])])

    def tell(self, index: int, value: float) -> None:
        """Record an observation for candidate ``index``."""
        if not 0 <= index < len(self.candidates):
            raise IndexError(f"candidate index {index} out of range")
        if not np.isfinite(value):
            raise ValueError(f"observation must be finite, got {value}")
        self.X_observed.append(int(index))
        self.y_observed.append(float(value))

    # ------------------------------------------------------------------
    def minimize(self, objective: Callable[[int], float], budget: int) -> tuple[int, float]:
        """Run ``budget`` ask/tell rounds; returns (best index, best value)."""
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        for _ in range(budget):
            idx = self.ask()
            self.tell(idx, objective(idx))
        return self.best_index, self.best_value
