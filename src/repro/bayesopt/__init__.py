"""Bayesian optimization from first principles (scikit-optimize stand-in).

Implements the BayesOpt backend of the paper's auto-tuner (Sec. V-C):
a Gaussian-process surrogate (RBF or Matérn-5/2 kernel, Cholesky solves,
marginal-likelihood hyperparameter fitting) with an Expected-Improvement
acquisition, wrapped in an ``ask``/``tell`` interface.  Designed for the
finite integer design spaces of runtime configuration: the acquisition is
maximised *exactly* by scoring every not-yet-evaluated candidate.
"""

from repro.bayesopt.kernels import Kernel, RBF, Matern52
from repro.bayesopt.gp import GaussianProcessRegressor
from repro.bayesopt.acquisition import expected_improvement, upper_confidence_bound, probability_of_improvement
from repro.bayesopt.optimizer import BayesianOptimizer

__all__ = [
    "Kernel",
    "RBF",
    "Matern52",
    "GaussianProcessRegressor",
    "expected_improvement",
    "upper_confidence_bound",
    "probability_of_improvement",
    "BayesianOptimizer",
]
