"""Covariance kernels for Gaussian-process regression.

Both kernels are stationary with a shared signal variance ``sigma2`` and
per-dimension (isotropic here) length scale ``ell``.  Inputs are expected
in a normalised [0, 1]^d cube (see :mod:`repro.bayesopt.space`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Kernel", "RBF", "Matern52", "pairwise_sqdist"]


def pairwise_sqdist(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between rows of ``a`` and ``b``."""
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    if a.shape[1] != b.shape[1]:
        raise ValueError(f"dimension mismatch: {a.shape} vs {b.shape}")
    aa = (a * a).sum(axis=1)[:, None]
    bb = (b * b).sum(axis=1)[None, :]
    sq = aa + bb - 2.0 * (a @ b.T)
    return np.maximum(sq, 0.0)


class Kernel:
    """Base kernel with (signal variance, length scale) hyperparameters."""

    def __init__(self, sigma2: float = 1.0, ell: float = 0.3):
        if sigma2 <= 0 or ell <= 0:
            raise ValueError(f"sigma2 and ell must be > 0, got {sigma2}, {ell}")
        self.sigma2 = float(sigma2)
        self.ell = float(ell)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def with_params(self, sigma2: float, ell: float) -> "Kernel":
        return type(self)(sigma2=sigma2, ell=ell)

    def diag(self, X: np.ndarray) -> np.ndarray:
        """k(x, x) per row — constant ``sigma2`` for stationary kernels.

        Avoids materialising the full Gram matrix when only the prior
        variance is needed (the acquisition scan evaluates thousands of
        candidates).
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return np.full(len(X), self.sigma2)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(sigma2={self.sigma2:.4g}, ell={self.ell:.4g})"


class RBF(Kernel):
    """Squared-exponential kernel ``sigma2 * exp(-r^2 / (2 ell^2))``."""

    def __call__(self, a, b):
        sq = pairwise_sqdist(a, b)
        return self.sigma2 * np.exp(-0.5 * sq / self.ell**2)


class Matern52(Kernel):
    """Matérn nu=5/2: ``sigma2 (1 + z + z^2/3) exp(-z)``, ``z = sqrt(5) r / ell``.

    The default surrogate kernel: once-differentiable sample paths suit
    the piecewise-smooth epoch-time landscapes of Fig. 7 better than the
    infinitely smooth RBF.
    """

    def __call__(self, a, b):
        r = np.sqrt(pairwise_sqdist(a, b))
        z = np.sqrt(5.0) * r / self.ell
        return self.sigma2 * (1.0 + z + z * z / 3.0) * np.exp(-z)
