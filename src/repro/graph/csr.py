"""Compressed-sparse-row graph structure.

``CSRGraph`` stores, for every destination node ``v``, the sorted slice of
source nodes ``indices[indptr[v]:indptr[v+1]]`` that have an edge into
``v``.  This is the orientation GNN aggregation needs: messages flow from
``u in N(v)`` (sources) to ``v`` (destination), exactly the ``N(i)`` of the
paper's Table I.

Design notes
------------
* Arrays are immutable by convention (we set ``writeable=False``) so that
  graphs can be shared freely between the per-rank training processes of
  the Multi-Process Engine without copies — mirroring how DGL shares the
  graph through shared memory.
* All hot-path operations (degree lookup, slicing neighbourhoods for a
  whole batch) are vectorised with numpy; no per-node Python loops.
"""

from __future__ import annotations

from typing import Iterable, Protocol

import numpy as np

__all__ = ["CSRGraph", "GraphView", "induced_subgraph"]


class GraphView(Protocol):
    """Read-only in-edge adjacency interface the samplers consume.

    Two implementations exist: the frozen :class:`CSRGraph` below and the
    delta-overlaying :class:`repro.graph.delta.LayeredCSR`.  Everything
    above the graph layer (samplers, serving engine) is written against
    this protocol, so a live deployment can swap a frozen graph for a
    layered view without touching sampler code.  Per-node neighbour order
    is part of the contract — it feeds the samplers' RNG draw-order
    contract (see :mod:`repro.sampling.batch`).
    """

    num_nodes: int

    @property
    def num_edges(self) -> int: ...

    def in_degree(self, nodes: np.ndarray | None = None) -> np.ndarray: ...

    def neighbors(self, node: int) -> np.ndarray: ...

    def gather_neighbors(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]: ...

    def subgraph(self, nodes: np.ndarray) -> tuple["CSRGraph", np.ndarray]: ...


def induced_subgraph(view: "GraphView", nodes: np.ndarray) -> tuple["CSRGraph", np.ndarray]:
    """Node-induced subgraph of any :class:`GraphView`.

    Returns ``(sub, nodes)`` where ``sub`` has ``len(nodes)`` nodes and
    contains every edge of ``view`` whose endpoints are both in
    ``nodes``; node ``i`` of ``sub`` corresponds to ``nodes[i]``.
    ``nodes`` must not contain duplicates.  Implemented once on top of
    ``gather_neighbors`` so frozen and layered graphs produce the same
    subgraph with the same per-row edge order bit-for-bit.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    if len(np.unique(nodes)) != len(nodes):
        raise ValueError("subgraph nodes must be unique")
    relabel = np.full(view.num_nodes, -1, dtype=np.int64)
    relabel[nodes] = np.arange(len(nodes), dtype=np.int64)
    srcs, offsets = view.gather_neighbors(nodes)
    src_local = relabel[srcs]
    keep = src_local >= 0
    # destination local id for each gathered edge
    dst_local = np.repeat(np.arange(len(nodes), dtype=np.int64), np.diff(offsets))
    sub_src = src_local[keep]
    sub_dst = dst_local[keep]
    # already grouped by dst (gather order) — build indptr by counting
    counts = np.bincount(sub_dst, minlength=len(nodes))
    indptr = np.zeros(len(nodes) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRGraph(indptr, sub_src, len(nodes)), nodes


class CSRGraph:
    """In-edge CSR graph over nodes ``0..num_nodes-1``.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``num_nodes + 1``; monotone non-decreasing,
        ``indptr[0] == 0`` and ``indptr[-1] == num_edges``.
    indices:
        ``int64`` array of source-node ids, one per edge, grouped by
        destination.
    num_nodes:
        Optional explicit node count (defaults to ``len(indptr) - 1``).
    """

    __slots__ = ("indptr", "indices", "num_nodes")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, num_nodes: int | None = None):
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D arrays")
        if len(indptr) < 1:
            raise ValueError("indptr must have at least one entry")
        if indptr[0] != 0:
            raise ValueError(f"indptr[0] must be 0, got {indptr[0]}")
        if indptr[-1] != len(indices):
            raise ValueError(
                f"indptr[-1] ({indptr[-1]}) must equal len(indices) ({len(indices)})"
            )
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        n = len(indptr) - 1 if num_nodes is None else int(num_nodes)
        if n != len(indptr) - 1:
            raise ValueError(
                f"num_nodes ({n}) inconsistent with indptr length ({len(indptr) - 1})"
            )
        if len(indices) and (indices.min() < 0 or indices.max() >= n):
            raise ValueError("edge endpoints out of range")
        indptr.setflags(write=False)
        indices.setflags(write=False)
        self.indptr = indptr
        self.indices = indices
        self.num_nodes = n

    @classmethod
    def from_trusted_parts(cls, indptr: np.ndarray, indices: np.ndarray) -> "CSRGraph":
        """Wrap already-validated CSR arrays without copying or re-scanning.

        Used by the shared-memory store (:mod:`repro.graph.shm`) when a
        worker process attaches to segments the creating process already
        validated: the O(N + E) invariant scans of ``__init__`` would run
        once per worker per epoch otherwise.  The arrays are used as-is —
        callers must guarantee dtype ``int64``, contiguity and the CSR
        invariants, and should pass read-only views.
        """
        g = cls.__new__(cls)
        g.indptr = indptr
        g.indices = indices
        g.num_nodes = len(indptr) - 1
        return g

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return int(self.indptr[-1])

    def in_degree(self, nodes: np.ndarray | None = None) -> np.ndarray:
        """In-degrees of ``nodes`` (all nodes if ``None``)."""
        if nodes is None:
            return np.diff(self.indptr)
        nodes = np.asarray(nodes, dtype=np.int64)
        return self.indptr[nodes + 1] - self.indptr[nodes]

    def neighbors(self, node: int) -> np.ndarray:
        """Read-only view of the in-neighbours of ``node``."""
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self.num_nodes == other.num_nodes
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self):  # graphs are mutable-free; hash by identity
        return id(self)

    # ------------------------------------------------------------------
    # batched neighbourhood access (hot path for samplers)
    # ------------------------------------------------------------------
    def gather_neighbors(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated in-neighbour lists for a batch of nodes.

        Returns ``(sources, offsets)`` where
        ``sources[offsets[i]:offsets[i+1]]`` are the in-neighbours of
        ``nodes[i]``.  Fully vectorised (no Python loop over nodes).
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        starts = self.indptr[nodes]
        degs = self.indptr[nodes + 1] - starts
        offsets = np.zeros(len(nodes) + 1, dtype=np.int64)
        np.cumsum(degs, out=offsets[1:])
        total = int(offsets[-1])
        if total == 0:
            return np.empty(0, dtype=np.int64), offsets
        # Build a flat gather index: for row i, indices starts[i] .. starts[i]+deg[i]
        out_idx = np.repeat(starts - offsets[:-1], degs) + np.arange(total, dtype=np.int64)
        return self.indices[out_idx], offsets

    def edge_ids(self, nodes: np.ndarray) -> np.ndarray:
        """Global edge ids (positions in ``indices``) of all in-edges of ``nodes``."""
        nodes = np.asarray(nodes, dtype=np.int64)
        starts = self.indptr[nodes]
        degs = self.indptr[nodes + 1] - starts
        offsets = np.concatenate(([0], np.cumsum(degs)))
        total = int(offsets[-1])
        if total == 0:
            return np.empty(0, dtype=np.int64)
        return np.repeat(starts - offsets[:-1], degs) + np.arange(total, dtype=np.int64)

    # ------------------------------------------------------------------
    # conversions / derived graphs
    # ------------------------------------------------------------------
    def to_edge_index(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(src, dst)`` arrays of all edges."""
        dst = np.repeat(np.arange(self.num_nodes, dtype=np.int64), np.diff(self.indptr))
        return self.indices.copy(), dst

    def reverse(self) -> "CSRGraph":
        """Graph with every edge direction flipped (out-edge CSR of self)."""
        src, dst = self.to_edge_index()
        from repro.graph.build import from_edge_index  # local import to avoid cycle

        return from_edge_index(dst, src, self.num_nodes, coalesce=False)

    def subgraph(self, nodes: np.ndarray) -> tuple["CSRGraph", np.ndarray]:
        """Node-induced subgraph.

        Returns ``(sub, nodes)`` where ``sub`` has ``len(nodes)`` nodes and
        contains every edge of ``self`` whose endpoints are both in
        ``nodes``; node ``i`` of ``sub`` corresponds to ``nodes[i]``.
        ``nodes`` must not contain duplicates.
        """
        return induced_subgraph(self, nodes)

    def has_self_loops(self) -> bool:
        src, dst = self.to_edge_index()
        return bool(np.any(src == dst))

    def validate(self) -> None:
        """Re-run all structural invariants (used by property tests)."""
        CSRGraph(self.indptr.copy(), self.indices.copy(), self.num_nodes)
