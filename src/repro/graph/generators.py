"""Synthetic graph generators.

The paper's datasets (Flickr, Reddit, ogbn-products, ogbn-papers100M) are
heavy-tailed social/co-purchase/citation graphs.  We cannot ship those
graphs, so the dataset registry (:mod:`repro.graph.datasets`) instantiates
scaled-down synthetic stand-ins from the generators here:

* :func:`rmat_edges` — the classic recursive-matrix (Kronecker) generator,
  which produces the power-law degree distributions and community structure
  that drive the *shared-neighbour workload inflation* effect of the
  paper's Figure 5/6.  Vectorised: all edges are placed at once by sampling
  one quadrant choice per (edge, level) pair.
* :func:`powerlaw_graph` — a configuration-model style power-law graph used
  by property tests (exact degree control).
* :func:`erdos_renyi_graph` — uniform random baseline used in ablations.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import from_edge_index
from repro.graph.csr import CSRGraph
from repro.utils.rng import as_generator

__all__ = ["rmat_edges", "powerlaw_graph", "erdos_renyi_graph"]


def rmat_edges(
    scale: int,
    edge_factor: float,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    rng=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``~edge_factor * 2**scale`` RMAT edges over ``2**scale`` nodes.

    ``(a, b, c, d=1-a-b-c)`` are the standard RMAT quadrant probabilities
    (defaults are the Graph500 values, giving a heavy-tailed in-degree
    distribution similar to ogbn-products).
    """
    if scale < 1 or scale > 30:
        raise ValueError(f"scale must be in [1, 30], got {scale}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("RMAT probabilities must be non-negative and sum to <= 1")
    rng = as_generator(rng)
    n_edges = int(round(edge_factor * (1 << scale)))
    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    # At each recursion level choose one of four quadrants per edge.
    p_right = b + d  # probability the src bit is 1 (right half)
    for level in range(scale):
        u = rng.random(n_edges)
        v = rng.random(n_edges)
        src_bit = (u < p_right).astype(np.int64)
        # conditional probability the dst bit is 1 given the src bit
        p_bot_given = np.where(src_bit == 1, d / max(p_right, 1e-12), c / max(a + c, 1e-12))
        dst_bit = (v < p_bot_given).astype(np.int64)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    # random permutation of node ids to remove the RMAT id-locality artifact
    perm = rng.permutation(1 << scale)
    return perm[src], perm[dst]


def powerlaw_graph(
    num_nodes: int,
    avg_degree: float,
    *,
    exponent: float = 2.2,
    rng=None,
) -> CSRGraph:
    """Configuration-model power-law graph (undirected, coalesced).

    Degrees are drawn from a discrete power law with the given exponent,
    scaled to hit ``avg_degree`` in expectation, then stubs are matched
    uniformly at random.  Self loops are removed and duplicates coalesced,
    so the realised average degree is slightly below the target on dense
    settings.
    """
    if num_nodes < 2:
        raise ValueError(f"num_nodes must be >= 2, got {num_nodes}")
    if avg_degree <= 0:
        raise ValueError(f"avg_degree must be > 0, got {avg_degree}")
    rng = as_generator(rng)
    # Zipf-ish raw degrees, clipped to keep the max degree below n.
    raw = rng.zipf(exponent, size=num_nodes).astype(np.float64)
    raw = np.minimum(raw, num_nodes - 1)
    degrees = np.maximum(1, np.round(raw * (avg_degree / raw.mean()))).astype(np.int64)
    if degrees.sum() % 2 == 1:
        degrees[int(rng.integers(num_nodes))] += 1
    stubs = np.repeat(np.arange(num_nodes, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    half = len(stubs) // 2
    src, dst = stubs[:half], stubs[half : 2 * half]
    return from_edge_index(src, dst, num_nodes, undirected=True, self_loops=False)


def erdos_renyi_graph(num_nodes: int, avg_degree: float, *, rng=None) -> CSRGraph:
    """G(n, m) uniform random graph with ``m ≈ n*avg_degree/2`` undirected edges."""
    if num_nodes < 2:
        raise ValueError(f"num_nodes must be >= 2, got {num_nodes}")
    rng = as_generator(rng)
    m = int(round(num_nodes * avg_degree / 2))
    src = rng.integers(0, num_nodes, size=m, dtype=np.int64)
    dst = rng.integers(0, num_nodes, size=m, dtype=np.int64)
    return from_edge_index(src, dst, num_nodes, undirected=True, self_loops=False)
