"""Graph substrate: CSR graphs, builders, synthetic generators, datasets.

This subpackage stands in for the graph layer of DGL/PyG.  Graphs are
stored in compressed-sparse-row (CSR) form over the *incoming* edges of
each node, which is the access pattern both samplers need ("give me the
neighbours that send messages to v").
"""

from repro.graph.csr import CSRGraph, GraphView, induced_subgraph
from repro.graph.delta import (
    DeltaFragment,
    GraphDelta,
    LayeredCSR,
    materialize_dataset,
    reverse_reachable,
)
from repro.graph.build import (
    from_edge_index,
    to_undirected_edges,
    remove_self_loops,
    coalesce_edges,
)
from repro.graph.generators import rmat_edges, powerlaw_graph, erdos_renyi_graph
from repro.graph.datasets import (
    DatasetSpec,
    GNNDataset,
    DATASET_REGISTRY,
    load_dataset,
    list_datasets,
)
from repro.graph.shm import SharedArraySpec, SharedGraphStore
from repro.graph.partition import (
    random_node_partition,
    contiguous_node_partition,
    greedy_bfs_partition,
    partition_edge_cut,
    partition_balance,
)

__all__ = [
    "CSRGraph",
    "GraphView",
    "induced_subgraph",
    "GraphDelta",
    "DeltaFragment",
    "LayeredCSR",
    "reverse_reachable",
    "materialize_dataset",
    "from_edge_index",
    "to_undirected_edges",
    "remove_self_loops",
    "coalesce_edges",
    "rmat_edges",
    "powerlaw_graph",
    "erdos_renyi_graph",
    "DatasetSpec",
    "GNNDataset",
    "DATASET_REGISTRY",
    "load_dataset",
    "list_datasets",
    "SharedArraySpec",
    "SharedGraphStore",
    "random_node_partition",
    "contiguous_node_partition",
    "greedy_bfs_partition",
    "partition_edge_cut",
    "partition_balance",
]
