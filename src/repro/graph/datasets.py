"""Dataset registry: synthetic stand-ins for the paper's four benchmarks.

The paper evaluates on (Table III):

======================  ===========  =============  ====  ====  ====
dataset                 #vertices    #edges         f0    f1    f2
======================  ===========  =============  ====  ====  ====
Flickr                  89,250       899,756        500   128   7
Reddit                  232,965      11,606,919     602   128   41
ogbn-products           2,449,029    61,859,140     100   128   47
ogbn-papers100M         111,059,956  1,615,685,872  128   128   172
======================  ===========  =============  ====  ====  ====

We register each with (a) its *paper-scale* statistics, used by the
platform cost model to extrapolate workload volumes, and (b) a *local
scale factor* that instantiates a laptop-sized RMAT graph with the same
average degree, feature dims and label count, on which training, sampling
and workload measurement actually run.

A loaded :class:`GNNDataset` carries node features, labels and the usual
train/val/test split.  Everything is deterministic in the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.build import from_edge_index
from repro.graph.generators import rmat_edges
from repro.utils.rng import derive_rng

__all__ = ["DatasetSpec", "GNNDataset", "DATASET_REGISTRY", "load_dataset", "list_datasets"]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a benchmark dataset (paper-scale + local scale)."""

    name: str
    paper_num_nodes: int
    paper_num_edges: int
    feature_dim: int  # f0
    hidden_dim: int  # f1
    num_classes: int  # f2
    local_scale: int  # RMAT scale for the local synthetic instance
    #: size of the official training split at paper scale (used by the
    #: cost model to derive iterations per epoch)
    paper_train_nodes: int = 0
    train_fraction: float = 0.10
    val_fraction: float = 0.08

    @property
    def avg_degree(self) -> float:
        return self.paper_num_edges / self.paper_num_nodes

    @property
    def local_num_nodes(self) -> int:
        return 1 << self.local_scale

    @property
    def paper_scale_factor(self) -> float:
        """How many paper-scale nodes each local node represents."""
        return self.paper_num_nodes / self.local_num_nodes


@dataclass
class GNNDataset:
    """A materialised dataset: graph + features + labels + split."""

    spec: DatasetSpec
    graph: CSRGraph
    features: np.ndarray  # (N, f0) float32
    labels: np.ndarray  # (N,) int64
    train_idx: np.ndarray
    val_idx: np.ndarray
    test_idx: np.ndarray

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def layer_dims(self, num_layers: int = 3) -> list[int]:
        """Per-layer feature widths ``[f0, f1, ..., f_out]`` (paper Table III)."""
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        return [self.spec.feature_dim] + [self.spec.hidden_dim] * (num_layers - 1) + [
            self.spec.num_classes
        ]


# Local scales chosen so everything trains in seconds: Flickr 2^12=4096
# nodes ... papers100M 2^15=32768 nodes, preserving the size ordering.
DATASET_REGISTRY: Dict[str, DatasetSpec] = {
    "flickr": DatasetSpec(
        name="flickr",
        paper_num_nodes=89_250,
        paper_num_edges=899_756,
        feature_dim=500,
        hidden_dim=128,
        num_classes=7,
        local_scale=12,
        paper_train_nodes=44_625,
    ),
    "reddit": DatasetSpec(
        name="reddit",
        paper_num_nodes=232_965,
        paper_num_edges=11_606_919,
        feature_dim=602,
        hidden_dim=128,
        num_classes=41,
        local_scale=13,
        paper_train_nodes=153_431,
    ),
    "ogbn-products": DatasetSpec(
        name="ogbn-products",
        paper_num_nodes=2_449_029,
        paper_num_edges=61_859_140,
        feature_dim=100,
        hidden_dim=128,
        num_classes=47,
        local_scale=14,
        paper_train_nodes=196_615,
    ),
    "ogbn-papers100m": DatasetSpec(
        name="ogbn-papers100M",
        paper_num_nodes=111_059_956,
        paper_num_edges=1_615_685_872,
        feature_dim=128,
        hidden_dim=128,
        num_classes=172,
        local_scale=15,
        paper_train_nodes=1_207_179,
    ),
}


def list_datasets() -> list[str]:
    """Names of all registered datasets, in paper (size) order."""
    return list(DATASET_REGISTRY)


def _planted_labels(
    graph: CSRGraph, num_classes: int, rng: np.random.Generator
) -> np.ndarray:
    """Labels with graph-correlated structure (one propagation round).

    Pure random labels would make the convergence experiment (Fig. 9)
    meaningless — no model can learn them.  We plant labels by seeding each
    node with a random class vote and letting each node adopt the majority
    class of its neighbourhood, which gives a signal that message-passing
    models can actually pick up.
    """
    n = graph.num_nodes
    votes = rng.integers(0, num_classes, size=n)
    onehot = np.zeros((n, num_classes), dtype=np.float32)
    onehot[np.arange(n), votes] = 1.0
    # one round of mean-aggregation of the votes + self vote
    srcs, offsets = graph.gather_neighbors(np.arange(n, dtype=np.int64))
    agg = np.zeros_like(onehot)
    dst = np.repeat(np.arange(n, dtype=np.int64), np.diff(offsets))
    np.add.at(agg, dst, onehot[srcs])
    deg = np.maximum(1, np.diff(graph.indptr)).astype(np.float32)[:, None]
    smoothed = onehot + agg / deg
    return smoothed.argmax(axis=1).astype(np.int64)


def _planted_features(
    labels: np.ndarray, feature_dim: int, num_classes: int, rng: np.random.Generator
) -> np.ndarray:
    """Class-conditional Gaussian features: centroid(label) + noise."""
    centroids = rng.standard_normal((num_classes, feature_dim)).astype(np.float32)
    noise = rng.standard_normal((len(labels), feature_dim)).astype(np.float32)
    return centroids[labels] + noise


def load_dataset(name: str, *, seed: int = 0, scale_override: int | None = None) -> GNNDataset:
    """Instantiate the local synthetic version of a registered dataset.

    Parameters
    ----------
    name:
        One of :func:`list_datasets` (case-insensitive).
    seed:
        Seed controlling graph topology, features, labels and split.
    scale_override:
        Replace the registered RMAT scale (e.g. smaller graphs for tests).
    """
    key = name.lower()
    if key not in DATASET_REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; known: {list_datasets()}")
    spec = DATASET_REGISTRY[key]
    if scale_override is not None:
        spec = DatasetSpec(
            **{**spec.__dict__, "local_scale": int(scale_override)}
        )
    rng = derive_rng(seed, "dataset", spec.name)
    src, dst = rmat_edges(spec.local_scale, spec.avg_degree / 2.0, rng=rng)
    graph = from_edge_index(
        src, dst, spec.local_num_nodes, undirected=True, self_loops=False
    )
    labels = _planted_labels(graph, spec.num_classes, rng)
    features = _planted_features(labels, spec.feature_dim, spec.num_classes, rng)
    n = graph.num_nodes
    perm = rng.permutation(n)
    n_train = max(1, int(n * spec.train_fraction))
    n_val = max(1, int(n * spec.val_fraction))
    train_idx = np.sort(perm[:n_train]).astype(np.int64)
    val_idx = np.sort(perm[n_train : n_train + n_val]).astype(np.int64)
    test_idx = np.sort(perm[n_train + n_val :]).astype(np.int64)
    return GNNDataset(
        spec=spec,
        graph=graph,
        features=features,
        labels=labels,
        train_idx=train_idx,
        val_idx=val_idx,
        test_idx=test_idx,
    )
