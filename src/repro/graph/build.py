"""Builders converting edge lists (COO) into :class:`CSRGraph`.

These are the equivalents of ``dgl.graph((src, dst))`` /
``torch_geometric.utils`` helpers.  All builders are vectorised: sorting by
destination with ``np.lexsort`` groups edges into CSR rows in
``O(E log E)`` without Python loops.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "from_edge_index",
    "to_undirected_edges",
    "remove_self_loops",
    "coalesce_edges",
]


def _as_edges(src, dst) -> tuple[np.ndarray, np.ndarray]:
    src = np.ascontiguousarray(src, dtype=np.int64)
    dst = np.ascontiguousarray(dst, dtype=np.int64)
    if src.shape != dst.shape or src.ndim != 1:
        raise ValueError(f"src/dst must be 1-D arrays of equal length, got {src.shape} / {dst.shape}")
    return src, dst


def coalesce_edges(src, dst) -> tuple[np.ndarray, np.ndarray]:
    """Sort edges by (dst, src) and drop exact duplicates."""
    src, dst = _as_edges(src, dst)
    order = np.lexsort((src, dst))
    src, dst = src[order], dst[order]
    if len(src):
        keep = np.ones(len(src), dtype=bool)
        keep[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
        src, dst = src[keep], dst[keep]
    return src, dst


def remove_self_loops(src, dst) -> tuple[np.ndarray, np.ndarray]:
    """Drop edges with ``src == dst``."""
    src, dst = _as_edges(src, dst)
    keep = src != dst
    return src[keep], dst[keep]


def to_undirected_edges(src, dst) -> tuple[np.ndarray, np.ndarray]:
    """Mirror every edge; duplicates are *not* removed (use coalesce)."""
    src, dst = _as_edges(src, dst)
    return np.concatenate([src, dst]), np.concatenate([dst, src])


def from_edge_index(
    src,
    dst,
    num_nodes: int | None = None,
    *,
    coalesce: bool = True,
    undirected: bool = False,
    self_loops: bool = True,
) -> CSRGraph:
    """Build an in-edge CSR graph from COO arrays.

    Parameters
    ----------
    src, dst:
        Edge endpoint arrays (``src[i] -> dst[i]``).
    num_nodes:
        Node count; inferred as ``max(endpoint) + 1`` when omitted.
    coalesce:
        Drop duplicate edges (default True).
    undirected:
        Mirror all edges before building (then coalesce if requested).
    self_loops:
        When False, remove self loops.
    """
    src, dst = _as_edges(src, dst)
    if undirected:
        src, dst = to_undirected_edges(src, dst)
    if not self_loops:
        src, dst = remove_self_loops(src, dst)
    if num_nodes is None:
        num_nodes = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1) if len(src) else 0
    if len(src) and (src.min() < 0 or dst.min() < 0 or src.max() >= num_nodes or dst.max() >= num_nodes):
        raise ValueError("edge endpoints out of range for num_nodes")
    if coalesce:
        src, dst = coalesce_edges(src, dst)
    else:
        order = np.lexsort((src, dst))
        src, dst = src[order], dst[order]
    counts = np.bincount(dst, minlength=num_nodes) if num_nodes else np.zeros(0, dtype=np.int64)
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRGraph(indptr, src, num_nodes)
