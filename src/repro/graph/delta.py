"""Streaming graph deltas: append-only fragments layered over a frozen CSR.

Production graphs mutate while a deployment serves them.  This module is
the graph-layer half of that story (ROADMAP item 4): a
:class:`GraphDelta` describes one batch of appended edges (and,
optionally, appended nodes with their features/labels), a
:class:`DeltaFragment` is its normalised CSR-fragment form (new in-edges
grouped by destination row, exactly the orientation
:class:`~repro.graph.csr.CSRGraph` stores), and :class:`LayeredCSR` is a
**view** that overlays one or more fragments on a base CSR — degree and
neighbour lookups merge base and delta slices per node with no rebuild
of the base arrays.

Ordering contract (load-bearing for bitwise parity)
---------------------------------------------------
A node's merged adjacency list is its base CSR slice followed by its
slice from each fragment **in fragment order**; within a fragment, a
row keeps the edge order of the originating :class:`GraphDelta` (stable
grouping by destination).  That merged order *is* the "CSR adjacency
order" of the samplers' RNG draw-order contract
(:mod:`repro.sampling.batch`) once deltas exist, and
:meth:`LayeredCSR.materialize` emits a frozen :class:`CSRGraph` with the
identical per-row order — which is why predictions on a layered view are
bit-identical to a cold engine rebuilt on the materialised merged graph.

The shared-memory transport of fragments lives in
:class:`repro.shm.arena.DeltaLog`; the serving-side invalidation logic
(:func:`reverse_reachable`) also lives here because it is pure graph
traversal.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.graph.csr import CSRGraph, induced_subgraph

__all__ = [
    "GraphDelta",
    "DeltaFragment",
    "LayeredCSR",
    "reverse_reachable",
    "materialize_dataset",
]


def _frozen(arr: np.ndarray, dtype=None) -> np.ndarray:
    arr = np.ascontiguousarray(arr, dtype=dtype)
    arr.setflags(write=False)
    return arr


@dataclass(frozen=True)
class GraphDelta:
    """One batch of appended edges (and optionally nodes).

    ``src``/``dst`` are global endpoint ids of the new edges (an edge
    ``src[i] -> dst[i]`` makes ``src[i]`` an in-neighbour of ``dst[i]``,
    matching the in-edge CSR orientation).  Appended nodes are implicit:
    ``features`` (``(k, f)``) and ``labels`` (``(k,)``) describe ``k``
    new nodes that receive the next ``k`` ids after the current node
    count; edge endpoints may reference them.
    """

    src: np.ndarray
    dst: np.ndarray
    features: np.ndarray | None = None
    labels: np.ndarray | None = None

    @property
    def num_new_nodes(self) -> int:
        return 0 if self.features is None else int(np.asarray(self.features).shape[0])


@dataclass(frozen=True)
class DeltaFragment:
    """One :class:`GraphDelta` normalised to an append-only CSR fragment.

    ``rows`` is the sorted set of destination nodes that gained in-edges;
    ``indices[indptr[i]:indptr[i+1]]`` are the new in-neighbours of
    ``rows[i]`` (delta-internal order preserved).  ``features``/``labels``
    carry the appended nodes' data; ``num_nodes_after`` is the total node
    count once this fragment is applied.
    """

    rows: np.ndarray
    indptr: np.ndarray
    indices: np.ndarray
    features: np.ndarray
    labels: np.ndarray
    num_nodes_after: int

    @property
    def num_new_nodes(self) -> int:
        return int(self.features.shape[0])

    @property
    def num_new_edges(self) -> int:
        return int(len(self.indices))

    # ------------------------------------------------------------------
    @classmethod
    def from_delta(
        cls,
        delta: GraphDelta,
        *,
        num_nodes: int,
        feature_dim: int,
        feature_dtype=np.float32,
        label_dtype=np.int64,
    ) -> "DeltaFragment":
        """Validate and normalise ``delta`` against the current node count."""
        src = np.asarray(delta.src, dtype=np.int64).ravel()
        dst = np.asarray(delta.dst, dtype=np.int64).ravel()
        if len(src) != len(dst):
            raise ValueError(
                f"src ({len(src)}) and dst ({len(dst)}) must have equal length"
            )
        if delta.features is not None:
            features = np.ascontiguousarray(delta.features, dtype=feature_dtype)
            if features.ndim != 2 or features.shape[1] != feature_dim:
                raise ValueError(
                    f"new-node features must be (k, {feature_dim}), "
                    f"got {features.shape}"
                )
        else:
            features = np.zeros((0, feature_dim), dtype=feature_dtype)
        k = features.shape[0]
        if delta.labels is not None:
            labels = np.ascontiguousarray(delta.labels, dtype=label_dtype).ravel()
            if len(labels) != k:
                raise ValueError(
                    f"new-node labels ({len(labels)}) must match features ({k})"
                )
        else:
            labels = np.zeros(k, dtype=label_dtype)
        total_after = int(num_nodes) + k
        if len(src) == 0 and k == 0:
            raise ValueError("empty delta: no new edges and no new nodes")
        if len(src) and (
            min(src.min(), dst.min()) < 0 or max(src.max(), dst.max()) >= total_after
        ):
            raise ValueError(
                f"delta edge endpoints out of range [0, {total_after})"
            )
        # stable grouping by destination keeps each row's edges in the
        # delta's own order — part of the merged-adjacency ordering contract
        order = np.argsort(dst, kind="stable")
        dst_sorted = dst[order]
        rows, counts = np.unique(dst_sorted, return_counts=True)
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(
            rows=_frozen(rows),
            indptr=_frozen(indptr),
            indices=_frozen(src[order]),
            features=_frozen(features),
            labels=_frozen(labels),
            num_nodes_after=total_after,
        )

    # ------------------------------------------------------------------
    # shared-memory transport (see repro.shm.arena.DeltaLog)
    # ------------------------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """The flat array bundle a :class:`~repro.shm.arena.DeltaLog` ships."""
        return {
            "rows": self.rows,
            "indptr": self.indptr,
            "indices": self.indices,
            "features": self.features,
            "labels": self.labels,
            "meta": np.asarray([self.num_nodes_after], dtype=np.int64),
        }

    @classmethod
    def from_arrays(cls, arrays) -> "DeltaFragment":
        """Rebuild a fragment from :meth:`to_arrays` output (zero-copy views)."""
        return cls(
            rows=arrays["rows"],
            indptr=arrays["indptr"],
            indices=arrays["indices"],
            features=arrays["features"],
            labels=arrays["labels"],
            num_nodes_after=int(arrays["meta"][0]),
        )

    def _row_slices(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-node ``(start, degree)`` into this fragment's ``indices``."""
        if len(self.rows) == 0:
            zeros = np.zeros(len(nodes), dtype=np.int64)
            return zeros, zeros
        pos = np.searchsorted(self.rows, nodes)
        pos_c = np.minimum(pos, len(self.rows) - 1)
        hit = self.rows[pos_c] == nodes
        starts = np.where(hit, self.indptr[pos_c], 0)
        degs = np.where(hit, self.indptr[pos_c + 1] - self.indptr[pos_c], 0)
        return starts, degs


class LayeredCSR:
    """Merged-adjacency **view** over a base CSR plus ≥1 delta fragments.

    Implements the :class:`~repro.graph.csr.GraphView` protocol the
    samplers consume — ``num_nodes``/``num_edges``, vectorised
    ``gather_neighbors`` (base and delta slices concatenated per node in
    one pass per layer), ``in_degree``, ``neighbors`` and the induced
    ``subgraph`` — without ever rebuilding the base arrays.  Nodes
    appended by fragments simply extend the id range; their base degree
    is zero.
    """

    __slots__ = ("base", "fragments", "num_nodes")

    def __init__(self, base: CSRGraph, fragments) -> None:
        fragments = list(fragments)
        if not fragments:
            raise ValueError(
                "LayeredCSR needs at least one delta fragment "
                "(use the base CSRGraph directly otherwise)"
            )
        n = base.num_nodes
        for frag in fragments:
            if frag.num_nodes_after < n:
                raise ValueError(
                    f"fragment shrinks the graph ({frag.num_nodes_after} < {n})"
                )
            n = int(frag.num_nodes_after)
        self.base = base
        self.fragments = fragments
        self.num_nodes = n

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return self.base.num_edges + sum(f.num_new_edges for f in self.fragments)

    @property
    def generation(self) -> int:
        """Graph generation this view serves (== number of fragments)."""
        return len(self.fragments)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LayeredCSR(num_nodes={self.num_nodes}, num_edges={self.num_edges}, "
            f"fragments={len(self.fragments)})"
        )

    # ------------------------------------------------------------------
    def _base_slices(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        starts = np.zeros(len(nodes), dtype=np.int64)
        degs = np.zeros(len(nodes), dtype=np.int64)
        in_base = nodes < self.base.num_nodes
        if in_base.any():
            bn = nodes[in_base]
            s = self.base.indptr[bn]
            starts[in_base] = s
            degs[in_base] = self.base.indptr[bn + 1] - s
        return starts, degs

    def _layer_slices(self, nodes: np.ndarray):
        """Per layer (base, then each fragment): (starts, degs, source pool)."""
        starts, degs = self._base_slices(nodes)
        yield starts, degs, self.base.indices
        for frag in self.fragments:
            starts, degs = frag._row_slices(nodes)
            yield starts, degs, frag.indices

    def in_degree(self, nodes: np.ndarray | None = None) -> np.ndarray:
        """Merged in-degrees of ``nodes`` (all nodes if ``None``)."""
        if nodes is None:
            full = np.zeros(self.num_nodes, dtype=np.int64)
            full[: self.base.num_nodes] = np.diff(self.base.indptr)
            for frag in self.fragments:
                full[frag.rows] += np.diff(frag.indptr)
            return full
        nodes = np.asarray(nodes, dtype=np.int64)
        total = np.zeros(len(nodes), dtype=np.int64)
        for _, degs, _ in self._layer_slices(nodes):
            total += degs
        return total

    def neighbors(self, node: int) -> np.ndarray:
        """Merged in-neighbours of ``node``: base slice, then delta slices."""
        parts = []
        if node < self.base.num_nodes:
            parts.append(self.base.neighbors(node))
        one = np.asarray([node], dtype=np.int64)
        for frag in self.fragments:
            starts, degs = frag._row_slices(one)
            if degs[0]:
                parts.append(frag.indices[starts[0] : starts[0] + degs[0]])
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def gather_neighbors(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated **merged** in-neighbour lists for a batch of nodes.

        Same contract as :meth:`CSRGraph.gather_neighbors` — the sampler
        hot path — with each node's list being its base slice followed by
        its slice of every fragment in fragment order.  Vectorised: one
        scatter per layer (base + each fragment), no per-node loop, which
        is what keeps the fused ``sample_merged`` kernels delta-aware for
        free.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        layers = list(self._layer_slices(nodes))
        totals = np.zeros(len(nodes), dtype=np.int64)
        for _, degs, _ in layers:
            totals += degs
        offsets = np.zeros(len(nodes) + 1, dtype=np.int64)
        np.cumsum(totals, out=offsets[1:])
        total = int(offsets[-1])
        out = np.empty(total, dtype=np.int64)
        if total == 0:
            return out, offsets
        within = np.zeros(len(nodes), dtype=np.int64)
        for starts, degs, pool in layers:
            t = int(degs.sum())
            if t == 0:
                continue
            lcum = np.zeros(len(nodes) + 1, dtype=np.int64)
            np.cumsum(degs, out=lcum[1:])
            local = np.arange(t, dtype=np.int64) - np.repeat(lcum[:-1], degs)
            src = pool[np.repeat(starts, degs) + local]
            out[np.repeat(offsets[:-1] + within, degs) + local] = src
            within += degs
        return out, offsets

    def subgraph(self, nodes: np.ndarray) -> tuple[CSRGraph, np.ndarray]:
        """Node-induced subgraph of the merged view (frozen CSR result).

        Same algorithm and per-row edge order as
        :meth:`CSRGraph.subgraph` run on the materialised merged graph —
        the ShaDow sampler's looped path relies on that equivalence.
        """
        return induced_subgraph(self, nodes)

    # ------------------------------------------------------------------
    def materialize(self) -> CSRGraph:
        """Flatten the overlay into one frozen :class:`CSRGraph`.

        Per-row adjacency order is exactly the view's merged order, so a
        sampler consuming the result draws identical RNG streams and
        picks identical neighbours — the exactness oracle's reference.
        """
        degs = self.in_degree()
        indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.cumsum(degs, out=indptr[1:])
        srcs, _ = self.gather_neighbors(np.arange(self.num_nodes, dtype=np.int64))
        indptr.setflags(write=False)
        srcs.setflags(write=False)
        return CSRGraph.from_trusted_parts(indptr, srcs)


def _edge_layers(view):
    """Yield ``(rows_or_None, indptr, indices)`` per storage layer of a view."""
    if isinstance(view, LayeredCSR):
        yield None, view.base.indptr, view.base.indices
        for frag in view.fragments:
            yield frag.rows, frag.indptr, frag.indices
    else:
        yield None, view.indptr, view.indices


def reverse_reachable(view, seeds: np.ndarray, hops: int) -> np.ndarray:
    """Nodes reachable from ``seeds`` within ``hops`` edge-direction steps.

    One step from node ``u`` reaches every ``v`` that has ``u`` as an
    in-neighbour — i.e. the set of nodes whose sampled ``hops``-layer
    frontier can contain a seed.  This is the serve layer's invalidation
    scope: after a delta mutates the adjacency of ``seeds`` (the new
    edges' destinations), only this set's cached predictions can have
    changed.  Includes the seeds themselves.  O(E) scan per hop over
    base + fragments — paid once per ``apply_delta``, never on the
    request path.
    """
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    if hops < 0:
        raise ValueError(f"hops must be >= 0, got {hops}")
    reached = seeds
    frontier = seeds
    for _ in range(int(hops)):
        if len(frontier) == 0:
            break
        hits = []
        for rows, indptr, indices in _edge_layers(view):
            mask = np.isin(indices, frontier)
            if not mask.any():
                continue
            pos = np.nonzero(mask)[0]
            owners = np.searchsorted(indptr, pos, side="right") - 1
            hits.append(owners if rows is None else rows[owners])
        if not hits:
            break
        new = np.setdiff1d(np.unique(np.concatenate(hits)), reached, assume_unique=True)
        if len(new) == 0:
            break
        reached = np.union1d(reached, new)
        frontier = new
    return reached


def materialize_dataset(dataset, fragments):
    """A frozen :class:`~repro.graph.datasets.GNNDataset` equal to
    ``dataset`` + ``fragments`` — the exactness oracle's cold-start input.

    The merged graph keeps the layered view's per-row adjacency order
    (see :meth:`LayeredCSR.materialize`); features/labels are the base
    matrices with every fragment's appended rows concatenated.  Train/
    val/test splits are unchanged (appended nodes join no split).
    """
    fragments = list(fragments)
    if not fragments:
        return dataset
    graph = LayeredCSR(dataset.graph, fragments).materialize()
    feat_parts = [dataset.features] + [f.features for f in fragments if f.num_new_nodes]
    label_parts = [dataset.labels] + [f.labels for f in fragments if f.num_new_nodes]
    features = feat_parts[0] if len(feat_parts) == 1 else np.concatenate(feat_parts)
    labels = label_parts[0] if len(label_parts) == 1 else np.concatenate(label_parts)
    return replace(dataset, graph=graph, features=features, labels=labels)
