"""Node partitioning for the Multi-Process Engine.

ARGO's Multi-Process Engine splits the *training node set* evenly across
the ``n`` processes (Sec. IV-B2: random split).  Section VII-A discusses a
METIS alternative: better locality but prohibitive re-partitioning cost
every time the tuner changes ``n``.  We implement

* :func:`random_node_partition`  — the paper's default (seeded shuffle),
* :func:`contiguous_node_partition` — deterministic block split,
* :func:`greedy_bfs_partition` — a light-weight locality-aware partitioner
  (BFS region growing, the standard stand-in for METIS when a multilevel
  scheme is overkill) used by the Section VII-A ablation benchmark,

plus the quality metrics (edge cut, balance) the ablation reports.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = [
    "random_node_partition",
    "contiguous_node_partition",
    "greedy_bfs_partition",
    "partition_edge_cut",
    "partition_balance",
]


def _check_parts(nodes: np.ndarray, num_parts: int) -> int:
    num_parts = check_positive_int(num_parts, "num_parts")
    if num_parts > max(1, len(nodes)):
        raise ValueError(
            f"cannot split {len(nodes)} nodes into {num_parts} non-empty parts"
        )
    return num_parts


def random_node_partition(nodes, num_parts: int, *, rng=None) -> list[np.ndarray]:
    """Shuffle ``nodes`` and split into ``num_parts`` near-equal parts.

    Sizes differ by at most one; this is exactly DDP's even split after a
    seeded shuffle (the paper's random strategy).
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    num_parts = _check_parts(nodes, num_parts)
    rng = as_generator(rng)
    shuffled = rng.permutation(nodes)
    return [np.sort(part) for part in np.array_split(shuffled, num_parts)]


def contiguous_node_partition(nodes, num_parts: int) -> list[np.ndarray]:
    """Split ``nodes`` (kept in order) into contiguous blocks."""
    nodes = np.asarray(nodes, dtype=np.int64)
    num_parts = _check_parts(nodes, num_parts)
    return [part.copy() for part in np.array_split(nodes, num_parts)]


def greedy_bfs_partition(
    graph: CSRGraph, nodes, num_parts: int, *, rng=None
) -> list[np.ndarray]:
    """Locality-aware partition by BFS region growing (METIS stand-in).

    Grows ``num_parts`` regions from random seeds over the *whole* graph,
    then assigns each requested node to its region.  Regions are grown one
    frontier hop at a time from the currently-smallest part, which keeps
    sizes balanced while preferring graph locality.  Remaining unreached
    nodes (disconnected pieces) are round-robined to the smallest parts.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    num_parts = _check_parts(nodes, num_parts)
    rng = as_generator(rng)
    n = graph.num_nodes
    owner = np.full(n, -1, dtype=np.int64)
    seeds = rng.choice(nodes, size=num_parts, replace=False)
    frontiers: list[np.ndarray] = []
    sizes = np.zeros(num_parts, dtype=np.int64)
    for p, s in enumerate(seeds):
        owner[s] = p
        frontiers.append(np.array([s], dtype=np.int64))
        sizes[p] = 1
    active = set(range(num_parts))
    while active:
        # expand the currently smallest active part by one BFS hop
        p = min(active, key=lambda q: sizes[q])
        if len(frontiers[p]) == 0:
            active.discard(p)
            continue
        srcs, _ = graph.gather_neighbors(frontiers[p])
        cand = np.unique(srcs)
        cand = cand[owner[cand] == -1]
        if len(cand) == 0:
            active.discard(p)
            continue
        owner[cand] = p
        sizes[p] += len(cand)
        frontiers[p] = cand
    # nodes never reached: assign round-robin by current size
    unassigned = nodes[owner[nodes] == -1]
    if len(unassigned):
        order = np.argsort(sizes, kind="stable")
        assign = np.tile(order, int(np.ceil(len(unassigned) / num_parts)))[: len(unassigned)]
        owner[unassigned] = assign
    parts = [np.sort(nodes[owner[nodes] == p]) for p in range(num_parts)]
    # Rebalance: move overflow from large parts to small ones so sizes
    # differ by at most one (the Multi-Process Engine requires near-equal
    # per-rank workloads for DDP synchronisation).
    target = len(nodes) // num_parts
    extras: list[int] = []
    for p in range(num_parts):
        while len(parts[p]) > target + 1:
            extras.append(int(parts[p][-1]))
            parts[p] = parts[p][:-1]
    for p in range(num_parts):
        while len(parts[p]) < target and extras:
            parts[p] = np.sort(np.append(parts[p], extras.pop()))
    return parts


def partition_edge_cut(graph: CSRGraph, parts: list[np.ndarray]) -> int:
    """Number of edges whose endpoints fall in different parts.

    Nodes not present in any part are ignored (edges touching them do not
    count toward the cut).
    """
    owner = np.full(graph.num_nodes, -1, dtype=np.int64)
    for p, part in enumerate(parts):
        owner[np.asarray(part, dtype=np.int64)] = p
    src, dst = graph.to_edge_index()
    mask = (owner[src] >= 0) & (owner[dst] >= 0)
    return int(np.count_nonzero(owner[src[mask]] != owner[dst[mask]]))


def partition_balance(parts: list[np.ndarray]) -> float:
    """Max part size divided by mean part size (1.0 == perfectly balanced)."""
    sizes = np.array([len(p) for p in parts], dtype=np.float64)
    if sizes.sum() == 0:
        return 1.0
    return float(sizes.max() / sizes.mean())
