"""Shared-memory graph store for the ``process`` execution backend.

ARGO's worker processes (paper Sec. IV-B) never copy the graph: DGL keeps
the CSR structure and node features in shared memory and every training
process maps them.  :class:`SharedGraphStore` reproduces that mechanism
as a thin specialisation of the generic :class:`repro.shm.arena.ShmArena`
— the parent *creates* one segment per array (CSR ``indptr``/``indices``,
node features, labels), workers *attach* by name and reconstruct
zero-copy, read-only numpy views, the same ``writeable=False`` convention
:class:`repro.graph.csr.CSRGraph` already enforces in-process.

Streaming deltas
----------------
The base arrays stay frozen forever; topology changes ride an
append-only :class:`~repro.shm.arena.DeltaLog` of CSR fragments
(:class:`~repro.graph.delta.DeltaFragment`).  The owning process
publishes fragments with :meth:`apply_delta`/:meth:`append_fragment`;
workers call :meth:`sync_deltas` with the published spec list and map
only the fragments they have not seen.  :attr:`graph` then returns a
:class:`~repro.graph.delta.LayeredCSR` view merging base + fragments —
same :class:`~repro.graph.csr.GraphView` protocol, no rebuild.
:attr:`graph_generation` counts applied fragments and is the value the
serving layer's cache tags and plan guards key on.

Lifecycle contract
------------------
* The creating process owns the segments: it must call :meth:`unlink`
  (or use the store as a context manager) when training is done.  Tests
  assert no segments leak; ``close``/``unlink`` are idempotent and safe
  under double-call and GC-after-unlink (see the arena layer).  Delta
  fragments are owned by whichever process appended them and retire with
  the store's own ``unlink``.
* Attached stores only :meth:`close` their local mappings — never
  unlink.  The resource-tracker daemon is shared across the process tree
  (fd inherited under fork *and* spawn on POSIX), so a worker attaching
  and exiting neither leaks nor reaps the creator's segments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.delta import DeltaFragment, GraphDelta, LayeredCSR
from repro.shm.arena import DeltaLog, SharedArraySpec, ShmArena

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.datasets import GNNDataset

__all__ = ["SharedArraySpec", "SharedGraphStore"]


class SharedGraphStore(ShmArena):
    """CSR graph + feature/label matrices backed by shared memory.

    Build with :meth:`create` (or :meth:`from_dataset`) in the parent,
    ship ``store.spec`` (a small picklable dict) to workers, and
    :meth:`attach` there.  ``graph``/``features``/``labels`` are zero-copy
    views in both roles.
    """

    #: array keys a full training store carries
    KEYS = ("indptr", "indices", "features", "labels")

    #: non-array spec key carrying the delta-fragment spec list
    DELTA_KEY = "deltas"

    def __init__(self, segments, specs, *, owner: bool):
        super().__init__(segments, specs, owner=owner)
        self._deltas = DeltaLog()
        self._frag_views: list[DeltaFragment] = []

    @classmethod
    def from_dataset(cls, dataset: "GNNDataset") -> "SharedGraphStore":
        """Share a dataset's training substrate: CSR arrays, features, labels."""
        return cls.create(
            {
                "indptr": dataset.graph.indptr,
                "indices": dataset.graph.indices,
                "features": dataset.features,
                "labels": dataset.labels,
            }
        )

    # ------------------------------------------------------------------
    # spec transport: base arrays + delta-fragment list
    # ------------------------------------------------------------------
    @property
    def spec(self) -> dict:
        """Picklable descriptor including any published delta fragments."""
        spec = super().spec
        if len(self._deltas):
            spec[self.DELTA_KEY] = self._deltas.specs
        return spec

    @classmethod
    def attach(cls, spec: dict) -> "SharedGraphStore":
        """Map the base segments, then any delta fragments (worker role)."""
        spec = dict(spec)
        delta_specs = spec.pop(cls.DELTA_KEY, [])
        store = super().attach(spec)
        if delta_specs:
            store.sync_deltas(delta_specs)
        return store

    # ------------------------------------------------------------------
    # streaming deltas
    # ------------------------------------------------------------------
    @property
    def graph_generation(self) -> int:
        """Number of delta fragments applied to the base graph."""
        return len(self._frag_views)

    @property
    def delta_specs(self) -> list[dict]:
        """Published fragment specs — ship these for workers to sync."""
        return self._deltas.specs

    def apply_delta(self, delta: GraphDelta) -> DeltaFragment:
        """Validate, normalise and publish one delta (owner-side API).

        Returns the published fragment (arena-backed views).  Workers see
        it after :meth:`sync_deltas` with the updated :attr:`delta_specs`.
        """
        frag = DeltaFragment.from_delta(
            delta,
            num_nodes=self.total_nodes,
            feature_dim=int(self.array("features").shape[1]),
            feature_dtype=self.array("features").dtype,
            label_dtype=self.array("labels").dtype,
        )
        return self.append_fragment(frag)

    def append_fragment(self, frag: DeltaFragment) -> DeltaFragment:
        """Publish an already-normalised fragment into shared memory."""
        if frag.num_nodes_after < self.total_nodes:
            raise ValueError(
                f"fragment shrinks the graph ({frag.num_nodes_after} < "
                f"{self.total_nodes})"
            )
        self._deltas.append(frag.to_arrays())
        view = DeltaFragment.from_arrays(self._deltas.arrays(len(self._deltas) - 1))
        self._frag_views.append(view)
        return view

    def sync_deltas(self, specs: list[dict]) -> int:
        """Attach fragments published since the last sync (worker role)."""
        new = self._deltas.sync(specs)
        for i in range(len(self._frag_views), len(self._deltas)):
            self._frag_views.append(DeltaFragment.from_arrays(self._deltas.arrays(i)))
        return new

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def graph(self) -> CSRGraph | LayeredCSR:
        """Zero-copy graph view: frozen CSR, or layered once deltas exist."""
        base = CSRGraph.from_trusted_parts(self.array("indptr"), self.array("indices"))
        if not self._frag_views:
            return base
        return LayeredCSR(base, list(self._frag_views))

    @property
    def total_nodes(self) -> int:
        """Node count including delta-appended nodes."""
        if self._frag_views:
            return int(self._frag_views[-1].num_nodes_after)
        return len(self.array("indptr")) - 1

    @property
    def features(self) -> "np.ndarray":
        return self.array("features")

    @property
    def labels(self) -> "np.ndarray":
        return self.array("labels")

    def full_features(self) -> "np.ndarray":
        """Feature matrix covering delta-appended nodes too.

        Zero-copy when no fragment added nodes; otherwise a concatenated
        copy (rebuilt per call — callers cache per graph generation).
        """
        parts = [f.features for f in self._frag_views if f.num_new_nodes]
        if not parts:
            return self.array("features")
        return np.concatenate([self.array("features"), *parts])

    def full_labels(self) -> "np.ndarray":
        """Label vector covering delta-appended nodes too (see above)."""
        parts = [f.labels for f in self._frag_views if f.num_new_nodes]
        if not parts:
            return self.array("labels")
        return np.concatenate([self.array("labels"), *parts])

    # ------------------------------------------------------------------
    # lifecycle: delta fragments ride the base store's close/unlink
    # ------------------------------------------------------------------
    def _on_close(self) -> None:
        super()._on_close()
        self._frag_views = []
        self._deltas.close()

    def _on_unlink(self) -> None:
        super()._on_unlink()
        self._deltas.unlink()
