"""Shared-memory graph store for the ``process`` execution backend.

ARGO's worker processes (paper Sec. IV-B) never copy the graph: DGL keeps
the CSR structure and node features in shared memory and every training
process maps them.  This module reproduces that mechanism with
``multiprocessing.shared_memory``: the parent *creates* one segment per
array (CSR ``indptr``/``indices``, node features, labels), workers
*attach* by name and reconstruct zero-copy, read-only numpy views — the
same ``writeable=False`` convention :class:`repro.graph.csr.CSRGraph`
already enforces in-process.

Lifecycle contract
------------------
* The creating process owns the segments: it must call :meth:`unlink`
  (or use the store as a context manager) when training is done.  Tests
  assert no segments leak.
* Attached stores only :meth:`close` their local mappings — never
  unlink.  The resource-tracker daemon is shared across the process tree
  (fd inherited under fork *and* spawn on POSIX), so a worker attaching
  and exiting neither leaks nor reaps the creator's segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.graph.csr import CSRGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.datasets import GNNDataset

__all__ = ["SharedArraySpec", "SharedGraphStore"]


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable descriptor of one array living in a shared segment."""

    shm_name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


def _view(shm: shared_memory.SharedMemory, spec: SharedArraySpec) -> np.ndarray:
    """Read-only numpy view over a shared segment (no copy)."""
    arr = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    arr.setflags(write=False)
    return arr


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting ownership.

    Attaching re-registers the name with the resource tracker, which is
    harmless: the tracker daemon is shared across the process tree (its
    fd is inherited under both ``fork`` and ``spawn`` on POSIX) and
    registration is an idempotent set-add, so the creator's single
    ``unlink`` still retires the name exactly once.  Unregistering here
    instead would make the creator's later unlink double-unregister and
    spew ``KeyError`` noise from the tracker daemon.
    """
    return shared_memory.SharedMemory(name=name)


class SharedGraphStore:
    """CSR graph + feature/label matrices backed by shared memory.

    Build with :meth:`create` (or :meth:`from_dataset`) in the parent,
    ship ``store.spec`` (a small picklable dict) to workers, and
    :meth:`attach` there.  ``graph``/``features``/``labels`` are zero-copy
    views in both roles.
    """

    #: array keys a full training store carries
    KEYS = ("indptr", "indices", "features", "labels")

    def __init__(
        self,
        segments: dict[str, shared_memory.SharedMemory],
        specs: dict[str, SharedArraySpec],
        *,
        owner: bool,
    ):
        self._segments = segments
        self._specs = specs
        self._owner = owner
        self._closed = False
        self._arrays = {k: _view(shm, specs[k]) for k, shm in segments.items()}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, arrays: Mapping[str, np.ndarray]) -> "SharedGraphStore":
        """Copy ``arrays`` into fresh shared segments (creator/owner role)."""
        segments: dict[str, shared_memory.SharedMemory] = {}
        specs: dict[str, SharedArraySpec] = {}
        try:
            for key, arr in arrays.items():
                arr = np.ascontiguousarray(arr)
                shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
                segments[key] = shm
                specs[key] = SharedArraySpec(shm.name, arr.shape, arr.dtype.str)
                dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                dst[...] = arr
        except Exception:
            for shm in segments.values():
                shm.close()
                shm.unlink()
            raise
        return cls(segments, specs, owner=True)

    @classmethod
    def from_dataset(cls, dataset: "GNNDataset") -> "SharedGraphStore":
        """Share a dataset's training substrate: CSR arrays, features, labels."""
        return cls.create(
            {
                "indptr": dataset.graph.indptr,
                "indices": dataset.graph.indices,
                "features": dataset.features,
                "labels": dataset.labels,
            }
        )

    @classmethod
    def attach(cls, spec: dict[str, SharedArraySpec]) -> "SharedGraphStore":
        """Map the segments described by a creator's :attr:`spec` (worker role)."""
        segments: dict[str, shared_memory.SharedMemory] = {}
        try:
            for key, aspec in spec.items():
                segments[key] = _attach_segment(aspec.shm_name)
        except Exception:
            for shm in segments.values():
                shm.close()
            raise
        return cls(segments, dict(spec), owner=False)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def spec(self) -> dict[str, SharedArraySpec]:
        """Picklable descriptor workers pass to :meth:`attach`."""
        return dict(self._specs)

    def array(self, key: str) -> np.ndarray:
        if self._closed:
            raise ValueError("store is closed")
        return self._arrays[key]

    @property
    def graph(self) -> CSRGraph:
        """Zero-copy CSR view (validation skipped — creator validated)."""
        return CSRGraph.from_trusted_parts(self.array("indptr"), self.array("indices"))

    @property
    def features(self) -> np.ndarray:
        return self.array("features")

    @property
    def labels(self) -> np.ndarray:
        return self.array("labels")

    @property
    def total_bytes(self) -> int:
        return sum(s.nbytes for s in self._specs.values())

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Drop the local mappings (both roles); idempotent."""
        if self._closed:
            return
        self._closed = True
        self._arrays.clear()
        for shm in self._segments.values():
            shm.close()

    def unlink(self) -> None:
        """Free the segments system-wide (owner only); implies :meth:`close`."""
        if not self._owner:
            raise RuntimeError("only the creating store may unlink segments")
        self.close()
        for shm in self._segments.values():
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already reaped
                pass
        self._segments = {}

    def __enter__(self) -> "SharedGraphStore":
        return self

    def __exit__(self, *exc) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            if self._owner and not self._closed:
                self.unlink()
            else:
                self.close()
        except Exception:
            pass
