"""Shared-memory graph store for the ``process`` execution backend.

ARGO's worker processes (paper Sec. IV-B) never copy the graph: DGL keeps
the CSR structure and node features in shared memory and every training
process maps them.  :class:`SharedGraphStore` reproduces that mechanism
as a thin specialisation of the generic :class:`repro.shm.arena.ShmArena`
— the parent *creates* one segment per array (CSR ``indptr``/``indices``,
node features, labels), workers *attach* by name and reconstruct
zero-copy, read-only numpy views, the same ``writeable=False`` convention
:class:`repro.graph.csr.CSRGraph` already enforces in-process.

Lifecycle contract
------------------
* The creating process owns the segments: it must call :meth:`unlink`
  (or use the store as a context manager) when training is done.  Tests
  assert no segments leak; ``close``/``unlink`` are idempotent and safe
  under double-call and GC-after-unlink (see the arena layer).
* Attached stores only :meth:`close` their local mappings — never
  unlink.  The resource-tracker daemon is shared across the process tree
  (fd inherited under fork *and* spawn on POSIX), so a worker attaching
  and exiting neither leaks nor reaps the creator's segments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.graph.csr import CSRGraph
from repro.shm.arena import SharedArraySpec, ShmArena

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.graph.datasets import GNNDataset

__all__ = ["SharedArraySpec", "SharedGraphStore"]


class SharedGraphStore(ShmArena):
    """CSR graph + feature/label matrices backed by shared memory.

    Build with :meth:`create` (or :meth:`from_dataset`) in the parent,
    ship ``store.spec`` (a small picklable dict) to workers, and
    :meth:`attach` there.  ``graph``/``features``/``labels`` are zero-copy
    views in both roles.
    """

    #: array keys a full training store carries
    KEYS = ("indptr", "indices", "features", "labels")

    @classmethod
    def from_dataset(cls, dataset: "GNNDataset") -> "SharedGraphStore":
        """Share a dataset's training substrate: CSR arrays, features, labels."""
        return cls.create(
            {
                "indptr": dataset.graph.indptr,
                "indices": dataset.graph.indices,
                "features": dataset.features,
                "labels": dataset.labels,
            }
        )

    @property
    def graph(self) -> CSRGraph:
        """Zero-copy CSR view (validation skipped — creator validated)."""
        return CSRGraph.from_trusted_parts(self.array("indptr"), self.array("indices"))

    @property
    def features(self) -> "np.ndarray":
        return self.array("features")

    @property
    def labels(self) -> "np.ndarray":
        return self.array("labels")
