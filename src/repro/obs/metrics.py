"""Dependency-free metrics: counters, gauges, log2-bucketed histograms.

One :class:`MetricRegistry` per process is the unified sink for every
accounting number the serving stack produces (phase seconds, batcher
flush causes, transport hits).  Histograms use fixed power-of-two
bucket boundaries so two processes that never exchanged state bucket
identically — `snapshot()` documents are mergeable across ranks with
plain element-wise adds, and the quantiles derived from the merged
buckets are exact functions of the buckets (deterministic, no
interpolation between observed samples).
"""

from __future__ import annotations

import math

METRICS_SCHEMA_VERSION = 1

# default boundaries: 2**-20 s (~1 us) .. 2**6 s (64 s) — covers
# everything from a single cache probe to a full pool launch
DEFAULT_LO_EXP = -20
DEFAULT_HI_EXP = 6


class Counter:
    """Monotonic counter.  ``inc`` only; merges by addition."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int | float = 1):
        if n < 0:
            raise ValueError("Counter.inc requires a non-negative increment")
        self.value += n

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}

    def merge(self, snap: dict) -> None:
        self.value += snap["value"]


#: gauge merge policies: how two processes' point-in-time values fold.
#: Both are commutative and associative, so a merged gauge is the same
#: regardless of merge order — the registry's determinism contract.
GAUGE_POLICIES = ("max", "min")


class Gauge:
    """Point-in-time value with an explicit, order-independent merge policy.

    A gauge is *not* additive, so cross-rank folding needs a declared
    policy.  Last-write-wins (the obvious default) is merge-order
    dependent — folding rank snapshots ``A, B`` vs ``B, A`` would report
    different values, contradicting the registry's "same result
    regardless of merge order" contract — so it is deliberately not
    offered.  ``"max"`` (default: high-water marks like queue depth or
    generation) and ``"min"`` are both commutative and associative.

    An unset gauge (``set`` never called) is neutral under merge: it
    adopts the other side's value rather than dragging a phantom 0.0
    into a min/max fold.
    """

    __slots__ = ("value", "policy", "_set")

    def __init__(self, policy: str = "max") -> None:
        if policy not in GAUGE_POLICIES:
            raise ValueError(
                f"gauge policy must be one of {GAUGE_POLICIES}, got {policy!r}"
            )
        self.value = 0.0
        self.policy = policy
        self._set = False

    def set(self, value: float) -> None:
        self.value = value
        self._set = True

    def snapshot(self) -> dict:
        return {
            "type": "gauge",
            "value": self.value,
            "policy": self.policy,
            "is_set": self._set,
        }

    def merge(self, snap: dict) -> None:
        policy = snap.get("policy", self.policy)
        if policy != self.policy:
            raise ValueError(
                f"cannot merge a {policy!r}-policy gauge into a "
                f"{self.policy!r}-policy one"
            )
        if not snap.get("is_set", True):
            return
        if not self._set:
            self.value = snap["value"]
            self._set = True
        elif self.policy == "max":
            self.value = max(self.value, snap["value"])
        else:
            self.value = min(self.value, snap["value"])


class Histogram:
    """Fixed log2-bucketed histogram with exact bucket-derived quantiles.

    Bucket boundaries are ``2**e for e in [lo_exp, hi_exp]``: bucket 0
    holds everything below ``2**lo_exp`` (including zero/negative
    clock jitter), the last bucket everything at or above
    ``2**hi_exp``.  ``sum`` is tracked exactly (plain float adds in
    observation order) so totals stay bitwise identical to the scalar
    accumulators this class replaced.
    """

    __slots__ = ("lo_exp", "hi_exp", "counts", "count", "sum", "min", "max")

    def __init__(self, lo_exp: int = DEFAULT_LO_EXP, hi_exp: int = DEFAULT_HI_EXP):
        if hi_exp <= lo_exp:
            raise ValueError("Histogram requires hi_exp > lo_exp")
        self.lo_exp = int(lo_exp)
        self.hi_exp = int(hi_exp)
        # buckets: (-inf, 2**lo], then one per exponent, then [2**hi, inf)
        self.counts = [0] * (self.hi_exp - self.lo_exp + 2)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    # -- observation ---------------------------------------------------
    def _bucket(self, value: float) -> int:
        if value < 2.0**self.lo_exp:
            return 0
        if value >= 2.0**self.hi_exp:
            return len(self.counts) - 1
        # buckets 1..n-2 cover [2**(lo+i-1), 2**(lo+i))
        return int(math.floor(math.log2(value))) - self.lo_exp + 1

    def observe(self, value: float, *, total: float | None = None) -> None:
        """Record one sample.

        ``total`` replaces ``sum`` instead of adding ``value`` — used
        by the :class:`~repro.utils.phases.PhaseStats` facade so its
        ``phase_s += x`` mutation keeps the bitwise-identical running
        total the old scalar fields had, while ``value`` (the delta)
        lands in the distribution.
        """
        value = float(value)
        self.counts[self._bucket(value)] += 1
        self.count += 1
        self.sum = float(total) if total is not None else self.sum + value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    # -- quantiles -----------------------------------------------------
    def bucket_bounds(self) -> list[float]:
        """Upper bound of each bucket (the last is ``inf``)."""
        bounds = [2.0**e for e in range(self.lo_exp, self.hi_exp + 1)]
        return bounds + [math.inf]

    def percentile(self, q: float) -> float:
        """Exact bucket upper bound holding the q-th percentile sample.

        Deterministic by construction: the answer depends only on the
        bucket counts, so merged cross-rank histograms report the same
        quantile regardless of merge order.  Returns 0.0 when empty;
        the overflow bucket reports the tracked ``max``.
        """
        if self.count == 0:
            return 0.0
        if not 0.0 < q <= 100.0:
            raise ValueError("percentile requires 0 < q <= 100")
        target = math.ceil(self.count * q / 100.0)
        bounds = self.bucket_bounds()
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                if math.isinf(bounds[i]):
                    return float(self.max if self.max is not None else 0.0)
                return bounds[i]
        return float(self.max if self.max is not None else 0.0)  # pragma: no cover

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    # -- folding -------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "lo_exp": self.lo_exp,
            "hi_exp": self.hi_exp,
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }

    def merge(self, snap: dict | Histogram) -> None:
        """Fold another histogram (or its snapshot) into this one."""
        if isinstance(snap, Histogram):
            snap = snap.snapshot()
        if snap["lo_exp"] != self.lo_exp or snap["hi_exp"] != self.hi_exp:
            raise ValueError("cannot merge histograms with different bucket layouts")
        for i, c in enumerate(snap["counts"]):
            self.counts[i] += c
        self.count += snap["count"]
        self.sum += snap["sum"]
        if snap["min"] is not None:
            self.min = snap["min"] if self.min is None else min(self.min, snap["min"])
        if snap["max"] is not None:
            self.max = snap["max"] if self.max is None else max(self.max, snap["max"])


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricRegistry:
    """Get-or-create registry; one per engine/process.

    ``snapshot()`` emits the versioned metrics document; ``merge()``
    folds another process's document in (cross-rank folding), creating
    instruments it has not seen yet.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: str, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = _KINDS[kind](**kwargs)
            self._metrics[name] = metric
        elif type(metric) is not _KINDS[kind]:
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, "counter")

    def gauge(self, name: str, *, policy: str = "max") -> Gauge:
        gauge = self._get(name, "gauge", policy=policy)
        if gauge.policy != policy:
            raise ValueError(
                f"gauge {name!r} already registered with policy {gauge.policy!r}"
            )
        return gauge

    def histogram(
        self,
        name: str,
        *,
        lo_exp: int = DEFAULT_LO_EXP,
        hi_exp: int = DEFAULT_HI_EXP,
    ) -> Histogram:
        return self._get(name, "histogram", lo_exp=lo_exp, hi_exp=hi_exp)

    def get(self, name: str):
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict:
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "metrics": {name: self._metrics[name].snapshot() for name in self.names()},
        }

    def merge(self, doc: dict) -> None:
        """Fold a ``snapshot()`` document from another process in."""
        version = doc.get("schema_version", METRICS_SCHEMA_VERSION)
        if version != METRICS_SCHEMA_VERSION:
            raise ValueError(f"unsupported metrics schema_version {version}")
        for name, snap in doc["metrics"].items():
            kind = snap["type"]
            if kind == "histogram":
                metric = self._get(
                    name, kind, lo_exp=snap["lo_exp"], hi_exp=snap["hi_exp"]
                )
            elif kind == "gauge":
                metric = self._get(name, kind, policy=snap.get("policy", "max"))
            else:
                metric = self._get(name, kind)
            metric.merge(snap)
