"""Trace/metrics export: Chrome trace-event JSON and versioned metrics docs.

``chrome_trace_document`` emits the Trace Event Format that Perfetto and
``chrome://tracing`` load directly: complete (``ph: "X"``) events with
microsecond ``ts``/``dur``, one ``tid`` track per rank plus thread-name
metadata.  ``summarize_trace`` is the terminal-side consumer behind
``repro trace``: top spans by *self* time (duration minus same-track
nested children), per-track utilisation, and an ASCII Gantt rendered
through the same :func:`repro.platform.trace.render_ascii` the paper
figures use.
"""

from __future__ import annotations

import json

from repro.obs.metrics import MetricRegistry
from repro.obs.trace import NameTable, SpanRecord
from repro.platform.trace import Trace, render_ascii

TRACE_SCHEMA_VERSION = 1

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "chrome_trace_document",
    "write_chrome_trace",
    "metrics_document",
    "write_metrics_json",
    "summarize_trace",
]


def chrome_trace_document(
    records: list[SpanRecord],
    names: NameTable,
    *,
    rank_labels: dict[int, str] | None = None,
    dropped: list[int] | None = None,
) -> dict:
    """Build a Chrome trace-event JSON object from drained span records.

    Timestamps are rebased to the earliest span and converted to
    microseconds (the format's unit).  Each ring becomes one ``tid``
    track under a single ``pid``, named via thread-name metadata events
    so Perfetto shows ``rank 0`` / ``engine`` instead of bare ids.
    """
    base = min((r.t0 for r in records), default=0.0)
    ranks = sorted({r.rank for r in records})
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro-serve"},
        }
    ]
    labels = rank_labels or {}
    for rank in ranks:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "args": {"name": labels.get(rank, f"rank {rank}")},
            }
        )
    for r in records:
        events.append(
            {
                "name": names.name(r.name_id),
                "cat": "repro",
                "ph": "X",
                "ts": (r.t0 - base) * 1e6,
                "dur": (r.t1 - r.t0) * 1e6,
                "pid": 0,
                "tid": r.rank,
                "args": {"arg": int(r.arg)},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema_version": TRACE_SCHEMA_VERSION,
            "span_count": len(records),
            "dropped_spans": list(dropped or []),
        },
    }


def write_chrome_trace(path: str, doc: dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
        fh.write("\n")


def metrics_document(registry: MetricRegistry, *, extra: dict | None = None) -> dict:
    """The versioned metrics-JSON document (registry snapshot + extra
    top-level sections; ``extra`` may not clobber the schema keys)."""
    doc = registry.snapshot()
    for key, value in (extra or {}).items():
        if key in ("schema_version", "metrics"):
            raise ValueError(f"extra section {key!r} would clobber the schema")
        doc[key] = value
    return doc


def write_metrics_json(
    path: str, registry: MetricRegistry, *, extra: dict | None = None
) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(metrics_document(registry, extra=extra), fh, indent=2)
        fh.write("\n")


# ----------------------------------------------------------------------
# summarize (the `repro trace` subcommand)
# ----------------------------------------------------------------------


def _self_times(events: list[dict]) -> dict[int, float]:
    """Self time (dur minus same-track nested children) per event index.

    Standard interval-nesting stack walk per track: events sorted by
    ``(ts, -dur)`` so a parent precedes the children it contains.
    """
    self_us = {i: float(e.get("dur", 0.0)) for i, e in enumerate(events)}
    by_tid: dict[int, list[int]] = {}
    for i, e in enumerate(events):
        by_tid.setdefault(e.get("tid", 0), []).append(i)
    for indices in by_tid.values():
        indices.sort(key=lambda i: (events[i]["ts"], -float(events[i].get("dur", 0.0))))
        stack: list[int] = []
        for i in indices:
            start = events[i]["ts"]
            end = start + float(events[i].get("dur", 0.0))
            while stack:
                top = events[stack[-1]]
                if start >= top["ts"] + float(top.get("dur", 0.0)) - 1e-9:
                    stack.pop()
                else:
                    break
            if stack:
                self_us[stack[-1]] -= float(events[i].get("dur", 0.0))
            stack.append(i)
    return self_us


def summarize_trace(doc: dict, *, width: int = 78, top: int = 10) -> str:
    """Human summary of a Chrome trace document.

    Sections: header (span/track counts, makespan, drops), top spans by
    self time, per-track utilisation (top-level span coverage), and an
    ASCII Gantt of the busiest span names — all derived from the JSON
    alone so it works on any conforming trace, not just ours.
    """
    all_events = doc.get("traceEvents", [])
    spans = [e for e in all_events if e.get("ph") == "X"]
    labels = {
        e.get("tid", 0): e.get("args", {}).get("name", "")
        for e in all_events
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    }
    other = doc.get("otherData", {})
    dropped = other.get("dropped_spans", [])
    if not spans:
        return "(empty trace)"

    t_lo = min(e["ts"] for e in spans)
    t_hi = max(e["ts"] + float(e.get("dur", 0.0)) for e in spans)
    makespan_us = max(t_hi - t_lo, 1e-9)
    self_us = _self_times(spans)

    per_name: dict[str, list[float]] = {}
    for i, e in enumerate(spans):
        agg = per_name.setdefault(e.get("name", "?"), [0, 0.0, 0.0])
        agg[0] += 1
        agg[1] += float(e.get("dur", 0.0))
        agg[2] += self_us[i]
    ranked = sorted(per_name.items(), key=lambda kv: -kv[1][2])

    lines = [
        f"trace: {len(spans)} spans on {len({e.get('tid', 0) for e in spans})} "
        f"tracks, makespan {makespan_us / 1e3:.3f} ms"
        + (f", dropped {sum(dropped)}" if sum(dropped, 0) else "")
    ]
    lines.append("")
    lines.append(f"{'span':<14} {'count':>7} {'total_ms':>10} {'self_ms':>10} {'self%':>7}")
    total_self = sum(self_us.values()) or 1.0
    for name, (count, total, self_t) in ranked[:top]:
        lines.append(
            f"{name:<14} {count:>7} {total / 1e3:>10.3f} {self_t / 1e3:>10.3f} "
            f"{100.0 * self_t / total_self:>6.1f}%"
        )

    lines.append("")
    lines.append("per-track utilisation (top-level span coverage):")
    for tid in sorted({e.get("tid", 0) for e in spans}):
        track = sorted(
            ((e["ts"], e["ts"] + float(e.get("dur", 0.0))) for e in spans if e.get("tid", 0) == tid)
        )
        covered, cur_end = 0.0, None
        cur_start = None
        for s, e in track:
            if cur_end is None or s > cur_end:
                if cur_end is not None:
                    covered += cur_end - cur_start
                cur_start, cur_end = s, e
            else:
                cur_end = max(cur_end, e)
        if cur_end is not None:
            covered += cur_end - cur_start
        label = labels.get(tid) or f"track {tid}"
        lines.append(
            f"  {label:<10} {100.0 * covered / makespan_us:>5.1f}% busy "
            f"({len(track)} spans)"
        )

    # Gantt: longest spans drawn first so nested children overdraw their
    # parents — the row then reads as "what was actually running".
    gantt = Trace(phases=None)
    for e in sorted(spans, key=lambda e: -float(e.get("dur", 0.0))):
        gantt.add(
            e.get("tid", 0),
            e.get("name", "?"),
            (e["ts"] - t_lo) / 1e6,
            float(e.get("dur", 0.0)) / 1e6,
        )
    row_labels = {
        tid: labels.get(tid) or f"P{tid}" for tid in {e.get("tid", 0) for e in spans}
    }
    lines.append("")
    lines.append(render_ascii(gantt, width, glyphs={}, labels=row_labels))
    return "\n".join(lines)
