"""Observability: unified metrics registry + shared-memory span tracing.

``repro.obs`` is the one sink for the serving stack's accounting —
:mod:`~repro.obs.metrics` (Counter/Gauge/log2 Histogram behind a
mergeable :class:`MetricRegistry`), :mod:`~repro.obs.trace` (fixed-slot
span rings in shared memory so persistent pool workers trace without
IPC), and :mod:`~repro.obs.export` (Perfetto-loadable Chrome trace JSON
plus the versioned metrics document).
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry
from repro.obs.trace import (
    CANONICAL_SPANS,
    NULL_RECORDER,
    NameTable,
    NullRecorder,
    SpanRecord,
    SpanRecorder,
    TraceArena,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "CANONICAL_SPANS",
    "NULL_RECORDER",
    "NameTable",
    "NullRecorder",
    "SpanRecord",
    "SpanRecorder",
    "TraceArena",
]
