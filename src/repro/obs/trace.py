"""Shared-memory span tracing: per-rank ring buffers, zero IPC.

A :class:`TraceArena` is an :class:`~repro.shm.arena.ShmArena` holding
one fixed-slot ring per rank: ``(name_id, t0, t1, arg)`` records plus a
monotone per-rank cursor.  Persistent pool workers attach by spec once
and then record spans with four array stores and an integer increment —
no pickling, no queues, no allocation on the hot path.  Rings overwrite
oldest-first when full; the cursor doubles as the dropped-span counter
(``cursor - capacity`` when it has wrapped).

Span names are interned: the canonical serving-stack names below get
fixed ids so every process agrees without exchanging a table; dynamic
names can be interned parent-side through :class:`NameTable`.

Timestamps are ``time.perf_counter()`` values.  On Linux that clock is
``CLOCK_MONOTONIC``, which is system-wide — parent and forked workers
share a timebase, so one merged timeline is meaningful.

Tracing is off by default: callers hold :data:`NULL_RECORDER` (whose
``enabled`` is False) and hot paths guard with ``if recorder.enabled``
so the disabled path costs one attribute read and a branch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.shm.arena import ShmArena

__all__ = [
    "CANONICAL_SPANS",
    "NameTable",
    "NullRecorder",
    "NULL_RECORDER",
    "SpanRecord",
    "SpanRecorder",
    "TraceArena",
    "SPAN_SAMPLE",
    "SPAN_MERGE",
    "SPAN_FORWARD",
    "SPAN_CACHE",
    "SPAN_PREDICT",
    "SPAN_PLAN",
    "SPAN_STEAL",
    "SPAN_BARRIER",
    "SPAN_LAUNCH",
    "SPAN_REBIND",
    "SPAN_PUBLISH",
    "SPAN_RELOAD",
    "SPAN_DELTA_SYNC",
    "SPAN_FLUSH",
    "SPAN_WAIT",
]

#: Fixed-id span names every process knows without IPC.  Order is part
#: of the trace format — append only.
CANONICAL_SPANS = (
    "sample",  # per-request frontier sampling
    "merge",  # block-diagonal frontier merge
    "forward",  # model forward (one BLAS-stable call chain)
    "cache",  # prediction-cache lookup/insert
    "predict",  # whole engine.predict call
    "plan",  # one InferPlan executed by a pool rank
    "steal",  # a stolen segment's execution (arg = segment id)
    "barrier",  # parent drain wait for all ranks' results
    "launch",  # pool (re)launch: fork + first publish
    "rebind",  # pool resize without re-fork
    "publish",  # ParamStore weight publish
    "reload",  # worker-side hot weight reload
    "delta_sync",  # worker-side graph delta application
    "flush",  # micro-batcher flush decision
    "wait",  # pipeline delivery wait
)

_CANONICAL_IDS = {name: i for i, name in enumerate(CANONICAL_SPANS)}

SPAN_SAMPLE = _CANONICAL_IDS["sample"]
SPAN_MERGE = _CANONICAL_IDS["merge"]
SPAN_FORWARD = _CANONICAL_IDS["forward"]
SPAN_CACHE = _CANONICAL_IDS["cache"]
SPAN_PREDICT = _CANONICAL_IDS["predict"]
SPAN_PLAN = _CANONICAL_IDS["plan"]
SPAN_STEAL = _CANONICAL_IDS["steal"]
SPAN_BARRIER = _CANONICAL_IDS["barrier"]
SPAN_LAUNCH = _CANONICAL_IDS["launch"]
SPAN_REBIND = _CANONICAL_IDS["rebind"]
SPAN_PUBLISH = _CANONICAL_IDS["publish"]
SPAN_RELOAD = _CANONICAL_IDS["reload"]
SPAN_DELTA_SYNC = _CANONICAL_IDS["delta_sync"]
SPAN_FLUSH = _CANONICAL_IDS["flush"]
SPAN_WAIT = _CANONICAL_IDS["wait"]


class NameTable:
    """Interned span names.  Ids 0..len(CANONICAL_SPANS)-1 are fixed.

    Workers only ever emit canonical ids, so a parent-side table (which
    may intern extra names) resolves every id in a merged trace.
    """

    def __init__(self) -> None:
        self._names: list[str] = list(CANONICAL_SPANS)
        self._ids: dict[str, int] = dict(_CANONICAL_IDS)

    def intern(self, name: str) -> int:
        name_id = self._ids.get(name)
        if name_id is None:
            name_id = len(self._names)
            self._names.append(name)
            self._ids[name] = name_id
        return name_id

    def name(self, name_id: int) -> str:
        if 0 <= name_id < len(self._names):
            return self._names[name_id]
        return f"span#{name_id}"

    def __len__(self) -> int:
        return len(self._names)


@dataclass(frozen=True)
class SpanRecord:
    """One drained span: which ring, what, when, and a free int arg."""

    rank: int
    name_id: int
    t0: float
    t1: float
    arg: int


class SpanRecorder:
    """Writes fixed-slot span records into one rank's ring.

    Plain method, no closures: the hot path does four array element
    stores and bumps the cursor.  Overwrite-on-wrap is intentional —
    a stalled exporter can never block or OOM the serving path.
    """

    __slots__ = ("rank", "_name", "_t0", "_t1", "_arg", "_cursor", "_capacity")

    enabled = True

    def __init__(self, rank, name, t0, t1, arg, cursor):
        self.rank = int(rank)
        self._name = name
        self._t0 = t0
        self._t1 = t1
        self._arg = arg
        self._cursor = cursor
        self._capacity = int(name.shape[0])

    def record(self, name_id: int, t0: float, t1: float, arg: int = 0) -> None:
        cursor = int(self._cursor[0])
        slot = cursor % self._capacity
        self._name[slot] = name_id
        self._t0[slot] = t0
        self._t1[slot] = t1
        self._arg[slot] = arg
        self._cursor[0] = cursor + 1


class NullRecorder:
    """The disabled recorder: ``enabled`` is False, ``record`` a no-op."""

    __slots__ = ()

    enabled = False
    rank = -1

    def record(self, name_id: int, t0: float, t1: float, arg: int = 0) -> None:
        pass


#: Shared no-op instance — hold this instead of ``None`` so hot paths
#: never need a None check before ``recorder.enabled``.
NULL_RECORDER = NullRecorder()


class TraceArena(ShmArena):
    """Per-rank shared-memory span rings.

    Created parent-side with :meth:`for_ranks`; workers
    :meth:`~repro.shm.arena.ShmArena.attach` by spec and build their
    :class:`SpanRecorder` with :meth:`recorder`.  The base arena's
    lifecycle contract applies unchanged (owner unlinks, workers close,
    both idempotent) — which is exactly what the /dev/shm leak tests
    assert.
    """

    _UNLINK_ERROR = "only the creating process may unlink the trace arena"

    @classmethod
    def for_ranks(cls, num_ranks: int, *, capacity: int = 1 << 14) -> "TraceArena":
        if num_ranks < 1 or capacity < 1:
            raise ValueError(
                f"need >=1 ring of >=1 slots, got {num_ranks} x {capacity}"
            )
        return cls.create(
            {
                "name_id": np.zeros((num_ranks, capacity), dtype=np.int64),
                "t0": np.zeros((num_ranks, capacity), dtype=np.float64),
                "t1": np.zeros((num_ranks, capacity), dtype=np.float64),
                "arg": np.zeros((num_ranks, capacity), dtype=np.int64),
                "cursor": np.zeros((num_ranks,), dtype=np.int64),
            }
        )

    # ------------------------------------------------------------------
    @property
    def num_ranks(self) -> int:
        return self._specs["cursor"].shape[0]

    @property
    def capacity(self) -> int:
        return self._specs["name_id"].shape[1]

    def _writable(self, key: str) -> np.ndarray:
        # the base class's views are deliberately read-only; recorders
        # need stores, so map the segment again without the flag
        spec = self._specs[key]
        return np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=self._segments[key].buf
        )

    def recorder(self, rank: int) -> SpanRecorder:
        """A writer over ring ``rank`` (call in the owning process of
        that ring only — rings are single-writer by construction)."""
        if self._closed:
            raise ValueError("trace arena is closed")
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} out of range for {self.num_ranks} rings")
        return SpanRecorder(
            rank,
            self._writable("name_id")[rank],
            self._writable("t0")[rank],
            self._writable("t1")[rank],
            self._writable("arg")[rank],
            self._writable("cursor")[rank : rank + 1],
        )

    # ------------------------------------------------------------------
    def dropped(self) -> list[int]:
        """Spans lost to ring overwrite, per rank."""
        cursors = self.array("cursor")
        return [max(0, int(c) - self.capacity) for c in cursors]

    def drain(self) -> list[SpanRecord]:
        """Snapshot every ring's surviving records, sorted by start time.

        Reads are copies; recording may continue concurrently (a racing
        writer can at worst tear the newest slot, never the drained
        history semantics — rings are append-ordered by cursor).
        """
        names = self.array("name_id")
        t0s = self.array("t0")
        t1s = self.array("t1")
        args = self.array("arg")
        cursors = self.array("cursor")
        cap = self.capacity
        records: list[SpanRecord] = []
        for rank in range(self.num_ranks):
            cursor = int(cursors[rank])
            count = min(cursor, cap)
            for i in range(count):
                # ring order: oldest surviving record first
                slot = (cursor - count + i) % cap
                t0 = float(t0s[rank, slot])
                t1 = float(t1s[rank, slot])
                if t1 < t0:  # pragma: no cover - torn concurrent write
                    continue
                records.append(
                    SpanRecord(rank, int(names[rank, slot]), t0, t1, int(args[rank, slot]))
                )
        records.sort(key=lambda r: (r.t0, r.rank))
        return records
