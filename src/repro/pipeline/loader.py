"""Prefetching wrapper around :class:`~repro.sampling.dataloader.NodeDataLoader`.

``PrefetchingLoader`` turns the loader's ``num_workers`` metadata into an
actual sampler pipeline: ``num_workers`` workers sample future batches
into a bounded queue while the consumer computes on the current one,
with **strict in-order delivery** — the batch stream is bit-identical to
iterating the wrapped loader directly, because every batch's RNG is a
pure function of ``(seed, epoch, rank, step)``
(:meth:`NodeDataLoader.sample_batch`).

Two worker modes:

``thread`` (default)
    Sampler threads inside the consumer process, built on
    :class:`repro.pipeline.prefetch.OrderedPrefetcher`.  Zero setup cost;
    overlap comes from numpy releasing the GIL inside the vectorised
    sampling kernels and during the consumer's compute.
``process``
    A persistent pool of OS sampler processes — the paper's dedicated
    sampler cores.  The graph's CSR structure is shared zero-copy through
    :class:`repro.graph.shm.SharedGraphStore` (structure only: features
    and labels stay in the parent, which attaches labels on delivery), so
    workers never copy the graph and escape the GIL entirely.  Sampled
    batches return through a slotted shared-memory
    :class:`repro.shm.arena.BatchArena` instead of queue pickling: a
    worker packs the batch's arrays into a free slot and ships only a
    tiny descriptor, which keeps million-node frontiers off the result
    pipe entirely (oversized outliers fall back to pickling, and
    ``arena_slot_bytes=None`` disables the arena outright).

``sampling_cores`` pins the workers (threads or processes) to the
sampler core set, reproducing ARGO's core binding.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import time
import traceback
from typing import Iterable, Iterator

import numpy as np

from repro.graph.shm import SharedGraphStore
from repro.obs.trace import NULL_RECORDER, SPAN_WAIT
from repro.pipeline.prefetch import OrderedPrefetcher, PrefetchStats
from repro.platform.corebind import apply_binding
from repro.sampling.batch import split_merged
from repro.sampling.block import Block, MiniBatch
from repro.sampling.dataloader import NodeDataLoader
from repro.shm.arena import BatchArena, TransportStats
from repro.utils.procs import reap_processes
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive_int

__all__ = ["PrefetchingLoader"]


class _RemoteFailure:
    """Picklable marker for a sampling error inside a worker process."""

    __slots__ = ("message",)

    def __init__(self, message: str):
        self.message = message


class _ArenaBatch:
    """Descriptor of a MiniBatch parked in a :class:`BatchArena` slot."""

    __slots__ = ("slot", "layouts", "num_dsts")

    def __init__(self, slot: int, layouts, num_dsts: tuple[int, ...]):
        self.slot = slot
        self.layouts = layouts
        self.num_dsts = num_dsts


def _batch_arrays(batch: MiniBatch) -> tuple[tuple[int, ...], list[np.ndarray]]:
    """Split a (label-less) MiniBatch into shippable parts: per-block
    ``num_dst`` metadata plus a flat array bundle."""
    arrays: list[np.ndarray] = [batch.seeds]
    num_dsts = []
    for blk in batch.blocks:
        num_dsts.append(blk.num_dst)
        arrays.extend((blk.src_ids, blk.edge_src, blk.edge_dst))
    return tuple(num_dsts), arrays


def _batch_from_arrays(num_dsts, arrays) -> MiniBatch:
    """Inverse of :func:`_batch_arrays`."""
    seeds = arrays[0]
    blocks = [
        Block(
            src_ids=arrays[1 + 3 * i],
            num_dst=int(n),
            edge_src=arrays[2 + 3 * i],
            edge_dst=arrays[3 + 3 * i],
        )
        for i, n in enumerate(num_dsts)
    ]
    return MiniBatch(seeds=seeds, blocks=blocks)


def _sampler_worker(
    task_q,
    result_q,
    store_spec: dict,
    sampler,
    seed: int,
    rank: int,
    sampling_cores: tuple[int, ...] | None,
    arena_spec: dict | None,
    slot_q,
    parent_pid: int,
) -> None:
    """Sampler-process main loop: ``(epoch, start_step, seeds_list)`` →
    one ``(step, batch, secs)`` result per step of the span.

    Each task carries a *span* of consecutive steps (usually one).  The
    whole span is drawn in a single fused
    :meth:`~repro.sampling.base.Sampler.sample_merged` call — each step
    from its own ``(seed, epoch, rank, step)`` stream, exactly what
    :meth:`~repro.sampling.dataloader.NodeDataLoader.sample_batch_span`
    draws in the consumer — then split back into per-step MiniBatches
    and shipped individually, so the parent's in-order reorder window
    never needs to know about spans.  A sampling failure posts a
    :class:`_RemoteFailure` for *every* step of the span (the parent
    fails at the first one's turn; the rest keep its bookkeeping whole).

    With an arena, results park their arrays in a free shared-memory
    slot and ship an :class:`_ArenaBatch` descriptor; a batch that does
    not fit a slot — or a momentarily starved free-slot queue — falls
    back to pickling the batch through the result queue.

    Orphan watchdog: a SIGKILL'd consumer never sends the stop sentinel,
    so the idle loop polls the parent pid — on re-parenting the worker
    exits instead of holding the graph/arena segments open forever.
    ``parent_pid`` is captured at the *fork site*: reading getppid()
    here would record the reaper's pid if the consumer died during the
    fork window, masking the orphaning forever.
    """
    apply_binding(sampling_cores)
    store = SharedGraphStore.attach(store_spec)
    arena = BatchArena.attach(arena_spec) if arena_spec is not None else None
    try:
        graph = store.graph  # zero-copy CSR over the shared structure
        while True:
            try:
                item = task_q.get(timeout=1.0)
            except queue_mod.Empty:
                if os.getppid() != parent_pid:
                    return  # orphaned: the consumer died ungracefully
                continue
            if item is None:
                return
            epoch, start_step, seeds_list = item
            start = time.perf_counter()
            try:
                rngs = [
                    derive_rng(seed, "batch", epoch, rank, start_step + i)
                    for i in range(len(seeds_list))
                ]
                batches = split_merged(sampler.sample_merged(graph, seeds_list, rngs))
            except BaseException:
                secs = time.perf_counter() - start
                message = traceback.format_exc()
                for i in range(len(seeds_list)):
                    result_q.put(
                        (start_step + i, _RemoteFailure(message), secs if i == 0 else 0.0)
                    )
                continue
            secs = (time.perf_counter() - start) / len(batches)
            for i, batch in enumerate(batches):
                value: object = batch
                if arena is not None:
                    slot = None
                    try:
                        slot = slot_q.get(timeout=0.05)
                    except queue_mod.Empty:
                        pass  # consumer slow to recycle; pickle this one
                    if slot is not None:
                        num_dsts, arrays = _batch_arrays(batch)
                        layouts = arena.write(slot, arrays)
                        if layouts is None:  # oversized bundle: recycle + pickle
                            slot_q.put(slot)
                        else:
                            value = _ArenaBatch(slot, layouts, num_dsts)
                result_q.put((start_step + i, value, secs))
    finally:
        if arena is not None:
            arena.close()
        store.close()


class PrefetchingLoader:
    """Overlapped, in-order mini-batch delivery over a ``NodeDataLoader``.

    Parameters
    ----------
    loader:
        The wrapped loader.  Its ``num_workers`` is the default worker
        count; its seed/epoch/rank state drives the (unchanged) batch
        stream.
    num_workers:
        Sampler workers (default: ``loader.num_workers``).
    queue_depth:
        Lookahead bound — at most this many batches beyond the one the
        consumer holds are sampled ahead.
    mode:
        ``"thread"`` or ``"process"`` (see module docstring).
    sampling_cores:
        Optional core ids to pin sampler workers to.
    start_method, timeout:
        Process-mode knobs: the ``multiprocessing`` start method and the
        per-batch deadline (seconds) before a dead pool is reported.
    arena_slot_bytes:
        Process-mode result transport: size of each shared-memory batch
        slot (one slot per lookahead position).  Batches whose arrays
        fit a slot return as raw shared-memory copies instead of queue
        pickles; larger ones fall back to pickling.  ``None`` disables
        the arena entirely (pure pickle transport).
    recorder:
        Optional :class:`~repro.obs.trace.SpanRecorder`: when enabled,
        every delivery stall — the consumer blocked waiting for the
        next in-order batch — is recorded as a ``wait`` span (``arg`` =
        the step waited on).  Defaults to the no-op recorder; the hot
        path takes no extra timestamps when tracing is off.
    span:
        Batching of the sampling work itself: each worker job draws
        ``span`` consecutive steps in one fused multi-seed sampling
        pass and the loader yields the recovered per-step batches in
        order — bit-identical to ``span=1``, fewer passes over the
        sampling kernels.  Thread mode fuses via
        :meth:`~repro.sampling.dataloader.NodeDataLoader.sample_batch_span`;
        process mode ships the span's seed lists in one task message and
        the worker runs the same fused kernel, returning one result per
        step (so delivery order and failure turns are unchanged).

    The process pool and its shared-memory graph segments persist across
    epochs; call :meth:`close` (or use the loader as a context manager)
    to release them.  Thread mode holds no cross-epoch resources.
    """

    MODES = ("thread", "process")

    def __init__(
        self,
        loader: NodeDataLoader,
        *,
        num_workers: int | None = None,
        queue_depth: int = 2,
        mode: str = "thread",
        sampling_cores: Iterable[int] | None = None,
        start_method: str | None = None,
        timeout: float = 120.0,
        arena_slot_bytes: int | None = 1 << 22,
        recorder=None,
        span: int = 1,
    ):
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        self.span = check_positive_int(span, "span")
        self.loader = loader
        self.num_workers = check_positive_int(
            loader.num_workers if num_workers is None else num_workers, "num_workers"
        )
        self.queue_depth = check_positive_int(queue_depth, "queue_depth")
        self.mode = mode
        self.sampling_cores = (
            tuple(sampling_cores) if sampling_cores is not None else None
        )
        self.timeout = float(timeout)
        if mode == "process" and loader.seed is None:
            raise ValueError(
                "process-mode prefetching requires a seeded loader (workers "
                "re-derive each batch's RNG from (seed, epoch, rank, step))"
            )
        self._ctx = mp.get_context(start_method)
        self._store: SharedGraphStore | None = None
        self._procs: list = []
        self._task_q = None
        self._result_q = None
        self._slot_q = None
        self._arena: BatchArena | None = None
        if arena_slot_bytes is not None:
            arena_slot_bytes = check_positive_int(arena_slot_bytes, "arena_slot_bytes")
            if arena_slot_bytes < 16:
                # BatchArena's minimum slot; fail here like every other
                # knob instead of mid-first-epoch inside _ensure_pool
                raise ValueError(
                    f"arena_slot_bytes must be >= 16 (or None to disable "
                    f"the arena), got {arena_slot_bytes}"
                )
        self.arena_slot_bytes = arena_slot_bytes
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        #: process-mode transport counters (arena hits vs pickle
        #: fallbacks) — the same record the serving runtime reports, so
        #: arena behaviour reads identically in every surface
        self.transport = TransportStats()
        self._closed = False
        #: lifetime queue-dynamics record, folded over every epoch
        self.stats = PrefetchStats(
            num_workers=self.num_workers, queue_depth=self.queue_depth
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.loader)

    def set_epoch(self, epoch: int) -> None:
        self.loader.set_epoch(epoch)

    @property
    def epoch(self) -> int:
        return self.loader.epoch

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[MiniBatch]:
        if self._closed:
            raise ValueError("loader is closed")
        if self.mode == "thread":
            return self._iter_thread()
        return self._iter_process()

    def _iter_thread(self) -> Iterator[MiniBatch]:
        loader = self.loader
        all_seeds = loader.batch_seeds()

        if self.span == 1:
            def make_job(step: int, seeds: np.ndarray):
                return lambda: loader.sample_batch(step, seeds)

            jobs = [make_job(step, seeds) for step, seeds in enumerate(all_seeds)]
        else:
            def make_span_job(start: int, seeds_list: list[np.ndarray]):
                return lambda: loader.sample_batch_span(start, seeds_list)

            jobs = [
                make_span_job(start, all_seeds[start : start + self.span])
                for start in range(0, len(all_seeds), self.span)
            ]

        cores = self.sampling_cores
        prefetcher = OrderedPrefetcher(
            jobs,
            num_workers=self.num_workers,
            queue_depth=self.queue_depth,
            worker_init=(lambda: apply_binding(cores)) if cores else None,
            name="loader-prefetch",
        )
        try:
            if self.span == 1:
                yield from self._deliver(prefetcher)
            else:
                for span_batches in self._deliver(prefetcher):
                    yield from span_batches
        finally:
            prefetcher.close()
            self._fold_stats(prefetcher.stats)

    def _deliver(self, prefetcher) -> Iterator:
        """Yield the prefetcher's items, tracing each delivery stall.

        With tracing off this is a plain ``yield from`` — zero extra
        timestamps.  Enabled, each blocking ``next()`` (the reorder
        window waiting on the next in-order job) becomes a ``wait``
        span; the consumer's own compute runs between yields and is
        never inside the measured window.
        """
        recorder = self.recorder
        if not recorder.enabled:
            yield from prefetcher
            return
        it = iter(prefetcher)
        step = 0
        while True:
            t0 = time.perf_counter()
            try:
                item = next(it)
            except StopIteration:
                return
            recorder.record(SPAN_WAIT, t0, time.perf_counter(), step)
            step += 1
            yield item

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> None:
        if self._procs and all(p.is_alive() for p in self._procs):
            return
        self._shutdown_pool()
        loader = self.loader
        self._store = SharedGraphStore.create(
            {"indptr": loader.graph.indptr, "indices": loader.graph.indices}
        )
        self._task_q = self._ctx.Queue()
        self._result_q = self._ctx.Queue()
        arena_spec = None
        if self.arena_slot_bytes is not None:
            # one slot per lookahead position: in-flight results are
            # bounded by the submit window, so the free-slot queue can
            # never starve a worker for long
            self._arena = BatchArena.create(
                num_slots=self.queue_depth, slot_bytes=self.arena_slot_bytes
            )
            self._slot_q = self._ctx.Queue()
            for slot in range(self._arena.num_slots):
                self._slot_q.put(slot)
            arena_spec = self._arena.spec
        self._procs = [
            self._ctx.Process(
                target=_sampler_worker,
                args=(
                    self._task_q,
                    self._result_q,
                    self._store.spec,
                    loader.sampler,
                    loader.seed,
                    loader.rank,
                    self.sampling_cores,
                    arena_spec,
                    self._slot_q,
                    os.getpid(),
                ),
                daemon=True,
            )
            for _ in range(self.num_workers)
        ]
        for p in self._procs:
            p.start()

    def _iter_process(self) -> Iterator[MiniBatch]:
        # this is OrderedPrefetcher's bounded in-order window (submit
        # while submitted < delivered + queue_depth, reorder on arrival,
        # fail at the failing step's turn) re-expressed over IPC queues:
        # results from a process pool arrive on one demultiplexed queue,
        # which thread-local job objects cannot model.  Keep the two
        # protocols' invariants in sync.
        self._ensure_pool()
        loader = self.loader
        epoch = loader.epoch
        all_seeds = loader.batch_seeds()
        num_steps = len(all_seeds)
        # span tasks: one message per `span` consecutive steps; the
        # submit window still counts *steps*, so a span > 1 only rounds
        # the lookahead up to whole spans — results stay per-step
        spans = [
            (start, all_seeds[start : start + self.span])
            for start in range(0, num_steps, self.span)
        ]
        pending: dict[int, MiniBatch | _RemoteFailure] = {}
        next_span = 0
        submitted = 0  # steps, not spans
        delivered = 0
        wait = 0.0
        busy = 0.0
        try:
            while delivered < num_steps:
                while next_span < len(spans) and submitted < delivered + self.queue_depth:
                    start_step, seeds_list = spans[next_span]
                    self._task_q.put((epoch, start_step, seeds_list))
                    submitted += len(seeds_list)
                    next_span += 1
                start = time.perf_counter()
                while delivered not in pending:
                    try:
                        step, value, secs = self._result_q.get(timeout=0.2)
                    except queue_mod.Empty:
                        dead = [p for p in self._procs if not p.is_alive()]
                        if dead or time.perf_counter() - start > self.timeout:
                            raise RuntimeError(
                                "sampler pool died or timed out "
                                f"({len(dead)}/{len(self._procs)} workers gone)"
                            ) from None
                        continue
                    pending[step] = value
                    busy += secs
                end = time.perf_counter()
                wait += end - start
                if self.recorder.enabled:
                    self.recorder.record(SPAN_WAIT, start, end, delivered)
                value = pending.pop(delivered)
                delivered += 1
                if isinstance(value, _RemoteFailure):
                    raise RuntimeError(f"sampler worker failed:\n{value.message}")
                if isinstance(value, _ArenaBatch):
                    arrays = self._arena.read(value.slot, value.layouts)
                    self._slot_q.put(value.slot)  # recycle before compute
                    value = _batch_from_arrays(value.num_dsts, arrays)
                    self.transport.arena_hits += 1
                else:
                    self.transport.pickle_fallbacks += 1
                value.labels = loader.labels[value.seeds]
                yield value
        except BaseException:
            # a broken epoch leaves tasks/results in flight; the pool is
            # no longer in a known state — rebuild it on the next epoch
            self.close_pool()
            raise
        finally:
            self._fold_stats(
                PrefetchStats(
                    num_workers=self.num_workers,
                    queue_depth=self.queue_depth,
                    wait_time=wait,
                    busy_time=busy,
                    batches=delivered,
                )
            )

    def _fold_stats(self, stats: PrefetchStats) -> None:
        self.stats.wait_time += stats.wait_time
        self.stats.busy_time += stats.busy_time
        self.stats.batches += stats.batches

    # ------------------------------------------------------------------
    def _shutdown_pool(self) -> None:
        for p in self._procs:
            if p.is_alive():
                try:
                    self._task_q.put_nowait(None)
                except Exception:
                    pass
        for p in self._procs:
            p.join(5.0)  # graceful: workers exit on the sentinel
        reap_processes(self._procs)
        self._procs = []
        for q in (self._task_q, self._result_q, self._slot_q):
            if q is not None:
                q.cancel_join_thread()
                q.close()
        self._task_q = self._result_q = self._slot_q = None
        if self._arena is not None:
            self._arena.unlink()
        self._arena = None
        if self._store is not None and not self._store.closed:
            self._store.unlink()
        self._store = None

    def close_pool(self) -> None:
        """Tear down the process pool (kept usable: next epoch rebuilds)."""
        self._shutdown_pool()

    def close(self) -> None:
        """Release all worker resources; the loader cannot iterate again."""
        self._shutdown_pool()
        self._closed = True

    def __enter__(self) -> "PrefetchingLoader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self._shutdown_pool()
        except Exception:
            pass
