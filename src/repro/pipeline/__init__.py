"""Sampling/compute overlap pipeline (paper Sec. IV-B1).

The subsystem that makes the ``s`` (samplers) axis of ARGO's design
space change wall clock instead of just the cost model:

* :class:`OrderedPrefetcher` — bounded, strictly in-order execution of
  sampling jobs on worker threads;
* :func:`rank_step_prefetcher` — one engine rank's per-epoch sample
  stream, prefetched bit-identically to the synchronous backends;
* :class:`PrefetchingLoader` — user-facing wrapper running a
  :class:`~repro.sampling.dataloader.NodeDataLoader`'s sampling on
  ``num_workers`` threads or shared-memory sampler processes.
"""

from repro.pipeline.loader import PrefetchingLoader
from repro.pipeline.prefetch import OrderedPrefetcher, PrefetchStats, rank_step_prefetcher

__all__ = [
    "OrderedPrefetcher",
    "PrefetchStats",
    "PrefetchingLoader",
    "rank_step_prefetcher",
]
