"""Ordered prefetch executor: overlap sampling with computation.

The paper's central runtime mechanism (Sec. IV-B1) is running mini-batch
sampling on dedicated sampler cores *while* the trainer computes on the
previous batch.  :class:`OrderedPrefetcher` is the engine-agnostic core
of that pipeline: it executes a fixed sequence of sampling jobs on
``num_workers`` worker threads and hands the results to the consumer in
**strict submission order**, never running more than ``queue_depth``
jobs ahead of the consumer.

In-order delivery is what keeps the overlap *semantics-free*: as long as
every job is a pure function (the engine derives each step's RNG from
``(seed, epoch, step, rank)``), the consumer observes the exact batch
stream of the synchronous path — prefetching changes wall clock, never
numerics.

Two timings fall out of the queue dynamics and feed the paper's
sample/compute breakdown (Fig. 2):

* ``stats.wait_time`` — how long the consumer blocked waiting for its
  next batch ("sample wait"; zero when sampling is fully hidden);
* ``stats.busy_time`` — cumulative worker time inside sampling jobs.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = ["PrefetchStats", "OrderedPrefetcher", "rank_step_prefetcher"]


@dataclass
class PrefetchStats:
    """Queue-dynamics record of one prefetcher's lifetime."""

    num_workers: int = 0
    queue_depth: int = 0
    #: consumer seconds blocked waiting for the next in-order result
    wait_time: float = 0.0
    #: cumulative worker seconds spent inside jobs
    busy_time: float = 0.0
    #: results delivered so far
    batches: int = 0


class _Failure:
    """Wrapper marking a job's exception so it re-raises at its turn."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException):
        self.exc = exc


class OrderedPrefetcher:
    """Run ``jobs`` on worker threads; yield results in submission order.

    Parameters
    ----------
    jobs:
        Sequence of zero-argument callables.  Job ``i``'s result is the
        ``i``-th item this iterator yields; a job's exception is re-raised
        at its position (later results are discarded).
    num_workers:
        Worker threads.  Effective parallelism is
        ``min(num_workers, queue_depth)`` — a worker only starts job
        ``i`` once ``i < delivered + queue_depth``.
    queue_depth:
        Lookahead bound: how many batches may exist beyond what the
        consumer has taken.  ``1`` is classic double buffering (sample
        batch ``i+1`` while the consumer computes on batch ``i``).
    worker_init:
        Optional callable run once in each worker thread before any job —
        the hook :func:`rank_step_prefetcher` uses to pin sampler threads
        to the sampler core set.  Failures are ignored (core binding is
        best effort, exactly like :func:`repro.platform.corebind.apply_binding`).

    Workers start immediately; call :meth:`close` (or use as a context
    manager, or drain the iterator) to join them.  ``close`` is
    idempotent and safe to call with jobs still queued.
    """

    def __init__(
        self,
        jobs: Iterable[Callable[[], object]],
        *,
        num_workers: int = 1,
        queue_depth: int = 2,
        worker_init: Callable[[], object] | None = None,
        name: str = "prefetch",
    ):
        self._jobs: Sequence[Callable[[], object]] = list(jobs)
        num_workers = check_positive_int(num_workers, "num_workers")
        self._queue_depth = check_positive_int(queue_depth, "queue_depth")
        self._worker_init = worker_init
        self._cv = threading.Condition()
        self._next_task = 0  # next job index a worker may claim
        self._next_out = 0  # next index the consumer takes
        self._results: dict[int, object] = {}
        self._closed = False
        self.stats = PrefetchStats(
            num_workers=num_workers, queue_depth=self._queue_depth
        )
        n_threads = min(num_workers, max(1, len(self._jobs)))
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"{name}-{i}", daemon=True
            )
            for i in range(n_threads)
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        if self._worker_init is not None:
            try:
                self._worker_init()
            except Exception:
                pass  # binding is best effort; sampling proceeds unpinned
        while True:
            with self._cv:
                while (
                    not self._closed
                    and self._next_task < len(self._jobs)
                    and self._next_task >= self._next_out + self._queue_depth
                ):
                    self._cv.wait()
                if self._closed or self._next_task >= len(self._jobs):
                    return
                idx = self._next_task
                self._next_task += 1
            start = time.perf_counter()
            try:
                value: object = self._jobs[idx]()
            except BaseException as exc:
                value = _Failure(exc)
            elapsed = time.perf_counter() - start
            with self._cv:
                self.stats.busy_time += elapsed
                if self._closed:
                    return
                self._results[idx] = value
                self._cv.notify_all()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> "OrderedPrefetcher":
        return self

    def __next__(self):
        with self._cv:
            if self._next_out >= len(self._jobs):
                raise StopIteration
            start = time.perf_counter()
            while self._next_out not in self._results:
                if self._closed:
                    raise RuntimeError(
                        "prefetcher closed with batches still pending"
                    )
                self._cv.wait()
            self.stats.wait_time += time.perf_counter() - start
            value = self._results.pop(self._next_out)
            self._next_out += 1
            self.stats.batches += 1
            self._cv.notify_all()  # window advanced: workers may claim jobs
        if isinstance(value, _Failure):
            self.close()
            raise value.exc
        return value

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and drop buffered results; idempotent."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()
        current = threading.current_thread()
        for t in self._threads:
            if t is not current:
                t.join()
        with self._cv:
            self._results.clear()

    def __enter__(self) -> "OrderedPrefetcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def rank_step_prefetcher(
    sampler,
    graph,
    plan: Sequence[np.ndarray],
    *,
    world_size: int,
    rank: int,
    seed: int,
    epoch: int,
    num_workers: int = 1,
    queue_depth: int = 2,
    sampling_cores: Iterable[int] | None = None,
) -> OrderedPrefetcher:
    """Prefetcher over one rank's sample stream for one engine epoch.

    Yields, per global step of ``plan``, the rank's sampled
    :class:`~repro.sampling.block.MiniBatch` (or ``None`` when the rank's
    chunk of that step is empty).  Each job re-derives its RNG as
    ``derive_rng(seed, "sample", epoch, step, rank)`` — the exact stream
    of the synchronous backends — so the delivered batches are
    bit-identical to sampling inline, whatever the worker/queue settings.

    ``sampling_cores``, when given, pins every sampler worker thread to
    that core set (ARGO's sampler-core binding, Sec. IV-B3); the trainer
    thread is left untouched.
    """
    # local imports: repro.exec imports this module's package consumers
    from repro.exec.base import acquire_batch
    from repro.platform.corebind import apply_binding

    def make_job(step: int, global_batch: np.ndarray):
        def job():
            # acquire_batch's synchronous branch IS the protocol (split,
            # empty-chunk convention, per-step RNG); running it on a
            # worker thread is what keeps prefetch-on bit-identical
            return acquire_batch(
                None,
                sampler,
                graph,
                global_batch,
                world_size=world_size,
                rank=rank,
                seed=seed,
                epoch=epoch,
                step=step,
            )

        return job

    cores = tuple(sampling_cores) if sampling_cores is not None else None
    worker_init = (lambda: apply_binding(cores)) if cores else None
    return OrderedPrefetcher(
        [make_job(step, gb) for step, gb in enumerate(plan)],
        num_workers=num_workers,
        queue_depth=queue_depth,
        worker_init=worker_init,
        name=f"sampler-r{rank}",
    )
