"""Graph Attention Network layer and model (extension).

The paper evaluates GCN and GraphSAGE; GAT (Velickovic et al. 2018) is
the third canonical message-passing model and exercises a code path the
other two do not: per-edge attention weights computed from *both*
endpoint features and normalised with a segment softmax, with gradients
flowing through the attention coefficients.

Single-head formulation per block edge ``u -> v``::

    e_uv   = LeakyReLU(a_src . (W h_u) + a_dst . (W h_v))
    alpha  = segment_softmax(e, by v)
    h'_v   = sum_u alpha_uv (W h_u)
"""

from __future__ import annotations

import numpy as np

from repro.autograd.module import Linear, Module, Parameter
from repro.autograd.ops import (
    add,
    dropout as dropout_op,
    gather_rows,
    matmul,
    mul,
    relu,
    scatter_add_rows,
    sum_,
)
from repro.autograd.tensor import Tensor
from repro.autograd import init as init_mod
from repro.gnn.segment import segment_softmax
from repro.sampling.block import Block
from repro.utils.rng import derive_rng

__all__ = ["GATConv", "GAT", "leaky_relu"]


def leaky_relu(x: Tensor, slope: float = 0.2) -> Tensor:
    """LeakyReLU via the existing primitives: ``relu(x) - slope*relu(-x)``."""
    return add(relu(x), mul(mul(relu(mul(x, -1.0)), -1.0), slope))


class GATConv(Module):
    """Single-head graph attention layer over a bipartite block."""

    def __init__(self, in_features: int, out_features: int, *, slope: float = 0.2, rng=None):
        super().__init__()
        self.linear = Linear(in_features, out_features, bias=False, rng=rng)
        self.attn_src = Parameter(init_mod.glorot_uniform((out_features, 1), rng=rng))
        self.attn_dst = Parameter(init_mod.glorot_uniform((out_features, 1), rng=rng))
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32))
        self.slope = float(slope)

    def forward(self, block: Block, h_src: Tensor) -> Tensor:
        if len(h_src.data) != block.num_src:
            raise ValueError(
                f"feature rows ({len(h_src.data)}) != block src nodes ({block.num_src})"
            )
        # merged (shared-frontier) blocks project per request segment so
        # each request keeps its solo forward's exact BLAS geometry
        z = self.linear(h_src, row_splits=block.src_splits)  # (num_src, F')
        # per-node attention halves, then per-edge logits
        score_src = matmul(z, self.attn_src, row_splits=block.src_splits)  # (num_src, 1)
        score_dst = matmul(z, self.attn_dst, row_splits=block.src_splits)
        e_src = gather_rows(score_src, block.edge_src).reshape(block.num_edges)
        # a destination's score lives at its *source-row* position: the
        # prefix for ordinary blocks (where that position IS edge_dst —
        # skip the index composition on the training hot path), the
        # per-request segment heads for merged blocks
        dst_rows = (
            block.edge_dst
            if block.src_splits is None
            else block.dst_positions[block.edge_dst]
        )
        e_dst = gather_rows(score_dst, dst_rows).reshape(block.num_edges)
        logits = leaky_relu(add(e_src, e_dst), self.slope)
        alpha = segment_softmax(logits, block.edge_dst, block.num_dst)
        messages = mul(gather_rows(z, block.edge_src), alpha.reshape((block.num_edges, 1)))
        out = scatter_add_rows(messages, block.edge_dst, block.num_dst)
        return add(out, self.bias)


class GAT(Module):
    """Multi-layer single-head GAT with ELU-free ReLU nonlinearity."""

    #: the dropout-stream counter must follow the weights across
    #: execution backends (see Module.extra_state_dict)
    EXTRA_STATE_ATTRS = ("_dropout_calls",)

    def __init__(self, dims: list[int], *, dropout: float = 0.5, seed: int = 0):
        super().__init__()
        from repro.gnn.models import build_layer_stack  # local import: cycle

        self.dims = list(dims)
        self.dropout = float(dropout)
        self.seed = seed
        self._layers: list[GATConv] = build_layer_stack(
            self, dims, GATConv, stream="gat", seed=seed
        )
        self._dropout_calls = 0

    def __setattr__(self, name, value):
        if name in ("_layers", "_dropout_calls"):
            object.__setattr__(self, name, value)
        else:
            super().__setattr__(name, value)

    @property
    def num_layers(self) -> int:
        return len(self._layers)

    def forward(self, blocks: list[Block], x: Tensor) -> Tensor:
        if len(blocks) != self.num_layers:
            raise ValueError(f"expected {self.num_layers} blocks, got {len(blocks)}")
        h = x
        for i, (layer, block) in enumerate(zip(self._layers, blocks)):
            h = layer(block, h)
            if i < self.num_layers - 1:
                h = h.relu()
                if self.training and self.dropout > 0:
                    self._dropout_calls += 1
                    h = dropout_op(
                        h,
                        self.dropout,
                        training=True,
                        rng=derive_rng(self.seed, "dropout", self._dropout_calls),
                    )
                if len(h.data) != blocks[i + 1].num_src:
                    raise ValueError("block chain mismatch")
        return h
