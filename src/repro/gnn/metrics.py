"""Classification metrics beyond plain accuracy.

The paper reports accuracy curves (Fig. 9); micro/macro-F1 are the usual
companions in the GNN literature (GraphSAINT, Cluster-GCN report them),
so downstream users get them here.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["accuracy", "confusion_matrix", "f1_scores", "micro_f1", "macro_f1"]


def _predictions(logits, targets) -> tuple[np.ndarray, np.ndarray]:
    if isinstance(logits, Tensor):
        logits = logits.data
    pred = np.asarray(logits)
    if pred.ndim == 2:
        pred = pred.argmax(axis=-1)
    targets = np.asarray(targets, dtype=np.int64)
    if pred.shape != targets.shape:
        raise ValueError(f"prediction/target shape mismatch: {pred.shape} vs {targets.shape}")
    return pred.astype(np.int64), targets


def accuracy(logits, targets) -> float:
    """Fraction of rows whose argmax matches ``targets``.

    An empty batch scores 0.0 — ``mean()`` over zero elements would
    divide by zero and propagate NaN into accuracy curves (a sharded
    loader can legitimately hand a rank an empty evaluation slice).
    """
    pred, targets = _predictions(logits, targets)
    if len(targets) == 0:
        return 0.0
    return float((pred == targets).mean())


def confusion_matrix(logits, targets, num_classes: int) -> np.ndarray:
    """``(num_classes, num_classes)`` matrix; rows = true, cols = predicted."""
    pred, targets = _predictions(logits, targets)
    if len(targets) and (targets.max() >= num_classes or pred.max() >= num_classes):
        raise ValueError("class index out of range")
    mat = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(mat, (targets, pred), 1)
    return mat


def f1_scores(logits, targets, num_classes: int) -> np.ndarray:
    """Per-class F1; classes absent from both pred and truth score 0."""
    mat = confusion_matrix(logits, targets, num_classes)
    tp = np.diag(mat).astype(np.float64)
    fp = mat.sum(axis=0) - tp
    fn = mat.sum(axis=1) - tp
    denom = 2 * tp + fp + fn
    with np.errstate(invalid="ignore", divide="ignore"):
        f1 = np.where(denom > 0, 2 * tp / np.maximum(denom, 1e-300), 0.0)
    return f1


def micro_f1(logits, targets, num_classes: int) -> float:
    """Micro-averaged F1 == accuracy for single-label classification."""
    mat = confusion_matrix(logits, targets, num_classes)
    total = mat.sum()
    return float(np.diag(mat).sum() / total) if total else 0.0


def macro_f1(logits, targets, num_classes: int) -> float:
    """Unweighted mean of per-class F1 (0.0 when there are no classes)."""
    f1 = f1_scores(logits, targets, num_classes)
    return float(f1.mean()) if f1.size else 0.0
