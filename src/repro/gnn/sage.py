"""GraphSAGE (Hamilton et al. 2017; paper Eq. (2)/(3)).

Feature Aggregation: ``a_v = h_v || mean(h_u, u in N(v))`` (concat of the
node's own previous-layer feature with the neighbour mean).
Feature Update:      ``h_v = ReLU(a_v W + b)``.

The destination-prefix convention of :class:`repro.sampling.block.Block`
provides ``h_v^{l-1}`` as ``h_src[:num_dst]``.
"""

from __future__ import annotations

from repro.autograd.module import Module, Linear
from repro.autograd.ops import concat, dropout as dropout_op, gather_rows
from repro.autograd.tensor import Tensor
from repro.gnn.aggregate import aggregate_mean
from repro.sampling.block import Block
from repro.utils.rng import derive_rng

import numpy as np

__all__ = ["SAGEConv", "GraphSAGE"]


class SAGEConv(Module):
    """One GraphSAGE layer (mean aggregator, concat combine)."""

    def __init__(self, in_features: int, out_features: int, *, rng=None):
        super().__init__()
        # concat doubles the input width
        self.linear = Linear(2 * in_features, out_features, rng=rng)

    def forward(self, block: Block, h_src: Tensor) -> Tensor:
        if len(h_src.data) != block.num_src:
            raise ValueError(
                f"feature rows ({len(h_src.data)}) != block src nodes ({block.num_src})"
            )
        # dst_positions is the prefix arange for ordinary blocks and the
        # per-request prefixes for merged (shared-frontier) blocks
        h_self = gather_rows(h_src, block.dst_positions)
        # blocks are range-checked at construction (Block.__post_init__)
        h_neigh = aggregate_mean(
            h_src, block.edge_src, block.edge_dst, block.num_dst, validate=False
        )
        # merged blocks compute the affine map per request segment so
        # each request keeps its solo forward's exact BLAS geometry
        return self.linear(concat([h_self, h_neigh], axis=-1), row_splits=block.dst_splits)


class GraphSAGE(Module):
    """Multi-layer GraphSAGE with ReLU + dropout between layers."""

    #: the dropout-stream counter must follow the weights across
    #: execution backends (see Module.extra_state_dict)
    EXTRA_STATE_ATTRS = ("_dropout_calls",)

    def __init__(self, dims: list[int], *, dropout: float = 0.5, seed: int = 0):
        super().__init__()
        from repro.gnn.models import build_layer_stack  # local import: cycle

        self.dims = list(dims)
        self.dropout = float(dropout)
        self.seed = seed
        self._layers: list[SAGEConv] = build_layer_stack(
            self, dims, SAGEConv, stream="sage", seed=seed
        )
        self._dropout_calls = 0

    def __setattr__(self, name, value):
        if name in ("_layers", "_dropout_calls"):
            object.__setattr__(self, name, value)
        else:
            super().__setattr__(name, value)

    @property
    def num_layers(self) -> int:
        return len(self._layers)

    def forward(self, blocks: list[Block], x: Tensor) -> Tensor:
        if len(blocks) != self.num_layers:
            raise ValueError(f"expected {self.num_layers} blocks, got {len(blocks)}")
        h = x
        for i, (layer, block) in enumerate(zip(self._layers, blocks)):
            h = layer(block, h)
            if i < self.num_layers - 1:
                h = h.relu()
                if self.training and self.dropout > 0:
                    self._dropout_calls += 1
                    h = dropout_op(
                        h,
                        self.dropout,
                        training=True,
                        rng=derive_rng(self.seed, "dropout", self._dropout_calls),
                    )
                if len(h.data) != blocks[i + 1].num_src:
                    raise ValueError(
                        "block chain mismatch: layer output rows "
                        f"{len(h.data)} != next block src {blocks[i + 1].num_src}"
                    )
        return h
