"""Differentiable per-segment softmax (the edge-attention primitive).

GAT normalises attention logits over each destination node's incoming
edges: ``alpha_e = softmax_{e in N(v)}(logit_e)``.  This is a segment-wise
softmax over a 1-D logit vector grouped by ``dst_idx``.  Implemented with
the same numerically-stable shift used by the dense log-softmax, using
``np.maximum.at`` / ``np.add.at`` scatter reductions.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.ops import _make, _wrap
from repro.autograd.tensor import Tensor

__all__ = ["segment_softmax"]


def segment_softmax(logits: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Softmax of ``logits`` within each segment.

    Parameters
    ----------
    logits:
        1-D tensor of per-edge scores.
    segment_ids:
        Segment (destination) index per entry; not required to be sorted.
    num_segments:
        Total number of segments (isolated segments are fine).
    """
    logits = _wrap(logits)
    if logits.ndim != 1:
        raise ValueError(f"segment_softmax expects 1-D logits, got shape {logits.shape}")
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.shape != logits.shape:
        raise ValueError("segment_ids must align with logits")
    if len(segment_ids) and (segment_ids.min() < 0 or segment_ids.max() >= num_segments):
        raise ValueError("segment_ids out of range")

    x = logits.data.astype(np.float64)
    # stable shift: subtract the per-segment max
    seg_max = np.full(num_segments, -np.inf)
    np.maximum.at(seg_max, segment_ids, x)
    shifted = x - np.where(np.isfinite(seg_max[segment_ids]), seg_max[segment_ids], 0.0)
    expd = np.exp(shifted)
    denom = np.zeros(num_segments)
    np.add.at(denom, segment_ids, expd)
    out_data = (expd / np.maximum(denom[segment_ids], 1e-300)).astype(logits.data.dtype)

    def vjp(g):
        # d softmax: s * (g - sum_seg(g * s))
        gs = g * out_data
        seg_dot = np.zeros(num_segments, dtype=np.float64)
        np.add.at(seg_dot, segment_ids, gs)
        return (gs - out_data * seg_dot[segment_ids]).astype(logits.data.dtype)

    return _make(out_data, [(logits, vjp)], "segment_softmax")
