"""Model factory, shared stack builder and the paper's sampler-model pairings.

The paper evaluates two combinations: ``Neighbor-SAGE`` (NeighborSampler +
GraphSAGE) and ``ShaDow-GCN`` (ShadowSampler + GCN).  ``build_model``
creates either model from the dataset's layer dims; ``make_task`` builds
the full (sampler, model) pair by the paper's names.

:func:`build_layer_stack` is the one place the multi-layer models (GCN,
GraphSAGE, GAT) chain their conv layers over ``dims`` — each layer gets
an independent derived RNG stream and is registered as ``conv{i}`` so
``state_dict`` names stay stable.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.autograd.module import Module
from repro.gnn.gcn import GCN
from repro.gnn.gat import GAT
from repro.gnn.sage import GraphSAGE
from repro.sampling.base import Sampler, make_sampler
from repro.utils.rng import derive_rng

__all__ = ["MODEL_REGISTRY", "build_model", "build_layer_stack", "TASKS", "make_task"]


def build_layer_stack(
    owner: Module,
    dims: list[int],
    layer_factory: Callable[..., Module],
    *,
    stream: str,
    seed: int,
) -> list[Module]:
    """Instantiate and register the conv layers of a stacked GNN.

    ``dims`` is ``[f0, f1, ..., f_out]`` (paper Table III); layer ``i``
    maps ``dims[i] -> dims[i+1]`` and is initialised from the derived
    stream ``(seed, stream, i)``.  Layers are set on ``owner`` as
    ``conv{i}`` (registering their parameters) and returned in order.
    """
    if len(dims) < 2:
        raise ValueError(f"dims must list input and output sizes, got {dims}")
    layers: list[Module] = []
    for i in range(len(dims) - 1):
        layer = layer_factory(dims[i], dims[i + 1], rng=derive_rng(seed, stream, i))
        setattr(owner, f"conv{i}", layer)
        layers.append(layer)
    return layers

MODEL_REGISTRY: Dict[str, Callable[..., Module]] = {
    "gcn": GCN,
    "gat": GAT,
    "sage": GraphSAGE,
    "graphsage": GraphSAGE,
}


def build_model(name: str, dims: list[int], *, dropout: float = 0.5, seed: int = 0) -> Module:
    """Instantiate a registered model over layer dims ``[f0, ..., f_out]``."""
    key = name.lower()
    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; known: {sorted(MODEL_REGISTRY)}")
    return MODEL_REGISTRY[key](dims, dropout=dropout, seed=seed)


#: the two sampler-model combinations of the paper's evaluation
TASKS: Dict[str, tuple[str, str]] = {
    "neighbor-sage": ("neighbor", "sage"),
    "shadow-gcn": ("shadow", "gcn"),
}


def make_task(
    task: str,
    dims: list[int],
    *,
    dropout: float = 0.5,
    seed: int = 0,
    fanouts=None,
) -> tuple[Sampler, Module]:
    """Build the (sampler, model) pair for a paper task name.

    ``fanouts`` overrides the paper defaults ([15, 10, 5] for neighbour
    sampling, [10, 5] for ShaDow).
    """
    key = task.lower()
    if key not in TASKS:
        raise KeyError(f"unknown task {task!r}; known: {sorted(TASKS)}")
    sampler_name, model_name = TASKS[key]
    num_layers = len(dims) - 1
    if sampler_name == "neighbor":
        if fanouts is None:
            base = [15, 10, 5]
            fanouts = base[:num_layers] if num_layers <= 3 else base + [5] * (num_layers - 3)
        if len(fanouts) != num_layers:
            raise ValueError(
                f"neighbour fanouts {list(fanouts)} must match num_layers={num_layers}"
            )
        sampler = make_sampler("neighbor", fanouts=fanouts)
    else:
        sampler = make_sampler(
            "shadow",
            fanouts=fanouts if fanouts is not None else (10, 5),
            num_layers=num_layers,
        )
    model = build_model(model_name, dims, dropout=dropout, seed=seed)
    return sampler, model
