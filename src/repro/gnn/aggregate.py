"""Differentiable segment aggregation (the SpMM of DGL's backend).

Message passing over a block with edges ``(src_idx[e], dst_idx[e])`` is a
gather (``h[src_idx]``) followed by a segment reduction onto destination
rows — equivalently an SpMM with the block's (sparse) adjacency.  Both the
gather and the scatter-add are differentiable primitives from
:mod:`repro.autograd.ops`, so gradients flow through aggregation for free.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.autograd.ops import gather_rows, scatter_add_rows, mul

__all__ = ["aggregate_sum", "aggregate_mean", "gcn_norm_coefficients"]


def _check_edges(src_idx, dst_idx, num_src, num_dst, validate: bool = True):
    """Coerce edge index arrays, optionally verifying their ranges.

    ``validate=False`` skips the per-edge ``min()``/``max()`` scans — a
    hot-path saving for trusted callers whose edges were already range-
    checked at construction (``Block.__post_init__`` validates every
    sampler-produced block, so the GNN layers pass ``validate=False``).
    """
    src_idx = np.asarray(src_idx, dtype=np.int64)
    dst_idx = np.asarray(dst_idx, dtype=np.int64)
    if src_idx.shape != dst_idx.shape or src_idx.ndim != 1:
        raise ValueError("src_idx/dst_idx must be 1-D arrays of equal length")
    if validate and len(src_idx):
        if src_idx.min() < 0 or src_idx.max() >= num_src:
            raise ValueError("src_idx out of range")
        if dst_idx.min() < 0 or dst_idx.max() >= num_dst:
            raise ValueError("dst_idx out of range")
    return src_idx, dst_idx


def aggregate_sum(
    h_src: Tensor,
    src_idx: np.ndarray,
    dst_idx: np.ndarray,
    num_dst: int,
    edge_weight: np.ndarray | None = None,
    *,
    validate: bool = True,
) -> Tensor:
    """Weighted segment sum: ``out[v] = sum_e w_e * h_src[src_idx[e]]``.

    ``edge_weight`` (shape ``(E,)``) is a constant — gradients do not flow
    into it (GCN normalisation coefficients are data, not parameters).
    ``validate=False`` skips edge-range checks for pre-validated blocks.
    """
    src_idx, dst_idx = _check_edges(src_idx, dst_idx, len(h_src.data), num_dst, validate)
    messages = gather_rows(h_src, src_idx)
    if edge_weight is not None:
        edge_weight = np.asarray(edge_weight, dtype=h_src.data.dtype)
        if edge_weight.shape != (len(src_idx),):
            raise ValueError(
                f"edge_weight shape {edge_weight.shape} must be ({len(src_idx)},)"
            )
        messages = mul(messages, edge_weight[:, None])
    return scatter_add_rows(messages, dst_idx, num_dst)


def aggregate_mean(
    h_src: Tensor,
    src_idx: np.ndarray,
    dst_idx: np.ndarray,
    num_dst: int,
    *,
    validate: bool = True,
) -> Tensor:
    """Segment mean over in-neighbours; zero rows for isolated destinations.

    ``validate=False`` skips edge-range checks for pre-validated blocks.
    """
    src_idx, dst_idx = _check_edges(src_idx, dst_idx, len(h_src.data), num_dst, validate)
    summed = scatter_add_rows(gather_rows(h_src, src_idx), dst_idx, num_dst)
    counts = np.bincount(dst_idx, minlength=num_dst).astype(h_src.data.dtype)
    inv = np.where(counts > 0, 1.0 / np.maximum(counts, 1.0), 0.0)
    return mul(summed, inv[:, None])


def gcn_norm_coefficients(
    src_idx: np.ndarray, dst_idx: np.ndarray, num_src: int, num_dst: int
) -> np.ndarray:
    """Symmetric GCN normalisation ``1/sqrt(d_out(u) * d_in(v))`` per edge.

    Degrees are computed *within the block* (the standard mini-batch
    approximation of the paper's Eq. (1) whole-graph degrees).  Nodes with
    zero degree get coefficient 0.
    """
    src_idx = np.asarray(src_idx, dtype=np.int64)
    dst_idx = np.asarray(dst_idx, dtype=np.int64)
    d_out = np.bincount(src_idx, minlength=num_src).astype(np.float64)
    d_in = np.bincount(dst_idx, minlength=num_dst).astype(np.float64)
    denom = np.sqrt(d_out[src_idx] * d_in[dst_idx])
    with np.errstate(divide="ignore"):
        coeff = np.where(denom > 0, 1.0 / denom, 0.0)
    return coeff.astype(np.float32)
