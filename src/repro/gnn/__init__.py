"""GNN models: message-passing aggregation, GCN and GraphSAGE.

Both models follow the paper's Section II-A formulation: each layer is a
Feature Aggregation (segment sum/mean over sampled in-neighbours) followed
by a Feature Update (linear layer + ReLU).  Layers consume the bipartite
``Block`` structures emitted by the samplers in :mod:`repro.sampling`.
"""

from repro.gnn.aggregate import aggregate_sum, aggregate_mean, gcn_norm_coefficients
from repro.gnn.gcn import GCNConv, GCN
from repro.gnn.gat import GATConv, GAT
from repro.gnn.segment import segment_softmax
from repro.gnn.metrics import accuracy, confusion_matrix, f1_scores, micro_f1, macro_f1
from repro.gnn.sage import SAGEConv, GraphSAGE
from repro.gnn.models import build_model, MODEL_REGISTRY

__all__ = [
    "accuracy",
    "aggregate_sum",
    "aggregate_mean",
    "gcn_norm_coefficients",
    "GCNConv",
    "GCN",
    "GATConv",
    "GAT",
    "segment_softmax",
    "confusion_matrix",
    "f1_scores",
    "micro_f1",
    "macro_f1",
    "SAGEConv",
    "GraphSAGE",
    "build_model",
    "MODEL_REGISTRY",
]
