"""Graph Convolutional Network (Kipf & Welling 2017; paper Eq. (1)/(3)).

Feature Aggregation: ``a_v = sum_u 1/sqrt(D(v) D(u)) * h_u``
Feature Update:      ``h_v = ReLU(a_v W + b)`` (no activation on the last layer).
"""

from __future__ import annotations

import numpy as np

from repro.autograd.module import Module, Linear
from repro.autograd.ops import dropout as dropout_op
from repro.autograd.tensor import Tensor
from repro.gnn.aggregate import aggregate_sum, gcn_norm_coefficients
from repro.sampling.block import Block
from repro.utils.rng import derive_rng

__all__ = ["GCNConv", "GCN"]


class GCNConv(Module):
    """One GCN layer operating on a bipartite block."""

    def __init__(self, in_features: int, out_features: int, *, rng=None):
        super().__init__()
        self.linear = Linear(in_features, out_features, rng=rng)

    def forward(self, block: Block, h_src: Tensor) -> Tensor:
        if len(h_src.data) != block.num_src:
            raise ValueError(
                f"feature rows ({len(h_src.data)}) != block src nodes ({block.num_src})"
            )
        coeff = gcn_norm_coefficients(
            block.edge_src, block.edge_dst, block.num_src, block.num_dst
        )
        # blocks are range-checked at construction (Block.__post_init__);
        # merged blocks compute the affine map per request segment so
        # each request keeps its solo forward's exact BLAS geometry
        agg = aggregate_sum(
            h_src, block.edge_src, block.edge_dst, block.num_dst, coeff, validate=False
        )
        return self.linear(agg, row_splits=block.dst_splits)


class GCN(Module):
    """Multi-layer GCN with ReLU + dropout between layers.

    ``dims`` is ``[f0, f1, ..., f_out]`` (length ``num_layers + 1``), the
    paper's Table III layer dimensions.
    """

    #: the dropout-stream counter must follow the weights across
    #: execution backends (see Module.extra_state_dict)
    EXTRA_STATE_ATTRS = ("_dropout_calls",)

    def __init__(self, dims: list[int], *, dropout: float = 0.5, seed: int = 0):
        super().__init__()
        from repro.gnn.models import build_layer_stack  # local import: cycle

        self.dims = list(dims)
        self.dropout = float(dropout)
        self.seed = seed
        self._layers: list[GCNConv] = build_layer_stack(
            self, dims, GCNConv, stream="gcn", seed=seed
        )
        self._dropout_calls = 0

    def __setattr__(self, name, value):
        if name in ("_layers", "_dropout_calls"):
            object.__setattr__(self, name, value)
        else:
            super().__setattr__(name, value)

    @property
    def num_layers(self) -> int:
        return len(self._layers)

    def forward(self, blocks: list[Block], x: Tensor) -> Tensor:
        if len(blocks) != self.num_layers:
            raise ValueError(f"expected {self.num_layers} blocks, got {len(blocks)}")
        h = x
        for i, (layer, block) in enumerate(zip(self._layers, blocks)):
            h = layer(block, h)
            if i < self.num_layers - 1:
                h = h.relu()
                if self.training and self.dropout > 0:
                    self._dropout_calls += 1
                    h = dropout_op(
                        h,
                        self.dropout,
                        training=True,
                        rng=derive_rng(self.seed, "dropout", self._dropout_calls),
                    )
                # narrow to the next block's source rows: for neighbour
                # sampling consecutive blocks already line up; for ShaDow
                # the blocks are identical so this is a no-op check.
                if len(h.data) != blocks[i + 1].num_src:
                    raise ValueError(
                        "block chain mismatch: layer output rows "
                        f"{len(h.data)} != next block src {blocks[i + 1].num_src}"
                    )
        return h
