"""Shared-memory arena layer: the data plane of the persistent runtime.

Generic pieces live in :mod:`repro.shm.arena`; the graph-specific store
(:class:`repro.graph.shm.SharedGraphStore`) is a thin specialisation.
"""

from repro.shm.arena import (
    BatchArena,
    ParamStore,
    SharedArraySpec,
    ShmArena,
    attach_segment,
    flatten_arrays,
    unflatten_arrays,
)

__all__ = [
    "BatchArena",
    "ParamStore",
    "SharedArraySpec",
    "ShmArena",
    "attach_segment",
    "flatten_arrays",
    "unflatten_arrays",
]
